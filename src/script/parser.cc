#include "script/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace easia::script {

namespace {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kSymbol,
  kEnd,
};

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0;
  size_t line = 1;
};

Result<std::vector<Tok>> Lex(std::string_view src) {
  std::vector<Tok> out;
  size_t i = 0, line = 1;
  const size_t n = src.size();
  auto error = [&](std::string_view msg) {
    return Status::ParseError(
        StrPrintf("eascript:%zu: %s", line, std::string(msg).c_str()));
  };
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < n && src[i + 1] == '/')) {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    Tok tok;
    tok.line = line;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_')) {
        ++i;
      }
      tok.kind = TokKind::kIdent;
      tok.text = std::string(src.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(src[i])) ||
                       src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        ++i;
      }
      std::string text(src.substr(start, i - start));
      Result<double> v = ParseDouble(text);
      if (!v.ok()) return error("bad number literal " + text);
      tok.kind = TokKind::kNumber;
      tok.number = *v;
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        char d = src[i];
        if (d == '"') {
          closed = true;
          ++i;
          break;
        }
        if (d == '\\' && i + 1 < n) {
          char e = src[i + 1];
          switch (e) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case '\\': value += '\\'; break;
            case '"': value += '"'; break;
            default: value += e;
          }
          i += 2;
          continue;
        }
        if (d == '\n') ++line;
        value += d;
        ++i;
      }
      if (!closed) return error("unterminated string literal");
      tok.kind = TokKind::kString;
      tok.text = std::move(value);
      out.push_back(std::move(tok));
      continue;
    }
    // Two-char operators.
    static constexpr std::string_view kTwo[] = {"==", "!=", "<=", ">=",
                                                "&&", "||"};
    bool matched = false;
    for (std::string_view two : kTwo) {
      if (src.substr(i, 2) == two) {
        tok.kind = TokKind::kSymbol;
        tok.text = std::string(two);
        i += 2;
        out.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static constexpr std::string_view kSingles = "+-*/%(){}[];,=<>!";
    if (kSingles.find(c) != std::string_view::npos) {
      tok.kind = TokKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      out.push_back(std::move(tok));
      continue;
    }
    return error(StrPrintf("unexpected character '%c'", c));
  }
  Tok end;
  end.kind = TokKind::kEnd;
  end.line = line;
  out.push_back(std::move(end));
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<std::unique_ptr<Program>> ParseProgram() {
    auto program = std::make_unique<Program>();
    while (!AtEnd()) {
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SStmt> stmt, ParseStatement());
      program->statements.push_back(std::move(stmt));
    }
    return program;
  }

 private:
  const Tok& Peek() const { return toks_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }
  void Advance() {
    if (!AtEnd()) ++pos_;
  }

  Status Error(std::string_view msg) const {
    return Status::ParseError(StrPrintf("eascript:%zu: %s (near '%s')",
                                        Peek().line,
                                        std::string(msg).c_str(),
                                        Peek().text.c_str()));
  }

  bool CheckSymbol(std::string_view sym) const {
    return Peek().kind == TokKind::kSymbol && Peek().text == sym;
  }
  bool ConsumeSymbol(std::string_view sym) {
    if (CheckSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!ConsumeSymbol(sym)) return Error("expected '" + std::string(sym) + "'");
    return Status::OK();
  }
  bool CheckIdent(std::string_view word) const {
    return Peek().kind == TokKind::kIdent && Peek().text == word;
  }
  bool ConsumeIdent(std::string_view word) {
    if (CheckIdent(word)) {
      Advance();
      return true;
    }
    return false;
  }
  Result<std::string> ExpectName() {
    if (Peek().kind != TokKind::kIdent) return Error("expected identifier");
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Result<std::vector<std::unique_ptr<SStmt>>> ParseBlock() {
    EASIA_RETURN_IF_ERROR(ExpectSymbol("{"));
    std::vector<std::unique_ptr<SStmt>> body;
    while (!CheckSymbol("}")) {
      if (AtEnd()) return Error("unterminated block");
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SStmt> stmt, ParseStatement());
      body.push_back(std::move(stmt));
    }
    Advance();  // }
    return body;
  }

  Result<std::unique_ptr<SStmt>> ParseStatement() {
    auto stmt = std::make_unique<SStmt>();
    stmt->line = Peek().line;
    if (ConsumeIdent("let")) {
      stmt->kind = SStmt::Kind::kLet;
      EASIA_ASSIGN_OR_RETURN(stmt->name, ExpectName());
      EASIA_RETURN_IF_ERROR(ExpectSymbol("="));
      EASIA_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      EASIA_RETURN_IF_ERROR(ExpectSymbol(";"));
      return stmt;
    }
    if (ConsumeIdent("if")) {
      stmt->kind = SStmt::Kind::kIf;
      EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
      EASIA_ASSIGN_OR_RETURN(stmt->cond, ParseExpr());
      EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
      EASIA_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      if (ConsumeIdent("else")) {
        if (CheckIdent("if")) {
          // else if: wrap as single-statement else body.
          EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SStmt> nested,
                                 ParseStatement());
          stmt->else_body.push_back(std::move(nested));
        } else {
          EASIA_ASSIGN_OR_RETURN(stmt->else_body, ParseBlock());
        }
      }
      return stmt;
    }
    if (ConsumeIdent("while")) {
      stmt->kind = SStmt::Kind::kWhile;
      EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
      EASIA_ASSIGN_OR_RETURN(stmt->cond, ParseExpr());
      EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
      EASIA_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }
    if (ConsumeIdent("for")) {
      stmt->kind = SStmt::Kind::kFor;
      EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
      EASIA_ASSIGN_OR_RETURN(stmt->init, ParseStatement());  // consumes ';'
      EASIA_ASSIGN_OR_RETURN(stmt->cond, ParseExpr());
      EASIA_RETURN_IF_ERROR(ExpectSymbol(";"));
      EASIA_ASSIGN_OR_RETURN(stmt->step, ParseSimpleStatement());
      EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
      EASIA_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }
    if (ConsumeIdent("func")) {
      stmt->kind = SStmt::Kind::kFuncDef;
      EASIA_ASSIGN_OR_RETURN(stmt->name, ExpectName());
      EASIA_RETURN_IF_ERROR(ExpectSymbol("("));
      if (!ConsumeSymbol(")")) {
        while (true) {
          EASIA_ASSIGN_OR_RETURN(std::string param, ExpectName());
          stmt->params.push_back(std::move(param));
          if (!ConsumeSymbol(",")) break;
        }
        EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      EASIA_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }
    if (ConsumeIdent("return")) {
      stmt->kind = SStmt::Kind::kReturn;
      if (!CheckSymbol(";")) {
        EASIA_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      }
      EASIA_RETURN_IF_ERROR(ExpectSymbol(";"));
      return stmt;
    }
    if (ConsumeIdent("break")) {
      stmt->kind = SStmt::Kind::kBreak;
      EASIA_RETURN_IF_ERROR(ExpectSymbol(";"));
      return stmt;
    }
    if (ConsumeIdent("continue")) {
      stmt->kind = SStmt::Kind::kContinue;
      EASIA_RETURN_IF_ERROR(ExpectSymbol(";"));
      return stmt;
    }
    if (CheckSymbol("{")) {
      stmt->kind = SStmt::Kind::kBlock;
      EASIA_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }
    EASIA_ASSIGN_OR_RETURN(stmt, ParseSimpleStatement());
    EASIA_RETURN_IF_ERROR(ExpectSymbol(";"));
    return stmt;
  }

  /// Assignment or expression, without the trailing ';' (shared by `for`).
  Result<std::unique_ptr<SStmt>> ParseSimpleStatement() {
    auto stmt = std::make_unique<SStmt>();
    stmt->line = Peek().line;
    if (ConsumeIdent("let")) {
      stmt->kind = SStmt::Kind::kLet;
      EASIA_ASSIGN_OR_RETURN(stmt->name, ExpectName());
      EASIA_RETURN_IF_ERROR(ExpectSymbol("="));
      EASIA_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      return stmt;
    }
    // Lookahead for "name =" or "name[expr] =".
    if (Peek().kind == TokKind::kIdent) {
      size_t save = pos_;
      std::string name = Peek().text;
      Advance();
      if (ConsumeSymbol("=")) {
        stmt->kind = SStmt::Kind::kAssign;
        stmt->name = std::move(name);
        EASIA_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
        return stmt;
      }
      if (CheckSymbol("[")) {
        Advance();
        std::unique_ptr<SExpr> index;
        Result<std::unique_ptr<SExpr>> idx = ParseExpr();
        if (idx.ok() && CheckSymbol("]")) {
          Advance();
          if (ConsumeSymbol("=")) {
            stmt->kind = SStmt::Kind::kAssign;
            stmt->name = std::move(name);
            stmt->index = std::move(*idx);
            EASIA_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
            return stmt;
          }
        }
      }
      pos_ = save;  // not an assignment: re-parse as expression
    }
    stmt->kind = SStmt::Kind::kExpr;
    EASIA_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
    return stmt;
  }

  // Expressions, precedence climbing.
  Result<std::unique_ptr<SExpr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<SExpr>> ParseOr() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> left, ParseAnd());
    while (ConsumeSymbol("||")) {
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> right, ParseAnd());
      left = MakeBinary(SExpr::Op::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<SExpr>> ParseAnd() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> left, ParseEquality());
    while (ConsumeSymbol("&&")) {
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> right, ParseEquality());
      left = MakeBinary(SExpr::Op::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<SExpr>> ParseEquality() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> left, ParseRelational());
    while (true) {
      SExpr::Op op = SExpr::Op::kNone;
      if (ConsumeSymbol("==")) op = SExpr::Op::kEq;
      else if (ConsumeSymbol("!=")) op = SExpr::Op::kNe;
      else return left;
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> right, ParseRelational());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<std::unique_ptr<SExpr>> ParseRelational() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> left, ParseAdditive());
    while (true) {
      SExpr::Op op = SExpr::Op::kNone;
      if (ConsumeSymbol("<=")) op = SExpr::Op::kLe;
      else if (ConsumeSymbol(">=")) op = SExpr::Op::kGe;
      else if (ConsumeSymbol("<")) op = SExpr::Op::kLt;
      else if (ConsumeSymbol(">")) op = SExpr::Op::kGt;
      else return left;
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> right, ParseAdditive());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<std::unique_ptr<SExpr>> ParseAdditive() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> left, ParseMultiplicative());
    while (true) {
      SExpr::Op op = SExpr::Op::kNone;
      if (ConsumeSymbol("+")) op = SExpr::Op::kAdd;
      else if (ConsumeSymbol("-")) op = SExpr::Op::kSub;
      else return left;
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> right,
                             ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<std::unique_ptr<SExpr>> ParseMultiplicative() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> left, ParseUnary());
    while (true) {
      SExpr::Op op = SExpr::Op::kNone;
      if (ConsumeSymbol("*")) op = SExpr::Op::kMul;
      else if (ConsumeSymbol("/")) op = SExpr::Op::kDiv;
      else if (ConsumeSymbol("%")) op = SExpr::Op::kMod;
      else return left;
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<std::unique_ptr<SExpr>> ParseUnary() {
    if (ConsumeSymbol("-")) {
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> inner, ParseUnary());
      auto e = std::make_unique<SExpr>();
      e->kind = SExpr::Kind::kUnary;
      e->op = SExpr::Op::kNeg;
      e->left = std::move(inner);
      return e;
    }
    if (ConsumeSymbol("!")) {
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> inner, ParseUnary());
      auto e = std::make_unique<SExpr>();
      e->kind = SExpr::Kind::kUnary;
      e->op = SExpr::Op::kNot;
      e->left = std::move(inner);
      return e;
    }
    return ParsePostfix();
  }

  Result<std::unique_ptr<SExpr>> ParsePostfix() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> base, ParsePrimary());
    while (CheckSymbol("[")) {
      Advance();
      EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> index, ParseExpr());
      EASIA_RETURN_IF_ERROR(ExpectSymbol("]"));
      auto e = std::make_unique<SExpr>();
      e->kind = SExpr::Kind::kIndex;
      e->left = std::move(base);
      e->right = std::move(index);
      base = std::move(e);
    }
    return base;
  }

  Result<std::unique_ptr<SExpr>> ParsePrimary() {
    const Tok& tok = Peek();
    auto e = std::make_unique<SExpr>();
    e->line = tok.line;
    switch (tok.kind) {
      case TokKind::kNumber:
        e->kind = SExpr::Kind::kLiteral;
        e->literal = ScriptValue::Number(tok.number);
        Advance();
        return e;
      case TokKind::kString:
        e->kind = SExpr::Kind::kLiteral;
        e->literal = ScriptValue::Str(tok.text);
        Advance();
        return e;
      case TokKind::kIdent: {
        if (tok.text == "true" || tok.text == "false") {
          e->kind = SExpr::Kind::kLiteral;
          e->literal = ScriptValue::Bool(tok.text == "true");
          Advance();
          return e;
        }
        if (tok.text == "null") {
          e->kind = SExpr::Kind::kLiteral;
          e->literal = ScriptValue::Null();
          Advance();
          return e;
        }
        std::string name = tok.text;
        Advance();
        if (ConsumeSymbol("(")) {
          e->kind = SExpr::Kind::kCall;
          e->name = std::move(name);
          if (!ConsumeSymbol(")")) {
            while (true) {
              EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> arg, ParseExpr());
              e->args.push_back(std::move(arg));
              if (!ConsumeSymbol(",")) break;
            }
            EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
          }
          return e;
        }
        e->kind = SExpr::Kind::kVariable;
        e->name = std::move(name);
        return e;
      }
      case TokKind::kSymbol:
        if (tok.text == "(") {
          Advance();
          EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> inner, ParseExpr());
          EASIA_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        if (tok.text == "[") {
          Advance();
          e->kind = SExpr::Kind::kArrayLit;
          if (!ConsumeSymbol("]")) {
            while (true) {
              EASIA_ASSIGN_OR_RETURN(std::unique_ptr<SExpr> item, ParseExpr());
              e->args.push_back(std::move(item));
              if (!ConsumeSymbol(",")) break;
            }
            EASIA_RETURN_IF_ERROR(ExpectSymbol("]"));
          }
          return e;
        }
        return Error("unexpected symbol in expression");
      case TokKind::kEnd:
        return Error("unexpected end of script");
    }
    return Error("unexpected token");
  }

  static std::unique_ptr<SExpr> MakeBinary(SExpr::Op op,
                                           std::unique_ptr<SExpr> left,
                                           std::unique_ptr<SExpr> right) {
    auto e = std::make_unique<SExpr>();
    e->kind = SExpr::Kind::kBinary;
    e->op = op;
    e->line = left->line;
    e->left = std::move(left);
    e->right = std::move(right);
    return e;
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Program>> ParseScript(std::string_view source) {
  EASIA_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(source));
  Parser parser(std::move(toks));
  return parser.ParseProgram();
}

}  // namespace easia::script
