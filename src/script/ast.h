#ifndef EASIA_SCRIPT_AST_H_
#define EASIA_SCRIPT_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "script/value.h"

namespace easia::script {

/// EaScript expression node.
struct SExpr {
  enum class Kind {
    kLiteral,    // number/string/bool/null
    kVariable,   // name
    kUnary,      // -e, !e
    kBinary,     // arithmetic / comparison / logic / %
    kCall,       // name(args)
    kIndex,      // base[index]
    kArrayLit,   // [a, b, c]
  };

  enum class Op {
    kNone,
    kAdd, kSub, kMul, kDiv, kMod,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAnd, kOr,
    kNeg, kNot,
  };

  Kind kind = Kind::kLiteral;
  Op op = Op::kNone;
  size_t line = 0;
  ScriptValue literal;
  std::string name;  // variable / function name
  std::unique_ptr<SExpr> left;
  std::unique_ptr<SExpr> right;
  std::vector<std::unique_ptr<SExpr>> args;
};

/// EaScript statement node.
struct SStmt {
  enum class Kind {
    kLet,        // let name = expr;
    kAssign,     // name = expr;  |  name[idx] = expr;
    kExpr,       // expr;
    kIf,         // if (cond) block [else block]
    kWhile,      // while (cond) block
    kFor,        // for (init; cond; step) block
    kReturn,     // return [expr];
    kBreak,
    kContinue,
    kBlock,
    kFuncDef,    // func name(params) block
  };

  Kind kind = Kind::kExpr;
  size_t line = 0;
  std::string name;                      // let/assign/funcdef target
  std::unique_ptr<SExpr> index;          // for indexed assignment
  std::unique_ptr<SExpr> expr;           // value / condition
  std::unique_ptr<SStmt> init;           // for
  std::unique_ptr<SExpr> cond;           // for/while/if
  std::unique_ptr<SStmt> step;           // for
  std::vector<std::unique_ptr<SStmt>> body;
  std::vector<std::unique_ptr<SStmt>> else_body;
  std::vector<std::string> params;       // funcdef
};

struct Program {
  std::vector<std::unique_ptr<SStmt>> statements;
};

}  // namespace easia::script

#endif  // EASIA_SCRIPT_AST_H_
