#include "script/interpreter.h"

#include <cmath>

#include "common/string_util.h"
#include "script/ast.h"
#include "script/parser.h"

namespace easia::script {

namespace {

/// Non-error control-flow signals raised by statements.
enum class Flow { kNormal, kBreak, kContinue, kReturn };

struct UserFunction {
  const SStmt* def = nullptr;
};

class Execution {
 public:
  Execution(const SandboxLimits& limits,
            const std::map<std::string, HostFunction>& host_functions,
            const std::vector<std::string>& args)
      : limits_(limits), host_functions_(host_functions), args_(args) {
    scopes_.emplace_back();  // globals
  }

  Result<ExecutionResult> Run(const Program& program) {
    // Hoist function definitions so forward calls work.
    for (const auto& stmt : program.statements) {
      if (stmt->kind == SStmt::Kind::kFuncDef) {
        functions_[stmt->name] = UserFunction{stmt.get()};
      }
    }
    for (const auto& stmt : program.statements) {
      if (stmt->kind == SStmt::Kind::kFuncDef) continue;
      EASIA_ASSIGN_OR_RETURN(Flow flow, ExecStmt(*stmt));
      if (flow == Flow::kReturn) break;
      if (flow != Flow::kNormal) {
        return Status::InvalidArgument(
            "eascript: break/continue outside a loop");
      }
    }
    ExecutionResult result;
    result.return_value = return_value_;
    result.output = std::move(output_);
    result.steps_used = steps_;
    return result;
  }

 private:
  using Scope = std::map<std::string, ScriptValue>;

  Status Tick(size_t line) {
    if (++steps_ > limits_.max_steps) {
      return Status::ResourceExhausted(
          StrPrintf("eascript:%zu: step quota exceeded (%llu)", line,
                    static_cast<unsigned long long>(limits_.max_steps)));
    }
    return Status::OK();
  }

  Status ChargeMemory(const ScriptValue& v, size_t line) {
    memory_used_ += v.MemoryFootprint();
    if (memory_used_ > limits_.max_memory_bytes) {
      return Status::ResourceExhausted(
          StrPrintf("eascript:%zu: memory quota exceeded", line));
    }
    return Status::OK();
  }

  ScriptValue* FindVariable(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  Result<Flow> ExecBlock(const std::vector<std::unique_ptr<SStmt>>& body) {
    scopes_.emplace_back();
    Flow flow = Flow::kNormal;
    Status status = Status::OK();
    for (const auto& stmt : body) {
      Result<Flow> r = ExecStmt(*stmt);
      if (!r.ok()) {
        status = r.status();
        break;
      }
      if (*r != Flow::kNormal) {
        flow = *r;
        break;
      }
    }
    scopes_.pop_back();
    if (!status.ok()) return status;
    return flow;
  }

  Result<Flow> ExecStmt(const SStmt& stmt) {
    EASIA_RETURN_IF_ERROR(Tick(stmt.line));
    switch (stmt.kind) {
      case SStmt::Kind::kLet: {
        EASIA_ASSIGN_OR_RETURN(ScriptValue v, Eval(*stmt.expr));
        EASIA_RETURN_IF_ERROR(ChargeMemory(v, stmt.line));
        scopes_.back()[stmt.name] = std::move(v);
        return Flow::kNormal;
      }
      case SStmt::Kind::kAssign: {
        ScriptValue* slot = FindVariable(stmt.name);
        if (slot == nullptr) {
          return Status::InvalidArgument(
              StrPrintf("eascript:%zu: assignment to undeclared variable %s",
                        stmt.line, stmt.name.c_str()));
        }
        EASIA_ASSIGN_OR_RETURN(ScriptValue v, Eval(*stmt.expr));
        EASIA_RETURN_IF_ERROR(ChargeMemory(v, stmt.line));
        if (stmt.index != nullptr) {
          if (!slot->IsArray()) {
            return Status::InvalidArgument(
                StrPrintf("eascript:%zu: indexed assignment to non-array",
                          stmt.line));
          }
          EASIA_ASSIGN_OR_RETURN(ScriptValue idx, Eval(*stmt.index));
          if (!idx.IsNumber()) {
            return Status::InvalidArgument(
                StrPrintf("eascript:%zu: array index must be a number",
                          stmt.line));
          }
          auto& arr = slot->AsArray();
          int64_t i = static_cast<int64_t>(idx.AsNumber());
          if (i < 0 || static_cast<size_t>(i) >= arr.size()) {
            return Status::OutOfRange(
                StrPrintf("eascript:%zu: index %lld out of bounds (len %zu)",
                          stmt.line, static_cast<long long>(i), arr.size()));
          }
          arr[static_cast<size_t>(i)] = std::move(v);
        } else {
          *slot = std::move(v);
        }
        return Flow::kNormal;
      }
      case SStmt::Kind::kExpr: {
        EASIA_ASSIGN_OR_RETURN(ScriptValue v, Eval(*stmt.expr));
        (void)v;
        return Flow::kNormal;
      }
      case SStmt::Kind::kIf: {
        EASIA_ASSIGN_OR_RETURN(ScriptValue cond, Eval(*stmt.cond));
        if (cond.Truthy()) return ExecBlock(stmt.body);
        return ExecBlock(stmt.else_body);
      }
      case SStmt::Kind::kWhile: {
        while (true) {
          EASIA_RETURN_IF_ERROR(Tick(stmt.line));
          EASIA_ASSIGN_OR_RETURN(ScriptValue cond, Eval(*stmt.cond));
          if (!cond.Truthy()) break;
          EASIA_ASSIGN_OR_RETURN(Flow flow, ExecBlock(stmt.body));
          if (flow == Flow::kBreak) break;
          if (flow == Flow::kReturn) return Flow::kReturn;
        }
        return Flow::kNormal;
      }
      case SStmt::Kind::kFor: {
        scopes_.emplace_back();  // scope for loop variable
        Status status = Status::OK();
        Result<Flow> init = ExecStmt(*stmt.init);
        if (!init.ok()) {
          scopes_.pop_back();
          return init.status();
        }
        while (true) {
          Status tick = Tick(stmt.line);
          if (!tick.ok()) {
            status = tick;
            break;
          }
          Result<ScriptValue> cond = Eval(*stmt.cond);
          if (!cond.ok()) {
            status = cond.status();
            break;
          }
          if (!cond->Truthy()) break;
          Result<Flow> flow = ExecBlock(stmt.body);
          if (!flow.ok()) {
            status = flow.status();
            break;
          }
          if (*flow == Flow::kBreak) break;
          if (*flow == Flow::kReturn) {
            scopes_.pop_back();
            return Flow::kReturn;
          }
          Result<Flow> step = ExecStmt(*stmt.step);
          if (!step.ok()) {
            status = step.status();
            break;
          }
        }
        scopes_.pop_back();
        if (!status.ok()) return status;
        return Flow::kNormal;
      }
      case SStmt::Kind::kReturn: {
        if (stmt.expr != nullptr) {
          EASIA_ASSIGN_OR_RETURN(return_value_, Eval(*stmt.expr));
        } else {
          return_value_ = ScriptValue::Null();
        }
        return Flow::kReturn;
      }
      case SStmt::Kind::kBreak:
        return Flow::kBreak;
      case SStmt::Kind::kContinue:
        return Flow::kContinue;
      case SStmt::Kind::kBlock:
        return ExecBlock(stmt.body);
      case SStmt::Kind::kFuncDef:
        functions_[stmt.name] = UserFunction{&stmt};
        return Flow::kNormal;
    }
    return Status::Internal("eascript: bad statement kind");
  }

  Result<ScriptValue> Eval(const SExpr& expr) {
    EASIA_RETURN_IF_ERROR(Tick(expr.line));
    switch (expr.kind) {
      case SExpr::Kind::kLiteral:
        return expr.literal;
      case SExpr::Kind::kVariable: {
        ScriptValue* slot = FindVariable(expr.name);
        if (slot == nullptr) {
          return Status::InvalidArgument(
              StrPrintf("eascript:%zu: undefined variable %s", expr.line,
                        expr.name.c_str()));
        }
        return *slot;
      }
      case SExpr::Kind::kUnary: {
        EASIA_ASSIGN_OR_RETURN(ScriptValue v, Eval(*expr.left));
        if (expr.op == SExpr::Op::kNeg) {
          if (!v.IsNumber()) {
            return Status::InvalidArgument(
                StrPrintf("eascript:%zu: unary '-' on non-number", expr.line));
          }
          return ScriptValue::Number(-v.AsNumber());
        }
        return ScriptValue::Bool(!v.Truthy());
      }
      case SExpr::Kind::kBinary:
        return EvalBinary(expr);
      case SExpr::Kind::kIndex: {
        EASIA_ASSIGN_OR_RETURN(ScriptValue base, Eval(*expr.left));
        EASIA_ASSIGN_OR_RETURN(ScriptValue idx, Eval(*expr.right));
        if (!idx.IsNumber()) {
          return Status::InvalidArgument(
              StrPrintf("eascript:%zu: index must be a number", expr.line));
        }
        int64_t i = static_cast<int64_t>(idx.AsNumber());
        if (base.IsArray()) {
          const auto& arr = base.AsArray();
          if (i < 0 || static_cast<size_t>(i) >= arr.size()) {
            return Status::OutOfRange(
                StrPrintf("eascript:%zu: index %lld out of bounds (len %zu)",
                          expr.line, static_cast<long long>(i), arr.size()));
          }
          return arr[static_cast<size_t>(i)];
        }
        if (base.IsString()) {
          const std::string& s = base.AsString();
          if (i < 0 || static_cast<size_t>(i) >= s.size()) {
            return Status::OutOfRange(
                StrPrintf("eascript:%zu: string index out of bounds",
                          expr.line));
          }
          return ScriptValue::Str(std::string(1, s[static_cast<size_t>(i)]));
        }
        return Status::InvalidArgument(
            StrPrintf("eascript:%zu: indexing a non-indexable value",
                      expr.line));
      }
      case SExpr::Kind::kArrayLit: {
        std::vector<ScriptValue> items;
        items.reserve(expr.args.size());
        for (const auto& a : expr.args) {
          EASIA_ASSIGN_OR_RETURN(ScriptValue v, Eval(*a));
          items.push_back(std::move(v));
        }
        ScriptValue arr = ScriptValue::ArrayOf(std::move(items));
        EASIA_RETURN_IF_ERROR(ChargeMemory(arr, expr.line));
        return arr;
      }
      case SExpr::Kind::kCall:
        return EvalCall(expr);
    }
    return Status::Internal("eascript: bad expression kind");
  }

  Result<ScriptValue> EvalBinary(const SExpr& expr) {
    // Short-circuit logic.
    if (expr.op == SExpr::Op::kAnd || expr.op == SExpr::Op::kOr) {
      EASIA_ASSIGN_OR_RETURN(ScriptValue lhs, Eval(*expr.left));
      bool l = lhs.Truthy();
      if (expr.op == SExpr::Op::kAnd && !l) return ScriptValue::Bool(false);
      if (expr.op == SExpr::Op::kOr && l) return ScriptValue::Bool(true);
      EASIA_ASSIGN_OR_RETURN(ScriptValue rhs, Eval(*expr.right));
      return ScriptValue::Bool(rhs.Truthy());
    }
    EASIA_ASSIGN_OR_RETURN(ScriptValue lhs, Eval(*expr.left));
    EASIA_ASSIGN_OR_RETURN(ScriptValue rhs, Eval(*expr.right));
    auto type_error = [&]() {
      return Status::InvalidArgument(
          StrPrintf("eascript:%zu: type error in binary expression",
                    expr.line));
    };
    switch (expr.op) {
      case SExpr::Op::kAdd:
        if (lhs.IsNumber() && rhs.IsNumber()) {
          return ScriptValue::Number(lhs.AsNumber() + rhs.AsNumber());
        }
        if (lhs.IsString() || rhs.IsString()) {
          ScriptValue v =
              ScriptValue::Str(lhs.ToDisplay() + rhs.ToDisplay());
          EASIA_RETURN_IF_ERROR(ChargeMemory(v, expr.line));
          return v;
        }
        return type_error();
      case SExpr::Op::kSub:
      case SExpr::Op::kMul:
      case SExpr::Op::kDiv:
      case SExpr::Op::kMod: {
        if (!lhs.IsNumber() || !rhs.IsNumber()) return type_error();
        double a = lhs.AsNumber(), b = rhs.AsNumber();
        switch (expr.op) {
          case SExpr::Op::kSub: return ScriptValue::Number(a - b);
          case SExpr::Op::kMul: return ScriptValue::Number(a * b);
          case SExpr::Op::kDiv:
            if (b == 0) {
              return Status::InvalidArgument(
                  StrPrintf("eascript:%zu: division by zero", expr.line));
            }
            return ScriptValue::Number(a / b);
          case SExpr::Op::kMod:
            if (b == 0) {
              return Status::InvalidArgument(
                  StrPrintf("eascript:%zu: modulo by zero", expr.line));
            }
            return ScriptValue::Number(std::fmod(a, b));
          default:
            break;
        }
        return type_error();
      }
      case SExpr::Op::kEq:
        return ScriptValue::Bool(lhs.Equals(rhs));
      case SExpr::Op::kNe:
        return ScriptValue::Bool(!lhs.Equals(rhs));
      case SExpr::Op::kLt:
      case SExpr::Op::kLe:
      case SExpr::Op::kGt:
      case SExpr::Op::kGe: {
        int cmp;
        if (lhs.IsNumber() && rhs.IsNumber()) {
          double a = lhs.AsNumber(), b = rhs.AsNumber();
          cmp = a < b ? -1 : (a > b ? 1 : 0);
        } else if (lhs.IsString() && rhs.IsString()) {
          cmp = lhs.AsString().compare(rhs.AsString());
          cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
        } else {
          return type_error();
        }
        switch (expr.op) {
          case SExpr::Op::kLt: return ScriptValue::Bool(cmp < 0);
          case SExpr::Op::kLe: return ScriptValue::Bool(cmp <= 0);
          case SExpr::Op::kGt: return ScriptValue::Bool(cmp > 0);
          case SExpr::Op::kGe: return ScriptValue::Bool(cmp >= 0);
          default: break;
        }
        return type_error();
      }
      default:
        return Status::Internal("eascript: bad binary operator");
    }
  }

  Result<ScriptValue> EvalCall(const SExpr& expr) {
    std::vector<ScriptValue> args;
    args.reserve(expr.args.size());
    for (const auto& a : expr.args) {
      EASIA_ASSIGN_OR_RETURN(ScriptValue v, Eval(*a));
      args.push_back(std::move(v));
    }
    // User-defined functions shadow builtins/host functions.
    auto user = functions_.find(expr.name);
    if (user != functions_.end()) {
      return CallUserFunction(*user->second.def, std::move(args), expr.line);
    }
    Result<ScriptValue> builtin = CallBuiltin(expr.name, args, expr.line);
    if (builtin.ok() ||
        builtin.status().code() != StatusCode::kNotFound) {
      return builtin;
    }
    auto host = host_functions_.find(expr.name);
    if (host != host_functions_.end()) {
      Result<ScriptValue> r = host->second(args);
      if (!r.ok()) {
        return r.status().WithContext(
            StrPrintf("eascript:%zu: %s()", expr.line, expr.name.c_str()));
      }
      EASIA_RETURN_IF_ERROR(ChargeMemory(*r, expr.line));
      return r;
    }
    return Status::InvalidArgument(StrPrintf(
        "eascript:%zu: unknown function %s", expr.line, expr.name.c_str()));
  }

  Result<ScriptValue> CallUserFunction(const SStmt& def,
                                       std::vector<ScriptValue> args,
                                       size_t line) {
    if (++call_depth_ > limits_.max_call_depth) {
      --call_depth_;
      return Status::ResourceExhausted(
          StrPrintf("eascript:%zu: call depth limit exceeded", line));
    }
    if (args.size() != def.params.size()) {
      --call_depth_;
      return Status::InvalidArgument(
          StrPrintf("eascript:%zu: %s expects %zu arguments, got %zu", line,
                    def.name.c_str(), def.params.size(), args.size()));
    }
    // Function bodies see only their own scope (no closures), mirroring the
    // isolation of a separately invoked interpreter.
    std::vector<Scope> saved = std::move(scopes_);
    scopes_.clear();
    scopes_.emplace_back();
    for (size_t i = 0; i < args.size(); ++i) {
      scopes_.back()[def.params[i]] = std::move(args[i]);
    }
    ScriptValue saved_return = return_value_;
    return_value_ = ScriptValue::Null();
    Result<Flow> flow = ExecBlock(def.body);
    ScriptValue result = return_value_;
    return_value_ = saved_return;
    scopes_ = std::move(saved);
    --call_depth_;
    if (!flow.ok()) return flow.status();
    return result;
  }

  Result<ScriptValue> CallBuiltin(const std::string& name,
                                  std::vector<ScriptValue>& args,
                                  size_t line) {
    auto argc_error = [&]() {
      return Status::InvalidArgument(
          StrPrintf("eascript:%zu: wrong argument count for %s", line,
                    name.c_str()));
    };
    auto num = [&](size_t i) { return args[i].AsNumber(); };
    if (name == "len") {
      if (args.size() != 1) return argc_error();
      if (args[0].IsString()) {
        return ScriptValue::Number(
            static_cast<double>(args[0].AsString().size()));
      }
      if (args[0].IsArray()) {
        return ScriptValue::Number(
            static_cast<double>(args[0].AsArray().size()));
      }
      return Status::InvalidArgument(
          StrPrintf("eascript:%zu: len() of non-sequence", line));
    }
    if (name == "str") {
      if (args.size() != 1) return argc_error();
      return ScriptValue::Str(args[0].ToDisplay());
    }
    if (name == "num") {
      if (args.size() != 1) return argc_error();
      if (args[0].IsNumber()) return args[0];
      if (args[0].IsString()) {
        Result<double> v = ParseDouble(args[0].AsString());
        if (!v.ok()) {
          return Status::InvalidArgument(
              StrPrintf("eascript:%zu: num() cannot parse '%s'", line,
                        args[0].AsString().c_str()));
        }
        return ScriptValue::Number(*v);
      }
      return Status::InvalidArgument(
          StrPrintf("eascript:%zu: num() of non-numeric value", line));
    }
    if (name == "floor" || name == "ceil" || name == "sqrt" || name == "abs" ||
        name == "exp" || name == "log" || name == "sin" || name == "cos") {
      if (args.size() != 1 || !args[0].IsNumber()) return argc_error();
      double x = num(0);
      if (name == "floor") return ScriptValue::Number(std::floor(x));
      if (name == "ceil") return ScriptValue::Number(std::ceil(x));
      if (name == "sqrt") {
        if (x < 0) {
          return Status::InvalidArgument(
              StrPrintf("eascript:%zu: sqrt of negative number", line));
        }
        return ScriptValue::Number(std::sqrt(x));
      }
      if (name == "abs") return ScriptValue::Number(std::fabs(x));
      if (name == "exp") return ScriptValue::Number(std::exp(x));
      if (name == "log") {
        if (x <= 0) {
          return Status::InvalidArgument(
              StrPrintf("eascript:%zu: log of non-positive number", line));
        }
        return ScriptValue::Number(std::log(x));
      }
      if (name == "sin") return ScriptValue::Number(std::sin(x));
      return ScriptValue::Number(std::cos(x));
    }
    if (name == "min" || name == "max" || name == "pow") {
      if (args.size() != 2 || !args[0].IsNumber() || !args[1].IsNumber()) {
        return argc_error();
      }
      if (name == "min") return ScriptValue::Number(std::min(num(0), num(1)));
      if (name == "max") return ScriptValue::Number(std::max(num(0), num(1)));
      return ScriptValue::Number(std::pow(num(0), num(1)));
    }
    if (name == "push") {
      if (args.size() != 2 || !args[0].IsArray()) return argc_error();
      args[0].AsArray().push_back(args[1]);
      EASIA_RETURN_IF_ERROR(ChargeMemory(args[1], line));
      return args[0];
    }
    if (name == "pop") {
      if (args.size() != 1 || !args[0].IsArray()) return argc_error();
      auto& arr = args[0].AsArray();
      if (arr.empty()) {
        return Status::OutOfRange(
            StrPrintf("eascript:%zu: pop() from empty array", line));
      }
      ScriptValue v = arr.back();
      arr.pop_back();
      return v;
    }
    if (name == "array") {
      if (args.size() != 2 || !args[0].IsNumber()) return argc_error();
      int64_t n = static_cast<int64_t>(num(0));
      if (n < 0 || static_cast<uint64_t>(n) * 16 > limits_.max_memory_bytes) {
        return Status::ResourceExhausted(
            StrPrintf("eascript:%zu: array(%lld) exceeds memory quota", line,
                      static_cast<long long>(n)));
      }
      ScriptValue arr = ScriptValue::ArrayOf(
          std::vector<ScriptValue>(static_cast<size_t>(n), args[1]));
      EASIA_RETURN_IF_ERROR(ChargeMemory(arr, line));
      return arr;
    }
    if (name == "substr") {
      if (args.size() != 3 || !args[0].IsString() || !args[1].IsNumber() ||
          !args[2].IsNumber()) {
        return argc_error();
      }
      const std::string& s = args[0].AsString();
      int64_t from = static_cast<int64_t>(num(1));
      int64_t count = static_cast<int64_t>(num(2));
      if (from < 0) from = 0;
      if (static_cast<size_t>(from) >= s.size() || count <= 0) {
        return ScriptValue::Str("");
      }
      return ScriptValue::Str(
          s.substr(static_cast<size_t>(from),
                   static_cast<size_t>(count)));
    }
    if (name == "print") {
      std::string text;
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) text += " ";
        text += args[i].ToDisplay();
      }
      text += "\n";
      if (output_.size() + text.size() > limits_.max_output_bytes) {
        return Status::ResourceExhausted(
            StrPrintf("eascript:%zu: output quota exceeded", line));
      }
      output_ += text;
      return ScriptValue::Null();
    }
    if (name == "arg") {
      if (args.size() != 1 || !args[0].IsNumber()) return argc_error();
      int64_t i = static_cast<int64_t>(num(0));
      if (i < 0 || static_cast<size_t>(i) >= args_.size()) {
        return Status::OutOfRange(
            StrPrintf("eascript:%zu: arg(%lld) out of range", line,
                      static_cast<long long>(i)));
      }
      return ScriptValue::Str(args_[static_cast<size_t>(i)]);
    }
    if (name == "argc") {
      if (!args.empty()) return argc_error();
      return ScriptValue::Number(static_cast<double>(args_.size()));
    }
    return Status::NotFound("not a builtin");
  }

  const SandboxLimits& limits_;
  const std::map<std::string, HostFunction>& host_functions_;
  const std::vector<std::string>& args_;
  std::vector<Scope> scopes_;
  std::map<std::string, UserFunction> functions_;
  ScriptValue return_value_;
  std::string output_;
  uint64_t steps_ = 0;
  uint64_t memory_used_ = 0;
  size_t call_depth_ = 0;
};

}  // namespace

Interpreter::Interpreter(SandboxLimits limits) : limits_(limits) {}

void Interpreter::RegisterFunction(const std::string& name, HostFunction fn) {
  host_functions_[name] = std::move(fn);
}

Result<ExecutionResult> Interpreter::Run(std::string_view source,
                                         const std::vector<std::string>& args) {
  EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Program> program,
                         ParseScript(source));
  Execution exec(limits_, host_functions_, args);
  return exec.Run(*program);
}

}  // namespace easia::script
