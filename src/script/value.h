#ifndef EASIA_SCRIPT_VALUE_H_
#define EASIA_SCRIPT_VALUE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace easia::script {

/// A runtime value in EaScript: null, boolean, number (double), string, or
/// array (reference semantics, like Java arrays the paper's uploaded codes
/// would use).
class ScriptValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray };

  ScriptValue() : type_(Type::kNull) {}

  static ScriptValue Null() { return ScriptValue(); }
  static ScriptValue Bool(bool b);
  static ScriptValue Number(double d);
  static ScriptValue Str(std::string s);
  static ScriptValue Array();
  static ScriptValue ArrayOf(std::vector<ScriptValue> items);

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return *string_; }
  std::vector<ScriptValue>& AsArray() { return *array_; }
  const std::vector<ScriptValue>& AsArray() const { return *array_; }

  bool Truthy() const;
  /// Loose equality used by == (same type and value; arrays by identity).
  bool Equals(const ScriptValue& other) const;

  std::string ToDisplay() const;

  /// Approximate heap bytes held (sandbox memory accounting).
  size_t MemoryFootprint() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::shared_ptr<std::string> string_;
  std::shared_ptr<std::vector<ScriptValue>> array_;
};

}  // namespace easia::script

#endif  // EASIA_SCRIPT_VALUE_H_
