#ifndef EASIA_SCRIPT_PARSER_H_
#define EASIA_SCRIPT_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "script/ast.h"

namespace easia::script {

/// Parses EaScript source into an AST. Syntax (C/JavaScript-flavoured):
///
///   let s = tbf_slice(arg(0), "x", 3, "u");
///   if (len(s) > 0) { write("slice.pgm", pgm(s)); }
///   for (let i = 0; i < 10; i = i + 1) { print(str(i)); }
///   func mean(a) { let t = 0; ... return t / len(a); }
///
/// Comments: `# ...` and `// ...` to end of line.
Result<std::unique_ptr<Program>> ParseScript(std::string_view source);

}  // namespace easia::script

#endif  // EASIA_SCRIPT_PARSER_H_
