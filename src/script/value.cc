#include "script/value.h"

#include <cmath>

#include "common/string_util.h"

namespace easia::script {

ScriptValue ScriptValue::Bool(bool b) {
  ScriptValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

ScriptValue ScriptValue::Number(double d) {
  ScriptValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

ScriptValue ScriptValue::Str(std::string s) {
  ScriptValue v;
  v.type_ = Type::kString;
  v.string_ = std::make_shared<std::string>(std::move(s));
  return v;
}

ScriptValue ScriptValue::Array() {
  ScriptValue v;
  v.type_ = Type::kArray;
  v.array_ = std::make_shared<std::vector<ScriptValue>>();
  return v;
}

ScriptValue ScriptValue::ArrayOf(std::vector<ScriptValue> items) {
  ScriptValue v;
  v.type_ = Type::kArray;
  v.array_ = std::make_shared<std::vector<ScriptValue>>(std::move(items));
  return v;
}

bool ScriptValue::Truthy() const {
  switch (type_) {
    case Type::kNull:
      return false;
    case Type::kBool:
      return bool_;
    case Type::kNumber:
      return number_ != 0;
    case Type::kString:
      return !string_->empty();
    case Type::kArray:
      return !array_->empty();
  }
  return false;
}

bool ScriptValue::Equals(const ScriptValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return *string_ == *other.string_;
    case Type::kArray:
      return array_ == other.array_;
  }
  return false;
}

std::string ScriptValue::ToDisplay() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber: {
      if (number_ == static_cast<int64_t>(number_) &&
          std::abs(number_) < 1e15) {
        return StrPrintf("%lld", static_cast<long long>(number_));
      }
      return StrPrintf("%.10g", number_);
    }
    case Type::kString:
      return *string_;
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_->size(); ++i) {
        if (i > 0) out += ", ";
        out += (*array_)[i].ToDisplay();
      }
      return out + "]";
    }
  }
  return "";
}

size_t ScriptValue::MemoryFootprint() const {
  switch (type_) {
    case Type::kString:
      return string_->size() + 32;
    case Type::kArray: {
      size_t total = 32;
      for (const ScriptValue& v : *array_) total += v.MemoryFootprint();
      return total;
    }
    default:
      return 16;
  }
}

}  // namespace easia::script
