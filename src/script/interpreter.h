#ifndef EASIA_SCRIPT_INTERPRETER_H_
#define EASIA_SCRIPT_INTERPRETER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "script/value.h"

namespace easia::script {

/// A host function exposed to scripts (file I/O, dataset access, ...). The
/// ops layer registers these with sandbox policy baked in — scripts have NO
/// other way to touch the outside world.
using HostFunction =
    std::function<Result<ScriptValue>(std::vector<ScriptValue>& args)>;

/// Resource quotas enforced during execution (the paper's 'sandboxing'
/// restrictions for uploaded code, recast from the Java security manager).
struct SandboxLimits {
  uint64_t max_steps = 50'000'000;      // evaluation steps
  uint64_t max_memory_bytes = 64 << 20; // live value bytes (approximate)
  size_t max_call_depth = 128;
  size_t max_output_bytes = 1 << 20;    // print() capture cap
};

struct ExecutionResult {
  ScriptValue return_value;
  std::string output;       // everything print()ed
  uint64_t steps_used = 0;
};

/// Tree-walking EaScript interpreter with deterministic, quota-enforced
/// execution. Each Run() is hermetic: fresh globals, fresh output buffer.
class Interpreter {
 public:
  explicit Interpreter(SandboxLimits limits = {});

  /// Exposes a host function. Re-registering replaces.
  void RegisterFunction(const std::string& name, HostFunction fn);

  /// Parses and runs a script. `args` bind to arg(i) — args[0] is the
  /// dataset filename, per the paper's operation calling convention.
  Result<ExecutionResult> Run(std::string_view source,
                              const std::vector<std::string>& args);

  const SandboxLimits& limits() const { return limits_; }

 private:
  SandboxLimits limits_;
  std::map<std::string, HostFunction> host_functions_;
};

}  // namespace easia::script

#endif  // EASIA_SCRIPT_INTERPRETER_H_
