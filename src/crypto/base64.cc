#include "crypto/base64.h"

#include <array>

namespace easia::crypto {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

std::array<int8_t, 256> BuildDecodeTable() {
  std::array<int8_t, 256> table{};
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<int8_t>(i);
  }
  return table;
}

}  // namespace

std::string Base64UrlEncode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t v = (static_cast<uint8_t>(data[i]) << 16) |
                 (static_cast<uint8_t>(data[i + 1]) << 8) |
                 static_cast<uint8_t>(data[i + 2]);
    out += kAlphabet[(v >> 18) & 0x3F];
    out += kAlphabet[(v >> 12) & 0x3F];
    out += kAlphabet[(v >> 6) & 0x3F];
    out += kAlphabet[v & 0x3F];
    i += 3;
  }
  size_t rem = data.size() - i;
  if (rem == 1) {
    uint32_t v = static_cast<uint8_t>(data[i]) << 16;
    out += kAlphabet[(v >> 18) & 0x3F];
    out += kAlphabet[(v >> 12) & 0x3F];
  } else if (rem == 2) {
    uint32_t v = (static_cast<uint8_t>(data[i]) << 16) |
                 (static_cast<uint8_t>(data[i + 1]) << 8);
    out += kAlphabet[(v >> 18) & 0x3F];
    out += kAlphabet[(v >> 12) & 0x3F];
    out += kAlphabet[(v >> 6) & 0x3F];
  }
  return out;
}

Result<std::string> Base64UrlDecode(std::string_view encoded) {
  static const std::array<int8_t, 256> kDecode = BuildDecodeTable();
  size_t rem = encoded.size() % 4;
  if (rem == 1) {
    return Status::ParseError("base64url: invalid length");
  }
  std::string out;
  out.reserve(encoded.size() / 4 * 3 + 2);
  uint32_t acc = 0;
  int bits = 0;
  for (char c : encoded) {
    int8_t v = kDecode[static_cast<unsigned char>(c)];
    if (v < 0) {
      return Status::ParseError("base64url: invalid character");
    }
    acc = (acc << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out += static_cast<char>((acc >> bits) & 0xFF);
    }
  }
  // Reject non-canonical encodings: leftover bits must be zero, otherwise
  // distinct encoded strings would decode to identical bytes (which would
  // let access tokens be altered without invalidating them).
  if (bits > 0 && (acc & ((1u << bits) - 1)) != 0) {
    return Status::ParseError("base64url: non-zero padding bits");
  }
  return out;
}

}  // namespace easia::crypto
