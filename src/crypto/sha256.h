#ifndef EASIA_CRYPTO_SHA256_H_
#define EASIA_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace easia::crypto {

/// Incremental SHA-256 (FIPS 180-4). Used as the PRF behind DATALINK
/// access tokens; implemented from scratch so the library has no external
/// dependencies.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  void Update(const void* data, size_t len);
  void Update(std::string_view data) { Update(data.data(), data.size()); }

  /// Finalises and returns the digest. The object must not be reused
  /// afterwards without calling Reset().
  Digest Finish();

  void Reset();

  /// One-shot convenience.
  static Digest Hash(std::string_view data);

  /// Lower-case hex of a one-shot hash.
  static std::string HexHash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// Lower-case hex encoding of arbitrary bytes.
std::string ToHex(const uint8_t* data, size_t len);

}  // namespace easia::crypto

#endif  // EASIA_CRYPTO_SHA256_H_
