#ifndef EASIA_CRYPTO_HMAC_H_
#define EASIA_CRYPTO_HMAC_H_

#include <string>
#include <string_view>

#include "crypto/sha256.h"

namespace easia::crypto {

/// HMAC-SHA256 (RFC 2104). Returns the 32-byte MAC as raw bytes in a string.
std::string HmacSha256(std::string_view key, std::string_view message);

/// Constant-time comparison, to avoid timing side channels when validating
/// DATALINK access tokens.
bool ConstantTimeEquals(std::string_view a, std::string_view b);

}  // namespace easia::crypto

#endif  // EASIA_CRYPTO_HMAC_H_
