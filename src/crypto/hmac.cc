#include "crypto/hmac.h"

#include <cstring>

namespace easia::crypto {

std::string HmacSha256(std::string_view key, std::string_view message) {
  constexpr size_t kBlockSize = 64;
  uint8_t key_block[kBlockSize] = {0};
  if (key.size() > kBlockSize) {
    Sha256::Digest d = Sha256::Hash(key);
    std::memcpy(key_block, d.data(), d.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }
  uint8_t ipad[kBlockSize], opad[kBlockSize];
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(ipad, kBlockSize);
  inner.Update(message.data(), message.size());
  Sha256::Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, kBlockSize);
  outer.Update(inner_digest.data(), inner_digest.size());
  Sha256::Digest mac = outer.Finish();
  return std::string(reinterpret_cast<const char*>(mac.data()), mac.size());
}

bool ConstantTimeEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  unsigned char diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<unsigned char>(a[i]) ^ static_cast<unsigned char>(b[i]);
  }
  return diff == 0;
}

}  // namespace easia::crypto
