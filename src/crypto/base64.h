#ifndef EASIA_CRYPTO_BASE64_H_
#define EASIA_CRYPTO_BASE64_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace easia::crypto {

/// URL-safe base64 (RFC 4648 §5) without padding. Access tokens are embedded
/// in URLs and file names, so '+' and '/' are avoided.
std::string Base64UrlEncode(std::string_view data);

/// Decodes URL-safe base64; rejects invalid characters and bad lengths.
Result<std::string> Base64UrlDecode(std::string_view encoded);

}  // namespace easia::crypto

#endif  // EASIA_CRYPTO_BASE64_H_
