#include "fileserver/url.h"

#include "common/string_util.h"

namespace easia::fs {

std::string FileUrl::Directory() const {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "/";
  return path.substr(0, slash + 1);
}

std::string FileUrl::ToString() const {
  std::string out = "http://" + host + Directory();
  if (!token.empty()) {
    out += token;
    out += ';';
  }
  out += filename;
  return out;
}

Result<FileUrl> ParseFileUrl(std::string_view url) {
  constexpr std::string_view kScheme = "http://";
  if (!StartsWith(url, kScheme)) {
    return Status::InvalidArgument("file URL must use http://: " +
                                   std::string(url));
  }
  std::string_view rest = url.substr(kScheme.size());
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos || slash == 0) {
    return Status::InvalidArgument("file URL missing path: " +
                                   std::string(url));
  }
  FileUrl out;
  out.host = std::string(rest.substr(0, slash));
  std::string_view path = rest.substr(slash);
  size_t last_slash = path.rfind('/');
  std::string_view name = path.substr(last_slash + 1);
  if (name.empty()) {
    return Status::InvalidArgument("file URL missing file name: " +
                                   std::string(url));
  }
  // Split "token;filename".
  size_t semi = name.find(';');
  if (semi != std::string_view::npos) {
    out.token = std::string(name.substr(0, semi));
    out.filename = std::string(name.substr(semi + 1));
    out.path = std::string(path.substr(0, last_slash + 1)) + out.filename;
  } else {
    out.filename = std::string(name);
    out.path = std::string(path);
  }
  if (out.filename.empty()) {
    return Status::InvalidArgument("file URL has empty file name: " +
                                   std::string(url));
  }
  return out;
}

Result<std::string> WithToken(std::string_view url, std::string_view token) {
  EASIA_ASSIGN_OR_RETURN(FileUrl parsed, ParseFileUrl(url));
  parsed.token = std::string(token);
  return parsed.ToString();
}

}  // namespace easia::fs
