#ifndef EASIA_FILESERVER_URL_H_
#define EASIA_FILESERVER_URL_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace easia::fs {

/// A decomposed EASIA file URL. Stored DATALINK values use
///   http://host/filesystem/directory/filename
/// and SELECT rewrites them to
///   http://host/filesystem/directory/access_token;filename
struct FileUrl {
  std::string host;
  std::string path;      // "/filesystem/directory/filename" (no token)
  std::string token;     // empty when not tokenised
  std::string filename;  // last path component (without token)

  /// Directory part of `path` (up to and including the final '/').
  std::string Directory() const;

  /// Reassembles the URL; includes "token;" before the file name when a
  /// token is present.
  std::string ToString() const;
};

/// Parses an EASIA file URL (http:// scheme only).
Result<FileUrl> ParseFileUrl(std::string_view url);

/// Inserts an access token into a plain file URL.
Result<std::string> WithToken(std::string_view url, std::string_view token);

}  // namespace easia::fs

#endif  // EASIA_FILESERVER_URL_H_
