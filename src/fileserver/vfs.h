#ifndef EASIA_FILESERVER_VFS_H_
#define EASIA_FILESERVER_VFS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace easia::fs {

/// Metadata for one virtual file.
struct FileStat {
  std::string path;
  uint64_t size = 0;
  bool sparse = false;  // size-only file (simulated multi-GB dataset)
  bool pinned = false;  // under DATALINK FILE LINK CONTROL
  double mtime = 0;
  std::string owner;
};

/// The file-system interface of one simulated host. `VirtualFileSystem` is
/// the in-memory production implementation; the fault-injection harness
/// wraps any Vfs in a decorator that injects transient I/O errors and
/// crash-lost writes, which is why every file-server and DataLinker
/// operation goes through this seam.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Creates or overwrites a regular file. Fails if pinned.
  virtual Status WriteFile(const std::string& path, std::string contents,
                           const std::string& owner = "") = 0;

  /// Declares a sparse file of `size` bytes.
  virtual Status CreateSparseFile(const std::string& path, uint64_t size,
                                  const std::string& owner = "") = 0;

  virtual Result<std::string> ReadFile(const std::string& path) const = 0;
  virtual Result<FileStat> Stat(const std::string& path) const = 0;
  virtual bool Exists(const std::string& path) const = 0;

  /// Fails with kFailedPrecondition when the file is pinned.
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// SQL/MED control operations (invoked only by the DataLinker agent).
  virtual Status Pin(const std::string& path) = 0;
  virtual Status Unpin(const std::string& path) = 0;
  virtual bool IsPinned(const std::string& path) const = 0;

  /// All paths with the given prefix, sorted.
  virtual std::vector<std::string> List(
      const std::string& prefix = "/") const = 0;

  /// Sum of file sizes (sparse files count their declared size).
  virtual uint64_t TotalBytes() const = 0;
  virtual size_t FileCount() const = 0;
};

/// An in-memory file system for one simulated host. Two storage modes:
///
///  * regular files hold real bytes (metadata, codes, small outputs);
///  * *sparse* files carry only a declared size plus a content seed — they
///    stand in for the paper's multi-hundred-megabyte simulation results,
///    whose bytes never need to exist to drive the bandwidth and
///    post-processing models.
///
/// Pinning implements the SQL/MED referential-integrity guarantee: a pinned
/// (linked) file cannot be deleted, renamed or overwritten through the
/// normal file-system interface.
class VirtualFileSystem final : public Vfs {
 public:
  VirtualFileSystem() = default;

  Status WriteFile(const std::string& path, std::string contents,
                   const std::string& owner = "") override;
  Status CreateSparseFile(const std::string& path, uint64_t size,
                          const std::string& owner = "") override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Result<FileStat> Stat(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status Pin(const std::string& path) override;
  Status Unpin(const std::string& path) override;
  bool IsPinned(const std::string& path) const override;
  std::vector<std::string> List(
      const std::string& prefix = "/") const override;
  uint64_t TotalBytes() const override;
  size_t FileCount() const override { return files_.size(); }

  void set_clock(std::function<double()> now) { now_ = std::move(now); }

 private:
  struct VFile {
    std::string contents;
    uint64_t size = 0;
    bool sparse = false;
    bool pinned = false;
    double mtime = 0;
    std::string owner;
  };

  static Status ValidatePath(const std::string& path);
  double Now() const { return now_ ? now_() : 0.0; }

  std::map<std::string, VFile> files_;
  std::function<double()> now_;
};

}  // namespace easia::fs

#endif  // EASIA_FILESERVER_VFS_H_
