#ifndef EASIA_FILESERVER_VFS_H_
#define EASIA_FILESERVER_VFS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace easia::fs {

/// Metadata for one virtual file.
struct FileStat {
  std::string path;
  uint64_t size = 0;
  bool sparse = false;  // size-only file (simulated multi-GB dataset)
  bool pinned = false;  // under DATALINK FILE LINK CONTROL
  double mtime = 0;
  std::string owner;
};

/// An in-memory file system for one simulated host. Two storage modes:
///
///  * regular files hold real bytes (metadata, codes, small outputs);
///  * *sparse* files carry only a declared size plus a content seed — they
///    stand in for the paper's multi-hundred-megabyte simulation results,
///    whose bytes never need to exist to drive the bandwidth and
///    post-processing models.
///
/// Pinning implements the SQL/MED referential-integrity guarantee: a pinned
/// (linked) file cannot be deleted, renamed or overwritten through the
/// normal file-system interface.
class VirtualFileSystem {
 public:
  VirtualFileSystem() = default;

  /// Creates or overwrites a regular file. Fails if pinned.
  Status WriteFile(const std::string& path, std::string contents,
                   const std::string& owner = "");

  /// Declares a sparse file of `size` bytes.
  Status CreateSparseFile(const std::string& path, uint64_t size,
                          const std::string& owner = "");

  Result<std::string> ReadFile(const std::string& path) const;
  Result<FileStat> Stat(const std::string& path) const;
  bool Exists(const std::string& path) const;

  /// Fails with kFailedPrecondition when the file is pinned.
  Status DeleteFile(const std::string& path);
  Status RenameFile(const std::string& from, const std::string& to);

  /// SQL/MED control operations (invoked only by the DataLinker agent).
  Status Pin(const std::string& path);
  Status Unpin(const std::string& path);
  bool IsPinned(const std::string& path) const;

  /// All paths with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix = "/") const;

  /// Sum of file sizes (sparse files count their declared size).
  uint64_t TotalBytes() const;
  size_t FileCount() const { return files_.size(); }

  void set_clock(std::function<double()> now) { now_ = std::move(now); }

 private:
  struct VFile {
    std::string contents;
    uint64_t size = 0;
    bool sparse = false;
    bool pinned = false;
    double mtime = 0;
    std::string owner;
  };

  static Status ValidatePath(const std::string& path);
  double Now() const { return now_ ? now_() : 0.0; }

  std::map<std::string, VFile> files_;
  std::function<double()> now_;
};

}  // namespace easia::fs

#endif  // EASIA_FILESERVER_VFS_H_
