#include "fileserver/vfs.h"

#include "common/string_util.h"

namespace easia::fs {

Status VirtualFileSystem::ValidatePath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("vfs: path must be absolute: " + path);
  }
  if (path.back() == '/') {
    return Status::InvalidArgument("vfs: path names a directory: " + path);
  }
  if (path.find("..") != std::string::npos) {
    return Status::PermissionDenied("vfs: path traversal rejected: " + path);
  }
  if (path.find(';') != std::string::npos) {
    return Status::InvalidArgument("vfs: ';' not allowed in paths: " + path);
  }
  return Status::OK();
}

Status VirtualFileSystem::WriteFile(const std::string& path,
                                    std::string contents,
                                    const std::string& owner) {
  EASIA_RETURN_IF_ERROR(ValidatePath(path));
  auto it = files_.find(path);
  if (it != files_.end() && it->second.pinned) {
    return Status::FailedPrecondition("vfs: file is linked (pinned): " + path);
  }
  VFile f;
  f.size = contents.size();
  f.contents = std::move(contents);
  f.mtime = Now();
  f.owner = owner;
  files_[path] = std::move(f);
  return Status::OK();
}

Status VirtualFileSystem::CreateSparseFile(const std::string& path,
                                           uint64_t size,
                                           const std::string& owner) {
  EASIA_RETURN_IF_ERROR(ValidatePath(path));
  auto it = files_.find(path);
  if (it != files_.end() && it->second.pinned) {
    return Status::FailedPrecondition("vfs: file is linked (pinned): " + path);
  }
  VFile f;
  f.sparse = true;
  f.size = size;
  f.mtime = Now();
  f.owner = owner;
  files_[path] = std::move(f);
  return Status::OK();
}

Result<std::string> VirtualFileSystem::ReadFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("vfs: no such file: " + path);
  }
  if (it->second.sparse) {
    return Status::FailedPrecondition(
        "vfs: sparse file has no materialised bytes: " + path);
  }
  return it->second.contents;
}

Result<FileStat> VirtualFileSystem::Stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("vfs: no such file: " + path);
  }
  FileStat s;
  s.path = path;
  s.size = it->second.size;
  s.sparse = it->second.sparse;
  s.pinned = it->second.pinned;
  s.mtime = it->second.mtime;
  s.owner = it->second.owner;
  return s;
}

bool VirtualFileSystem::Exists(const std::string& path) const {
  return files_.find(path) != files_.end();
}

Status VirtualFileSystem::DeleteFile(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("vfs: no such file: " + path);
  }
  if (it->second.pinned) {
    return Status::FailedPrecondition("vfs: file is linked (pinned): " + path);
  }
  files_.erase(it);
  return Status::OK();
}

Status VirtualFileSystem::RenameFile(const std::string& from,
                                     const std::string& to) {
  EASIA_RETURN_IF_ERROR(ValidatePath(to));
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::NotFound("vfs: no such file: " + from);
  }
  if (it->second.pinned) {
    return Status::FailedPrecondition("vfs: file is linked (pinned): " + from);
  }
  if (files_.count(to) != 0) {
    return Status::AlreadyExists("vfs: target exists: " + to);
  }
  VFile f = std::move(it->second);
  files_.erase(it);
  f.mtime = Now();
  files_[to] = std::move(f);
  return Status::OK();
}

Status VirtualFileSystem::Pin(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("vfs: no such file: " + path);
  }
  it->second.pinned = true;
  return Status::OK();
}

Status VirtualFileSystem::Unpin(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("vfs: no such file: " + path);
  }
  it->second.pinned = false;
  return Status::OK();
}

bool VirtualFileSystem::IsPinned(const std::string& path) const {
  auto it = files_.find(path);
  return it != files_.end() && it->second.pinned;
}

std::vector<std::string> VirtualFileSystem::List(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, file] : files_) {
    if (StartsWith(path, prefix)) out.push_back(path);
  }
  return out;
}

uint64_t VirtualFileSystem::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [path, file] : files_) total += file.size;
  return total;
}

}  // namespace easia::fs
