#ifndef EASIA_FILESERVER_FILE_SERVER_H_
#define EASIA_FILESERVER_FILE_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fileserver/url.h"
#include "fileserver/vfs.h"

namespace easia::obs {
class Tracer;
}  // namespace easia::obs

namespace easia::fs {

/// Retry tuning for transient storage errors (kUnavailable — injected disk
/// EIOs, and eventually real network hiccups). Other codes fail fast.
struct RetryPolicy {
  /// Total tries per operation, first attempt included.
  int max_attempts = 4;
  /// Advisory backoff before retry k (1-based): base * 2^(k-1) seconds.
  /// The simulated archive never sleeps; the delay is reported to
  /// `on_backoff` so callers can advance a simulated clock or log it.
  double backoff_base_seconds = 0.01;
  std::function<void(int attempt, double delay_seconds)> on_backoff;
};

/// Cumulative retry counters for one server (surfaced on /stats).
struct RetryStats {
  uint64_t retries = 0;   // individual re-attempts after a transient error
  uint64_t give_ups = 0;  // operations that stayed transient past the budget
};

/// Result of a file-server GET.
struct GetResult {
  FileStat stat;
  /// Bytes for regular files; empty for sparse files (callers use
  /// `stat.size` to drive the bandwidth simulator).
  std::string content;
};

/// Access check applied to every GET: `(path, token)` -> OK / error. The
/// SQL/MED DataLinker installs a gate that requires a valid access token
/// for files linked under READ PERMISSION DB. A null gate admits everything.
using ReadGate =
    std::function<Status(const std::string& path, const std::string& token)>;

/// Parameters of a CGI/servlet-style request.
using HttpParams = std::map<std::string, std::string>;

/// A dynamic endpoint (the paper's "URL operations", e.g. NCSA's Scientific
/// Data Browser) running on the same host as the data.
using EndpointHandler =
    std::function<Result<std::string>(const HttpParams& params)>;

/// One file-server host: a virtual file system plus the web-facing surface
/// EASIA uses — token-checked downloads, uploads, servlet endpoints and
/// per-session temporary directories for operation execution.
class FileServer {
 public:
  explicit FileServer(std::string host);

  const std::string& host() const { return host_; }
  VirtualFileSystem& vfs() { return vfs_; }
  const VirtualFileSystem& vfs() const { return vfs_; }

  /// The Vfs all server operations (Get/Put/CleanTempDir and the
  /// DataLinker) go through — the in-memory store by default. Install a
  /// decorator (e.g. testing::FaultInjectingVfs wrapping `&vfs()`) to
  /// interpose faults; pass null to restore the backing store.
  void InterposeVfs(Vfs* vfs) { active_vfs_ = vfs != nullptr ? vfs : &vfs_; }
  Vfs& storage() { return *active_vfs_; }
  const Vfs& storage() const { return *active_vfs_; }

  void set_retry_policy(RetryPolicy policy) {
    retry_policy_ = std::move(policy);
  }
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  /// Snapshot of the retry counters (atomics; Get runs concurrently).
  RetryStats retry_stats() const;

  void SetReadGate(ReadGate gate) { read_gate_ = std::move(gate); }

  /// Wires in the request tracer (may be null — the default). Get/Stat
  /// operations open "fs:*" spans that nest under the current request span.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// GET "/filesystem/dir/[token;]file". Applies the read gate.
  Result<GetResult> Get(const std::string& request_path) const;

  /// Like Get but takes a full URL and verifies the host matches.
  Result<GetResult> GetUrl(const std::string& url) const;

  /// Stat through the active storage under the retry policy (no read gate:
  /// metadata only). The web renderer sizes DATALINK cells with this.
  Result<FileStat> StatFile(const std::string& path) const;

  /// PUT a regular file (used to archive results/codes where generated).
  Status Put(const std::string& path, std::string contents,
             const std::string& owner = "");

  /// Registers / invokes a dynamic endpoint ("/servlet/SDBservlet").
  void RegisterEndpoint(const std::string& path, EndpointHandler handler);
  bool HasEndpoint(const std::string& path) const;
  Result<std::string> InvokeEndpoint(const std::string& path,
                                     const HttpParams& params) const;
  std::vector<std::string> EndpointPaths() const;

  /// Creates a unique temporary directory for an operation invocation
  /// (the paper's batch-file mechanism allocates one per servlet session).
  std::string MakeTempDir(const std::string& session_id);

  /// Removes every file under a temp dir; returns the number removed.
  size_t CleanTempDir(const std::string& dir);

 private:
  /// Runs `op` under the retry policy: transient (kUnavailable) failures
  /// are re-attempted up to the budget, with counters updated.
  template <typename Op>
  auto WithRetry(Op&& op) const -> decltype(op());

  std::string host_;
  VirtualFileSystem vfs_;
  /// Never null; defaults to `&vfs_` (see InterposeVfs).
  Vfs* active_vfs_ = &vfs_;
  RetryPolicy retry_policy_;
  /// Mutable: Get is logically const but still counts its retries.
  mutable std::atomic<uint64_t> retries_{0};
  mutable std::atomic<uint64_t> give_ups_{0};
  ReadGate read_gate_;
  obs::Tracer* tracer_ = nullptr;
  std::map<std::string, EndpointHandler> endpoints_;
  uint64_t temp_counter_ = 0;
};

/// The set of file-server hosts participating in one archive. The database
/// host resolves DATALINK URLs through this registry.
class FileServerFleet {
 public:
  /// Creates (or returns the existing) server for `host`.
  FileServer* AddServer(const std::string& host);
  Result<FileServer*> GetServer(const std::string& host) const;
  bool HasServer(const std::string& host) const;
  std::vector<std::string> Hosts() const;

  /// Convenience: resolve a URL to (server, parsed url).
  Result<std::pair<FileServer*, FileUrl>> Resolve(const std::string& url) const;

 private:
  std::map<std::string, std::unique_ptr<FileServer>> servers_;
};

}  // namespace easia::fs

#endif  // EASIA_FILESERVER_FILE_SERVER_H_
