#ifndef EASIA_FILESERVER_FILE_SERVER_H_
#define EASIA_FILESERVER_FILE_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fileserver/url.h"
#include "fileserver/vfs.h"

namespace easia::fs {

/// Result of a file-server GET.
struct GetResult {
  FileStat stat;
  /// Bytes for regular files; empty for sparse files (callers use
  /// `stat.size` to drive the bandwidth simulator).
  std::string content;
};

/// Access check applied to every GET: `(path, token)` -> OK / error. The
/// SQL/MED DataLinker installs a gate that requires a valid access token
/// for files linked under READ PERMISSION DB. A null gate admits everything.
using ReadGate =
    std::function<Status(const std::string& path, const std::string& token)>;

/// Parameters of a CGI/servlet-style request.
using HttpParams = std::map<std::string, std::string>;

/// A dynamic endpoint (the paper's "URL operations", e.g. NCSA's Scientific
/// Data Browser) running on the same host as the data.
using EndpointHandler =
    std::function<Result<std::string>(const HttpParams& params)>;

/// One file-server host: a virtual file system plus the web-facing surface
/// EASIA uses — token-checked downloads, uploads, servlet endpoints and
/// per-session temporary directories for operation execution.
class FileServer {
 public:
  explicit FileServer(std::string host);

  const std::string& host() const { return host_; }
  VirtualFileSystem& vfs() { return vfs_; }
  const VirtualFileSystem& vfs() const { return vfs_; }

  void SetReadGate(ReadGate gate) { read_gate_ = std::move(gate); }

  /// GET "/filesystem/dir/[token;]file". Applies the read gate.
  Result<GetResult> Get(const std::string& request_path) const;

  /// Like Get but takes a full URL and verifies the host matches.
  Result<GetResult> GetUrl(const std::string& url) const;

  /// PUT a regular file (used to archive results/codes where generated).
  Status Put(const std::string& path, std::string contents,
             const std::string& owner = "");

  /// Registers / invokes a dynamic endpoint ("/servlet/SDBservlet").
  void RegisterEndpoint(const std::string& path, EndpointHandler handler);
  bool HasEndpoint(const std::string& path) const;
  Result<std::string> InvokeEndpoint(const std::string& path,
                                     const HttpParams& params) const;
  std::vector<std::string> EndpointPaths() const;

  /// Creates a unique temporary directory for an operation invocation
  /// (the paper's batch-file mechanism allocates one per servlet session).
  std::string MakeTempDir(const std::string& session_id);

  /// Removes every file under a temp dir; returns the number removed.
  size_t CleanTempDir(const std::string& dir);

 private:
  std::string host_;
  VirtualFileSystem vfs_;
  ReadGate read_gate_;
  std::map<std::string, EndpointHandler> endpoints_;
  uint64_t temp_counter_ = 0;
};

/// The set of file-server hosts participating in one archive. The database
/// host resolves DATALINK URLs through this registry.
class FileServerFleet {
 public:
  /// Creates (or returns the existing) server for `host`.
  FileServer* AddServer(const std::string& host);
  Result<FileServer*> GetServer(const std::string& host) const;
  bool HasServer(const std::string& host) const;
  std::vector<std::string> Hosts() const;

  /// Convenience: resolve a URL to (server, parsed url).
  Result<std::pair<FileServer*, FileUrl>> Resolve(const std::string& url) const;

 private:
  std::map<std::string, std::unique_ptr<FileServer>> servers_;
};

}  // namespace easia::fs

#endif  // EASIA_FILESERVER_FILE_SERVER_H_
