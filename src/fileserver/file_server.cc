#include "fileserver/file_server.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/trace.h"

namespace easia::fs {

namespace {

/// Uniform status access for Status- and Result<T>-returning operations.
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
inline const Status& StatusOf(const Result<T>& r) {
  return r.status();
}

}  // namespace

FileServer::FileServer(std::string host) : host_(std::move(host)) {}

RetryStats FileServer::retry_stats() const {
  RetryStats out;
  out.retries = retries_.load(std::memory_order_relaxed);
  out.give_ups = give_ups_.load(std::memory_order_relaxed);
  return out;
}

template <typename Op>
auto FileServer::WithRetry(Op&& op) const -> decltype(op()) {
  int attempts = std::max(1, retry_policy_.max_attempts);
  double delay = retry_policy_.backoff_base_seconds;
  for (int attempt = 1;; ++attempt) {
    auto result = op();
    if (result.ok() ||
        StatusOf(result).code() != StatusCode::kUnavailable) {
      return result;
    }
    if (attempt >= attempts) {
      give_ups_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (retry_policy_.on_backoff) retry_policy_.on_backoff(attempt, delay);
    delay *= 2;
  }
}

Result<GetResult> FileServer::Get(const std::string& request_path) const {
  obs::Tracer::Scope span(tracer_, "fs:get");
  span.set_note(host_);
  // Split optional "token;" prefix on the final path component.
  std::string path = request_path;
  std::string token;
  size_t last_slash = path.rfind('/');
  size_t semi = path.find(';', last_slash == std::string::npos ? 0
                                                               : last_slash);
  if (semi != std::string::npos) {
    size_t name_start = last_slash == std::string::npos ? 0 : last_slash + 1;
    token = path.substr(name_start, semi - name_start);
    path = path.substr(0, name_start) + path.substr(semi + 1);
  }
  if (read_gate_ != nullptr) {
    Status admitted = read_gate_(path, token);
    if (!admitted.ok()) {
      span.set_error();
      return admitted;
    }
  }
  auto stat = WithRetry([&] { return active_vfs_->Stat(path); });
  if (!stat.ok()) {
    span.set_error();
    return stat.status();
  }
  GetResult out;
  out.stat = *stat;
  if (!out.stat.sparse) {
    auto content = WithRetry([&] { return active_vfs_->ReadFile(path); });
    if (!content.ok()) {
      span.set_error();
      return content.status();
    }
    out.content = std::move(*content);
  }
  return out;
}

Result<FileStat> FileServer::StatFile(const std::string& path) const {
  obs::Tracer::Scope span(tracer_, "fs:stat");
  span.set_note(host_);
  auto stat = WithRetry([&] { return active_vfs_->Stat(path); });
  if (!stat.ok()) span.set_error();
  return stat;
}

Result<GetResult> FileServer::GetUrl(const std::string& url) const {
  EASIA_ASSIGN_OR_RETURN(FileUrl parsed, ParseFileUrl(url));
  if (parsed.host != host_) {
    return Status::InvalidArgument("URL host " + parsed.host +
                                   " does not match server " + host_);
  }
  std::string request = parsed.Directory();
  if (!parsed.token.empty()) {
    request += parsed.token + ";";
  }
  request += parsed.filename;
  return Get(request);
}

Status FileServer::Put(const std::string& path, std::string contents,
                       const std::string& owner) {
  return WithRetry(
      [&] { return active_vfs_->WriteFile(path, contents, owner); });
}

void FileServer::RegisterEndpoint(const std::string& path,
                                  EndpointHandler handler) {
  endpoints_[path] = std::move(handler);
}

bool FileServer::HasEndpoint(const std::string& path) const {
  return endpoints_.find(path) != endpoints_.end();
}

Result<std::string> FileServer::InvokeEndpoint(const std::string& path,
                                               const HttpParams& params) const {
  auto it = endpoints_.find(path);
  if (it == endpoints_.end()) {
    return Status::NotFound("no endpoint " + path + " on host " + host_);
  }
  return it->second(params);
}

std::vector<std::string> FileServer::EndpointPaths() const {
  std::vector<std::string> out;
  for (const auto& [path, handler] : endpoints_) out.push_back(path);
  return out;
}

std::string FileServer::MakeTempDir(const std::string& session_id) {
  return StrPrintf("/tmp/%s-%llu/", session_id.c_str(),
                   static_cast<unsigned long long>(++temp_counter_));
}

size_t FileServer::CleanTempDir(const std::string& dir) {
  size_t removed = 0;
  for (const std::string& path : active_vfs_->List(dir)) {
    Status deleted =
        WithRetry([&] { return active_vfs_->DeleteFile(path); });
    if (deleted.ok()) ++removed;
  }
  return removed;
}

FileServer* FileServerFleet::AddServer(const std::string& host) {
  auto it = servers_.find(host);
  if (it != servers_.end()) return it->second.get();
  auto server = std::make_unique<FileServer>(host);
  FileServer* raw = server.get();
  servers_[host] = std::move(server);
  return raw;
}

Result<FileServer*> FileServerFleet::GetServer(const std::string& host) const {
  auto it = servers_.find(host);
  if (it == servers_.end()) {
    return Status::NotFound("no file server registered for host " + host);
  }
  return it->second.get();
}

bool FileServerFleet::HasServer(const std::string& host) const {
  return servers_.find(host) != servers_.end();
}

std::vector<std::string> FileServerFleet::Hosts() const {
  std::vector<std::string> out;
  for (const auto& [host, server] : servers_) out.push_back(host);
  return out;
}

Result<std::pair<FileServer*, FileUrl>> FileServerFleet::Resolve(
    const std::string& url) const {
  EASIA_ASSIGN_OR_RETURN(FileUrl parsed, ParseFileUrl(url));
  EASIA_ASSIGN_OR_RETURN(FileServer * server, GetServer(parsed.host));
  return std::make_pair(server, std::move(parsed));
}

}  // namespace easia::fs
