#ifndef EASIA_XUIS_SERIALIZE_H_
#define EASIA_XUIS_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "xml/node.h"
#include "xuis/model.h"

namespace easia::xuis {

/// Serialises a XUIS to its XML document form (doctype "xuis", validated
/// against the EASIA XUIS DTD before returning).
Result<xml::Document> ToXmlDocument(const XuisSpec& spec);

/// Convenience: full XML text.
Result<std::string> ToXmlText(const XuisSpec& spec);

/// Parses XUIS XML (text or parsed document). Validates against the DTD
/// first, so structural errors are reported in DTD terms.
Result<XuisSpec> ParseXuisText(std::string_view xml_text);
Result<XuisSpec> ParseXuisDocument(const xml::Document& doc);

}  // namespace easia::xuis

#endif  // EASIA_XUIS_SERIALIZE_H_
