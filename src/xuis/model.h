#ifndef EASIA_XUIS_MODEL_H_
#define EASIA_XUIS_MODEL_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"

namespace easia::xuis {

/// A comparison in an operation's `<if>` guard or a `<database.result>`
/// code-location query:  `<condition colid="T.C"><eq>'v'</eq></condition>`.
struct Condition {
  enum class Op { kEq, kNe, kLt, kGt, kLike };
  std::string colid;  // "TABLE.COLUMN"
  Op op = Op::kEq;
  std::string value;  // literal, quotes stripped

  /// Evaluates against a cell value rendered as display text.
  bool Matches(const std::string& cell) const;
};

/// Where an operation's executable lives: either archived in the database
/// (a DATALINK column, located by a query) or an external URL service.
struct OperationLocation {
  enum class Kind { kDatabaseResult, kUrl };
  Kind kind = Kind::kDatabaseResult;
  // kDatabaseResult: the DATALINK column holding the code file…
  std::string result_colid;
  // …and conditions selecting the row ("CODE_NAME = 'GetImage.jar'").
  std::vector<Condition> conditions;
  // kUrl: servlet/CGI endpoint on a file-server host.
  std::string url;
};

/// One user-supplied parameter of an operation, rendered as an HTML form
/// control at invocation time.
struct ParamSpec {
  enum class Control { kSelect, kRadio, kText };
  struct Option {
    std::string value;
    std::string label;
  };
  std::string description;
  Control control = Control::kText;
  std::string name;            // form field name
  int select_size = 0;         // <select size=...>
  std::vector<Option> options; // select options / radio inputs
  std::string default_value;   // text control
};

/// A server-side post-processing operation loosely coupled to DATALINK
/// datasets through the XUIS (the paper's `<operation>` markup).
struct OperationSpec {
  std::string name;       // "GetImage"
  std::string type;       // "EASCRIPT", "NATIVE", "JAVA", "" for URL ops
  std::string filename;   // initial executable inside the archive
  std::string format;     // packaging: "jar", "tar", "ea" (plain script)
  bool guest_access = false;
  bool column = false;    // applies to the whole column vs per-value
  std::vector<Condition> conditions;  // <if> guard
  OperationLocation location;
  std::string description;
  std::vector<ParamSpec> parameters;

  /// True when the operation applies to a row (all `<if>` conditions hold).
  /// `cell_of` maps a colid to the row's display value.
  bool AppliesTo(
      const std::function<std::optional<std::string>(const std::string&)>&
          cell_of) const;
};

/// `<operationchain>`: a named pipeline of operations on the same column —
/// step k+1 consumes step k's first output file (a paper future-work item,
/// "operation chaining", realised through the DTD extension it proposed).
struct OperationChainSpec {
  std::string name;
  std::string description;
  bool guest_access = false;
  /// Names of `<operation>`s declared on the same column, in order.
  std::vector<std::string> step_operations;
};

/// `<upload>`: authorises uploading user code to run against a DATALINK
/// column's files (the paper's secure server-side execution).
struct UploadSpec {
  std::string type;    // "EASCRIPT" (stands in for "JAVA")
  std::string format;  // "ea", "jar"
  bool guest_access = false;
  bool column = false;
  std::vector<Condition> conditions;
};

/// Foreign-key presentation: link to `table_column`, optionally displaying
/// `subst_column` instead of the raw key (the paper's customisation where
/// AUTHOR_KEY renders as the author's Name).
struct FkSpec {
  std::string table_column;  // "AUTHOR.AUTHOR_KEY"
  std::string subst_column;  // "AUTHOR.NAME" (optional)
  bool user_defined = false; // relationship added without an RI constraint
};

struct XuisColumn {
  std::string name;
  std::string colid;  // "TABLE.COLUMN"
  std::string alias;
  bool hidden = false;
  db::DataType type = db::DataType::kVarchar;
  size_t size = 0;
  /// Primary-key browsing: the places this PK is referenced from.
  bool is_primary_key = false;
  std::vector<std::string> referenced_by;  // "RESULT_FILE.SIMULATION_KEY"
  std::optional<FkSpec> fk;
  std::vector<std::string> samples;
  std::vector<OperationSpec> operations;
  std::vector<OperationChainSpec> chains;
  std::optional<UploadSpec> upload;

  /// The declared operation with the given name, or nullptr.
  const OperationSpec* FindOperation(const std::string& op_name) const;
  const OperationChainSpec* FindChain(const std::string& chain_name) const;

  /// Display name (alias when set).
  const std::string& DisplayName() const { return alias.empty() ? name : alias; }
};

struct XuisTable {
  std::string name;
  std::string alias;
  std::string primary_key;  // space-separated colids, as the paper writes it
  bool hidden = false;
  std::vector<XuisColumn> columns;

  const std::string& DisplayName() const { return alias.empty() ? name : alias; }
  XuisColumn* FindColumn(const std::string& name);
  const XuisColumn* FindColumn(const std::string& name) const;
};

/// The full XML User Interface Specification for one database (optionally
/// personalised to one user — "different users can have different XML
/// files").
struct XuisSpec {
  std::string database;
  std::string version = "1.0";
  std::string user;  // empty = default interface
  std::vector<XuisTable> tables;

  XuisTable* FindTable(const std::string& name);
  const XuisTable* FindTable(const std::string& name) const;
  const XuisColumn* FindColumnById(const std::string& colid) const;

  /// Tables visible to the interface (not hidden).
  std::vector<const XuisTable*> VisibleTables() const;

  size_t TotalColumns() const;
  size_t TotalOperations() const;
};

/// Splits "TABLE.COLUMN" into its parts.
Result<std::pair<std::string, std::string>> SplitColid(
    const std::string& colid);

}  // namespace easia::xuis

#endif  // EASIA_XUIS_MODEL_H_
