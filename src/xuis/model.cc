#include "xuis/model.h"

#include "common/string_util.h"

namespace easia::xuis {

bool Condition::Matches(const std::string& cell) const {
  switch (op) {
    case Op::kEq:
      return cell == value;
    case Op::kNe:
      return cell != value;
    case Op::kLt: {
      // Numeric when both sides parse; lexicographic otherwise.
      Result<double> a = ParseDouble(cell);
      Result<double> b = ParseDouble(value);
      if (a.ok() && b.ok()) return *a < *b;
      return cell < value;
    }
    case Op::kGt: {
      Result<double> a = ParseDouble(cell);
      Result<double> b = ParseDouble(value);
      if (a.ok() && b.ok()) return *a > *b;
      return cell > value;
    }
    case Op::kLike:
      return LikeMatch(cell, value);
  }
  return false;
}

bool OperationSpec::AppliesTo(
    const std::function<std::optional<std::string>(const std::string&)>&
        cell_of) const {
  for (const Condition& cond : conditions) {
    std::optional<std::string> cell = cell_of(cond.colid);
    if (!cell.has_value() || !cond.Matches(*cell)) return false;
  }
  return true;
}

const OperationSpec* XuisColumn::FindOperation(
    const std::string& op_name) const {
  for (const OperationSpec& op : operations) {
    if (op.name == op_name) return &op;
  }
  return nullptr;
}

const OperationChainSpec* XuisColumn::FindChain(
    const std::string& chain_name) const {
  for (const OperationChainSpec& chain : chains) {
    if (chain.name == chain_name) return &chain;
  }
  return nullptr;
}

XuisColumn* XuisTable::FindColumn(const std::string& column_name) {
  for (XuisColumn& c : columns) {
    if (EqualsIgnoreCase(c.name, column_name)) return &c;
  }
  return nullptr;
}

const XuisColumn* XuisTable::FindColumn(const std::string& column_name) const {
  return const_cast<XuisTable*>(this)->FindColumn(column_name);
}

XuisTable* XuisSpec::FindTable(const std::string& table_name) {
  for (XuisTable& t : tables) {
    if (EqualsIgnoreCase(t.name, table_name)) return &t;
  }
  return nullptr;
}

const XuisTable* XuisSpec::FindTable(const std::string& table_name) const {
  return const_cast<XuisSpec*>(this)->FindTable(table_name);
}

const XuisColumn* XuisSpec::FindColumnById(const std::string& colid) const {
  Result<std::pair<std::string, std::string>> parts = SplitColid(colid);
  if (!parts.ok()) return nullptr;
  const XuisTable* table = FindTable(parts->first);
  if (table == nullptr) return nullptr;
  return table->FindColumn(parts->second);
}

std::vector<const XuisTable*> XuisSpec::VisibleTables() const {
  std::vector<const XuisTable*> out;
  for (const XuisTable& t : tables) {
    if (!t.hidden) out.push_back(&t);
  }
  return out;
}

size_t XuisSpec::TotalColumns() const {
  size_t n = 0;
  for (const XuisTable& t : tables) n += t.columns.size();
  return n;
}

size_t XuisSpec::TotalOperations() const {
  size_t n = 0;
  for (const XuisTable& t : tables) {
    for (const XuisColumn& c : t.columns) n += c.operations.size();
  }
  return n;
}

Result<std::pair<std::string, std::string>> SplitColid(
    const std::string& colid) {
  size_t dot = colid.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == colid.size()) {
    return Status::InvalidArgument("bad colid: " + colid);
  }
  return std::make_pair(colid.substr(0, dot), colid.substr(dot + 1));
}

}  // namespace easia::xuis
