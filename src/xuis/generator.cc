#include "xuis/generator.h"

#include <set>

#include "common/string_util.h"

namespace easia::xuis {

Result<XuisSpec> GenerateDefaultXuis(const db::Database& database,
                                     const GeneratorOptions& options) {
  XuisSpec spec;
  spec.database = database.name();
  const db::Catalog& catalog = database.catalog();
  for (const std::string& table_name : catalog.TableNames()) {
    EASIA_ASSIGN_OR_RETURN(const db::TableDef* def,
                           catalog.GetTable(table_name));
    EASIA_ASSIGN_OR_RETURN(const db::Table* table,
                           database.GetTable(table_name));
    XuisTable xt;
    xt.name = def->name;
    // primaryKey attribute: space-separated colids, as the paper writes it
    // (e.g. "RESULT_FILE.FILE_NAME RESULT_FILE.SIMULATION_KEY").
    std::vector<std::string> pk_colids;
    for (const std::string& pk : def->primary_key) {
      pk_colids.push_back(def->name + "." + pk);
    }
    xt.primary_key = Join(pk_colids, " ");
    for (const db::ColumnDef& col : def->columns) {
      XuisColumn xc;
      xc.name = col.name;
      xc.colid = def->name + "." + col.name;
      xc.type = col.type;
      xc.size = col.size;
      xc.is_primary_key = def->IsPrimaryKeyColumn(col.name);
      if (xc.is_primary_key) {
        for (const db::InboundReference& ref :
             catalog.ReferencesTo(def->name, col.name)) {
          xc.referenced_by.push_back(ref.from_table + "." + ref.from_column);
        }
      }
      if (const db::ForeignKeyDef* fk =
              catalog.ForeignKeyOn(def->name, col.name)) {
        FkSpec fks;
        fks.table_column = fk->ref_table + "." + fk->ref_columns[0];
        xc.fk = fks;
      }
      if (options.harvest_samples && options.samples_per_column > 0) {
        EASIA_ASSIGN_OR_RETURN(size_t col_idx, def->ColumnIndex(col.name));
        std::set<std::string> seen;
        table->ForEachRow([&](db::RowId, const db::Row& row) {
          if (seen.size() >= options.samples_per_column) return;
          const db::Value& v = row[col_idx];
          if (v.is_null()) return;
          // Large objects and datalinks don't make useful QBE samples.
          if (col.type == db::DataType::kBlob ||
              col.type == db::DataType::kClob) {
            return;
          }
          seen.insert(v.ToDisplayString());
        });
        xc.samples.assign(seen.begin(), seen.end());
      }
      xt.columns.push_back(std::move(xc));
    }
    spec.tables.push_back(std::move(xt));
  }
  return spec;
}

}  // namespace easia::xuis
