#ifndef EASIA_XUIS_CUSTOMIZE_H_
#define EASIA_XUIS_CUSTOMIZE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "xuis/model.h"

namespace easia::xuis {

/// Fluent mutations over a XuisSpec implementing the paper's customisation
/// story: aliases, hiding, FK substitute columns, user-defined
/// relationships, attaching operations/uploads, and per-user
/// personalisation overlays.
class XuisCustomizer {
 public:
  explicit XuisCustomizer(XuisSpec* spec) : spec_(spec) {}

  Status SetTableAlias(const std::string& table, const std::string& alias);
  Status SetColumnAlias(const std::string& colid, const std::string& alias);
  Status HideTable(const std::string& table);
  Status HideColumn(const std::string& colid);

  /// Replaces the raw FK value shown for `colid` with data from
  /// `subst_colid` in the referenced table (AUTHOR_KEY -> AUTHOR.NAME).
  Status SetFkSubstitution(const std::string& colid,
                           const std::string& subst_colid);

  /// Declares a hypertext relationship between columns even when no
  /// referential-integrity constraint exists in the database.
  Status AddUserDefinedRelationship(const std::string& from_colid,
                                    const std::string& to_colid,
                                    const std::string& subst_colid = "");

  /// Replaces the auto-harvested samples with user-defined ones.
  Status SetSamples(const std::string& colid,
                    std::vector<std::string> samples);

  Status AddOperation(const std::string& colid, OperationSpec operation);
  /// Adds an `<operationchain>`; every step must already be declared as an
  /// `<operation>` on the same column.
  Status AddOperationChain(const std::string& colid,
                           OperationChainSpec chain);
  Status SetUpload(const std::string& colid, UploadSpec upload);

 private:
  Result<XuisColumn*> MutableColumn(const std::string& colid);

  XuisSpec* spec_;
};

/// Per-user personalised interfaces: one default spec plus named overlays
/// ("different users (or classes of user) can have different XML files").
///
/// The registry carries a customisation `revision()` so cached renderings
/// of XUIS-derived pages can be invalidated: every mutation entry point
/// (SetDefault / SetForUser / MutableDefault / MutableFor / BumpRevision)
/// bumps it. Callers that retain a Mutable* pointer and keep editing
/// through it later must call BumpRevision() (or re-fetch the pointer)
/// after the edit; in this codebase customisation happens during setup,
/// before the web front end serves traffic.
class XuisRegistry {
 public:
  void SetDefault(XuisSpec spec) {
    default_spec_ = std::move(spec);
    BumpRevision();
  }
  void SetForUser(const std::string& user, XuisSpec spec);

  /// The spec for `user`: their personal one, else the default.
  const XuisSpec& For(const std::string& user) const;
  XuisSpec* MutableFor(const std::string& user);
  const XuisSpec& Default() const { return default_spec_; }
  XuisSpec* MutableDefault() {
    BumpRevision();
    return &default_spec_;
  }

  bool HasPersonal(const std::string& user) const {
    return per_user_.find(user) != per_user_.end();
  }

  /// Monotonic customisation counter (see class comment).
  uint64_t revision() const {
    return revision_.load(std::memory_order_acquire);
  }
  void BumpRevision() {
    revision_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  XuisSpec default_spec_;
  std::map<std::string, XuisSpec> per_user_;
  std::atomic<uint64_t> revision_{1};
};

}  // namespace easia::xuis

#endif  // EASIA_XUIS_CUSTOMIZE_H_
