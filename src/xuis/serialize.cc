#include "xuis/serialize.h"

#include "common/string_util.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace easia::xuis {

namespace {

std::string_view ConditionOpName(Condition::Op op) {
  switch (op) {
    case Condition::Op::kEq: return "eq";
    case Condition::Op::kNe: return "ne";
    case Condition::Op::kLt: return "lt";
    case Condition::Op::kGt: return "gt";
    case Condition::Op::kLike: return "like";
  }
  return "eq";
}

Result<Condition::Op> ConditionOpFromName(std::string_view name) {
  if (name == "eq") return Condition::Op::kEq;
  if (name == "ne") return Condition::Op::kNe;
  if (name == "lt") return Condition::Op::kLt;
  if (name == "gt") return Condition::Op::kGt;
  if (name == "like") return Condition::Op::kLike;
  return Status::ParseError("xuis: unknown condition operator <" +
                            std::string(name) + ">");
}

/// The paper quotes condition literals: <eq>'S19990110150932'</eq>.
std::string QuoteLiteral(const std::string& v) { return "'" + v + "'"; }

std::string UnquoteLiteral(std::string_view v) {
  std::string_view t = Trim(v);
  if (t.size() >= 2 && t.front() == '\'' && t.back() == '\'') {
    return std::string(t.substr(1, t.size() - 2));
  }
  return std::string(t);
}

void ConditionToXml(const Condition& cond, xml::Node* parent) {
  xml::Node* c = parent->AddElement("condition");
  c->SetAttr("colid", cond.colid);
  c->AddElementWithText(std::string(ConditionOpName(cond.op)),
                        QuoteLiteral(cond.value));
}

Result<Condition> ConditionFromXml(const xml::Node& node) {
  Condition cond;
  cond.colid = std::string(node.Attr("colid"));
  std::vector<const xml::Node*> kids = node.ChildElements();
  if (kids.size() != 1) {
    return Status::ParseError("xuis: <condition> needs exactly one operator");
  }
  EASIA_ASSIGN_OR_RETURN(cond.op, ConditionOpFromName(kids[0]->name()));
  cond.value = UnquoteLiteral(kids[0]->InnerText());
  return cond;
}

void OperationToXml(const OperationSpec& op, xml::Node* parent) {
  xml::Node* o = parent->AddElement("operation");
  o->SetAttr("name", op.name);
  o->SetAttr("type", op.type);
  o->SetAttr("filename", op.filename);
  o->SetAttr("format", op.format);
  o->SetAttr("guest.access", op.guest_access ? "true" : "false");
  o->SetAttr("column", op.column ? "true" : "false");
  if (!op.conditions.empty()) {
    xml::Node* guard = o->AddElement("if");
    for (const Condition& c : op.conditions) ConditionToXml(c, guard);
  }
  xml::Node* loc = o->AddElement("location");
  if (op.location.kind == OperationLocation::Kind::kDatabaseResult) {
    xml::Node* dr = loc->AddElement("database.result");
    dr->SetAttr("colid", op.location.result_colid);
    for (const Condition& c : op.location.conditions) ConditionToXml(c, dr);
  } else {
    loc->AddElementWithText("URL", op.location.url);
  }
  if (!op.description.empty()) {
    o->AddElementWithText("description", op.description);
  }
  if (!op.parameters.empty()) {
    xml::Node* params = o->AddElement("parameters");
    for (const ParamSpec& p : op.parameters) {
      xml::Node* variable = params->AddElement("param")->AddElement("variable");
      if (!p.description.empty()) {
        variable->AddElementWithText("description", p.description);
      }
      switch (p.control) {
        case ParamSpec::Control::kSelect: {
          xml::Node* select = variable->AddElement("select");
          select->SetAttr("name", p.name);
          if (p.select_size > 0) {
            select->SetAttr("size", StrPrintf("%d", p.select_size));
          }
          for (const ParamSpec::Option& opt : p.options) {
            xml::Node* option = select->AddElementWithText("option", opt.label);
            option->SetAttr("value", opt.value);
          }
          break;
        }
        case ParamSpec::Control::kRadio:
          for (const ParamSpec::Option& opt : p.options) {
            xml::Node* input = variable->AddElementWithText("input", opt.label);
            input->SetAttr("type", "radio");
            input->SetAttr("name", p.name);
            input->SetAttr("value", opt.value);
          }
          break;
        case ParamSpec::Control::kText: {
          xml::Node* text = variable->AddElement("text");
          text->SetAttr("name", p.name);
          if (!p.default_value.empty()) {
            text->SetAttr("default", p.default_value);
          }
          break;
        }
      }
    }
  }
}

Result<OperationSpec> OperationFromXml(const xml::Node& node) {
  OperationSpec op;
  op.name = std::string(node.Attr("name"));
  op.type = std::string(node.Attr("type"));
  op.filename = std::string(node.Attr("filename"));
  op.format = std::string(node.Attr("format"));
  op.guest_access = node.Attr("guest.access") == "true";
  op.column = node.Attr("column") == "true";
  if (const xml::Node* guard = node.FindChild("if")) {
    for (const xml::Node* c : guard->FindChildren("condition")) {
      EASIA_ASSIGN_OR_RETURN(Condition cond, ConditionFromXml(*c));
      op.conditions.push_back(std::move(cond));
    }
  }
  const xml::Node* loc = node.FindChild("location");
  if (loc == nullptr) {
    return Status::ParseError("xuis: <operation> missing <location>");
  }
  if (const xml::Node* dr = loc->FindChild("database.result")) {
    op.location.kind = OperationLocation::Kind::kDatabaseResult;
    op.location.result_colid = std::string(dr->Attr("colid"));
    for (const xml::Node* c : dr->FindChildren("condition")) {
      EASIA_ASSIGN_OR_RETURN(Condition cond, ConditionFromXml(*c));
      op.location.conditions.push_back(std::move(cond));
    }
  } else if (const xml::Node* url = loc->FindChild("URL")) {
    op.location.kind = OperationLocation::Kind::kUrl;
    op.location.url = std::string(Trim(url->InnerText()));
  } else {
    return Status::ParseError("xuis: <location> needs database.result or URL");
  }
  op.description = node.ChildText("description");
  if (const xml::Node* params = node.FindChild("parameters")) {
    for (const xml::Node* param : params->FindChildren("param")) {
      const xml::Node* variable = param->FindChild("variable");
      if (variable == nullptr) continue;
      ParamSpec p;
      p.description = variable->ChildText("description");
      if (const xml::Node* select = variable->FindChild("select")) {
        p.control = ParamSpec::Control::kSelect;
        p.name = std::string(select->Attr("name"));
        if (select->HasAttr("size")) {
          Result<int64_t> size = ParseInt64(select->Attr("size"));
          if (size.ok()) p.select_size = static_cast<int>(*size);
        }
        for (const xml::Node* option : select->FindChildren("option")) {
          p.options.push_back({std::string(option->Attr("value")),
                               option->InnerText()});
        }
      } else if (const xml::Node* text = variable->FindChild("text")) {
        p.control = ParamSpec::Control::kText;
        p.name = std::string(text->Attr("name"));
        p.default_value = std::string(text->Attr("default"));
      } else {
        p.control = ParamSpec::Control::kRadio;
        for (const xml::Node* input : variable->FindChildren("input")) {
          if (p.name.empty()) p.name = std::string(input->Attr("name"));
          p.options.push_back({std::string(input->Attr("value")),
                               input->InnerText()});
        }
      }
      op.parameters.push_back(std::move(p));
    }
  }
  return op;
}

}  // namespace

Result<xml::Document> ToXmlDocument(const XuisSpec& spec) {
  xml::Document doc;
  doc.doctype_name = "xuis";
  doc.root = xml::Node::Element("xuis");
  xml::Node* root = doc.root.get();
  root->SetAttr("database", spec.database);
  root->SetAttr("version", spec.version);
  if (!spec.user.empty()) root->SetAttr("user", spec.user);
  for (const XuisTable& table : spec.tables) {
    xml::Node* t = root->AddElement("table");
    t->SetAttr("name", table.name);
    if (!table.primary_key.empty()) {
      t->SetAttr("primaryKey", table.primary_key);
    }
    if (table.hidden) t->SetAttr("hidden", "true");
    if (!table.alias.empty()) t->AddElementWithText("tablealias", table.alias);
    for (const XuisColumn& col : table.columns) {
      xml::Node* c = t->AddElement("column");
      c->SetAttr("name", col.name);
      c->SetAttr("colid", col.colid);
      if (col.hidden) c->SetAttr("hidden", "true");
      if (!col.alias.empty()) c->AddElementWithText("columnalias", col.alias);
      xml::Node* type = c->AddElement("type");
      type->AddElement(std::string(db::DataTypeName(col.type)));
      if (col.size > 0) {
        type->AddElementWithText("size", StrPrintf("%zu", col.size));
      }
      if (col.is_primary_key) {
        xml::Node* pk = c->AddElement("pk");
        for (const std::string& ref : col.referenced_by) {
          pk->AddElement("refby")->SetAttr("tablecolumn", ref);
        }
      }
      if (col.fk.has_value()) {
        xml::Node* fk = c->AddElement("fk");
        fk->SetAttr("tablecolumn", col.fk->table_column);
        if (!col.fk->subst_column.empty()) {
          fk->SetAttr("substcolumn", col.fk->subst_column);
        }
        if (col.fk->user_defined) fk->SetAttr("userdefined", "true");
      }
      if (!col.samples.empty()) {
        xml::Node* samples = c->AddElement("samples");
        for (const std::string& s : col.samples) {
          samples->AddElementWithText("sample", s);
        }
      }
      for (const OperationSpec& op : col.operations) {
        OperationToXml(op, c);
      }
      for (const OperationChainSpec& chain : col.chains) {
        xml::Node* cn = c->AddElement("operationchain");
        cn->SetAttr("name", chain.name);
        if (!chain.description.empty()) {
          cn->SetAttr("description", chain.description);
        }
        cn->SetAttr("guest.access", chain.guest_access ? "true" : "false");
        for (const std::string& step : chain.step_operations) {
          cn->AddElement("stepref")->SetAttr("operation", step);
        }
      }
      if (col.upload.has_value()) {
        xml::Node* upload = c->AddElement("upload");
        upload->SetAttr("type", col.upload->type);
        upload->SetAttr("format", col.upload->format);
        upload->SetAttr("guest.access",
                        col.upload->guest_access ? "true" : "false");
        upload->SetAttr("column", col.upload->column ? "true" : "false");
        if (!col.upload->conditions.empty()) {
          xml::Node* guard = upload->AddElement("if");
          for (const Condition& cond : col.upload->conditions) {
            ConditionToXml(cond, guard);
          }
        }
      }
    }
  }
  // Validate what we produced against the DTD — generator bugs surface here
  // instead of at some later parse.
  EASIA_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::Dtd::Parse(xml::XuisDtdText()));
  EASIA_RETURN_IF_ERROR(dtd.Validate(*doc.root));
  return doc;
}

Result<std::string> ToXmlText(const XuisSpec& spec) {
  EASIA_ASSIGN_OR_RETURN(xml::Document doc, ToXmlDocument(spec));
  return xml::WriteDocument(doc);
}

Result<XuisSpec> ParseXuisText(std::string_view xml_text) {
  EASIA_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(xml_text));
  return ParseXuisDocument(doc);
}

Result<XuisSpec> ParseXuisDocument(const xml::Document& doc) {
  if (doc.root == nullptr || doc.root->name() != "xuis") {
    return Status::ParseError("xuis: root element must be <xuis>");
  }
  EASIA_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::Dtd::Parse(xml::XuisDtdText()));
  EASIA_RETURN_IF_ERROR(dtd.Validate(*doc.root));
  XuisSpec spec;
  spec.database = std::string(doc.root->Attr("database"));
  if (doc.root->HasAttr("version")) {
    spec.version = std::string(doc.root->Attr("version"));
  }
  spec.user = std::string(doc.root->Attr("user"));
  for (const xml::Node* t : doc.root->FindChildren("table")) {
    XuisTable table;
    table.name = std::string(t->Attr("name"));
    table.primary_key = std::string(t->Attr("primaryKey"));
    table.hidden = t->Attr("hidden") == "true";
    table.alias = t->ChildText("tablealias");
    for (const xml::Node* c : t->FindChildren("column")) {
      XuisColumn col;
      col.name = std::string(c->Attr("name"));
      col.colid = std::string(c->Attr("colid"));
      col.hidden = c->Attr("hidden") == "true";
      col.alias = c->ChildText("columnalias");
      const xml::Node* type = c->FindChild("type");
      if (type == nullptr) {
        return Status::ParseError("xuis: column missing <type>");
      }
      std::vector<const xml::Node*> type_kids = type->ChildElements();
      if (type_kids.empty()) {
        return Status::ParseError("xuis: empty <type>");
      }
      EASIA_ASSIGN_OR_RETURN(col.type,
                             db::DataTypeFromName(type_kids[0]->name()));
      std::string size_text = type->ChildText("size");
      if (!size_text.empty()) {
        EASIA_ASSIGN_OR_RETURN(int64_t size, ParseInt64(size_text));
        col.size = static_cast<size_t>(size);
      }
      if (const xml::Node* pk = c->FindChild("pk")) {
        col.is_primary_key = true;
        for (const xml::Node* refby : pk->FindChildren("refby")) {
          col.referenced_by.push_back(std::string(refby->Attr("tablecolumn")));
        }
      }
      if (const xml::Node* fk = c->FindChild("fk")) {
        FkSpec fks;
        fks.table_column = std::string(fk->Attr("tablecolumn"));
        fks.subst_column = std::string(fk->Attr("substcolumn"));
        fks.user_defined = fk->Attr("userdefined") == "true";
        col.fk = std::move(fks);
      }
      if (const xml::Node* samples = c->FindChild("samples")) {
        for (const xml::Node* sample : samples->FindChildren("sample")) {
          col.samples.push_back(sample->InnerText());
        }
      }
      for (const xml::Node* op_node : c->FindChildren("operation")) {
        EASIA_ASSIGN_OR_RETURN(OperationSpec op, OperationFromXml(*op_node));
        col.operations.push_back(std::move(op));
      }
      for (const xml::Node* chain_node :
           c->FindChildren("operationchain")) {
        OperationChainSpec chain;
        chain.name = std::string(chain_node->Attr("name"));
        chain.description = std::string(chain_node->Attr("description"));
        chain.guest_access = chain_node->Attr("guest.access") == "true";
        for (const xml::Node* step : chain_node->FindChildren("stepref")) {
          chain.step_operations.push_back(
              std::string(step->Attr("operation")));
        }
        // Steps must reference operations declared on this column.
        for (const std::string& step : chain.step_operations) {
          if (col.FindOperation(step) == nullptr) {
            return Status::ParseError("xuis: chain '" + chain.name +
                                      "' references unknown operation '" +
                                      step + "'");
          }
        }
        col.chains.push_back(std::move(chain));
      }
      if (const xml::Node* upload = c->FindChild("upload")) {
        UploadSpec up;
        up.type = std::string(upload->Attr("type"));
        up.format = std::string(upload->Attr("format"));
        up.guest_access = upload->Attr("guest.access") == "true";
        up.column = upload->Attr("column") == "true";
        if (const xml::Node* guard = upload->FindChild("if")) {
          for (const xml::Node* cond_node : guard->FindChildren("condition")) {
            EASIA_ASSIGN_OR_RETURN(Condition cond,
                                   ConditionFromXml(*cond_node));
            up.conditions.push_back(std::move(cond));
          }
        }
        col.upload = std::move(up);
      }
      table.columns.push_back(std::move(col));
    }
    spec.tables.push_back(std::move(table));
  }
  return spec;
}

}  // namespace easia::xuis
