#include "xuis/customize.h"

namespace easia::xuis {

Result<XuisColumn*> XuisCustomizer::MutableColumn(const std::string& colid) {
  EASIA_ASSIGN_OR_RETURN(auto parts, SplitColid(colid));
  XuisTable* table = spec_->FindTable(parts.first);
  if (table == nullptr) {
    return Status::NotFound("xuis: no table " + parts.first);
  }
  XuisColumn* col = table->FindColumn(parts.second);
  if (col == nullptr) {
    return Status::NotFound("xuis: no column " + colid);
  }
  return col;
}

Status XuisCustomizer::SetTableAlias(const std::string& table,
                                     const std::string& alias) {
  XuisTable* t = spec_->FindTable(table);
  if (t == nullptr) return Status::NotFound("xuis: no table " + table);
  t->alias = alias;
  return Status::OK();
}

Status XuisCustomizer::SetColumnAlias(const std::string& colid,
                                      const std::string& alias) {
  EASIA_ASSIGN_OR_RETURN(XuisColumn * col, MutableColumn(colid));
  col->alias = alias;
  return Status::OK();
}

Status XuisCustomizer::HideTable(const std::string& table) {
  XuisTable* t = spec_->FindTable(table);
  if (t == nullptr) return Status::NotFound("xuis: no table " + table);
  t->hidden = true;
  return Status::OK();
}

Status XuisCustomizer::HideColumn(const std::string& colid) {
  EASIA_ASSIGN_OR_RETURN(XuisColumn * col, MutableColumn(colid));
  col->hidden = true;
  return Status::OK();
}

Status XuisCustomizer::SetFkSubstitution(const std::string& colid,
                                         const std::string& subst_colid) {
  EASIA_ASSIGN_OR_RETURN(XuisColumn * col, MutableColumn(colid));
  if (!col->fk.has_value()) {
    return Status::FailedPrecondition("xuis: column " + colid +
                                      " has no foreign key");
  }
  col->fk->subst_column = subst_colid;
  return Status::OK();
}

Status XuisCustomizer::AddUserDefinedRelationship(
    const std::string& from_colid, const std::string& to_colid,
    const std::string& subst_colid) {
  EASIA_ASSIGN_OR_RETURN(XuisColumn * col, MutableColumn(from_colid));
  if (col->fk.has_value()) {
    return Status::AlreadyExists("xuis: column " + from_colid +
                                 " already has a relationship");
  }
  FkSpec fk;
  fk.table_column = to_colid;
  fk.subst_column = subst_colid;
  fk.user_defined = true;
  col->fk = std::move(fk);
  return Status::OK();
}

Status XuisCustomizer::SetSamples(const std::string& colid,
                                  std::vector<std::string> samples) {
  EASIA_ASSIGN_OR_RETURN(XuisColumn * col, MutableColumn(colid));
  col->samples = std::move(samples);
  return Status::OK();
}

Status XuisCustomizer::AddOperation(const std::string& colid,
                                    OperationSpec operation) {
  EASIA_ASSIGN_OR_RETURN(XuisColumn * col, MutableColumn(colid));
  col->operations.push_back(std::move(operation));
  return Status::OK();
}

Status XuisCustomizer::AddOperationChain(const std::string& colid,
                                         OperationChainSpec chain) {
  EASIA_ASSIGN_OR_RETURN(XuisColumn * col, MutableColumn(colid));
  if (chain.step_operations.empty()) {
    return Status::InvalidArgument("xuis: chain '" + chain.name +
                                   "' has no steps");
  }
  for (const std::string& step : chain.step_operations) {
    if (col->FindOperation(step) == nullptr) {
      return Status::NotFound("xuis: chain step '" + step +
                              "' is not an operation on " + colid);
    }
  }
  col->chains.push_back(std::move(chain));
  return Status::OK();
}

Status XuisCustomizer::SetUpload(const std::string& colid, UploadSpec upload) {
  EASIA_ASSIGN_OR_RETURN(XuisColumn * col, MutableColumn(colid));
  col->upload = std::move(upload);
  return Status::OK();
}

void XuisRegistry::SetForUser(const std::string& user, XuisSpec spec) {
  per_user_[user] = std::move(spec);
  BumpRevision();
}

const XuisSpec& XuisRegistry::For(const std::string& user) const {
  auto it = per_user_.find(user);
  return it == per_user_.end() ? default_spec_ : it->second;
}

XuisSpec* XuisRegistry::MutableFor(const std::string& user) {
  BumpRevision();
  auto it = per_user_.find(user);
  return it == per_user_.end() ? &default_spec_ : &it->second;
}

}  // namespace easia::xuis
