#ifndef EASIA_XUIS_GENERATOR_H_
#define EASIA_XUIS_GENERATOR_H_

#include "common/result.h"
#include "db/database.h"
#include "xuis/model.h"

namespace easia::xuis {

struct GeneratorOptions {
  /// Sample values harvested per column for the QBE drop-downs.
  size_t samples_per_column = 3;
  /// Harvesting samples costs a scan per table; the paper's tool does it by
  /// default, and the F6 bench ablates it.
  bool harvest_samples = true;
};

/// Builds the *default* XUIS for a database — the paper's automatic tool
/// ("written in Java, uses JDBC to extract data and schema information").
/// It extracts table names, column names and types, sample values, primary
/// keys, foreign keys, and inbound references (for primary-key browsing).
Result<XuisSpec> GenerateDefaultXuis(const db::Database& database,
                                     const GeneratorOptions& options = {});

}  // namespace easia::xuis

#endif  // EASIA_XUIS_GENERATOR_H_
