#include "xml/node.h"

namespace easia::xml {

std::unique_ptr<Node> Node::Element(std::string name) {
  auto n = std::unique_ptr<Node>(new Node(Type::kElement));
  n->name_ = std::move(name);
  return n;
}

std::unique_ptr<Node> Node::Text(std::string text) {
  auto n = std::unique_ptr<Node>(new Node(Type::kText));
  n->text_ = std::move(text);
  return n;
}

std::unique_ptr<Node> Node::CData(std::string text) {
  auto n = std::unique_ptr<Node>(new Node(Type::kCData));
  n->text_ = std::move(text);
  return n;
}

std::unique_ptr<Node> Node::Comment(std::string text) {
  auto n = std::unique_ptr<Node>(new Node(Type::kComment));
  n->text_ = std::move(text);
  return n;
}

std::string_view Node::Attr(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return a.value;
  }
  return {};
}

bool Node::HasAttr(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return true;
  }
  return false;
}

void Node::SetAttr(std::string_view name, std::string_view value) {
  for (Attribute& a : attributes_) {
    if (a.name == name) {
      a.value = std::string(value);
      return;
    }
  }
  attributes_.push_back({std::string(name), std::string(value)});
}

void Node::RemoveAttr(std::string_view name) {
  for (auto it = attributes_.begin(); it != attributes_.end(); ++it) {
    if (it->name == name) {
      attributes_.erase(it);
      return;
    }
  }
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddElement(std::string name) {
  return AddChild(Element(std::move(name)));
}

Node* Node::AddElementWithText(std::string name, std::string text) {
  Node* e = AddElement(std::move(name));
  e->AddText(std::move(text));
  return e;
}

Node* Node::AddText(std::string text) {
  return AddChild(Text(std::move(text)));
}

const Node* Node::FindChild(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->IsElement() && c->name() == name) return c.get();
  }
  return nullptr;
}

Node* Node::FindChild(std::string_view name) {
  return const_cast<Node*>(
      static_cast<const Node*>(this)->FindChild(name));
}

std::vector<const Node*> Node::FindChildren(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->IsElement() && c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::vector<const Node*> Node::ChildElements() const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->IsElement()) out.push_back(c.get());
  }
  return out;
}

std::string Node::InnerText() const {
  std::string out;
  for (const auto& c : children_) {
    if (c->IsText()) out += c->text();
  }
  return out;
}

std::string Node::ChildText(std::string_view name) const {
  const Node* c = FindChild(name);
  return c == nullptr ? std::string() : c->InnerText();
}

size_t Node::RemoveChildren(std::string_view name) {
  size_t removed = 0;
  for (auto it = children_.begin(); it != children_.end();) {
    if ((*it)->IsElement() && (*it)->name() == name) {
      it = children_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::unique_ptr<Node> Node::Clone() const {
  auto n = std::unique_ptr<Node>(new Node(type_));
  n->name_ = name_;
  n->text_ = text_;
  n->attributes_ = attributes_;
  n->children_.reserve(children_.size());
  for (const auto& c : children_) {
    n->children_.push_back(c->Clone());
  }
  return n;
}

size_t Node::CountElements() const {
  size_t n = IsElement() ? 1 : 0;
  for (const auto& c : children_) n += c->CountElements();
  return n;
}

}  // namespace easia::xml
