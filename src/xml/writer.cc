#include "xml/writer.h"

#include "common/string_util.h"

namespace easia::xml {

namespace {

bool HasElementChildren(const Node& node) {
  for (const auto& c : node.children()) {
    if (c->IsElement()) return true;
  }
  return false;
}

bool IsWhitespaceOnly(const std::string& s) {
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
  }
  return true;
}

void WriteNodeRec(const Node& node, const WriteOptions& options, int depth,
                  std::string* out) {
  auto indent = [&](int d) {
    if (options.indent.empty()) return;
    for (int i = 0; i < d; ++i) *out += options.indent;
  };
  switch (node.type()) {
    case Node::Type::kText:
      *out += EscapeMarkup(node.text());
      return;
    case Node::Type::kCData:
      *out += "<![CDATA[";
      *out += node.text();
      *out += "]]>";
      return;
    case Node::Type::kComment:
      *out += "<!--";
      *out += node.text();
      *out += "-->";
      return;
    case Node::Type::kElement:
      break;
  }
  *out += '<';
  *out += node.name();
  for (const Node::Attribute& a : node.attributes()) {
    *out += ' ';
    *out += a.name;
    *out += "=\"";
    *out += EscapeMarkup(a.value);
    *out += '"';
  }
  if (node.children().empty()) {
    *out += "/>";
    return;
  }
  *out += '>';
  bool block = HasElementChildren(node) && !options.indent.empty();
  for (const auto& c : node.children()) {
    // In block mode, layout whitespace belongs to the pretty-printer:
    // whitespace-only text nodes are dropped and mixed-content text is
    // trimmed, so write -> parse -> write is a fixed point.
    if (block && c->IsText() && IsWhitespaceOnly(c->text())) continue;
    if (block) {
      *out += '\n';
      indent(depth + 1);
    }
    if (block && c->type() == Node::Type::kText) {
      *out += EscapeMarkup(Trim(c->text()));
    } else {
      WriteNodeRec(*c, options, depth + 1, out);
    }
  }
  if (block) {
    *out += '\n';
    indent(depth);
  }
  *out += "</";
  *out += node.name();
  *out += '>';
}

}  // namespace

std::string WriteDocument(const Document& doc, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"";
    out += doc.version.empty() ? "1.0" : doc.version;
    out += '"';
    if (!doc.encoding.empty()) {
      out += " encoding=\"";
      out += doc.encoding;
      out += '"';
    }
    out += "?>\n";
  }
  if (options.doctype && !doc.doctype_name.empty()) {
    out += "<!DOCTYPE ";
    out += doc.doctype_name;
    if (!doc.internal_dtd.empty()) {
      out += " [";
      out += doc.internal_dtd;
      out += ']';
    }
    out += ">\n";
  }
  if (doc.root != nullptr) {
    WriteNodeRec(*doc.root, options, 0, &out);
    out += '\n';
  }
  return out;
}

std::string WriteNode(const Node& node, const WriteOptions& options) {
  std::string out;
  WriteNodeRec(node, options, 0, &out);
  return out;
}

}  // namespace easia::xml
