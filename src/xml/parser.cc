#include "xml/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace easia::xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Document> ParseDocument() {
    Document doc;
    SkipWhitespaceAndMisc(&doc);
    if (!doc_error_.ok()) return doc_error_;
    if (Eof()) return Error("document has no root element");
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, ParseElementNode());
    doc.root = std::move(root);
    doc.version = version_;
    doc.encoding = encoding_;
    doc.doctype_name = doctype_name_;
    doc.internal_dtd = internal_dtd_;
    // Only whitespace, comments and PIs may follow the root element.
    while (!Eof()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      } else if (LookingAt("<!--")) {
        EASIA_RETURN_IF_ERROR(SkipComment());
      } else if (LookingAt("<?")) {
        EASIA_RETURN_IF_ERROR(SkipProcessingInstruction());
      } else {
        return Error("content after root element");
      }
    }
    return doc;
  }

  Result<std::unique_ptr<Node>> ParseSingleElement() {
    SkipPlainWhitespace();
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, ParseElementNode());
    SkipPlainWhitespace();
    if (!Eof()) return Error("trailing content after element");
    return root;
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void AdvanceN(size_t n) {
    for (size_t i = 0; i < n && !Eof(); ++i) Advance();
  }

  bool LookingAt(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  Status Error(std::string_view msg) const {
    return Status::ParseError(StrPrintf("xml:%zu:%zu: %s", line_, col_,
                                        std::string(msg).c_str()));
  }

  void SkipPlainWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  /// Skips whitespace, XML declaration, comments, PIs and DOCTYPE before the
  /// root element.
  void SkipWhitespaceAndMisc(Document* doc) {
    while (!Eof()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      } else if (LookingAt("<?xml")) {
        Status s = ParseXmlDeclaration();
        if (!s.ok()) {
          doc_error_ = s;
          return;
        }
      } else if (LookingAt("<?")) {
        Status s = SkipProcessingInstruction();
        if (!s.ok()) {
          doc_error_ = s;
          return;
        }
      } else if (LookingAt("<!--")) {
        Status s = SkipComment();
        if (!s.ok()) {
          doc_error_ = s;
          return;
        }
      } else if (LookingAt("<!DOCTYPE")) {
        Status s = ParseDoctype();
        if (!s.ok()) {
          doc_error_ = s;
          return;
        }
      } else {
        return;
      }
    }
    (void)doc;
  }

  Status ParseXmlDeclaration() {
    AdvanceN(5);  // <?xml
    while (!Eof() && !LookingAt("?>")) {
      SkipPlainWhitespace();
      if (LookingAt("?>")) break;
      Result<std::string> name = ParseName();
      if (!name.ok()) return name.status();
      SkipPlainWhitespace();
      if (Eof() || Peek() != '=') return Error("expected '=' in declaration");
      Advance();
      SkipPlainWhitespace();
      Result<std::string> value = ParseQuotedValue();
      if (!value.ok()) return value.status();
      if (*name == "version") version_ = *value;
      if (*name == "encoding") encoding_ = *value;
    }
    if (!LookingAt("?>")) return Error("unterminated xml declaration");
    AdvanceN(2);
    return Status::OK();
  }

  Status SkipProcessingInstruction() {
    AdvanceN(2);  // <?
    while (!Eof() && !LookingAt("?>")) Advance();
    if (!LookingAt("?>")) return Error("unterminated processing instruction");
    AdvanceN(2);
    return Status::OK();
  }

  Status SkipComment() {
    AdvanceN(4);  // <!--
    size_t start = pos_;
    while (!Eof() && !LookingAt("-->")) Advance();
    if (!LookingAt("-->")) return Error("unterminated comment");
    last_comment_ = std::string(input_.substr(start, pos_ - start));
    AdvanceN(3);
    return Status::OK();
  }

  Status ParseDoctype() {
    AdvanceN(9);  // <!DOCTYPE
    SkipPlainWhitespace();
    Result<std::string> name = ParseName();
    if (!name.ok()) return name.status();
    doctype_name_ = *name;
    // Skip external ID if present, capture internal subset if present.
    while (!Eof() && Peek() != '>' && Peek() != '[') Advance();
    if (!Eof() && Peek() == '[') {
      Advance();
      size_t start = pos_;
      while (!Eof() && Peek() != ']') Advance();
      if (Eof()) return Error("unterminated DOCTYPE internal subset");
      internal_dtd_ = std::string(input_.substr(start, pos_ - start));
      Advance();  // ]
      SkipPlainWhitespace();
    }
    if (Eof() || Peek() != '>') return Error("unterminated DOCTYPE");
    Advance();
    return Status::OK();
  }

  Result<std::string> ParseName() {
    if (Eof() || !IsNameStartChar(Peek())) {
      return Error("expected name");
    }
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseQuotedValue() {
    if (Eof() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted value");
    }
    char quote = Peek();
    Advance();
    std::string out;
    while (!Eof() && Peek() != quote) {
      if (Peek() == '&') {
        EASIA_ASSIGN_OR_RETURN(std::string entity, ParseEntity());
        out += entity;
      } else if (Peek() == '<') {
        return Error("'<' not allowed in attribute value");
      } else {
        out += Peek();
        Advance();
      }
    }
    if (Eof()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return out;
  }

  Result<std::string> ParseEntity() {
    // Positioned at '&'.
    Advance();
    size_t start = pos_;
    while (!Eof() && Peek() != ';' && pos_ - start < 12) Advance();
    if (Eof() || Peek() != ';') return Error("unterminated entity reference");
    std::string_view name = input_.substr(start, pos_ - start);
    Advance();  // ;
    if (name == "amp") return std::string("&");
    if (name == "lt") return std::string("<");
    if (name == "gt") return std::string(">");
    if (name == "quot") return std::string("\"");
    if (name == "apos") return std::string("'");
    if (!name.empty() && name[0] == '#') {
      int base = 10;
      std::string_view digits = name.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) return Error("empty character reference");
      uint32_t code = 0;
      for (char c : digits) {
        int d;
        if (c >= '0' && c <= '9') {
          d = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          d = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          d = c - 'A' + 10;
        } else {
          return Error("bad character reference");
        }
        code = code * static_cast<uint32_t>(base) + static_cast<uint32_t>(d);
        if (code > 0x10FFFF) return Error("character reference out of range");
      }
      return EncodeUtf8(code);
    }
    return Error("unknown entity reference");
  }

  static std::string EncodeUtf8(uint32_t code) {
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Result<std::unique_ptr<Node>> ParseElementNode() {
    if (Eof() || Peek() != '<') return Error("expected element");
    Advance();  // <
    EASIA_ASSIGN_OR_RETURN(std::string name, ParseName());
    std::unique_ptr<Node> element = Node::Element(std::move(name));
    // Attributes.
    while (true) {
      SkipPlainWhitespace();
      if (Eof()) return Error("unterminated start tag");
      if (Peek() == '>' || LookingAt("/>")) break;
      EASIA_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipPlainWhitespace();
      if (Eof() || Peek() != '=') return Error("expected '=' after attribute");
      Advance();
      SkipPlainWhitespace();
      EASIA_ASSIGN_OR_RETURN(std::string attr_value, ParseQuotedValue());
      if (element->HasAttr(attr_name)) {
        return Error("duplicate attribute '" + attr_name + "'");
      }
      element->SetAttr(attr_name, attr_value);
    }
    if (LookingAt("/>")) {
      AdvanceN(2);
      return element;
    }
    Advance();  // >
    // Content.
    std::string text_buf;
    auto flush_text = [&]() {
      if (!text_buf.empty()) {
        element->AddText(std::move(text_buf));
        text_buf.clear();
      }
    };
    while (true) {
      if (Eof()) {
        return Error("unterminated element '" + element->name() + "'");
      }
      if (LookingAt("</")) {
        flush_text();
        AdvanceN(2);
        EASIA_ASSIGN_OR_RETURN(std::string end_name, ParseName());
        SkipPlainWhitespace();
        if (Eof() || Peek() != '>') return Error("malformed end tag");
        Advance();
        if (end_name != element->name()) {
          return Error("mismatched end tag: expected </" + element->name() +
                       ">, got </" + end_name + ">");
        }
        return element;
      }
      if (LookingAt("<!--")) {
        flush_text();
        EASIA_RETURN_IF_ERROR(SkipComment());
        element->AddChild(Node::Comment(last_comment_));
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        flush_text();
        AdvanceN(9);
        size_t start = pos_;
        while (!Eof() && !LookingAt("]]>")) Advance();
        if (Eof()) return Error("unterminated CDATA section");
        element->AddChild(
            Node::CData(std::string(input_.substr(start, pos_ - start))));
        AdvanceN(3);
        continue;
      }
      if (LookingAt("<?")) {
        flush_text();
        EASIA_RETURN_IF_ERROR(SkipProcessingInstruction());
        continue;
      }
      if (Peek() == '<') {
        flush_text();
        EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Node> child,
                               ParseElementNode());
        element->AddChild(std::move(child));
        continue;
      }
      if (Peek() == '&') {
        EASIA_ASSIGN_OR_RETURN(std::string entity, ParseEntity());
        text_buf += entity;
        continue;
      }
      text_buf += Peek();
      Advance();
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  std::string version_ = "1.0";
  std::string encoding_;
  std::string doctype_name_;
  std::string internal_dtd_;
  std::string last_comment_;
  Status doc_error_ = Status::OK();
};

}  // namespace

Result<Document> Parse(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

Result<std::unique_ptr<Node>> ParseElement(std::string_view input) {
  Parser parser(input);
  return parser.ParseSingleElement();
}

}  // namespace easia::xml
