#ifndef EASIA_XML_WRITER_H_
#define EASIA_XML_WRITER_H_

#include <string>

#include "xml/node.h"

namespace easia::xml {

struct WriteOptions {
  /// Pretty-print with this indentation per nesting level; empty string
  /// writes a compact single-line document.
  std::string indent = "  ";
  /// Emit the `<?xml version=... ?>` declaration.
  bool declaration = true;
  /// Emit `<!DOCTYPE name>` when the document carries a doctype name.
  bool doctype = true;
};

/// Serialises a document (or a subtree) back to XML text. Parse(Write(doc))
/// is the identity on the element structure (whitespace-only text nodes that
/// pretty-printing introduces are the only difference, and only when a node
/// has element children).
std::string WriteDocument(const Document& doc, const WriteOptions& options = {});
std::string WriteNode(const Node& node, const WriteOptions& options = {});

}  // namespace easia::xml

#endif  // EASIA_XML_WRITER_H_
