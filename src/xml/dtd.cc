#include "xml/dtd.h"

#include <cctype>
#include <set>

#include "common/string_util.h"

namespace easia::xml {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

/// Token-level cursor over DTD text.
class DtdCursor {
 public:
  explicit DtdCursor(std::string_view text) : text_(text) {}

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void Advance() { ++pos_; }

  void SkipWhitespaceAndComments() {
    while (!Eof()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      } else if (text_.substr(pos_, 4) == "<!--") {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  bool Consume(std::string_view s) {
    if (text_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  Result<std::string> ReadName() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) Advance();
    if (pos_ == start) return Status::ParseError("dtd: expected name");
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Reads up to (not including) the next '>' at nesting depth zero of
  /// parentheses; used for declaration bodies.
  Result<std::string> ReadUntilDeclEnd() {
    size_t start = pos_;
    int depth = 0;
    while (!Eof()) {
      char c = Peek();
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == '>' && depth <= 0) {
        std::string body(text_.substr(start, pos_ - start));
        Advance();
        return body;
      }
      Advance();
    }
    return Status::ParseError("dtd: unterminated declaration");
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// Recursive-descent parser for content model expressions.
class ParticleParser {
 public:
  explicit ParticleParser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<Particle>> Parse() {
    EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Particle> p, ParseParticle());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("dtd: trailing content-model text");
    }
    return p;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<std::unique_ptr<Particle>> ParseParticle() {
    SkipWs();
    auto p = std::make_unique<Particle>();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      std::vector<std::unique_ptr<Particle>> items;
      char sep = 0;
      while (true) {
        EASIA_ASSIGN_OR_RETURN(std::unique_ptr<Particle> item,
                               ParseParticle());
        items.push_back(std::move(item));
        SkipWs();
        if (pos_ >= text_.size()) {
          return Status::ParseError("dtd: unterminated group");
        }
        char c = text_[pos_];
        if (c == ')') {
          ++pos_;
          break;
        }
        if (c != ',' && c != '|') {
          return Status::ParseError("dtd: expected ',' '|' or ')'");
        }
        if (sep != 0 && sep != c) {
          return Status::ParseError("dtd: mixed ',' and '|' in one group");
        }
        sep = c;
        ++pos_;
      }
      if (items.size() == 1 && sep == 0) {
        p = std::move(items[0]);
        // A trailing indicator may still follow the group. If the inner
        // particle already carries one, wrap it so both apply ("(a?)*").
        Particle::Occurrence trailing = PeekOccurrence();
        if (trailing != Particle::Occurrence::kOne) {
          if (p->occurrence != Particle::Occurrence::kOne) {
            auto wrapper = std::make_unique<Particle>();
            wrapper->kind = Particle::Kind::kSequence;
            wrapper->children.push_back(std::move(p));
            p = std::move(wrapper);
          }
          p->occurrence = ConsumeOccurrence();
        }
        return p;
      }
      p->kind = (sep == '|') ? Particle::Kind::kChoice
                             : Particle::Kind::kSequence;
      p->children = std::move(items);
    } else {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (IsNameChar(text_[pos_]) || text_[pos_] == '#')) {
        ++pos_;
      }
      if (pos_ == start) {
        return Status::ParseError("dtd: expected name in content model");
      }
      p->kind = Particle::Kind::kName;
      p->name = std::string(text_.substr(start, pos_ - start));
    }
    p->occurrence = ConsumeOccurrence();
    return p;
  }

  Particle::Occurrence PeekOccurrence() const {
    if (pos_ >= text_.size()) return Particle::Occurrence::kOne;
    switch (text_[pos_]) {
      case '?':
        return Particle::Occurrence::kOptional;
      case '*':
        return Particle::Occurrence::kZeroOrMore;
      case '+':
        return Particle::Occurrence::kOneOrMore;
      default:
        return Particle::Occurrence::kOne;
    }
  }

  Particle::Occurrence ConsumeOccurrence() {
    Particle::Occurrence occ = PeekOccurrence();
    if (occ != Particle::Occurrence::kOne) ++pos_;
    return occ;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// Computes the set of sequence positions reachable after matching
/// `particle` starting from each position in `from`.
std::set<size_t> MatchParticle(const Particle& particle,
                               const std::vector<std::string>& names,
                               const std::set<size_t>& from) {
  auto match_once = [&](const std::set<size_t>& starts) -> std::set<size_t> {
    std::set<size_t> out;
    switch (particle.kind) {
      case Particle::Kind::kName:
        for (size_t p : starts) {
          if (p < names.size() && names[p] == particle.name) {
            out.insert(p + 1);
          }
        }
        break;
      case Particle::Kind::kSequence: {
        std::set<size_t> cur = starts;
        for (const auto& child : particle.children) {
          cur = MatchParticle(*child, names, cur);
          if (cur.empty()) break;
        }
        out = cur;
        break;
      }
      case Particle::Kind::kChoice:
        for (const auto& child : particle.children) {
          std::set<size_t> r = MatchParticle(*child, names, starts);
          out.insert(r.begin(), r.end());
        }
        break;
    }
    return out;
  };

  std::set<size_t> result;
  switch (particle.occurrence) {
    case Particle::Occurrence::kOne:
      return match_once(from);
    case Particle::Occurrence::kOptional: {
      result = from;
      std::set<size_t> once = match_once(from);
      result.insert(once.begin(), once.end());
      return result;
    }
    case Particle::Occurrence::kZeroOrMore:
    case Particle::Occurrence::kOneOrMore: {
      std::set<size_t> reachable =
          (particle.occurrence == Particle::Occurrence::kZeroOrMore)
              ? from
              : std::set<size_t>{};
      std::set<size_t> frontier = from;
      while (!frontier.empty()) {
        std::set<size_t> next = match_once(frontier);
        std::set<size_t> fresh;
        for (size_t p : next) {
          if (reachable.insert(p).second) fresh.insert(p);
        }
        frontier = std::move(fresh);
      }
      return reachable;
    }
  }
  return result;
}

}  // namespace

std::string Particle::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kName:
      out = name;
      break;
    case Kind::kSequence:
    case Kind::kChoice: {
      out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += (kind == Kind::kSequence) ? "," : "|";
        out += children[i]->ToString();
      }
      out += ")";
      break;
    }
  }
  switch (occurrence) {
    case Occurrence::kOne:
      break;
    case Occurrence::kOptional:
      out += '?';
      break;
    case Occurrence::kZeroOrMore:
      out += '*';
      break;
    case Occurrence::kOneOrMore:
      out += '+';
      break;
  }
  return out;
}

Result<Dtd> Dtd::Parse(std::string_view text) {
  Dtd dtd;
  DtdCursor cursor(text);
  while (true) {
    cursor.SkipWhitespaceAndComments();
    if (cursor.Eof()) break;
    if (cursor.Consume("<!ELEMENT")) {
      EASIA_ASSIGN_OR_RETURN(std::string name, cursor.ReadName());
      EASIA_ASSIGN_OR_RETURN(std::string body, cursor.ReadUntilDeclEnd());
      std::string_view model_text = Trim(body);
      ContentModel model;
      if (model_text == "EMPTY") {
        model.kind = ContentModel::Kind::kEmpty;
      } else if (model_text == "ANY") {
        model.kind = ContentModel::Kind::kAny;
      } else if (model_text.find("#PCDATA") != std::string_view::npos) {
        model.kind = ContentModel::Kind::kMixed;
        // (#PCDATA | a | b)* — collect the optional element names.
        std::string inner(model_text);
        for (char strip : {'(', ')', '*'}) {
          inner = ReplaceAll(inner, std::string(1, strip), " ");
        }
        for (const std::string& part : SplitAndTrim(inner, '|')) {
          if (part != "#PCDATA") model.mixed_names.push_back(part);
        }
      } else {
        model.kind = ContentModel::Kind::kChildren;
        ParticleParser pp(model_text);
        EASIA_ASSIGN_OR_RETURN(model.particle, pp.Parse());
      }
      if (dtd.elements_.count(name) != 0) {
        return Status::ParseError("dtd: duplicate ELEMENT declaration for " +
                                  name);
      }
      dtd.elements_[name] = std::move(model);
    } else if (cursor.Consume("<!ATTLIST")) {
      EASIA_ASSIGN_OR_RETURN(std::string element, cursor.ReadName());
      EASIA_ASSIGN_OR_RETURN(std::string body, cursor.ReadUntilDeclEnd());
      // Parse a sequence of: name type default.
      size_t pos = 0;
      auto skip_ws = [&]() {
        while (pos < body.size() &&
               std::isspace(static_cast<unsigned char>(body[pos]))) {
          ++pos;
        }
      };
      auto read_token = [&]() -> std::string {
        skip_ws();
        size_t start = pos;
        if (pos < body.size() && body[pos] == '(') {
          int depth = 0;
          while (pos < body.size()) {
            if (body[pos] == '(') ++depth;
            if (body[pos] == ')') {
              --depth;
              if (depth == 0) {
                ++pos;
                break;
              }
            }
            ++pos;
          }
        } else if (pos < body.size() && (body[pos] == '"' || body[pos] == '\'')) {
          char q = body[pos++];
          while (pos < body.size() && body[pos] != q) ++pos;
          if (pos < body.size()) ++pos;
        } else {
          while (pos < body.size() &&
                 !std::isspace(static_cast<unsigned char>(body[pos]))) {
            ++pos;
          }
        }
        return body.substr(start, pos - start);
      };
      while (true) {
        std::string attr_name = read_token();
        if (attr_name.empty()) break;
        std::string type_tok = read_token();
        if (type_tok.empty()) {
          return Status::ParseError("dtd: ATTLIST missing type for " +
                                    attr_name);
        }
        AttributeDef def;
        def.name = attr_name;
        if (type_tok == "CDATA") {
          def.type = AttributeDef::Type::kCData;
        } else if (type_tok == "ID") {
          def.type = AttributeDef::Type::kId;
        } else if (type_tok == "IDREF") {
          def.type = AttributeDef::Type::kIdRef;
        } else if (type_tok == "NMTOKEN") {
          def.type = AttributeDef::Type::kNmToken;
        } else if (!type_tok.empty() && type_tok[0] == '(') {
          def.type = AttributeDef::Type::kEnumerated;
          std::string inner = type_tok.substr(1, type_tok.size() - 2);
          def.enum_values = SplitAndTrim(inner, '|');
        } else {
          return Status::ParseError("dtd: unsupported attribute type " +
                                    type_tok);
        }
        std::string default_tok = read_token();
        if (default_tok == "#REQUIRED") {
          def.default_kind = AttributeDef::Default::kRequired;
        } else if (default_tok == "#IMPLIED") {
          def.default_kind = AttributeDef::Default::kImplied;
        } else if (default_tok == "#FIXED") {
          def.default_kind = AttributeDef::Default::kFixed;
          std::string value_tok = read_token();
          if (value_tok.size() >= 2) {
            def.default_value = value_tok.substr(1, value_tok.size() - 2);
          }
        } else if (default_tok.size() >= 2 &&
                   (default_tok[0] == '"' || default_tok[0] == '\'')) {
          def.default_kind = AttributeDef::Default::kValue;
          def.default_value = default_tok.substr(1, default_tok.size() - 2);
        } else {
          return Status::ParseError("dtd: bad default for attribute " +
                                    attr_name);
        }
        dtd.attlists_[element].push_back(std::move(def));
      }
    } else {
      return Status::ParseError("dtd: expected <!ELEMENT or <!ATTLIST");
    }
  }
  return dtd;
}

Status Dtd::Validate(const Node& root) const {
  return ValidateElement(root);
}

Status Dtd::ValidateElement(const Node& element) const {
  auto it = elements_.find(element.name());
  if (it == elements_.end()) {
    return Status::InvalidArgument("dtd: undeclared element <" +
                                   element.name() + ">");
  }
  EASIA_RETURN_IF_ERROR(ValidateAttributes(element));
  EASIA_RETURN_IF_ERROR(ValidateContent(element, it->second));
  for (const auto& child : element.children()) {
    if (child->IsElement()) {
      EASIA_RETURN_IF_ERROR(ValidateElement(*child));
    }
  }
  return Status::OK();
}

Status Dtd::ValidateAttributes(const Node& element) const {
  auto it = attlists_.find(element.name());
  const std::vector<AttributeDef>* defs =
      it == attlists_.end() ? nullptr : &it->second;
  // Every present attribute must be declared and enum values must match.
  for (const Node::Attribute& attr : element.attributes()) {
    const AttributeDef* def = nullptr;
    if (defs != nullptr) {
      for (const AttributeDef& d : *defs) {
        if (d.name == attr.name) {
          def = &d;
          break;
        }
      }
    }
    if (def == nullptr) {
      return Status::InvalidArgument("dtd: undeclared attribute '" +
                                     attr.name + "' on <" + element.name() +
                                     ">");
    }
    if (def->type == AttributeDef::Type::kEnumerated) {
      bool found = false;
      for (const std::string& v : def->enum_values) {
        if (v == attr.value) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            "dtd: attribute '" + attr.name + "' on <" + element.name() +
            "> has value '" + attr.value + "' outside its enumeration");
      }
    }
    if (def->default_kind == AttributeDef::Default::kFixed &&
        attr.value != def->default_value) {
      return Status::InvalidArgument("dtd: #FIXED attribute '" + attr.name +
                                     "' must be '" + def->default_value + "'");
    }
  }
  // Required attributes must be present.
  if (defs != nullptr) {
    for (const AttributeDef& d : *defs) {
      if (d.default_kind == AttributeDef::Default::kRequired &&
          !element.HasAttr(d.name)) {
        return Status::InvalidArgument("dtd: missing required attribute '" +
                                       d.name + "' on <" + element.name() +
                                       ">");
      }
    }
  }
  return Status::OK();
}

Status Dtd::ValidateContent(const Node& element,
                            const ContentModel& model) const {
  std::vector<std::string> child_names;
  bool has_text = false;
  for (const auto& child : element.children()) {
    if (child->IsElement()) {
      child_names.push_back(child->name());
    } else if (child->IsText()) {
      bool ws_only = true;
      for (char c : child->text()) {
        if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
          ws_only = false;
          break;
        }
      }
      if (!ws_only) has_text = true;
    }
  }
  switch (model.kind) {
    case ContentModel::Kind::kAny:
      return Status::OK();
    case ContentModel::Kind::kEmpty:
      if (!child_names.empty() || has_text) {
        return Status::InvalidArgument("dtd: element <" + element.name() +
                                       "> declared EMPTY has content");
      }
      return Status::OK();
    case ContentModel::Kind::kMixed: {
      for (const std::string& name : child_names) {
        bool allowed = false;
        for (const std::string& m : model.mixed_names) {
          if (m == name) {
            allowed = true;
            break;
          }
        }
        if (!allowed) {
          return Status::InvalidArgument("dtd: element <" + name +
                                         "> not allowed inside mixed <" +
                                         element.name() + ">");
        }
      }
      return Status::OK();
    }
    case ContentModel::Kind::kChildren: {
      if (has_text) {
        return Status::InvalidArgument("dtd: text not allowed inside <" +
                                       element.name() + ">");
      }
      std::set<size_t> ends =
          MatchParticle(*model.particle, child_names, {0});
      if (ends.count(child_names.size()) == 0) {
        return Status::InvalidArgument(
            "dtd: children of <" + element.name() +
            "> do not match content model " + model.particle->ToString());
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

std::string_view XuisDtdText() {
  static constexpr std::string_view kXuisDtd = R"DTD(
<!-- EASIA XML User Interface Specification (XUIS) document type. -->
<!ELEMENT xuis (table+)>
<!ATTLIST xuis database CDATA #REQUIRED
               version CDATA #IMPLIED
               user CDATA #IMPLIED>
<!ELEMENT table (tablealias?, column+)>
<!ATTLIST table name CDATA #REQUIRED
                primaryKey CDATA #IMPLIED
                hidden (true|false) "false">
<!ELEMENT tablealias (#PCDATA)>
<!ELEMENT column (columnalias?, type, pk?, fk?, samples?, operation*,
                  operationchain*, upload?)>
<!ATTLIST column name CDATA #REQUIRED
                 colid CDATA #REQUIRED
                 hidden (true|false) "false">
<!ELEMENT columnalias (#PCDATA)>
<!ELEMENT type ((INTEGER|DOUBLE|VARCHAR|TIMESTAMP|BLOB|CLOB|DATALINK), size?)>
<!ELEMENT INTEGER EMPTY>
<!ELEMENT DOUBLE EMPTY>
<!ELEMENT VARCHAR EMPTY>
<!ELEMENT TIMESTAMP EMPTY>
<!ELEMENT BLOB EMPTY>
<!ELEMENT CLOB EMPTY>
<!ELEMENT DATALINK EMPTY>
<!ELEMENT size (#PCDATA)>
<!ELEMENT pk (refby*)>
<!ELEMENT refby EMPTY>
<!ATTLIST refby tablecolumn CDATA #REQUIRED>
<!ELEMENT fk EMPTY>
<!ATTLIST fk tablecolumn CDATA #REQUIRED
             substcolumn CDATA #IMPLIED
             userdefined (true|false) "false">
<!ELEMENT samples (sample*)>
<!ELEMENT sample (#PCDATA)>
<!ELEMENT operation (if?, location, description?, parameters?)>
<!ATTLIST operation name CDATA #REQUIRED
                    type CDATA #IMPLIED
                    filename CDATA #IMPLIED
                    format CDATA #IMPLIED
                    guest.access (true|false) "false"
                    column (true|false) "false">
<!ELEMENT if (condition+)>
<!ELEMENT condition (eq|ne|lt|gt|like)>
<!ATTLIST condition colid CDATA #REQUIRED>
<!ELEMENT eq (#PCDATA)>
<!ELEMENT ne (#PCDATA)>
<!ELEMENT lt (#PCDATA)>
<!ELEMENT gt (#PCDATA)>
<!ELEMENT like (#PCDATA)>
<!ELEMENT location (database.result|URL)>
<!ELEMENT database.result (condition*)>
<!ATTLIST database.result colid CDATA #REQUIRED>
<!ELEMENT URL (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT parameters (param+)>
<!ELEMENT param (variable)>
<!ELEMENT variable (description?, (select|input+|text))>
<!ELEMENT select (option+)>
<!ATTLIST select name CDATA #REQUIRED
                 size CDATA #IMPLIED>
<!ELEMENT option (#PCDATA)>
<!ATTLIST option value CDATA #REQUIRED>
<!ELEMENT input (#PCDATA)>
<!ATTLIST input type CDATA #REQUIRED
                name CDATA #REQUIRED
                value CDATA #REQUIRED>
<!ELEMENT text EMPTY>
<!ATTLIST text name CDATA #REQUIRED
               default CDATA #IMPLIED>
<!ELEMENT operationchain (stepref+)>
<!ATTLIST operationchain name CDATA #REQUIRED
                         description CDATA #IMPLIED
                         guest.access (true|false) "false">
<!ELEMENT stepref EMPTY>
<!ATTLIST stepref operation CDATA #REQUIRED>
<!ELEMENT upload (if?)>
<!ATTLIST upload type CDATA #REQUIRED
                 format CDATA #REQUIRED
                 guest.access (true|false) "false"
                 column (true|false) "false">
)DTD";
  return kXuisDtd;
}

}  // namespace easia::xml
