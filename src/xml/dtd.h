#ifndef EASIA_XML_DTD_H_
#define EASIA_XML_DTD_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/node.h"

namespace easia::xml {

/// A content particle in an ELEMENT declaration: a name, a sequence (a,b)
/// or a choice (a|b), each with an occurrence indicator (?, *, +).
struct Particle {
  enum class Kind { kName, kSequence, kChoice };
  enum class Occurrence { kOne, kOptional, kZeroOrMore, kOneOrMore };

  Kind kind = Kind::kName;
  Occurrence occurrence = Occurrence::kOne;
  std::string name;  // for kName
  std::vector<std::unique_ptr<Particle>> children;

  std::string ToString() const;
};

/// Content model of an element type.
struct ContentModel {
  enum class Kind { kEmpty, kAny, kMixed, kChildren };

  Kind kind = Kind::kAny;
  /// For kMixed: element names allowed to interleave with #PCDATA.
  std::vector<std::string> mixed_names;
  /// For kChildren.
  std::unique_ptr<Particle> particle;
};

/// One attribute definition in an ATTLIST declaration.
struct AttributeDef {
  enum class Type { kCData, kId, kIdRef, kNmToken, kEnumerated };
  enum class Default { kRequired, kImplied, kFixed, kValue };

  std::string name;
  Type type = Type::kCData;
  std::vector<std::string> enum_values;  // for kEnumerated
  Default default_kind = Default::kImplied;
  std::string default_value;  // for kFixed / kValue
};

/// A parsed Document Type Definition (the subset of XML 1.0 DTDs that the
/// EASIA XUIS DTD uses: ELEMENT and ATTLIST declarations, comments).
class Dtd {
 public:
  /// Parses DTD text (the internal subset, or a standalone .dtd file body).
  static Result<Dtd> Parse(std::string_view text);

  /// Validates `root` against this DTD: every element must be declared, its
  /// children must match the content model, required attributes must be
  /// present, attributes must be declared, and enumerated attributes must
  /// take one of their allowed values.
  Status Validate(const Node& root) const;

  bool HasElement(std::string_view name) const {
    return elements_.find(std::string(name)) != elements_.end();
  }

  const std::map<std::string, ContentModel>& elements() const {
    return elements_;
  }
  const std::map<std::string, std::vector<AttributeDef>>& attlists() const {
    return attlists_;
  }

 private:
  Status ValidateElement(const Node& element) const;
  Status ValidateAttributes(const Node& element) const;
  Status ValidateContent(const Node& element, const ContentModel& model) const;

  std::map<std::string, ContentModel> elements_;
  std::map<std::string, std::vector<AttributeDef>> attlists_;
};

/// The EASIA XUIS document type definition (see DESIGN.md / the paper's
/// "Default XUIS conforms to a DTD that we have created").
std::string_view XuisDtdText();

}  // namespace easia::xml

#endif  // EASIA_XML_DTD_H_
