#ifndef EASIA_XML_PARSER_H_
#define EASIA_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/node.h"

namespace easia::xml {

/// Parses an XML document. Supports: XML declaration, DOCTYPE with internal
/// subset capture, elements, attributes (single/double quoted), text,
/// CDATA, comments, processing instructions (skipped), the five predefined
/// entities and numeric character references. Errors carry line:column.
Result<Document> Parse(std::string_view input);

/// Parses a fragment that must consist of a single element (convenience for
/// tests and XUIS snippets).
Result<std::unique_ptr<Node>> ParseElement(std::string_view input);

}  // namespace easia::xml

#endif  // EASIA_XML_PARSER_H_
