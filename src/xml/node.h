#ifndef EASIA_XML_NODE_H_
#define EASIA_XML_NODE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace easia::xml {

/// A node in an XML document tree. EASIA uses a single node class with a
/// type tag rather than a class hierarchy: the XUIS manipulation code walks
/// and rewrites trees constantly and benefits from a uniform API.
class Node {
 public:
  enum class Type {
    kElement,
    kText,
    kCData,
    kComment,
  };

  /// An attribute; order of appearance is preserved.
  struct Attribute {
    std::string name;
    std::string value;
  };

  static std::unique_ptr<Node> Element(std::string name);
  static std::unique_ptr<Node> Text(std::string text);
  static std::unique_ptr<Node> CData(std::string text);
  static std::unique_ptr<Node> Comment(std::string text);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Type type() const { return type_; }
  bool IsElement() const { return type_ == Type::kElement; }
  bool IsText() const { return type_ == Type::kText || type_ == Type::kCData; }

  /// Element name (empty for non-elements).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Text content for text/CDATA/comment nodes.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // --- Attributes (elements only) ---

  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Returns the attribute value or "" if absent.
  std::string_view Attr(std::string_view name) const;
  bool HasAttr(std::string_view name) const;

  /// Sets (or replaces) an attribute.
  void SetAttr(std::string_view name, std::string_view value);
  void RemoveAttr(std::string_view name);

  // --- Children (elements only) ---

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }

  /// Appends a child and returns a raw pointer to it (owned by this node).
  Node* AddChild(std::unique_ptr<Node> child);

  /// Convenience: appends `<name>` and returns it.
  Node* AddElement(std::string name);

  /// Convenience: appends `<name>text</name>` and returns the element.
  Node* AddElementWithText(std::string name, std::string text);

  /// Appends a text child.
  Node* AddText(std::string text);

  /// First child element with the given name, or nullptr.
  const Node* FindChild(std::string_view name) const;
  Node* FindChild(std::string_view name);

  /// All child elements with the given name.
  std::vector<const Node*> FindChildren(std::string_view name) const;

  /// All child elements (any name).
  std::vector<const Node*> ChildElements() const;

  /// Concatenated text of direct text/CDATA children.
  std::string InnerText() const;

  /// Text of the first child element `name`, or "" when absent. Mirrors the
  /// common XUIS pattern `<tablealias>Author</tablealias>`.
  std::string ChildText(std::string_view name) const;

  /// Removes all children with the given element name. Returns count.
  size_t RemoveChildren(std::string_view name);

  /// Deep copy.
  std::unique_ptr<Node> Clone() const;

  /// Number of element descendants including this node (for stats/tests).
  size_t CountElements() const;

 private:
  explicit Node(Type type) : type_(type) {}

  Type type_;
  std::string name_;
  std::string text_;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// A parsed document: optional XML declaration data, optional DOCTYPE
/// information, and a single root element.
struct Document {
  std::string version = "1.0";
  std::string encoding;
  /// DOCTYPE name as declared (e.g. "xuis"); empty when absent.
  std::string doctype_name;
  /// Raw internal DTD subset text (between '[' and ']'), if present.
  std::string internal_dtd;
  std::unique_ptr<Node> root;
};

}  // namespace easia::xml

#endif  // EASIA_XML_NODE_H_
