#ifndef EASIA_CORE_TURBULENCE_SETUP_H_
#define EASIA_CORE_TURBULENCE_SETUP_H_

#include <string>
#include <vector>

#include "core/archive.h"
#include "turbulence/tbf.h"

namespace easia::core {

/// The paper's five-table UK Turbulence Consortium schema:
/// AUTHOR, SIMULATION, RESULT_FILE, CODE_FILE, VISUALISATION_FILE.
Status CreateTurbulenceSchema(Archive* archive);

/// One archived simulation with its datasets.
struct SeededSimulation {
  std::string simulation_key;
  std::string author_key;
  std::vector<std::string> dataset_urls;  // stored DATALINK values
};

struct SeedOptions {
  /// File-server hosts to archive datasets on (round-robin). Must already
  /// be registered with the archive.
  std::vector<std::string> hosts;
  size_t simulations = 2;
  size_t timesteps_per_simulation = 3;
  /// Grid for materialised datasets (small; real bytes on the VFS).
  size_t grid_n = 16;
  /// When true, datasets are sparse files of paper-faithful size instead.
  bool sparse = false;
  uint64_t sparse_bytes = turb::kLargeSimulationBytes;
};

/// Populates authors, simulations, result files (archiving TBF datasets on
/// the file servers where they were "generated"), and registers the
/// GetImage post-processing code in CODE_FILE.
Result<std::vector<SeededSimulation>> SeedTurbulenceData(
    Archive* archive, const SeedOptions& options);

/// The paper's GetImage `<operation>` spec attached to
/// RESULT_FILE.DOWNLOAD_RESULT: EaScript bundle archived as a CODE_FILE
/// DATALINK, guarded on SIMULATION_KEY, with the slice/component parameter
/// form from the paper.
Status AttachGetImageOperation(Archive* archive,
                               const std::string& simulation_key,
                               size_t grid_n);

/// Attaches the native operation suite (FieldStats, SliceCsv, Subsample,
/// KineticEnergy) to RESULT_FILE.DOWNLOAD_RESULT with no row guard.
Status AttachNativeOperations(Archive* archive);

/// Attaches a `<upload>` authorisation for EaScript code on
/// RESULT_FILE.DOWNLOAD_RESULT (authorised users only).
Status AttachCodeUpload(Archive* archive);

/// Registers an NCSA-SDB-style URL operation served by an endpoint on
/// `host`, applying to RESULT_FILE rows whose FILE_FORMAT = 'TBF'.
Status AttachSdbUrlOperation(Archive* archive, const std::string& host);

/// The EaScript source of the GetImage bundle (exposed for tests).
std::string GetImageScriptSource();

}  // namespace easia::core

#endif  // EASIA_CORE_TURBULENCE_SETUP_H_
