#include "core/archive.h"

#include "fileserver/url.h"

namespace easia::core {

Archive::Archive(Options options)
    : options_(std::move(options)), network_(options_.start_epoch) {
  database_ = std::make_unique<db::Database>(options_.name,
                                             options_.db_options);
  med_ = std::make_unique<med::DataLinkManager>(
      &fleet_, &network_.clock(), options_.token_secret,
      options_.token_ttl_seconds);
  database_->set_coordinator(med_.get());
  backups_ = std::make_unique<med::BackupManager>(database_.get(), med_.get(),
                                                  &fleet_);
  engine_ = std::make_unique<ops::OperationEngine>(database_.get(), &fleet_,
                                                   &network_);
  jobs_ = std::make_unique<easia::jobs::JobScheduler>(
      engine_.get(), &xuis_, &network_.clock(), options_.job_options);
  (void)jobs_->Recover();
  sessions_ = std::make_unique<web::SessionManager>(
      &users_, &network_.clock(), options_.session_timeout_seconds);
  if (options_.render_cache_bytes > 0) {
    web::RenderCache::Options cache_options;
    cache_options.max_bytes = options_.render_cache_bytes;
    cache_options.max_age_seconds = options_.token_ttl_seconds / 2;
    cache_options.clock = &network_.clock();
    render_cache_ = std::make_unique<web::RenderCache>(cache_options);
  }
  web::ArchiveWebServer::Deps deps;
  deps.database = database_.get();
  deps.xuis = &xuis_;
  deps.fleet = &fleet_;
  deps.engine = engine_.get();
  deps.users = &users_;
  deps.sessions = sessions_.get();
  deps.jobs = jobs_.get();
  deps.cache = render_cache_.get();
  web_ = std::make_unique<web::ArchiveWebServer>(deps);
  // Database host participates in the network (metadata/query traffic).
  sim::HostSpec db_host;
  db_host.name = options_.db_host;
  db_host.processing_mb_per_sec = 100.0;
  network_.AddHost(db_host);
  // Guests cannot obtain download tokens (paper demo restriction).
  med_->set_read_privilege_check([this](const std::string& user) {
    Result<web::User> u = users_.GetUser(user);
    if (!u.ok()) return user == "system";  // internal callers
    return u->CanDownload();
  });
}

Archive::~Archive() = default;

fs::FileServer* Archive::AddFileServer(const std::string& host,
                                       double constant_mbps,
                                       double processing_mb_per_sec) {
  fs::FileServer* server = fleet_.AddServer(host);
  sim::HostSpec spec;
  spec.name = host;
  spec.processing_mb_per_sec = processing_mb_per_sec;
  network_.AddHost(spec);
  if (constant_mbps > 0) {
    network_.AddSymmetricLink(options_.db_host, host,
                              sim::BandwidthSchedule::Constant(constant_mbps));
  } else {
    // Paper-calibrated asymmetric schedules: traffic towards the archive
    // core is slow, traffic out of it is faster, both time-of-day shaped.
    network_.AddLink(host, options_.db_host, sim::ToSouthamptonSchedule());
    network_.AddLink(options_.db_host, host, sim::FromSouthamptonSchedule());
  }
  server->vfs().set_clock([this]() { return network_.Now(); });
  // Make sure the SQL/MED agent exists on the host.
  (void)med_->EnsureLinker(host);
  return server;
}

void Archive::AddClientHost(const std::string& host, double constant_mbps) {
  sim::HostSpec spec;
  spec.name = host;
  spec.processing_mb_per_sec = 25.0;
  network_.AddHost(spec);
  for (const std::string& server_host : fleet_.Hosts()) {
    if (constant_mbps > 0) {
      network_.AddSymmetricLink(server_host, host,
                                sim::BandwidthSchedule::Constant(
                                    constant_mbps));
    } else {
      network_.AddLink(host, server_host, sim::ToSouthamptonSchedule());
      network_.AddLink(server_host, host, sim::FromSouthamptonSchedule());
    }
  }
  if (constant_mbps > 0) {
    network_.AddSymmetricLink(options_.db_host, host,
                              sim::BandwidthSchedule::Constant(constant_mbps));
  } else {
    network_.AddLink(host, options_.db_host, sim::ToSouthamptonSchedule());
    network_.AddLink(options_.db_host, host, sim::FromSouthamptonSchedule());
  }
}

Result<db::QueryResult> Archive::Execute(const std::string& sql,
                                         const std::string& user) {
  db::ExecContext ctx;
  ctx.user = user;
  return database_->Execute(sql, ctx);
}

Status Archive::InitializeXuis(const xuis::GeneratorOptions& options) {
  EASIA_ASSIGN_OR_RETURN(xuis::XuisSpec spec,
                         xuis::GenerateDefaultXuis(*database_, options));
  xuis_.SetDefault(std::move(spec));
  return Status::OK();
}

Status Archive::AddUser(const std::string& name, const std::string& password,
                        web::UserRole role) {
  return users_.AddUser(name, password, role);
}

Result<std::string> Archive::Login(const std::string& user,
                                   const std::string& password) {
  return sessions_->Login(user, password);
}

web::HttpResponse Archive::Get(const std::string& session_id,
                               const std::string& path,
                               const fs::HttpParams& params) {
  web::HttpRequest request;
  request.path = path;
  request.params = params;
  request.session_id = session_id;
  return web_->Handle(request);
}

Result<double> Archive::Download(const std::string& url,
                                 const std::string& client_host) {
  EASIA_ASSIGN_OR_RETURN(auto resolved, fleet_.Resolve(url));
  fs::FileServer* server = resolved.first;
  const fs::FileUrl& parsed = resolved.second;
  // The file server enforces READ PERMISSION DB via its gate.
  std::string request_path = parsed.Directory();
  if (!parsed.token.empty()) request_path += parsed.token + ";";
  request_path += parsed.filename;
  EASIA_ASSIGN_OR_RETURN(fs::GetResult got, server->Get(request_path));
  EASIA_ASSIGN_OR_RETURN(
      sim::TransferRecord record,
      network_.Transfer(parsed.host, client_host, got.stat.size));
  return record.duration_seconds;
}

}  // namespace easia::core
