#include "core/archive.h"

#include "fileserver/url.h"

namespace easia::core {

Archive::Archive(Options options)
    : options_(std::move(options)), network_(options_.start_epoch) {
  database_ = std::make_unique<db::Database>(options_.name,
                                             options_.db_options);
  med_ = std::make_unique<med::DataLinkManager>(
      &fleet_, &network_.clock(), options_.token_secret,
      options_.token_ttl_seconds);
  database_->set_coordinator(med_.get());
  backups_ = std::make_unique<med::BackupManager>(database_.get(), med_.get(),
                                                  &fleet_);
  engine_ = std::make_unique<ops::OperationEngine>(database_.get(), &fleet_,
                                                   &network_);
  jobs_ = std::make_unique<easia::jobs::JobScheduler>(
      engine_.get(), &xuis_, &network_.clock(), options_.job_options);
  (void)jobs_->Recover();
  if (options_.obs.enabled) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    obs::Tracer::Options tracer_options;
    tracer_options.clock = &network_.clock();
    tracer_options.ring_capacity = options_.obs.trace_ring_capacity;
    tracer_options.slow_threshold_seconds =
        options_.obs.slow_request_threshold_seconds;
    tracer_options.slow_log_capacity = options_.obs.slow_log_capacity;
    tracer_options.metrics = metrics_.get();
    tracer_ = std::make_unique<obs::Tracer>(tracer_options);
    database_->set_tracer(tracer_.get());
    database_->set_metrics_registry(metrics_.get());
    jobs_->set_tracer(tracer_.get());
  }
  sessions_ = std::make_unique<web::SessionManager>(
      &users_, &network_.clock(), options_.session_timeout_seconds);
  if (options_.render_cache_bytes > 0) {
    web::RenderCache::Options cache_options;
    cache_options.max_bytes = options_.render_cache_bytes;
    cache_options.max_age_seconds = options_.token_ttl_seconds / 2;
    cache_options.clock = &network_.clock();
    render_cache_ = std::make_unique<web::RenderCache>(cache_options);
  }
  web::ArchiveWebServer::Deps deps;
  deps.database = database_.get();
  deps.xuis = &xuis_;
  deps.fleet = &fleet_;
  deps.engine = engine_.get();
  deps.users = &users_;
  deps.sessions = sessions_.get();
  deps.jobs = jobs_.get();
  deps.cache = render_cache_.get();
  deps.metrics = metrics_.get();
  deps.tracer = tracer_.get();
  web_ = std::make_unique<web::ArchiveWebServer>(deps);
  // After every sampled component exists (notably the render cache).
  if (metrics_ != nullptr) RegisterCollectors();
  // Database host participates in the network (metadata/query traffic).
  sim::HostSpec db_host;
  db_host.name = options_.db_host;
  db_host.processing_mb_per_sec = 100.0;
  network_.AddHost(db_host);
  // Guests cannot obtain download tokens (paper demo restriction).
  med_->set_read_privilege_check([this](const std::string& user) {
    Result<web::User> u = users_.GetUser(user);
    if (!u.ok()) return user == "system";  // internal callers
    return u->CanDownload();
  });
}

Archive::~Archive() = default;

void Archive::RegisterCollectors() {
  using obs::Labels;
  using obs::MetricsRegistry;
  using Samples = std::vector<std::pair<Labels, double>>;
  obs::MetricsRegistry* m = metrics_.get();
  // The components keep their own atomic counters as the single source of
  // truth; these families sample them at collect time, so /metrics and
  // /stats always agree with the component introspection APIs.
  (void)m->RegisterCallback(
      "easia_db_statements_total", "SQL statements executed",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        return {{{}, static_cast<double>(database_->stats().statements)}};
      });
  (void)m->RegisterCallback(
      "easia_db_queries_total", "SELECT statements executed",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        return {{{}, static_cast<double>(database_->stats().queries)}};
      });
  (void)m->RegisterCallback(
      "easia_db_rows_total", "Rows changed by DML, by operation",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        db::DatabaseStats ds = database_->stats();
        return {{{{"op", "deleted"}}, static_cast<double>(ds.rows_deleted)},
                {{{"op", "inserted"}}, static_cast<double>(ds.rows_inserted)},
                {{{"op", "updated"}}, static_cast<double>(ds.rows_updated)}};
      });
  (void)m->RegisterCallback(
      "easia_db_txns_total", "Transactions finished, by outcome",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        db::DatabaseStats ds = database_->stats();
        return {
            {{{"outcome", "aborted"}}, static_cast<double>(ds.txn_aborts)},
            {{{"outcome", "committed"}}, static_cast<double>(ds.txn_commits)}};
      });
  (void)m->RegisterCallback(
      "easia_db_commit_epoch", "Monotonic commit epoch (cache validator)",
      MetricsRegistry::CallbackKind::kGauge, [this]() -> Samples {
        return {{{}, static_cast<double>(database_->commit_epoch())}};
      });
  (void)m->RegisterCallback(
      "easia_db_bulk_chunks_total", "COPY bulk-ingest chunks committed",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        return {{{}, static_cast<double>(database_->stats().bulk_chunks)}};
      });
  // Storage-engine gauges, sampled per table at collect time. Catalog
  // iteration yields sorted names, so exposition order is stable.
  (void)m->RegisterCallback(
      "easia_db_table_rows", "Rows stored, by table",
      MetricsRegistry::CallbackKind::kGauge, [this]() -> Samples {
        Samples out;
        for (const std::string& name : database_->catalog().TableNames()) {
          Result<const db::Table*> t = database_->GetTable(name);
          if (!t.ok()) continue;
          out.push_back({{{"table", name}},
                         static_cast<double>((*t)->GetStorageStats().rows)});
        }
        return out;
      });
  (void)m->RegisterCallback(
      "easia_db_columnar_bytes", "Columnar page bytes, by table",
      MetricsRegistry::CallbackKind::kGauge, [this]() -> Samples {
        Samples out;
        for (const std::string& name : database_->catalog().TableNames()) {
          Result<const db::Table*> t = database_->GetTable(name);
          if (!t.ok()) continue;
          db::Table::StorageStats ss = (*t)->GetStorageStats();
          if (!ss.columnar) continue;
          out.push_back(
              {{{"table", name}}, static_cast<double>(ss.columnar_bytes)});
        }
        return out;
      });
  (void)m->RegisterCallback(
      "easia_db_radix_index", "Radix prefix-index size, by table and unit",
      MetricsRegistry::CallbackKind::kGauge, [this]() -> Samples {
        Samples out;
        for (const std::string& name : database_->catalog().TableNames()) {
          Result<const db::Table*> t = database_->GetTable(name);
          if (!t.ok()) continue;
          db::Table::StorageStats ss = (*t)->GetStorageStats();
          if (!ss.columnar) continue;
          out.push_back({{{"table", name}, {"unit", "bytes"}},
                         static_cast<double>(ss.radix_bytes)});
          out.push_back({{{"table", name}, {"unit", "nodes"}},
                         static_cast<double>(ss.radix_nodes)});
        }
        return out;
      });
  if (render_cache_ != nullptr) {
    (void)m->RegisterCallback(
        "easia_render_cache_events_total", "Rendered-page cache events",
        MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
          web::RenderCacheStats cs = render_cache_->stats();
          return {
              {{{"event", "eviction"}}, static_cast<double>(cs.evictions)},
              {{{"event", "hit"}}, static_cast<double>(cs.hits)},
              {{{"event", "invalidation"}},
               static_cast<double>(cs.invalidations)},
              {{{"event", "miss"}}, static_cast<double>(cs.misses)}};
        });
    (void)m->RegisterCallback(
        "easia_render_cache_entries", "Rendered pages currently cached",
        MetricsRegistry::CallbackKind::kGauge, [this]() -> Samples {
          return {{{},
                   static_cast<double>(render_cache_->stats().entries)}};
        });
    (void)m->RegisterCallback(
        "easia_render_cache_bytes", "Bytes held by the render cache",
        MetricsRegistry::CallbackKind::kGauge, [this]() -> Samples {
          return {{{}, static_cast<double>(render_cache_->stats().bytes)}};
        });
  }
  (void)m->RegisterCallback(
      "easia_tokens_total", "DATALINK access-token events",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        med::TokenManager& tokens = med_->tokens();
        return {
            {{{"event", "issued"}}, static_cast<double>(tokens.issued())},
            {{{"event", "rejected"}}, static_cast<double>(tokens.rejected())},
            {{{"event", "validated"}},
             static_cast<double>(tokens.validated_ok())}};
      });
  (void)m->RegisterCallback(
      "easia_jobs_total", "Batch-job scheduler events",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        return {
            {{{"event", "executed"}}, static_cast<double>(jobs_->executed())},
            {{{"event", "failed"}}, static_cast<double>(jobs_->failed())},
            {{{"event", "journal_error"}},
             static_cast<double>(jobs_->journal_errors())},
            {{{"event", "retried"}}, static_cast<double>(jobs_->retries())},
            {{{"event", "succeeded"}},
             static_cast<double>(jobs_->succeeded())}};
      });
  (void)m->RegisterCallback(
      "easia_jobs_queued", "Jobs by live queue state",
      MetricsRegistry::CallbackKind::kGauge, [this]() -> Samples {
        return {{{{"state", "open"}},
                 static_cast<double>(jobs_->queue().open_count())},
                {{{"state", "running"}},
                 static_cast<double>(jobs_->queue().running_count())}};
      });
  (void)m->RegisterCallback(
      "easia_engine_result_cache_entries", "Operation result-cache entries",
      MetricsRegistry::CallbackKind::kGauge, [this]() -> Samples {
        return {{{}, static_cast<double>(engine_->cache_size())}};
      });
  (void)m->RegisterCallback(
      "easia_engine_result_cache_evictions_total",
      "Operation result-cache evictions",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        return {{{}, static_cast<double>(engine_->cache_evictions())}};
      });
  (void)m->RegisterCallback(
      "easia_op_invocations_total", "Server-side operation invocations",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        Samples out;
        for (const auto& [name, stats] : engine_->stats()) {
          out.push_back(
              {{{"op", name}}, static_cast<double>(stats.invocations)});
        }
        return out;
      });
  (void)m->RegisterCallback(
      "easia_op_cache_hits_total", "Operation result-cache hits",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        Samples out;
        for (const auto& [name, stats] : engine_->stats()) {
          out.push_back(
              {{{"op", name}}, static_cast<double>(stats.cache_hits)});
        }
        return out;
      });
  (void)m->RegisterCallback(
      "easia_op_failures_total", "Operation failures",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        Samples out;
        for (const auto& [name, stats] : engine_->stats()) {
          out.push_back(
              {{{"op", name}}, static_cast<double>(stats.failures)});
        }
        return out;
      });
  (void)m->RegisterCallback(
      "easia_op_exec_seconds_total", "Modelled operation execution time",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        Samples out;
        for (const auto& [name, stats] : engine_->stats()) {
          out.push_back({{{"op", name}}, stats.total_exec_seconds});
        }
        return out;
      });
  (void)m->RegisterCallback(
      "easia_fileserver_retries_total",
      "Transient-error re-attempts, by file-server host",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        Samples out;
        for (const std::string& host : fleet_.Hosts()) {
          Result<fs::FileServer*> server = fleet_.GetServer(host);
          if (!server.ok()) continue;
          out.push_back({{{"host", host}},
                         static_cast<double>((*server)->retry_stats().retries)});
        }
        return out;
      });
  (void)m->RegisterCallback(
      "easia_fileserver_give_ups_total",
      "Operations that stayed transient past the retry budget, by host",
      MetricsRegistry::CallbackKind::kCounter, [this]() -> Samples {
        Samples out;
        for (const std::string& host : fleet_.Hosts()) {
          Result<fs::FileServer*> server = fleet_.GetServer(host);
          if (!server.ok()) continue;
          out.push_back(
              {{{"host", host}},
               static_cast<double>((*server)->retry_stats().give_ups)});
        }
        return out;
      });
}

fs::FileServer* Archive::AddFileServer(const std::string& host,
                                       double constant_mbps,
                                       double processing_mb_per_sec) {
  fs::FileServer* server = fleet_.AddServer(host);
  sim::HostSpec spec;
  spec.name = host;
  spec.processing_mb_per_sec = processing_mb_per_sec;
  network_.AddHost(spec);
  if (constant_mbps > 0) {
    network_.AddSymmetricLink(options_.db_host, host,
                              sim::BandwidthSchedule::Constant(constant_mbps));
  } else {
    // Paper-calibrated asymmetric schedules: traffic towards the archive
    // core is slow, traffic out of it is faster, both time-of-day shaped.
    network_.AddLink(host, options_.db_host, sim::ToSouthamptonSchedule());
    network_.AddLink(options_.db_host, host, sim::FromSouthamptonSchedule());
  }
  server->vfs().set_clock([this]() { return network_.Now(); });
  server->set_tracer(tracer_.get());
  // Make sure the SQL/MED agent exists on the host.
  (void)med_->EnsureLinker(host);
  return server;
}

void Archive::AddClientHost(const std::string& host, double constant_mbps) {
  sim::HostSpec spec;
  spec.name = host;
  spec.processing_mb_per_sec = 25.0;
  network_.AddHost(spec);
  for (const std::string& server_host : fleet_.Hosts()) {
    if (constant_mbps > 0) {
      network_.AddSymmetricLink(server_host, host,
                                sim::BandwidthSchedule::Constant(
                                    constant_mbps));
    } else {
      network_.AddLink(host, server_host, sim::ToSouthamptonSchedule());
      network_.AddLink(server_host, host, sim::FromSouthamptonSchedule());
    }
  }
  if (constant_mbps > 0) {
    network_.AddSymmetricLink(options_.db_host, host,
                              sim::BandwidthSchedule::Constant(constant_mbps));
  } else {
    network_.AddLink(host, options_.db_host, sim::ToSouthamptonSchedule());
    network_.AddLink(options_.db_host, host, sim::FromSouthamptonSchedule());
  }
}

Result<db::QueryResult> Archive::Execute(const std::string& sql,
                                         const std::string& user) {
  db::ExecContext ctx;
  ctx.user = user;
  return database_->Execute(sql, ctx);
}

Status Archive::InitializeXuis(const xuis::GeneratorOptions& options) {
  EASIA_ASSIGN_OR_RETURN(xuis::XuisSpec spec,
                         xuis::GenerateDefaultXuis(*database_, options));
  xuis_.SetDefault(std::move(spec));
  return Status::OK();
}

Status Archive::AddUser(const std::string& name, const std::string& password,
                        web::UserRole role) {
  return users_.AddUser(name, password, role);
}

Result<std::string> Archive::Login(const std::string& user,
                                   const std::string& password) {
  return sessions_->Login(user, password);
}

web::HttpResponse Archive::Get(const std::string& session_id,
                               const std::string& path,
                               const fs::HttpParams& params) {
  web::HttpRequest request;
  request.path = path;
  request.params = params;
  request.session_id = session_id;
  return web_->Handle(request);
}

Result<double> Archive::Download(const std::string& url,
                                 const std::string& client_host) {
  EASIA_ASSIGN_OR_RETURN(auto resolved, fleet_.Resolve(url));
  fs::FileServer* server = resolved.first;
  const fs::FileUrl& parsed = resolved.second;
  // The file server enforces READ PERMISSION DB via its gate.
  std::string request_path = parsed.Directory();
  if (!parsed.token.empty()) request_path += parsed.token + ";";
  request_path += parsed.filename;
  EASIA_ASSIGN_OR_RETURN(fs::GetResult got, server->Get(request_path));
  EASIA_ASSIGN_OR_RETURN(
      sim::TransferRecord record,
      network_.Transfer(parsed.host, client_host, got.stat.size));
  return record.duration_seconds;
}

}  // namespace easia::core
