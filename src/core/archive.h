#ifndef EASIA_CORE_ARCHIVE_H_
#define EASIA_CORE_ARCHIVE_H_

#include <memory>
#include <string>

#include "common/clock.h"
#include "db/database.h"
#include "fileserver/file_server.h"
#include "jobs/scheduler.h"
#include "med/backup.h"
#include "med/datalink_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/engine.h"
#include "sim/network.h"
#include "web/server.h"
#include "xuis/customize.h"
#include "xuis/generator.h"

namespace easia::core {

/// The assembled EASIA system: one database host plus any number of
/// file-server hosts, wired together with the SQL/MED DataLink manager, the
/// bandwidth-simulated network, the operation engine and the web front end.
///
/// This is the library's primary entry point; the examples and benchmarks
/// drive everything through it.
class Archive {
 public:
  struct Options {
    std::string name = "EASIA";
    /// Host name of the database server (the paper's Southampton machine).
    std::string db_host = "db.soton.ac.uk";
    /// DATALINK access-token lifetime ("finite life determined by a
    /// database configuration parameter").
    double token_ttl_seconds = 300.0;
    std::string token_secret = "easia-demo-secret";
    /// Simulation start time (epoch seconds); 0h00 UTC by default so
    /// time-of-day bandwidth windows are predictable.
    double start_epoch = 0.0;
    /// Web session idle timeout.
    double session_timeout_seconds = 1800.0;
    /// Database persistence (empty = in-memory).
    db::DatabaseOptions db_options;
    /// Batch job queue: quotas, retry/backoff and the journal path
    /// (journal empty = queue is volatile). Recovery replays the journal
    /// at construction and re-enqueues jobs that were in flight.
    easia::jobs::SchedulerOptions job_options;
    /// Byte budget for the rendered-page cache (0 disables caching).
    /// Cached pages are validated against the database commit epoch and
    /// the XUIS revision; token-bearing pages additionally age out at
    /// half the DATALINK token TTL so no cached link outlives its token.
    size_t render_cache_bytes = 8 << 20;
    /// Observability: metrics registry (backs /metrics and /stats) plus
    /// the request tracer threaded through web, database, render cache,
    /// job and file-server layers. Timing comes from the archive's
    /// ManualClock, so traces and latency histograms are deterministic.
    struct ObsOptions {
      bool enabled = true;
      /// Finished-span ring bound (oldest dropped first).
      size_t trace_ring_capacity = 2048;
      /// Requests/spans at or past this duration hit the slow-request
      /// log; 0 disables the log.
      double slow_request_threshold_seconds = 0;
      size_t slow_log_capacity = 128;
    };
    ObsOptions obs;
  };

  Archive() : Archive(Options()) {}
  explicit Archive(Options options);
  ~Archive();

  Archive(const Archive&) = delete;
  Archive& operator=(const Archive&) = delete;

  // --- Topology -----------------------------------------------------------

  /// Registers a file-server host and places it in the simulated network.
  /// Links to/from the database host use the paper's measured asymmetric
  /// schedules unless `constant_mbps > 0` supplies a flat rate.
  fs::FileServer* AddFileServer(const std::string& host,
                                double constant_mbps = 0.0,
                                double processing_mb_per_sec = 50.0);

  /// Registers the (remote) user's machine for download-time modelling.
  void AddClientHost(const std::string& host, double constant_mbps = 0.0);

  // --- Database -----------------------------------------------------------

  Result<db::QueryResult> Execute(const std::string& sql,
                                  const std::string& user = "system");

  // --- XUIS ---------------------------------------------------------------

  /// Generates the default XUIS from the live catalogue and installs it as
  /// the registry default ("system is started by initialising ... with an
  /// XUIS").
  Status InitializeXuis(const xuis::GeneratorOptions& options = {});

  // --- Users & web --------------------------------------------------------

  Status AddUser(const std::string& name, const std::string& password,
                 web::UserRole role);
  /// Authenticates and returns a web session id.
  Result<std::string> Login(const std::string& user,
                            const std::string& password);
  web::HttpResponse Get(const std::string& session_id, const std::string& path,
                        const fs::HttpParams& params = {});

  // --- Downloads (bandwidth-modelled) --------------------------------------

  /// Simulates downloading the file behind `url` (token form) to
  /// `client_host`: validates the token at the file server, then computes
  /// the transfer over the network. Returns seconds taken.
  Result<double> Download(const std::string& url,
                          const std::string& client_host);

  // --- Component access ----------------------------------------------------

  db::Database& database() { return *database_; }
  fs::FileServerFleet& fleet() { return fleet_; }
  med::DataLinkManager& med() { return *med_; }
  med::BackupManager& backups() { return *backups_; }
  sim::Network& network() { return network_; }
  ops::OperationEngine& engine() { return *engine_; }
  easia::jobs::JobScheduler& jobs() { return *jobs_; }
  web::ArchiveWebServer& web() { return *web_; }
  web::RenderCache& render_cache() { return *render_cache_; }
  web::UserManager& users() { return users_; }
  web::SessionManager& sessions() { return *sessions_; }
  xuis::XuisRegistry& xuis() { return xuis_; }
  ManualClock& clock() { return network_.clock(); }
  const Options& options() const { return options_; }
  /// Null when Options::obs.enabled is false.
  obs::MetricsRegistry* metrics() { return metrics_.get(); }
  obs::Tracer* tracer() { return tracer_.get(); }

 private:
  /// Registers the pull-style registry families that sample component
  /// counters (database, caches, tokens, jobs, file servers) at collect
  /// time.
  void RegisterCollectors();

  Options options_;
  sim::Network network_;
  fs::FileServerFleet fleet_;
  std::unique_ptr<db::Database> database_;
  std::unique_ptr<med::DataLinkManager> med_;
  std::unique_ptr<med::BackupManager> backups_;
  std::unique_ptr<ops::OperationEngine> engine_;
  std::unique_ptr<easia::jobs::JobScheduler> jobs_;
  web::UserManager users_;
  std::unique_ptr<web::SessionManager> sessions_;
  xuis::XuisRegistry xuis_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<web::RenderCache> render_cache_;
  std::unique_ptr<web::ArchiveWebServer> web_;
};

}  // namespace easia::core

#endif  // EASIA_CORE_ARCHIVE_H_
