#include "core/turbulence_setup.h"

#include "common/string_util.h"
#include "ops/archive.h"
#include "turbulence/field.h"

namespace easia::core {

namespace {

constexpr const char* kSchemaSql[] = {
    "CREATE TABLE AUTHOR ("
    "  AUTHOR_KEY VARCHAR(30) NOT NULL,"
    "  NAME VARCHAR(80) NOT NULL,"
    "  ORGANISATION VARCHAR(120),"
    "  EMAIL VARCHAR(80),"
    "  PRIMARY KEY (AUTHOR_KEY))",

    "CREATE TABLE SIMULATION ("
    "  SIMULATION_KEY VARCHAR(30) NOT NULL,"
    "  AUTHOR_KEY VARCHAR(30) NOT NULL,"
    "  TITLE VARCHAR(200) NOT NULL,"
    "  DESCRIPTION CLOB,"
    "  GRID_SIZE INTEGER,"
    "  TIMESTEPS INTEGER,"
    "  REYNOLDS_NUMBER DOUBLE,"
    "  CREATED TIMESTAMP,"
    "  PRIMARY KEY (SIMULATION_KEY),"
    "  FOREIGN KEY (AUTHOR_KEY) REFERENCES AUTHOR (AUTHOR_KEY))",

    "CREATE TABLE RESULT_FILE ("
    "  FILE_NAME VARCHAR(120) NOT NULL,"
    "  SIMULATION_KEY VARCHAR(30) NOT NULL,"
    "  TIMESTEP INTEGER,"
    "  MEASUREMENT VARCHAR(30),"
    "  FILE_FORMAT VARCHAR(10),"
    "  FILE_SIZE INTEGER,"
    "  DOWNLOAD_RESULT DATALINK LINKTYPE URL FILE LINK CONTROL"
    "    INTEGRITY ALL READ PERMISSION DB WRITE PERMISSION BLOCKED"
    "    RECOVERY YES ON UNLINK RESTORE,"
    "  PRIMARY KEY (FILE_NAME, SIMULATION_KEY),"
    "  FOREIGN KEY (SIMULATION_KEY) REFERENCES SIMULATION (SIMULATION_KEY))",

    "CREATE TABLE CODE_FILE ("
    "  CODE_NAME VARCHAR(120) NOT NULL,"
    "  SIMULATION_KEY VARCHAR(30),"
    "  DESCRIPTION CLOB,"
    "  CODE_TYPE VARCHAR(20),"
    "  DOWNLOAD_CODE_FILE DATALINK LINKTYPE URL FILE LINK CONTROL"
    "    READ PERMISSION DB RECOVERY YES,"
    "  PRIMARY KEY (CODE_NAME),"
    "  FOREIGN KEY (SIMULATION_KEY) REFERENCES SIMULATION (SIMULATION_KEY))",

    "CREATE TABLE VISUALISATION_FILE ("
    "  VIS_NAME VARCHAR(120) NOT NULL,"
    "  SIMULATION_KEY VARCHAR(30) NOT NULL,"
    "  DESCRIPTION VARCHAR(200),"
    "  DOWNLOAD_VIS DATALINK LINKTYPE URL FILE LINK CONTROL"
    "    READ PERMISSION DB,"
    "  PRIMARY KEY (VIS_NAME, SIMULATION_KEY),"
    "  FOREIGN KEY (SIMULATION_KEY) REFERENCES SIMULATION (SIMULATION_KEY))",
};

std::string Quoted(const std::string& v) {
  return "'" + ReplaceAll(v, "'", "''") + "'";
}

}  // namespace

Status CreateTurbulenceSchema(Archive* archive) {
  for (const char* sql : kSchemaSql) {
    EASIA_RETURN_IF_ERROR(archive->Execute(sql).status());
  }
  return Status::OK();
}

Result<std::vector<SeededSimulation>> SeedTurbulenceData(
    Archive* archive, const SeedOptions& options) {
  if (options.hosts.empty()) {
    return Status::InvalidArgument("seed: need at least one file server");
  }
  std::vector<SeededSimulation> out;
  static const char* kNames[] = {"A. N. Author", "B. Researcher",
                                 "C. Scientist", "D. Modeller"};
  static const char* kOrgs[] = {"University of Southampton",
                                "Queen Mary & Westfield College",
                                "University of Manchester",
                                "Imperial College"};
  for (size_t s = 0; s < options.simulations; ++s) {
    SeededSimulation seeded;
    seeded.author_key = StrPrintf("A199901%08zu", s + 1);
    seeded.simulation_key = StrPrintf("S199901%08zu", s + 1);
    EASIA_RETURN_IF_ERROR(
        archive
            ->Execute(StrPrintf(
                "INSERT INTO AUTHOR (AUTHOR_KEY, NAME, ORGANISATION, EMAIL) "
                "VALUES (%s, %s, %s, %s)",
                Quoted(seeded.author_key).c_str(),
                Quoted(kNames[s % 4]).c_str(), Quoted(kOrgs[s % 4]).c_str(),
                Quoted(StrPrintf("author%zu@example.ac.uk", s)).c_str()))
            .status());
    EASIA_RETURN_IF_ERROR(
        archive
            ->Execute(StrPrintf(
                "INSERT INTO SIMULATION (SIMULATION_KEY, AUTHOR_KEY, TITLE, "
                "DESCRIPTION, GRID_SIZE, TIMESTEPS, REYNOLDS_NUMBER, CREATED)"
                " VALUES (%s, %s, %s, %s, %zu, %zu, %g, %zu)",
                Quoted(seeded.simulation_key).c_str(),
                Quoted(seeded.author_key).c_str(),
                Quoted(StrPrintf("Decaying Taylor-Green vortex run %zu",
                                 s + 1))
                    .c_str(),
                Quoted("Direct numerical simulation of homogeneous decaying "
                       "turbulence archived with EASIA.")
                    .c_str(),
                options.grid_n, options.timesteps_per_simulation, 1600.0,
                static_cast<size_t>(915465600 + s * 86400)))
            .status());
    for (size_t t = 0; t < options.timesteps_per_simulation; ++t) {
      const std::string& host = options.hosts[(s + t) % options.hosts.size()];
      EASIA_ASSIGN_OR_RETURN(fs::FileServer * server,
                             archive->fleet().GetServer(host));
      std::string url;
      uint64_t size_bytes = 0;
      turb::DatasetSpec spec;
      spec.simulation_key = seeded.simulation_key;
      spec.timestep = static_cast<uint32_t>(t);
      spec.grid_n = options.grid_n;
      spec.time = 0.5 * static_cast<double>(t);
      if (options.sparse) {
        // Declare a paper-scale sparse file directly.
        std::string path = StrPrintf("/archive/%s/%s",
                                     seeded.simulation_key.c_str(),
                                     spec.FileName().c_str());
        EASIA_RETURN_IF_ERROR(
            server->vfs().CreateSparseFile(path, options.sparse_bytes));
        url = "http://" + host + path;
        size_bytes = options.sparse_bytes;
      } else {
        spec.materialize = true;
        EASIA_ASSIGN_OR_RETURN(
            url, turb::ArchiveDataset(
                     server, "/archive/" + seeded.simulation_key, spec));
        size_bytes = spec.SizeBytes();
      }
      EASIA_RETURN_IF_ERROR(
          archive
              ->Execute(StrPrintf(
                  "INSERT INTO RESULT_FILE (FILE_NAME, SIMULATION_KEY, "
                  "TIMESTEP, MEASUREMENT, FILE_FORMAT, FILE_SIZE, "
                  "DOWNLOAD_RESULT) VALUES (%s, %s, %zu, 'u,v,w,p', 'TBF', "
                  "%llu, %s)",
                  Quoted(spec.FileName()).c_str(),
                  Quoted(seeded.simulation_key).c_str(), t,
                  static_cast<unsigned long long>(size_bytes),
                  Quoted(url).c_str()))
              .status());
      seeded.dataset_urls.push_back(url);
    }
    out.push_back(std::move(seeded));
  }
  return out;
}

std::string GetImageScriptSource() {
  return R"EA(# GetImage: extract a 2-D slice from a TBF dataset and render a PGM image.
# First command line parameter (arg(0)) is the dataset filename.
let f = arg(0);
let axis = param("slice");
if (axis == null) { axis = "x0"; }
let ax = substr(axis, 0, 1);
let idx = 0;
if (len(axis) > 1) { idx = num(substr(axis, 1, len(axis) - 1)); }
let comp = param("type");
if (comp == null) { comp = "u"; }
let n = tbf_n(f);
let s = tbf_slice(f, ax, idx, comp);
write("slice.pgm", pgm(s, n, n));
let stats = tbf_stats(f, comp);
print("GetImage: " + comp + "-slice " + ax + "=" + str(idx) +
      " of n=" + str(n) + " min=" + str(stats[0]) + " max=" + str(stats[1]));
)EA";
}

Status AttachGetImageOperation(Archive* archive,
                               const std::string& simulation_key,
                               size_t grid_n) {
  // Archive the code bundle (once) on the first file server and register it
  // in CODE_FILE, exactly as the paper stores GetImage.jar.
  std::vector<std::string> hosts = archive->fleet().Hosts();
  if (hosts.empty()) {
    return Status::FailedPrecondition("no file servers registered");
  }
  EASIA_ASSIGN_OR_RETURN(db::QueryResult existing,
                         archive->Execute(
                             "SELECT CODE_NAME FROM CODE_FILE WHERE "
                             "CODE_NAME = 'GetImage.jar'"));
  if (existing.rows.empty()) {
    EASIA_ASSIGN_OR_RETURN(fs::FileServer * server,
                           archive->fleet().GetServer(hosts[0]));
    std::string bundle =
        ops::PackArchive({{"GetImage.ea", GetImageScriptSource()}});
    EASIA_RETURN_IF_ERROR(
        server->vfs().WriteFile("/codes/GetImage.jar", bundle));
    EASIA_RETURN_IF_ERROR(
        archive
            ->Execute(StrPrintf(
                "INSERT INTO CODE_FILE (CODE_NAME, DESCRIPTION, CODE_TYPE, "
                "DOWNLOAD_CODE_FILE) VALUES ('GetImage.jar', "
                "'Slice visualisation code', 'EASCRIPT', "
                "'http://%s/codes/GetImage.jar')",
                hosts[0].c_str()))
            .status());
  }
  // Operation spec mirroring the paper's XUIS fragment.
  xuis::OperationSpec op;
  op.name = "GetImage";
  op.type = "EASCRIPT";
  op.filename = "GetImage.ea";
  op.format = "jar";
  op.guest_access = true;
  xuis::Condition guard;
  guard.colid = "RESULT_FILE.SIMULATION_KEY";
  guard.op = xuis::Condition::Op::kEq;
  guard.value = simulation_key;
  op.conditions.push_back(guard);
  op.location.kind = xuis::OperationLocation::Kind::kDatabaseResult;
  op.location.result_colid = "CODE_FILE.DOWNLOAD_CODE_FILE";
  xuis::Condition code_cond;
  code_cond.colid = "CODE_FILE.CODE_NAME";
  code_cond.op = xuis::Condition::Op::kEq;
  code_cond.value = "GetImage.jar";
  op.location.conditions.push_back(code_cond);
  op.description = "Extract and visualise a slice of the dataset";
  // Slice selector (paper: "Select the slice you wish to visualise").
  xuis::ParamSpec slice_param;
  slice_param.description = "Select the slice you wish to visualise:";
  slice_param.control = xuis::ParamSpec::Control::kSelect;
  slice_param.name = "slice";
  slice_param.select_size = 4;
  for (size_t i = 0; i < grid_n; i += grid_n >= 8 ? grid_n / 8 : 1) {
    double coord = static_cast<double>(i) / static_cast<double>(grid_n);
    slice_param.options.push_back({StrPrintf("x%zu", i),
                                   StrPrintf("x%zu=%.7g", i, coord)});
  }
  op.parameters.push_back(std::move(slice_param));
  // Component selector (paper: "Select velocity component or pressure").
  xuis::ParamSpec type_param;
  type_param.description = "Select velocity component or pressure:";
  type_param.control = xuis::ParamSpec::Control::kRadio;
  type_param.name = "type";
  type_param.options = {{"u", "u speed"},
                        {"v", "v speed"},
                        {"w", "w speed"},
                        {"p", "pressure"}};
  op.parameters.push_back(std::move(type_param));

  xuis::XuisCustomizer customizer(archive->xuis().MutableDefault());
  return customizer.AddOperation("RESULT_FILE.DOWNLOAD_RESULT", std::move(op));
}

Status AttachNativeOperations(Archive* archive) {
  xuis::XuisCustomizer customizer(archive->xuis().MutableDefault());
  for (const std::string& name : archive->engine().natives().Names()) {
    // The EaScript GetImage (database.result location) is attached
    // separately; skip the native twin to avoid duplicate links.
    if (name == "GetImage") continue;
    xuis::OperationSpec op;
    op.name = name;
    op.type = "NATIVE";
    op.guest_access = (name == "FieldStats" || name == "KineticEnergy");
    op.location.kind = xuis::OperationLocation::Kind::kUrl;
    op.location.url = "native:builtin";
    op.description = "Built-in post-processing code " + name;
    EASIA_RETURN_IF_ERROR(
        customizer.AddOperation("RESULT_FILE.DOWNLOAD_RESULT", op));
  }
  return Status::OK();
}

Status AttachCodeUpload(Archive* archive) {
  xuis::UploadSpec upload;
  upload.type = "EASCRIPT";
  upload.format = "ea";
  upload.guest_access = false;
  xuis::XuisCustomizer customizer(archive->xuis().MutableDefault());
  return customizer.SetUpload("RESULT_FILE.DOWNLOAD_RESULT",
                              std::move(upload));
}

Status AttachSdbUrlOperation(Archive* archive, const std::string& host) {
  EASIA_ASSIGN_OR_RETURN(fs::FileServer * server,
                         archive->fleet().GetServer(host));
  fs::FileServer* captured = server;
  server->RegisterEndpoint(
      "/servlet/SDBservlet",
      [captured](const fs::HttpParams& params) -> Result<std::string> {
        auto it = params.find("file");
        if (it == params.end()) {
          return Status::InvalidArgument("SDB: missing 'file' parameter");
        }
        EASIA_ASSIGN_OR_RETURN(fs::FileStat stat,
                               captured->vfs().Stat(it->second));
        std::string out = "NCSA Scientific Data Browser\n";
        out += StrPrintf("file: %s\nsize: %llu bytes\n", it->second.c_str(),
                         static_cast<unsigned long long>(stat.size));
        if (!stat.sparse) {
          EASIA_ASSIGN_OR_RETURN(std::string bytes,
                                 captured->vfs().ReadFile(it->second));
          Result<turb::TbfHeader> header = turb::ParseTbfHeader(bytes);
          if (header.ok()) {
            out += StrPrintf(
                "dataset: %ux%ux%u grid, timestep %u, t=%.4f, nu=%.4f\n",
                header->n, header->n, header->n, header->timestep,
                header->time, header->nu);
            out += "fields: u, v, w, p (float64)\n";
          }
        }
        return out;
      });
  xuis::OperationSpec op;
  op.name = "SDB";
  op.type = "";
  op.guest_access = true;
  xuis::Condition cond;
  cond.colid = "RESULT_FILE.FILE_FORMAT";
  cond.op = xuis::Condition::Op::kEq;
  cond.value = "TBF";
  op.conditions.push_back(cond);
  op.location.kind = xuis::OperationLocation::Kind::kUrl;
  op.location.url = "http://" + host + "/servlet/SDBservlet";
  op.description = "NCSA Scientific Data Browser";
  xuis::XuisCustomizer customizer(archive->xuis().MutableDefault());
  return customizer.AddOperation("RESULT_FILE.DOWNLOAD_RESULT", std::move(op));
}

}  // namespace easia::core
