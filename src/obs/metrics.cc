#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace easia::obs {

namespace {

/// Shared sinks returned on registration conflicts so instrumentation
/// never has to null-check (the bad registration is visible in tests via
/// the family's unchanged kind).
Counter* SinkCounter() {
  static Counter* sink = new Counter();
  return sink;
}
Gauge* SinkGauge() {
  static Gauge* sink = new Gauge();
  return sink;
}
Histogram* SinkHistogram() {
  static Histogram* sink = new Histogram({1.0});
  return sink;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EscapeHelp(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

Labels WithLe(const Labels& labels, const std::string& le) {
  Labels out = labels;
  out.emplace_back("le", le);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string FormatLabels(const Labels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += '"';
  }
  return out;
}

// --- Histogram -------------------------------------------------------------

std::vector<double> Histogram::LatencyBounds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    // Degenerate bounds would silently skew quantiles; collapse to a
    // defensible state instead of UB.
    if (bounds_[i + 1] <= bounds_[i]) {
      bounds_.resize(i + 1);
      break;
    }
  }
  if (bounds_.empty()) bounds_.push_back(1.0);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound admits v (Prometheus `le` semantics:
  // v <= bound); everything past the last bound lands in the +Inf
  // overflow bucket.
  size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target order statistic, 1-based.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * total));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    uint64_t before = cum;
    cum += counts[i];
    if (cum < rank) continue;
    if (i == bounds_.size()) return bounds_.back();  // overflow bucket
    double hi = bounds_[i];
    double lo = i == 0 ? std::min(0.0, hi) : bounds_[i - 1];
    double frac = static_cast<double>(rank - before) /
                  static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  return bounds_.back();
}

Status Histogram::MergeFrom(const Histogram& other) {
  if (other.bounds_ != bounds_) {
    return Status::InvalidArgument("histogram merge: bucket bounds differ");
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  double delta = other.sum();
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
  return Status::OK();
}

// --- MetricsRegistry -------------------------------------------------------

bool MetricsRegistry::ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool MetricsRegistry::ValidLabelName(std::string_view name) {
  if (name.empty() || name.substr(0, 2) == "__") return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

std::string MetricsRegistry::FormatValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return StrPrintf("%lld", static_cast<long long>(v));
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // 64 bytes always suffice for a double
  return std::string(buf, ptr);
}

MetricsRegistry::Family* MetricsRegistry::GetOrCreateFamily(
    std::string_view name, std::string_view help, Kind kind) {
  if (!ValidMetricName(name)) return nullptr;
  auto [it, inserted] = families_.try_emplace(std::string(name));
  Family& family = it->second;
  if (inserted) {
    family.kind = kind;
    family.help = std::string(help);
  } else if (family.kind != kind) {
    return nullptr;
  }
  return &family;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetOrCreateFamily(name, help, Kind::kCounter);
  if (family == nullptr) return SinkCounter();
  labels = SortedLabels(std::move(labels));
  Child& child = family->children[FormatLabels(labels)];
  if (child.counter == nullptr) {
    child.labels = std::move(labels);
    child.counter = std::make_unique<Counter>();
  }
  return child.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetOrCreateFamily(name, help, Kind::kGauge);
  if (family == nullptr) return SinkGauge();
  labels = SortedLabels(std::move(labels));
  Child& child = family->children[FormatLabels(labels)];
  if (child.gauge == nullptr) {
    child.labels = std::move(labels);
    child.gauge = std::make_unique<Gauge>();
  }
  return child.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> bounds,
                                         Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetOrCreateFamily(name, help, Kind::kHistogram);
  if (family == nullptr) return SinkHistogram();
  if (family->bounds.empty()) family->bounds = bounds;
  labels = SortedLabels(std::move(labels));
  Child& child = family->children[FormatLabels(labels)];
  if (child.histogram == nullptr) {
    child.labels = std::move(labels);
    // All children of one family share the family's bounds so their
    // bucket lines line up in the exposition.
    child.histogram = std::make_unique<Histogram>(family->bounds);
  }
  return child.histogram.get();
}

Status MetricsRegistry::RegisterCallback(std::string_view name,
                                         std::string_view help,
                                         CallbackKind kind, SampleFn fn) {
  if (!ValidMetricName(name)) {
    return Status::InvalidArgument("bad metric name: " + std::string(name));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(std::string(name));
  if (!inserted) {
    return Status::AlreadyExists("metric family exists: " +
                                 std::string(name));
  }
  Family& family = it->second;
  family.kind = Kind::kCallback;
  family.callback_kind = kind;
  family.help = std::string(help);
  family.fn = std::move(fn);
  return Status::OK();
}

void MetricsRegistry::AppendFamily(const std::string& name,
                                   const Family& family, std::string* out,
                                   std::vector<MetricSample>* samples) const {
  const char* type = "counter";
  switch (family.kind) {
    case Kind::kCounter: type = "counter"; break;
    case Kind::kGauge: type = "gauge"; break;
    case Kind::kHistogram: type = "histogram"; break;
    case Kind::kCallback:
      type = family.callback_kind == CallbackKind::kCounter ? "counter"
                                                            : "gauge";
      break;
  }
  if (out != nullptr) {
    *out += "# HELP " + name + " " + EscapeHelp(family.help) + "\n";
    *out += "# TYPE " + name + " " + type + "\n";
  }
  auto emit = [&](const std::string& sample_name, const Labels& labels,
                  double value) {
    if (out != nullptr) {
      std::string rendered = FormatLabels(labels);
      *out += sample_name;
      if (!rendered.empty()) *out += "{" + rendered + "}";
      *out += " " + FormatValue(value) + "\n";
    }
    if (samples != nullptr) samples->push_back({sample_name, labels, value});
  };
  if (family.kind == Kind::kCallback) {
    if (!family.fn) return;
    std::vector<std::pair<Labels, double>> pulled = family.fn();
    for (auto& [labels, value] : pulled) {
      emit(name, SortedLabels(std::move(labels)), value);
    }
    return;
  }
  for (const auto& [key, child] : family.children) {
    switch (family.kind) {
      case Kind::kCounter:
        emit(name, child.labels, static_cast<double>(child.counter->value()));
        break;
      case Kind::kGauge:
        emit(name, child.labels, child.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *child.histogram;
        std::vector<uint64_t> counts = h.BucketCounts();
        uint64_t cum = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cum += counts[i];
          emit(name + "_bucket",
               WithLe(child.labels, FormatValue(h.bounds()[i])),
               static_cast<double>(cum));
        }
        cum += counts.back();
        emit(name + "_bucket", WithLe(child.labels, "+Inf"),
             static_cast<double>(cum));
        emit(name + "_sum", child.labels, h.sum());
        emit(name + "_count", child.labels,
             static_cast<double>(h.count()));
        break;
      }
      case Kind::kCallback:
        break;
    }
  }
}

std::string MetricsRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    AppendFamily(name, family, &out, nullptr);
  }
  return out;
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  for (const auto& [name, family] : families_) {
    AppendFamily(name, family, nullptr, &samples);
  }
  return samples;
}

}  // namespace easia::obs
