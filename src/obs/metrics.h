#ifndef EASIA_OBS_METRICS_H_
#define EASIA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace easia::obs {

/// Sorted (key, value) label pairs identifying one child of a metric
/// family. Keys follow Prometheus rules ([a-zA-Z_][a-zA-Z0-9_]*); values
/// are free text (escaped on render). Keep cardinality bounded: route
/// names, table names, job states — never user ids, session ids or URLs
/// (DESIGN.md §4g).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing 64-bit counter. Lock-free; handles returned
/// by the registry stay valid for the registry's lifetime, so hot paths
/// resolve them once and increment forever.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable instantaneous value (queue depths, cache bytes).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// A fixed-bucket latency/size histogram: per-bucket atomic counters plus
/// a running sum and count. Buckets are defined by strictly increasing
/// upper bounds; an implicit +Inf overflow bucket catches everything past
/// the last bound. Recording is lock-free (one bucket increment, one count
/// increment, one CAS-add on the sum); quantile extraction walks the
/// bucket array and interpolates within the winning bucket.
class Histogram {
 public:
  /// Canonical latency bounds in seconds (sub-millisecond to 10s).
  static std::vector<double> LatencyBounds();
  /// `factor`-spaced exponential bounds: start, start*factor, ...
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t count);

  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; the final entry is the +Inf
  /// overflow bucket, so the vector is bounds().size() + 1 long.
  std::vector<uint64_t> BucketCounts() const;

  /// The value at quantile `q` in [0, 1], estimated by rank: the bucket
  /// holding the ceil(q * count)-th observation is found and the estimate
  /// interpolated linearly inside it, so the result is always within the
  /// winning bucket (one bucket-width of the exact order statistic). The
  /// overflow bucket reports its lower bound. Returns 0 when empty.
  double Quantile(double q) const;

  /// Adds `other`'s counts/sum into this histogram. Bucket bounds must be
  /// identical; merge is associative and commutative, so shard-local
  /// histograms can be combined in any order.
  Status MergeFrom(const Histogram& other);

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 buckets; the last is the +Inf overflow.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// One flattened sample as it appears in the text exposition (histograms
/// expand into `_bucket`/`_sum`/`_count` samples).
struct MetricSample {
  std::string name;
  Labels labels;
  double value = 0;
};

/// The archive-wide metric namespace: counter/gauge/histogram families
/// addressed by (name, labels), plus pull-style callback families that
/// sample existing component counters at collection time (so subsystems
/// keep their own atomics as the single source of truth and the registry
/// is the uniform exposition layer over them).
///
/// Registration takes one mutex; returned handles are stable pointers, so
/// instrumentation on hot paths is a relaxed atomic op. Collection and
/// rendering are deterministic: families sort by name, children by label
/// signature, and values format via shortest-round-trip to_chars — the
/// same counters always render to the same bytes (the /metrics golden
/// test depends on this).
class MetricsRegistry {
 public:
  enum class CallbackKind { kCounter, kGauge };
  /// Returns (labels, value) samples for one family at collect time.
  using SampleFn = std::function<std::vector<std::pair<Labels, double>>()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the (created-on-first-use) child for (name, labels). On a
  /// kind conflict — the name already registered as a different type — a
  /// process-wide sink object is returned so call sites never crash, and
  /// the family is untouched; tests catch the mismatch via Collect().
  Counter* GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds, Labels labels = {});

  /// Registers a pull-style family sampled fresh on every Collect/Render.
  /// Fails if the name is taken.
  Status RegisterCallback(std::string_view name, std::string_view help,
                          CallbackKind kind, SampleFn fn);

  /// Prometheus text exposition (0.0.4): `# HELP`/`# TYPE` per family,
  /// one sample line per child, deterministic byte-for-byte for equal
  /// counter states.
  std::string RenderPrometheusText() const;

  /// Flattened samples in exactly the order the text exposition emits
  /// them (the parser round-trip test compares against this).
  std::vector<MetricSample> Collect() const;

  static bool ValidMetricName(std::string_view name);
  static bool ValidLabelName(std::string_view name);
  /// Deterministic number formatting used by the exposition: integers
  /// render without a decimal point, everything else shortest-round-trip.
  static std::string FormatValue(double v);

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };

  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    CallbackKind callback_kind = CallbackKind::kCounter;
    std::string help;
    std::vector<double> bounds;  // histogram families
    /// Children keyed by their rendered label signature (sorted).
    std::map<std::string, Child> children;
    SampleFn fn;
  };

  Family* GetOrCreateFamily(std::string_view name, std::string_view help,
                            Kind kind);
  void AppendFamily(const std::string& name, const Family& family,
                    std::string* out, std::vector<MetricSample>* samples)
      const;

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Renders one label set as it appears between braces, e.g.
/// `route="/browse",code="200"` (empty labels render as an empty string).
std::string FormatLabels(const Labels& labels);

}  // namespace easia::obs

#endif  // EASIA_OBS_METRICS_H_
