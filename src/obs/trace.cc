#include "obs/trace.h"

#include "common/string_util.h"

namespace easia::obs {

thread_local Tracer::Scope* Tracer::current_ = nullptr;

Tracer::Tracer(Options options) : options_(options) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (options_.metrics != nullptr) {
    spans_total_ = options_.metrics->GetCounter(
        "easia_trace_spans_total", "Spans finished by the tracer");
    spans_dropped_total_ = options_.metrics->GetCounter(
        "easia_trace_spans_dropped_total",
        "Finished spans evicted from the bounded ring");
    slow_requests_total_ = options_.metrics->GetCounter(
        "easia_trace_slow_spans_total",
        "Spans at or past the slow-request threshold");
  }
}

Tracer::Scope::Scope(Tracer* tracer, std::string_view name)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  tracer_->started_.fetch_add(1, std::memory_order_relaxed);
  span_.name = std::string(name);
  span_.start =
      tracer_->options_.clock != nullptr ? tracer_->options_.clock->Now() : 0;
  span_.span_id =
      tracer_->next_span_id_.fetch_add(1, std::memory_order_relaxed);
  Scope* parent = current_;
  if (parent != nullptr && parent->tracer_ == tracer_) {
    span_.trace_id = parent->span_.trace_id;
    span_.parent_span_id = parent->span_.span_id;
  } else {
    span_.trace_id =
        tracer_->next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  restore_ = current_;
  current_ = this;
}

Tracer::Scope::~Scope() {
  if (tracer_ == nullptr) return;
  current_ = restore_;
  if (tracer_->options_.clock != nullptr) {
    span_.duration = tracer_->options_.clock->Now() - span_.start;
  }
  tracer_->Finish(std::move(span_));
}

void Tracer::Finish(Span span) {
  finished_.fetch_add(1, std::memory_order_relaxed);
  if (spans_total_ != nullptr) spans_total_->Increment();
  bool slow = options_.slow_threshold_seconds > 0 &&
              span.duration >= options_.slow_threshold_seconds;
  std::lock_guard<std::mutex> lock(mu_);
  if (slow) {
    slow_.fetch_add(1, std::memory_order_relaxed);
    if (slow_requests_total_ != nullptr) slow_requests_total_->Increment();
    std::string line = StrPrintf(
        "slow span %s trace=%llu span=%llu duration=%.6fs%s%s%s",
        span.name.c_str(), static_cast<unsigned long long>(span.trace_id),
        static_cast<unsigned long long>(span.span_id), span.duration,
        span.error ? " error" : "", span.note.empty() ? "" : " ",
        span.note.c_str());
    slow_log_.push_back(std::move(line));
    while (slow_log_.size() > options_.slow_log_capacity &&
           !slow_log_.empty()) {
      slow_log_.pop_front();
    }
  }
  ring_.push_back(std::move(span));
  while (ring_.size() > options_.ring_capacity) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (spans_dropped_total_ != nullptr) spans_dropped_total_->Increment();
  }
}

std::vector<Span> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Span>(ring_.begin(), ring_.end());
}

std::vector<std::string> Tracer::slow_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(slow_log_.begin(), slow_log_.end());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  slow_log_.clear();
}

}  // namespace easia::obs
