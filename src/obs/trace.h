#ifndef EASIA_OBS_TRACE_H_
#define EASIA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace easia::obs {

/// One finished span: a named, timed section of work inside a request.
/// Spans form trees — every span records the trace it belongs to and the
/// span that enclosed it (0 for roots), so a request's full path through
/// web → planner → cache → fileserver can be reconstructed from the ring.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root
  std::string name;             // "web:/browse", "planner:select", ...
  std::string note;             // small free-text annotation (status, host)
  double start = 0;             // clock seconds at open
  double duration = 0;          // seconds between open and close
  bool error = false;
};

/// Produces per-request span trees with automatic parent propagation.
///
/// Propagation is thread-local: opening a `Scope` makes it the current
/// span for the calling thread, so any instrumented layer further down
/// the call stack (the planner inside Database::Execute, the render cache
/// lookup, a file-server stat during rendering) parents itself correctly
/// without an explicit context parameter threading through every API.
/// This matches the archive's execution model — one request is handled
/// start-to-finish on one thread, whether that thread is the caller's or
/// a HandleConcurrent / job-scheduler worker.
///
/// Finished spans land in a bounded ring (oldest dropped first, drops
/// counted) and slow spans — duration at or past the configured
/// threshold — additionally append a line to a bounded slow-request log.
/// All timing comes from the injected Clock, so tests drive it with a
/// ManualClock and every duration is deterministic.
///
/// Thread-safe. A null `Tracer*` at any instrumentation point produces
/// inert scopes, so instrumented code runs untraced at (almost) zero
/// cost when observability is not wired.
class Tracer {
 public:
  struct Options {
    /// Time source for span start/duration; null records zeros (spans
    /// still nest and count, they just carry no timing).
    const Clock* clock = nullptr;
    /// Finished-span ring bound.
    size_t ring_capacity = 2048;
    /// Spans lasting at least this many seconds hit the slow-request
    /// log; 0 disables the log.
    double slow_threshold_seconds = 0;
    size_t slow_log_capacity = 128;
    /// Optional: self-metrics (spans started/finished/dropped, slow
    /// requests) are registered here.
    MetricsRegistry* metrics = nullptr;
  };

  Tracer() : Tracer(Options()) {}
  explicit Tracer(Options options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// RAII span. Opening parents under the thread's current scope (when
  /// that scope belongs to the same tracer), closing restores it and
  /// records the finished span.
  class Scope {
   public:
    Scope(Tracer* tracer, std::string_view name);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// True when attached to a live tracer (false for the null-tracer
    /// no-op form).
    bool active() const { return tracer_ != nullptr; }
    uint64_t trace_id() const { return span_.trace_id; }
    uint64_t span_id() const { return span_.span_id; }
    void set_error() { span_.error = true; }
    void set_note(std::string note) { span_.note = std::move(note); }

   private:
    friend class Tracer;
    Tracer* tracer_ = nullptr;
    /// The scope that was current when this one opened (any tracer).
    Scope* restore_ = nullptr;
    Span span_;
  };

  /// Finished spans, oldest first (bounded by ring_capacity).
  std::vector<Span> Snapshot() const;
  /// Slow-request log lines, oldest first (bounded).
  std::vector<std::string> slow_log() const;

  uint64_t started() const { return started_.load(); }
  uint64_t finished() const { return finished_.load(); }
  uint64_t dropped() const { return dropped_.load(); }
  uint64_t slow_count() const { return slow_.load(); }

  /// Drops buffered spans and slow-log lines (counters are kept).
  void Clear();

  const Clock* clock() const { return options_.clock; }
  double slow_threshold_seconds() const {
    return options_.slow_threshold_seconds;
  }

 private:
  void Finish(Span span);

  /// The innermost open scope on this thread (across all tracers; a new
  /// scope only parents under it when the tracer matches).
  static thread_local Scope* current_;

  Options options_;
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> finished_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> slow_{0};

  mutable std::mutex mu_;
  std::deque<Span> ring_;
  std::deque<std::string> slow_log_;

  Counter* spans_total_ = nullptr;
  Counter* spans_dropped_total_ = nullptr;
  Counter* slow_requests_total_ = nullptr;
};

}  // namespace easia::obs

#endif  // EASIA_OBS_TRACE_H_
