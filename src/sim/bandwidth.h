#ifndef EASIA_SIM_BANDWIDTH_H_
#define EASIA_SIM_BANDWIDTH_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace easia::sim {

/// Megabits per second. The paper reports link rates in Mbit/s and file
/// sizes in decimal megabytes; the table arithmetic (85 MB at 0.25 Mbit/s =
/// 45m20s) confirms MB = 1e6 bytes.
constexpr double kBitsPerMegabit = 1e6;
constexpr uint64_t kMegabyte = 1000 * 1000;

/// A piecewise-constant time-of-day bandwidth profile. Windows are given in
/// hours-of-day [start, end) and repeat every day; hours not covered by any
/// window use the base rate.
///
/// This models the paper's measured behaviour: daytime rates on the
/// Southampton SuperJANET link were far below evening rates, and the two
/// directions were asymmetric.
class BandwidthSchedule {
 public:
  /// A schedule with a single constant rate.
  static BandwidthSchedule Constant(double mbit_per_sec);

  explicit BandwidthSchedule(double base_mbit_per_sec = 0.0)
      : base_rate_(base_mbit_per_sec) {}

  /// Adds a window [start_hour, end_hour) (0 <= start < end <= 24) with its
  /// own rate. Later windows take precedence over earlier ones.
  void AddWindow(double start_hour, double end_hour, double mbit_per_sec);

  /// Rate in Mbit/s in effect at the given epoch time.
  double RateAt(double epoch_seconds) const;

  /// Epoch time of the next window boundary strictly after `epoch_seconds`
  /// (at which the rate may change). With no windows, returns the next
  /// midnight (rate never changes, but this bounds integration steps).
  double NextBoundary(double epoch_seconds) const;

  double base_rate() const { return base_rate_; }
  bool HasWindows() const { return !windows_.empty(); }

 private:
  struct Window {
    double start_hour;
    double end_hour;
    double rate;
  };

  double base_rate_;
  std::vector<Window> windows_;
};

/// Computes the wall-clock duration of transferring `bytes` over a link with
/// `schedule`, starting at `start_epoch`, integrating across rate changes.
/// `latency_seconds` is added once (connection setup). Returns an error if
/// the schedule never offers positive bandwidth.
Result<double> TransferDuration(const BandwidthSchedule& schedule,
                                uint64_t bytes, double start_epoch,
                                double latency_seconds = 0.0);

/// The paper's measured link configurations (Southampton <-> QMW London over
/// SuperJANET, 10 Mbit/s site connections), usable as calibration presets.
struct PaperLinkRates {
  static constexpr double kDayToSouthampton = 0.25;
  static constexpr double kDayFromSouthampton = 0.37;
  static constexpr double kEveningToSouthampton = 0.58;
  static constexpr double kEveningFromSouthampton = 1.94;
  /// Daytime window used for the asymmetric schedules below.
  static constexpr double kDayStartHour = 8.0;
  static constexpr double kDayEndHour = 18.0;
};

/// Schedule for traffic flowing TOWARDS Southampton (uploads to the archive).
BandwidthSchedule ToSouthamptonSchedule();
/// Schedule for traffic flowing FROM Southampton (downloads from the archive).
BandwidthSchedule FromSouthamptonSchedule();

}  // namespace easia::sim

#endif  // EASIA_SIM_BANDWIDTH_H_
