#include "sim/bandwidth.h"

#include <cmath>

#include "common/clock.h"

namespace easia::sim {

BandwidthSchedule BandwidthSchedule::Constant(double mbit_per_sec) {
  return BandwidthSchedule(mbit_per_sec);
}

void BandwidthSchedule::AddWindow(double start_hour, double end_hour,
                                  double mbit_per_sec) {
  windows_.push_back({start_hour, end_hour, mbit_per_sec});
}

double BandwidthSchedule::RateAt(double epoch_seconds) const {
  double hour = SecondsIntoDay(epoch_seconds) / 3600.0;
  double rate = base_rate_;
  for (const Window& w : windows_) {
    if (hour >= w.start_hour && hour < w.end_hour) rate = w.rate;
  }
  return rate;
}

double BandwidthSchedule::NextBoundary(double epoch_seconds) const {
  double into_day = SecondsIntoDay(epoch_seconds);
  double day_start = epoch_seconds - into_day;
  double best = day_start + 86400.0;  // next midnight
  for (const Window& w : windows_) {
    for (double edge_hour : {w.start_hour, w.end_hour}) {
      double edge = day_start + edge_hour * 3600.0;
      if (edge <= epoch_seconds) edge += 86400.0;
      if (edge < best) best = edge;
    }
  }
  return best;
}

Result<double> TransferDuration(const BandwidthSchedule& schedule,
                                uint64_t bytes, double start_epoch,
                                double latency_seconds) {
  double t = start_epoch + latency_seconds;
  double bits_remaining = static_cast<double>(bytes) * 8.0;
  // Guard against schedules that never provide bandwidth: stop after
  // simulating 365 days.
  const double deadline = start_epoch + 365.0 * 86400.0;
  while (bits_remaining > 0) {
    if (t > deadline) {
      return Status::FailedPrecondition(
          "transfer cannot complete: schedule provides no bandwidth");
    }
    double rate_bps = schedule.RateAt(t) * kBitsPerMegabit;
    double boundary = schedule.NextBoundary(t);
    if (rate_bps <= 0) {
      t = boundary;
      continue;
    }
    double window_seconds = boundary - t;
    double window_bits = rate_bps * window_seconds;
    if (window_bits >= bits_remaining) {
      t += bits_remaining / rate_bps;
      bits_remaining = 0;
    } else {
      bits_remaining -= window_bits;
      t = boundary;
    }
  }
  return t - start_epoch;
}

BandwidthSchedule ToSouthamptonSchedule() {
  BandwidthSchedule s(PaperLinkRates::kEveningToSouthampton);
  s.AddWindow(PaperLinkRates::kDayStartHour, PaperLinkRates::kDayEndHour,
              PaperLinkRates::kDayToSouthampton);
  return s;
}

BandwidthSchedule FromSouthamptonSchedule() {
  BandwidthSchedule s(PaperLinkRates::kEveningFromSouthampton);
  s.AddWindow(PaperLinkRates::kDayStartHour, PaperLinkRates::kDayEndHour,
              PaperLinkRates::kDayFromSouthampton);
  return s;
}

}  // namespace easia::sim
