#ifndef EASIA_SIM_NETWORK_H_
#define EASIA_SIM_NETWORK_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "sim/bandwidth.h"

namespace easia::sim {

/// A simulated host: a named machine with a post-processing throughput used
/// to model server-side operation execution cost.
struct HostSpec {
  std::string name;
  /// Rate at which this host can stream dataset bytes through a
  /// post-processing code (decimal MB/s).
  double processing_mb_per_sec = 50.0;
  /// Number of operations the host can run concurrently.
  int parallel_slots = 4;
};

/// Result of one simulated transfer.
struct TransferRecord {
  std::string from;
  std::string to;
  uint64_t bytes = 0;
  double start_epoch = 0;
  double duration_seconds = 0;
};

/// A directed-link network with time-of-day bandwidth schedules. All the
/// bandwidth arithmetic the paper's evaluation performs runs through this
/// class, which also meters total traffic per link — the quantity EASIA is
/// designed to minimise.
class Network {
 public:
  explicit Network(double start_epoch = 0.0) : clock_(start_epoch) {}

  void AddHost(const HostSpec& host);
  bool HasHost(const std::string& name) const;
  Result<HostSpec> GetHost(const std::string& name) const;

  /// Adds a directed link. Transfers between unlinked hosts fail.
  void AddLink(const std::string& from, const std::string& to,
               BandwidthSchedule schedule, double latency_seconds = 0.05);

  /// Adds links in both directions with the same schedule.
  void AddSymmetricLink(const std::string& a, const std::string& b,
                        BandwidthSchedule schedule,
                        double latency_seconds = 0.05);

  /// Duration of moving `bytes` from -> to starting at `start_epoch`,
  /// without mutating any state.
  Result<double> EstimateTransfer(const std::string& from,
                                  const std::string& to, uint64_t bytes,
                                  double start_epoch) const;

  /// Performs a transfer at the network's current simulated time, advances
  /// the clock by its duration and meters the traffic.
  Result<TransferRecord> Transfer(const std::string& from,
                                  const std::string& to, uint64_t bytes);

  /// Same but does not advance the shared clock (parallel flows modelled by
  /// the caller); still meters traffic.
  Result<TransferRecord> TransferAt(const std::string& from,
                                    const std::string& to, uint64_t bytes,
                                    double start_epoch);

  /// Time for `host` to run a post-processing code over `bytes` of data.
  Result<double> ProcessingTime(const std::string& host,
                                uint64_t bytes) const;

  ManualClock& clock() { return clock_; }
  double Now() const { return clock_.Now(); }

  // --- Link-fault knobs (replication shipping & fault harnesses) ---
  /// Marks the directed link from -> to administratively down (or back
  /// up). Transfers over a down link fail kUnavailable; EstimateTransfer
  /// stays pure capacity arithmetic and ignores faults.
  Status SetLinkDown(const std::string& from, const std::string& to,
                     bool down);
  /// Per-transfer loss probability in [0, 1] on the directed link: each
  /// Transfer/TransferAt rolls the network's seeded fault RNG and fails
  /// kUnavailable on a hit (the bytes are not metered — they never
  /// arrived). Deterministic for a fixed seed and call sequence.
  Status SetLinkLossProbability(const std::string& from,
                                const std::string& to, double probability);
  /// Reseeds the fault RNG (default seed 1) so crash/loss sweeps can vary
  /// the loss pattern per trial without rebuilding the topology.
  void SeedFaults(uint64_t seed) { fault_rng_ = Random(seed); }
  /// Transfers dropped by link-down or loss faults since construction.
  uint64_t transfers_dropped() const { return transfers_dropped_; }

  /// Total bytes metered over the link from -> to.
  uint64_t LinkTraffic(const std::string& from, const std::string& to) const;
  /// Total bytes metered over all links.
  uint64_t TotalTraffic() const;
  const std::vector<TransferRecord>& history() const { return history_; }
  void ResetMeters();

 private:
  struct Link {
    BandwidthSchedule schedule;
    double latency_seconds;
    uint64_t bytes_moved = 0;
    bool down = false;
    double loss_probability = 0.0;
  };

  const Link* FindLink(const std::string& from, const std::string& to) const;
  Link* FindLink(const std::string& from, const std::string& to);

  ManualClock clock_;
  std::map<std::string, HostSpec> hosts_;
  std::map<std::pair<std::string, std::string>, Link> links_;
  std::vector<TransferRecord> history_;
  Random fault_rng_{1};
  uint64_t transfers_dropped_ = 0;
};

}  // namespace easia::sim

#endif  // EASIA_SIM_NETWORK_H_
