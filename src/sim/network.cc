#include "sim/network.h"

namespace easia::sim {

void Network::AddHost(const HostSpec& host) { hosts_[host.name] = host; }

bool Network::HasHost(const std::string& name) const {
  return hosts_.find(name) != hosts_.end();
}

Result<HostSpec> Network::GetHost(const std::string& name) const {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    return Status::NotFound("sim: unknown host '" + name + "'");
  }
  return it->second;
}

void Network::AddLink(const std::string& from, const std::string& to,
                      BandwidthSchedule schedule, double latency_seconds) {
  links_[{from, to}] = Link{std::move(schedule), latency_seconds, 0};
}

void Network::AddSymmetricLink(const std::string& a, const std::string& b,
                               BandwidthSchedule schedule,
                               double latency_seconds) {
  AddLink(a, b, schedule, latency_seconds);
  AddLink(b, a, std::move(schedule), latency_seconds);
}

const Network::Link* Network::FindLink(const std::string& from,
                                       const std::string& to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : &it->second;
}

Network::Link* Network::FindLink(const std::string& from,
                                 const std::string& to) {
  auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : &it->second;
}

Result<double> Network::EstimateTransfer(const std::string& from,
                                         const std::string& to,
                                         uint64_t bytes,
                                         double start_epoch) const {
  if (from == to) return 0.0;  // local move, free
  const Link* link = FindLink(from, to);
  if (link == nullptr) {
    return Status::Unavailable("sim: no link " + from + " -> " + to);
  }
  return TransferDuration(link->schedule, bytes, start_epoch,
                          link->latency_seconds);
}

Result<TransferRecord> Network::Transfer(const std::string& from,
                                         const std::string& to,
                                         uint64_t bytes) {
  EASIA_ASSIGN_OR_RETURN(TransferRecord rec,
                         TransferAt(from, to, bytes, clock_.Now()));
  clock_.Advance(rec.duration_seconds);
  return rec;
}

Result<TransferRecord> Network::TransferAt(const std::string& from,
                                           const std::string& to,
                                           uint64_t bytes,
                                           double start_epoch) {
  if (!HasHost(from)) return Status::NotFound("sim: unknown host " + from);
  if (!HasHost(to)) return Status::NotFound("sim: unknown host " + to);
  TransferRecord rec;
  rec.from = from;
  rec.to = to;
  rec.bytes = bytes;
  rec.start_epoch = start_epoch;
  if (from == to) {
    rec.duration_seconds = 0;
    history_.push_back(rec);
    return rec;
  }
  Link* link = FindLink(from, to);
  if (link == nullptr) {
    return Status::Unavailable("sim: no link " + from + " -> " + to);
  }
  if (link->down) {
    ++transfers_dropped_;
    return Status::Unavailable("sim: link " + from + " -> " + to +
                               " is down");
  }
  if (link->loss_probability > 0 &&
      fault_rng_.NextDouble() < link->loss_probability) {
    ++transfers_dropped_;
    return Status::Unavailable("sim: transfer lost on " + from + " -> " +
                               to);
  }
  EASIA_ASSIGN_OR_RETURN(
      rec.duration_seconds,
      TransferDuration(link->schedule, bytes, start_epoch,
                       link->latency_seconds));
  link->bytes_moved += bytes;
  history_.push_back(rec);
  return rec;
}

Status Network::SetLinkDown(const std::string& from, const std::string& to,
                            bool down) {
  Link* link = FindLink(from, to);
  if (link == nullptr) {
    return Status::NotFound("sim: no link " + from + " -> " + to);
  }
  link->down = down;
  return Status::OK();
}

Status Network::SetLinkLossProbability(const std::string& from,
                                       const std::string& to,
                                       double probability) {
  if (probability < 0.0 || probability > 1.0) {
    return Status::InvalidArgument("sim: loss probability out of [0, 1]");
  }
  Link* link = FindLink(from, to);
  if (link == nullptr) {
    return Status::NotFound("sim: no link " + from + " -> " + to);
  }
  link->loss_probability = probability;
  return Status::OK();
}

Result<double> Network::ProcessingTime(const std::string& host,
                                       uint64_t bytes) const {
  EASIA_ASSIGN_OR_RETURN(HostSpec spec, GetHost(host));
  if (spec.processing_mb_per_sec <= 0) {
    return Status::FailedPrecondition("sim: host '" + host +
                                      "' has no processing capacity");
  }
  return static_cast<double>(bytes) /
         (spec.processing_mb_per_sec * static_cast<double>(kMegabyte));
}

uint64_t Network::LinkTraffic(const std::string& from,
                              const std::string& to) const {
  const Link* link = FindLink(from, to);
  return link == nullptr ? 0 : link->bytes_moved;
}

uint64_t Network::TotalTraffic() const {
  uint64_t total = 0;
  for (const auto& [key, link] : links_) total += link.bytes_moved;
  return total;
}

void Network::ResetMeters() {
  for (auto& [key, link] : links_) link.bytes_moved = 0;
  history_.clear();
}

}  // namespace easia::sim
