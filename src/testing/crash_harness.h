#ifndef EASIA_TESTING_CRASH_HARNESS_H_
#define EASIA_TESTING_CRASH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/fault_injection.h"

namespace easia::testing {

/// Outcome of one crash-recovery case. `violations` is the contract: an
/// empty list means every invariant held for this seed/crash-point pair;
/// entries are human-readable descriptions of what broke (suitable for a
/// test failure message or the bench's JSON report).
struct CrashReport {
  bool crashed = false;       // the crash point was actually reached
  size_t acked = 0;           // operations acknowledged OK before the crash
  uint64_t wal_bytes = 0;     // log bytes the full (uncrashed) run appends
  size_t recovered_items = 0; // rows / jobs / links visible after recovery
  std::vector<std::string> violations;

  bool Clean() const { return violations.empty(); }
};

/// One WAL crash case: a seeded DML workload against a WAL-backed database
/// that stops persisting at `crash_after_bytes`, then recovery from the
/// surviving bytes. Invariants checked:
///
///  * recovery itself never fails, whatever the torn tail looks like;
///  * no torn/partial transaction is applied and no acknowledged commit is
///    lost: the recovered state equals the replay of exactly the acked
///    statements, or acked + the one in-flight statement (whose commit
///    record may have become durable just before the crash was reported).
struct WalCrashOptions {
  uint64_t seed = 1;
  int statements = 25;
  /// Byte offset in the WAL stream to crash at; negative runs to
  /// completion (used to measure `wal_bytes` for boundary sweeps).
  int64_t crash_after_bytes = -1;
  CrashSurvival survival = CrashSurvival::kAll;
};
CrashReport RunWalCrashCase(const WalCrashOptions& options);

/// One job-journal crash case: seeded submits/cancels against a
/// journal-backed scheduler (no engine — execution is not the subject),
/// crash, recover. Invariants:
///
///  * recovery never fails;
///  * every acknowledged submission survives with its spec;
///  * job states only move forward (an acked cancel stays cancelled; no
///    job is kRunning after recovery);
///  * recovery is a fixpoint: recovering the compacted journal again
///    reproduces the identical queue.
struct JobsCrashOptions {
  uint64_t seed = 1;
  int operations = 30;
  int64_t crash_after_bytes = -1;
  CrashSurvival survival = CrashSurvival::kAll;
};
CrashReport RunJobsCrashCase(const JobsCrashOptions& options);

/// One DATALINK crash case: files linked into a WAL-backed database
/// through the SQL/MED coordinator; the database crashes at a WAL byte
/// point while some files are also lost outright (the crash takes disks
/// with it). After recovery the DatalinkReconciler runs. Invariants:
///
///  * recovery and reconciliation never fail;
///  * afterwards every DATALINK value references an existing, pinned file
///    or was flagged dangling — nothing is silently inconsistent;
///  * with a pre-crash coordinated backup, RECOVERY YES files are
///    restored and a second reconcile pass reports fully clean.
struct DatalinkCrashOptions {
  uint64_t seed = 1;
  int files = 12;
  int64_t crash_after_bytes = -1;
  CrashSurvival survival = CrashSurvival::kAll;
  /// How many linked files the crash destroys on the file server.
  int lose_files = 2;
  /// Take a coordinated backup before the crash (enables restoration).
  bool with_backup = true;
};
CrashReport RunDatalinkCrashCase(const DatalinkCrashOptions& options);

/// One multi-node replication crash case: the WAL workload runs through a
/// ReplicationCoordinator over a full-mesh sim network (primary + N
/// replicas) with seeded link loss and torn-shipment injection, then —
/// optionally — the primary crashes and the most caught-up replica is
/// promoted. Mirrors RunWalCrashCase's shadow-replay differential check
/// across nodes. Invariants:
///
///  * replica epochs only ever advance, and shipping survives loss/torn
///    faults by resuming from each replica's last-applied LSN;
///  * after failover, the promoted primary equals the shadow replay of
///    some executed-statement prefix that contains EVERY acked statement
///    (semi-sync quorum: zero acked-commit loss);
///  * when the most caught-up replica is ALSO down at failover time (the
///    quorum-holder-down boundary), the coordinator refuses the lossy
///    promotion instead of silently discarding its acked commits;
///    promotion succeeds once the holder recovers;
///  * once faults clear and shipping drains, every live node's dump is
///    byte-identical to the (new) primary's and carries its epoch.
struct ReplicationCrashOptions {
  uint64_t seed = 1;
  int statements = 30;
  int replicas = 2;
  /// Replicas that must apply a commit before it is acked; see
  /// CoordinatorOptions::ack_quorum.
  size_t ack_quorum = 1;
  /// Statement index after which the primary crashes and failover runs;
  /// negative = the primary survives the whole workload.
  int crash_after_statement = -1;
  /// Per-transfer loss probability on every link.
  double link_loss_probability = 0.0;
  /// Probability that an individual shipment is truncated in flight.
  double torn_shipment_probability = 0.0;
  /// Crash one replica mid-apply at a seeded shipment (it applies a
  /// partial batch, goes down, comes back and must resume cleanly).
  bool replica_crash = false;
  /// Take the most caught-up replica down immediately before the primary
  /// crash, so the failover candidate set excludes the node that may be
  /// the sole ack-quorum holder. The harness expects the coordinator to
  /// REFUSE the promotion (kFailedPrecondition) whenever the downed
  /// replica is ahead of every surviving candidate, then recovers the
  /// holder and retries; the acked-coverage differential check still runs
  /// as ground truth afterwards. Requires crash_after_statement >= 0 and
  /// replicas >= 2.
  bool down_quorum_holder_at_failover = false;
};
CrashReport RunReplicationCrashCase(const ReplicationCrashOptions& options);

/// One sharded-metadata crash case: the seeded WAL workload runs through a
/// ShardCoordinator whose table is hash-partitioned across `shards`
/// replication groups (primary + replicas each). After the workload drains,
/// a scatter aggregate runs with a hook that fails over one seeded shard's
/// primary *between* per-shard scans of that one statement. Invariants:
///
///  * every pre-crash statement is acknowledged (quorum met, no faults);
///  * the mid-failover scatter either succeeds or surfaces the replication
///    layer's kAborted / kUnavailable — never a mangled partial result;
///  * a serial re-run of the same aggregate after recovery matches both
///    the mid-failover scatter result (when it succeeded) and a shadow
///    single-node replay of the identical workload: zero acked-commit loss
///    through the promotion;
///  * writes flow to the promoted primary afterwards, and the full
///    partitioned table equals the shadow byte-for-byte.
struct ShardCrashOptions {
  uint64_t seed = 1;
  int statements = 30;
  int shards = 3;
  int replicas_per_shard = 2;
  size_t ack_quorum = 1;
};
CrashReport RunShardCrashCase(const ShardCrashOptions& options);

}  // namespace easia::testing

#endif  // EASIA_TESTING_CRASH_HARNESS_H_
