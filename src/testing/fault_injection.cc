#include "testing/fault_injection.h"

#include <algorithm>

namespace easia::testing {

// ---------------------------------------------------------------------------
// FaultyEnv

class FaultyEnv::FaultyLogFile : public io::LogFile {
 public:
  FaultyLogFile(FaultyEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    if (closed_) return Status::Internal("log file: closed");
    std::lock_guard<std::mutex> lock(env_->mu_);
    return env_->AppendLocked(path_, data);
  }

  Status Sync() override {
    if (closed_) return Status::Internal("log file: closed");
    std::lock_guard<std::mutex> lock(env_->mu_);
    return env_->SyncLocked(path_);
  }

  void Close() override { closed_ = true; }

 private:
  FaultyEnv* env_;
  std::string path_;
  bool closed_ = false;
};

FaultyEnv::FaultyEnv(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

bool FaultyEnv::MatchesCrashFilter(const std::string& path) const {
  return plan_.crash_path_filter.empty() ||
         path.find(plan_.crash_path_filter) != std::string::npos;
}

Status FaultyEnv::AppendLocked(const std::string& path,
                               std::string_view data) {
  if (crashed_) return Status::Unavailable("fault: environment crashed");
  if (plan_.append_error_probability > 0 &&
      rng_.NextDouble() < plan_.append_error_probability) {
    return Status::Unavailable("fault: injected append EIO");
  }
  FileState& f = files_[path];
  bool counted = MatchesCrashFilter(path);
  if (counted && plan_.crash_after_bytes >= 0 &&
      appended_ + data.size() >
          static_cast<uint64_t>(plan_.crash_after_bytes)) {
    // Crash point lands inside this write: persist exactly the prefix up
    // to the threshold, then stop persisting — no longjmp, the caller
    // just sees errors from here on.
    size_t keep = static_cast<size_t>(plan_.crash_after_bytes) - appended_;
    f.data.append(data.substr(0, keep));
    appended_ += keep;
    crashed_ = true;
    return Status::Unavailable("fault: crash point reached");
  }
  f.data.append(data);
  if (counted) appended_ += data.size();
  return Status::OK();
}

Status FaultyEnv::SyncLocked(const std::string& path) {
  if (crashed_) return Status::Unavailable("fault: environment crashed");
  if (fail_fsyncs_ > 0) {
    --fail_fsyncs_;
    return Status::Unavailable("fault: injected fsync failure");
  }
  auto it = files_.find(path);
  if (it == files_.end()) return Status::OK();
  if (plan_.drop_fsync_probability > 0 &&
      rng_.NextDouble() < plan_.drop_fsync_probability) {
    return Status::OK();  // silent drop: reports success, persists nothing
  }
  it->second.synced = it->second.data.size();
  return Status::OK();
}

Result<std::unique_ptr<io::LogFile>> FaultyEnv::OpenAppend(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::Unavailable("fault: environment crashed");
  files_[path];  // create empty when absent, like fopen("ab")
  return std::unique_ptr<io::LogFile>(new FaultyLogFile(this, path));
}

Result<std::string> FaultyEnv::ReadFileToString(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::Unavailable("fault: environment crashed");
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("fault env: no such file: " + path);
  }
  const std::string& data = it->second.data;
  if (plan_.short_read_probability > 0 && !data.empty() &&
      rng_.NextDouble() < plan_.short_read_probability) {
    return data.substr(0, rng_.Uniform(data.size()));
  }
  return data;
}

bool FaultyEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return !crashed_ && files_.find(path) != files_.end();
}

Status FaultyEnv::WriteFileAtomic(const std::string& path,
                                  std::string_view contents) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::Unavailable("fault: environment crashed");
  if (plan_.append_error_probability > 0 &&
      rng_.NextDouble() < plan_.append_error_probability) {
    return Status::Unavailable("fault: injected write EIO");
  }
  if (MatchesCrashFilter(path) && plan_.crash_after_bytes >= 0 &&
      appended_ + contents.size() >
          static_cast<uint64_t>(plan_.crash_after_bytes)) {
    // Atomic replace is all-or-nothing: a crash mid-way leaves the old
    // version, never a prefix of the new one.
    crashed_ = true;
    return Status::Unavailable("fault: crash point reached");
  }
  if (MatchesCrashFilter(path)) appended_ += contents.size();
  FileState& f = files_[path];
  f.data.assign(contents.data(), contents.size());
  f.synced = f.data.size();  // rename+fsync semantics: durable on return
  return Status::OK();
}

Status FaultyEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::Unavailable("fault: environment crashed");
  if (files_.erase(path) == 0) {
    return Status::NotFound("fault env: no such file: " + path);
  }
  return Status::OK();
}

Status FaultyEnv::Truncate(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::Unavailable("fault: environment crashed");
  FileState& f = files_[path];
  f.data.clear();
  f.synced = 0;
  return Status::OK();
}

bool FaultyEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultyEnv::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

void FaultyEnv::FailNextFsyncs(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_fsyncs_ = n;
}

std::string FaultyEnv::SurvivingLocked(const FileState& f) const {
  switch (plan_.survival) {
    case CrashSurvival::kAll:
      return f.data;
    case CrashSurvival::kSyncedOnly:
      return f.data.substr(0, f.synced);
    case CrashSurvival::kRandomTail: {
      size_t unsynced = f.data.size() - f.synced;
      if (unsynced == 0) return f.data;
      return f.data.substr(0, f.synced + rng_.Uniform(unsynced + 1));
    }
  }
  return f.data;
}

void FaultyEnv::Reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, f] : files_) {
    f.data = SurvivingLocked(f);
    f.synced = f.data.size();
  }
  crashed_ = false;
  plan_.crash_after_bytes = -1;  // one crash per plan; re-arm via a new env
}

Result<std::string> FaultyEnv::DurableContents(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("fault env: no such file: " + path);
  }
  return SurvivingLocked(it->second);
}

Result<std::string> FaultyEnv::BufferedContents(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("fault env: no such file: " + path);
  }
  return it->second.data;
}

void FaultyEnv::FlipBit(const std::string& path, size_t byte_offset,
                        int bit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end() || byte_offset >= it->second.data.size()) return;
  it->second.data[byte_offset] ^= static_cast<char>(1 << (bit & 7));
}

void FaultyEnv::TruncateTo(const std::string& path, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return;
  FileState& f = it->second;
  if (len < f.data.size()) f.data.resize(len);
  f.synced = std::min(f.synced, f.data.size());
}

// ---------------------------------------------------------------------------
// FaultInjectingVfs

Status FaultInjectingVfs::MaybeFault(const char* op) const {
  int remaining = fail_ops_.load();
  while (remaining > 0) {
    if (fail_ops_.compare_exchange_weak(remaining, remaining - 1)) {
      faults_.fetch_add(1);
      return Status::Unavailable(std::string("fault: injected EIO in ") +
                                 op);
    }
  }
  if (error_probability_ > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (rng_.NextDouble() < error_probability_) {
      faults_.fetch_add(1);
      return Status::Unavailable(std::string("fault: injected EIO in ") +
                                 op);
    }
  }
  return Status::OK();
}

Status FaultInjectingVfs::WriteFile(const std::string& path,
                                    std::string contents,
                                    const std::string& owner) {
  EASIA_RETURN_IF_ERROR(MaybeFault("WriteFile"));
  return base_->WriteFile(path, std::move(contents), owner);
}

Status FaultInjectingVfs::CreateSparseFile(const std::string& path,
                                           uint64_t size,
                                           const std::string& owner) {
  EASIA_RETURN_IF_ERROR(MaybeFault("CreateSparseFile"));
  return base_->CreateSparseFile(path, size, owner);
}

Result<std::string> FaultInjectingVfs::ReadFile(
    const std::string& path) const {
  EASIA_RETURN_IF_ERROR(MaybeFault("ReadFile"));
  return base_->ReadFile(path);
}

Result<fs::FileStat> FaultInjectingVfs::Stat(const std::string& path) const {
  EASIA_RETURN_IF_ERROR(MaybeFault("Stat"));
  return base_->Stat(path);
}

bool FaultInjectingVfs::Exists(const std::string& path) const {
  return base_->Exists(path);  // existence checks are not faulted
}

Status FaultInjectingVfs::DeleteFile(const std::string& path) {
  EASIA_RETURN_IF_ERROR(MaybeFault("DeleteFile"));
  return base_->DeleteFile(path);
}

Status FaultInjectingVfs::RenameFile(const std::string& from,
                                     const std::string& to) {
  EASIA_RETURN_IF_ERROR(MaybeFault("RenameFile"));
  return base_->RenameFile(from, to);
}

Status FaultInjectingVfs::Pin(const std::string& path) {
  EASIA_RETURN_IF_ERROR(MaybeFault("Pin"));
  return base_->Pin(path);
}

Status FaultInjectingVfs::Unpin(const std::string& path) {
  EASIA_RETURN_IF_ERROR(MaybeFault("Unpin"));
  return base_->Unpin(path);
}

bool FaultInjectingVfs::IsPinned(const std::string& path) const {
  return base_->IsPinned(path);
}

std::vector<std::string> FaultInjectingVfs::List(
    const std::string& prefix) const {
  return base_->List(prefix);
}

}  // namespace easia::testing
