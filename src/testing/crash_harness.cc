#include "testing/crash_harness.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "db/database.h"
#include "db/repl/coordinator.h"
#include "db/shard/coordinator.h"
#include "sim/network.h"
#include "fileserver/url.h"
#include "jobs/scheduler.h"
#include "med/backup.h"
#include "med/datalink_manager.h"
#include "med/reconciler.h"

namespace easia::testing {

namespace {

/// Canonical textual image of every table: name, row ids and display values
/// in storage order. Two databases are behaviourally equal for the
/// harness's purposes iff their dumps match byte-for-byte.
std::string DumpDatabase(const db::Database& db, size_t* rows_out) {
  std::ostringstream out;
  for (const std::string& name : db.catalog().TableNames()) {
    out << "#" << name << "\n";
    Result<const db::Table*> table = db.GetTable(name);
    if (!table.ok()) continue;
    (*table)->ForEachRow([&](db::RowId id, const db::Row& row) {
      out << id;
      for (const db::Value& v : row) out << "|" << v.ToDisplayString();
      out << "\n";
      if (rows_out != nullptr) ++*rows_out;
    });
  }
  return out.str();
}

/// Replays `sql` against a fresh in-memory database (no WAL) and returns
/// its canonical dump — the shadow the recovered state is compared to.
Result<std::string> ReplayDump(const std::vector<std::string>& sql) {
  db::Database shadow("SHADOW");
  for (const std::string& stmt : sql) {
    EASIA_RETURN_IF_ERROR(shadow.Execute(stmt).status());
  }
  return DumpDatabase(shadow, nullptr);
}

/// The seeded DML workload both the crash run and its shadow replay use.
/// Only the statement list is derived from the seed; whether a statement
/// was acknowledged is observed at run time.
std::vector<std::string> GenerateWalWorkload(uint64_t seed, int statements) {
  Random rng(seed);
  std::vector<std::string> sql;
  sql.push_back(
      "CREATE TABLE T (ID INTEGER PRIMARY KEY, NAME VARCHAR(64), "
      "SCORE INTEGER)");
  std::vector<int> live;
  int next_id = 1;
  for (int i = 0; i < statements; ++i) {
    uint64_t pick = rng.Uniform(10);
    if (live.empty() || pick < 5) {
      int id = next_id++;
      sql.push_back("INSERT INTO T (ID, NAME, SCORE) VALUES (" +
                    std::to_string(id) + ", '" + rng.AlphaNum(8) + "', " +
                    std::to_string(rng.Uniform(1000)) + ")");
      live.push_back(id);
    } else if (pick < 8) {
      int id = live[rng.Uniform(live.size())];
      sql.push_back("UPDATE T SET SCORE = " + std::to_string(rng.Uniform(1000)) +
                    ", NAME = '" + rng.AlphaNum(6) +
                    "' WHERE ID = " + std::to_string(id));
    } else {
      size_t at = rng.Uniform(live.size());
      sql.push_back("DELETE FROM T WHERE ID = " + std::to_string(live[at]));
      live.erase(live.begin() + static_cast<ptrdiff_t>(at));
    }
  }
  return sql;
}

}  // namespace

CrashReport RunWalCrashCase(const WalCrashOptions& options) {
  CrashReport report;
  std::vector<std::string> workload =
      GenerateWalWorkload(options.seed, options.statements);

  FaultPlan plan;
  plan.seed = options.seed;
  plan.crash_after_bytes = options.crash_after_bytes;
  plan.crash_path_filter = "/wal";
  plan.survival = options.survival;
  FaultyEnv env(plan);

  db::DatabaseOptions db_opts;
  db_opts.wal_path = "/db/wal";
  db_opts.sync_on_commit = true;
  db_opts.env = &env;

  std::vector<std::string> acked;
  std::string inflight;
  db::DatabaseStats pre_crash_stats;
  {
    db::Database db("CRASH", db_opts);
    Status recover = db.Recover();
    if (!recover.ok()) {
      report.violations.push_back("pre-workload recover failed: " +
                                  std::string(recover.message()));
      return report;
    }
    for (const std::string& sql : workload) {
      Result<db::QueryResult> result = db.Execute(sql);
      if (result.ok()) {
        acked.push_back(sql);
        continue;
      }
      if (env.crashed()) {
        inflight = sql;
        break;
      }
      report.violations.push_back(
          "statement failed without a crash: " + sql + ": " +
          std::string(result.status().message()));
      return report;
    }
    pre_crash_stats = db.stats();
  }
  report.acked = acked.size();
  report.wal_bytes = env.bytes_appended();
  report.crashed = env.crashed();

  // Restart from the surviving bytes and recover — torn-tail or not, this
  // must succeed.
  env.Reopen();
  db::Database recovered("CRASH", db_opts);
  Status rs = recovered.Recover();
  if (!rs.ok()) {
    report.violations.push_back("post-crash recover failed: " +
                                std::string(rs.message()));
    return report;
  }
  std::string got = DumpDatabase(recovered, &report.recovered_items);

  // Metrics-vs-recovery invariants: the counters /metrics exposes must be
  // consistent with the recovered data. Every acknowledged statement was
  // one committed implicit transaction, so WAL replay must reproduce at
  // least that many commits (at most one more: the in-flight statement's
  // commit record may have become durable just before the crash), and the
  // replayed insert counter can never undercount the rows that survived.
  db::DatabaseStats rstats = recovered.stats();
  if (rstats.txn_commits < acked.size() ||
      rstats.txn_commits > acked.size() + 1) {
    report.violations.push_back(
        "replayed txn_commits " + std::to_string(rstats.txn_commits) +
        " inconsistent with " + std::to_string(acked.size()) +
        " acked statements");
  }
  if (rstats.rows_inserted < report.recovered_items) {
    report.violations.push_back(
        "replayed rows_inserted " + std::to_string(rstats.rows_inserted) +
        " undercounts " + std::to_string(report.recovered_items) +
        " recovered rows");
  }
  if (rstats.txn_commits < pre_crash_stats.txn_commits) {
    report.violations.push_back("txn_commits went backwards across recovery");
  }
  // Snapshot round-trip: serialising the recovered database and loading it
  // into a fresh one must carry both the rows and the cumulative counters
  // (the checkpoint/restart path of the same monotonicity contract).
  db::Database restored("CRASH-SNAP");
  Status snap = restored.LoadSnapshotFromString(recovered.SerializeSnapshot());
  if (!snap.ok()) {
    report.violations.push_back("snapshot round-trip failed: " +
                                std::string(snap.message()));
  } else {
    if (DumpDatabase(restored, nullptr) != got) {
      report.violations.push_back("snapshot round-trip changed the data");
    }
    db::DatabaseStats sstats = restored.stats();
    if (sstats.statements != rstats.statements ||
        sstats.queries != rstats.queries ||
        sstats.rows_inserted != rstats.rows_inserted ||
        sstats.rows_updated != rstats.rows_updated ||
        sstats.rows_deleted != rstats.rows_deleted ||
        sstats.txn_commits != rstats.txn_commits ||
        sstats.txn_aborts != rstats.txn_aborts) {
      report.violations.push_back(
          "snapshot round-trip lost cumulative counters");
    }
  }

  // Differential check: the recovered image must equal the shadow replay
  // of exactly the acknowledged statements — or of acked + the in-flight
  // one, whose commit record can have become durable an instant before the
  // crash surfaced. Anything else means a torn record was applied or an
  // acknowledged commit was lost.
  Result<std::string> want_acked = ReplayDump(acked);
  if (!want_acked.ok()) {
    report.violations.push_back("shadow replay failed: " +
                                std::string(want_acked.status().message()));
    return report;
  }
  if (got == *want_acked) return report;
  if (!inflight.empty()) {
    std::vector<std::string> with_inflight = acked;
    with_inflight.push_back(inflight);
    Result<std::string> want_both = ReplayDump(with_inflight);
    if (want_both.ok() && got == *want_both) return report;
  }
  report.violations.push_back(
      "recovered state diverges from acked replay (seed " +
      std::to_string(options.seed) + ", crash_after_bytes " +
      std::to_string(options.crash_after_bytes) + "):\n--- recovered ---\n" +
      got + "--- acked replay ---\n" + *want_acked);
  return report;
}

namespace {

std::string DumpJobs(const std::vector<jobs::Job>& snapshot) {
  std::ostringstream out;
  for (const jobs::Job& job : snapshot) {
    out << job.id << "|" << jobs::JobStateName(job.state) << "|"
        << job.attempts << "|" << job.spec.Encode().size() << "|"
        << job.spec.operation << "\n";
  }
  return out.str();
}

}  // namespace

CrashReport RunJobsCrashCase(const JobsCrashOptions& options) {
  CrashReport report;

  FaultPlan plan;
  plan.seed = options.seed;
  plan.crash_after_bytes = options.crash_after_bytes;
  plan.crash_path_filter = "/jobs/journal";
  plan.survival = options.survival;
  FaultyEnv env(plan);

  ManualClock clock(1000.0);
  jobs::SchedulerOptions sopts;
  sopts.journal_path = "/jobs/journal";
  sopts.env = &env;

  Random rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  std::map<jobs::JobId, std::string> acked_submits;  // id -> operation name
  std::set<jobs::JobId> acked_cancels;
  std::vector<jobs::JobId> open_ids;
  {
    jobs::JobScheduler sched(nullptr, nullptr, &clock, sopts);
    for (int i = 0; i < options.operations && !env.crashed(); ++i) {
      if (!open_ids.empty() && rng.OneIn(4)) {
        size_t at = rng.Uniform(open_ids.size());
        jobs::JobId id = open_ids[at];
        Result<jobs::Job> r = sched.Cancel(id, "harness", /*is_admin=*/true);
        if (r.ok()) {
          acked_cancels.insert(id);
          open_ids.erase(open_ids.begin() + static_cast<ptrdiff_t>(at));
        } else if (!env.crashed()) {
          report.violations.push_back("cancel failed without a crash: " +
                                      std::string(r.status().message()));
          return report;
        }
      } else {
        jobs::JobSpec spec;
        spec.kind = jobs::JobKind::kInvoke;
        spec.user = "user" + std::to_string(rng.Uniform(3));
        spec.is_guest = false;
        spec.operation = "op_" + rng.AlphaNum(6);
        spec.datasets = {"dataset" + std::to_string(rng.Uniform(8))};
        spec.priority = static_cast<int32_t>(rng.Uniform(5));
        Result<jobs::Job> r = sched.Submit(spec);
        if (r.ok()) {
          acked_submits[r->id] = spec.operation;
          open_ids.push_back(r->id);
        } else if (!env.crashed()) {
          report.violations.push_back("submit failed without a crash: " +
                                      std::string(r.status().message()));
          return report;
        }
      }
      clock.Advance(0.5);
    }
  }
  report.acked = acked_submits.size() + acked_cancels.size();
  report.wal_bytes = env.bytes_appended();
  report.crashed = env.crashed();

  env.Reopen();
  jobs::JobScheduler recovered(nullptr, nullptr, &clock, sopts);
  Result<size_t> rec = recovered.Recover();
  if (!rec.ok()) {
    report.violations.push_back("recovery failed: " +
                                std::string(rec.status().message()));
    return report;
  }
  std::vector<jobs::Job> snapshot = recovered.queue().Snapshot();
  report.recovered_items = snapshot.size();
  std::map<jobs::JobId, const jobs::Job*> by_id;
  for (const jobs::Job& job : snapshot) by_id[job.id] = &job;

  // Acknowledged submissions survive, with their spec, and job states only
  // move forward: nothing runs after a restart, and an acked cancel stays
  // cancelled.
  for (const auto& [id, operation] : acked_submits) {
    auto it = by_id.find(id);
    if (it == by_id.end()) {
      report.violations.push_back("acked submit lost: job " +
                                  std::to_string(id));
      continue;
    }
    if (it->second->spec.operation != operation) {
      report.violations.push_back("job " + std::to_string(id) +
                                  " recovered with wrong spec");
    }
    if (it->second->state == jobs::JobState::kRunning) {
      report.violations.push_back("job " + std::to_string(id) +
                                  " is running after recovery");
    }
    if (acked_cancels.count(id) != 0 &&
        it->second->state != jobs::JobState::kCancelled) {
      report.violations.push_back("acked cancel regressed: job " +
                                  std::to_string(id) + " is " +
                                  std::string(jobs::JobStateName(
                                      it->second->state)));
    }
  }
  // Finished-history bound: recovery must never rebuild more jobs than the
  // queue is allowed to retain.
  if (snapshot.size() >
      sopts.limits.max_open_jobs + sopts.limits.max_finished_jobs) {
    report.violations.push_back("recovered queue exceeds retention bounds");
  }
  // Fixpoint: recovering the compacted journal again reproduces the
  // identical queue.
  jobs::JobScheduler again(nullptr, nullptr, &clock, sopts);
  Result<size_t> rec2 = again.Recover();
  if (!rec2.ok()) {
    report.violations.push_back("second recovery failed: " +
                                std::string(rec2.status().message()));
  } else if (DumpJobs(again.queue().Snapshot()) != DumpJobs(snapshot)) {
    report.violations.push_back("recovery is not a fixpoint");
  }
  return report;
}

CrashReport RunDatalinkCrashCase(const DatalinkCrashOptions& options) {
  CrashReport report;

  FaultPlan plan;
  plan.seed = options.seed;
  plan.crash_after_bytes = options.crash_after_bytes;
  plan.crash_path_filter = "/db/wal";
  plan.survival = options.survival;
  FaultyEnv env(plan);

  fs::FileServerFleet fleet;
  fs::FileServer* server = fleet.AddServer("fs1");
  ManualClock clock(1000.0);
  med::DataLinkManager manager(&fleet, &clock, "secret", 300.0);

  db::DatabaseOptions db_opts;
  db_opts.wal_path = "/db/wal";
  db_opts.sync_on_commit = true;
  db_opts.env = &env;

  Random rng(options.seed ^ 0x5deece66dULL);
  std::vector<std::string> acked_paths;
  std::set<std::string> backed_up;  // paths covered by a completed backup
  med::BackupManager backups(nullptr, nullptr, nullptr);
  {
    db::Database db("MEDCRASH", db_opts);
    db.set_coordinator(&manager);
    Status recover = db.Recover();
    if (!recover.ok()) {
      report.violations.push_back("pre-workload recover failed: " +
                                  std::string(recover.message()));
      return report;
    }
    Result<db::QueryResult> ddl = db.Execute(
        "CREATE TABLE RESULT_FILE (FILE_NAME VARCHAR(100) PRIMARY KEY, "
        "DOWNLOAD DATALINK LINKTYPE URL FILE LINK CONTROL "
        "READ PERMISSION DB RECOVERY YES ON UNLINK DELETE)");
    if (!ddl.ok() && !env.crashed()) {
      report.violations.push_back("DDL failed: " +
                                  std::string(ddl.status().message()));
      return report;
    }
    med::BackupManager live_backups(&db, &manager, &fleet);
    int backup_at = options.with_backup ? options.files / 2 : -1;
    for (int i = 0; i < options.files && !env.crashed(); ++i) {
      if (i == backup_at) {
        Result<uint64_t> b = live_backups.CreateBackup();
        if (!b.ok()) {
          report.violations.push_back("backup failed: " +
                                      std::string(b.status().message()));
          return report;
        }
        backed_up.insert(acked_paths.begin(), acked_paths.end());
      }
      std::string path = "/d/file" + std::to_string(i) + ".tbf";
      Status ws = server->vfs().WriteFile(path, rng.AlphaNum(32));
      if (!ws.ok()) {
        report.violations.push_back("file write failed: " +
                                    std::string(ws.message()));
        return report;
      }
      Result<db::QueryResult> ins = db.Execute(
          "INSERT INTO RESULT_FILE VALUES ('file" + std::to_string(i) +
          "', 'http://fs1" + path + "')");
      if (ins.ok()) {
        acked_paths.push_back(path);
      } else if (!env.crashed()) {
        report.violations.push_back("insert failed without a crash: " +
                                    std::string(ins.status().message()));
        return report;
      }
    }
    // The backup sets must outlive the pre-crash database they were taken
    // from; move them to the outer-scope manager (same fleet + linker
    // state, database pointer re-bound after recovery is not needed — the
    // reconciler only reads file copies).
    backups = std::move(live_backups);
  }
  report.acked = acked_paths.size();
  report.wal_bytes = env.bytes_appended();
  report.crashed = env.crashed();

  // The crash takes storage with it: the first `lose_files` linked files
  // vanish from the server (unpin first — media loss does not honour
  // pins).
  std::set<std::string> lost;
  for (int i = 0; i < options.lose_files &&
                  static_cast<size_t>(i) < acked_paths.size();
       ++i) {
    const std::string& path = acked_paths[static_cast<size_t>(i)];
    (void)server->vfs().Unpin(path);
    (void)server->vfs().DeleteFile(path);
    lost.insert(path);
  }

  env.Reopen();
  db::Database recovered("MEDCRASH", db_opts);
  recovered.set_coordinator(&manager);
  Status rs = recovered.Recover();
  if (!rs.ok()) {
    report.violations.push_back("post-crash recover failed: " +
                                std::string(rs.message()));
    return report;
  }

  med::DatalinkReconciler reconciler(&recovered, &manager, &fleet,
                                     options.with_backup ? &backups
                                                         : nullptr);
  Result<med::ReconcileFindings> first = reconciler.Run(/*repair=*/true);
  if (!first.ok()) {
    report.violations.push_back("reconcile failed: " +
                                std::string(first.status().message()));
    return report;
  }
  report.recovered_items = first->values_checked;

  // Post-condition: every DATALINK value now references an existing,
  // pinned file, or was flagged dangling — nothing silently inconsistent.
  std::set<std::string> dangling(first->dangling_urls.begin(),
                                 first->dangling_urls.end());
  Result<const db::Table*> table = recovered.GetTable("RESULT_FILE");
  if (table.ok()) {
    (*table)->ForEachRow([&](db::RowId, const db::Row& row) {
      if (row.size() < 2 || row[1].is_null()) return;
      const std::string& url = row[1].AsString();
      if (dangling.count(url) != 0) return;
      Result<fs::FileUrl> parsed = fs::ParseFileUrl(url);
      if (!parsed.ok() || !server->vfs().Exists(parsed->path)) {
        report.violations.push_back("unflagged dangling DATALINK: " + url);
      } else if (!server->vfs().IsPinned(parsed->path)) {
        report.violations.push_back("linked file left unpinned: " + url);
      }
    });
  }
  // Every lost file a completed backup covers restores from its copy —
  // it must never surface as dangling. Files lost outside backup
  // coverage (or when the crash pre-empted the backup) are correctly
  // flagged instead.
  for (const std::string& url : first->dangling_urls) {
    Result<fs::FileUrl> parsed = fs::ParseFileUrl(url);
    if (parsed.ok() && backed_up.count(parsed->path) != 0) {
      report.violations.push_back("dangling despite backup: " + url);
    }
  }
  Result<med::ReconcileFindings> second = reconciler.Run(/*repair=*/true);
  if (!second.ok()) {
    report.violations.push_back("second reconcile failed: " +
                                std::string(second.status().message()));
    return report;
  }
  // The second pass must be a fixpoint: no new repairs, orphans all
  // released, and the dangling set (if any, without backup) stable.
  if (second->relinked != 0 || second->restored != 0 ||
      second->released_orphans != 0 || !second->orphan_files.empty()) {
    report.violations.push_back("reconcile is not a fixpoint");
  }
  std::set<std::string> dangling2(second->dangling_urls.begin(),
                                  second->dangling_urls.end());
  if (dangling2 != dangling) {
    report.violations.push_back("dangling set not stable across reconciles");
  }
  return report;
}

CrashReport RunReplicationCrashCase(const ReplicationCrashOptions& options) {
  CrashReport report;
  std::vector<std::string> workload =
      GenerateWalWorkload(options.seed, options.statements);

  // Full mesh so any promoted replica can ship to the survivors.
  sim::Network net;
  net.SeedFaults(options.seed * 7919 + 1);
  std::vector<std::string> hosts{"db"};
  for (int i = 0; i < options.replicas; ++i) {
    hosts.push_back("r" + std::to_string(i + 1));
  }
  for (const std::string& host : hosts) net.AddHost({host, 50.0, 4});
  for (const std::string& from : hosts) {
    for (const std::string& to : hosts) {
      if (from != to) {
        net.AddLink(from, to, sim::BandwidthSchedule::Constant(100.0),
                    0.001);
      }
    }
  }

  db::Database primary("PRIMARY");
  db::repl::CoordinatorOptions copts;
  copts.primary_host = "db";
  copts.ack_quorum = options.ack_quorum;
  // Routing freshness is not under test here; keep reads on any node.
  copts.max_read_lag_epochs = 1u << 30;
  db::repl::ReplicationCoordinator coord(&primary, &net, copts);
  std::vector<db::repl::ReplicaNode*> replicas;
  for (int i = 0; i < options.replicas; ++i) {
    replicas.push_back(coord.AddReplica("r" + std::to_string(i + 1)));
  }

  auto set_loss = [&](double p) {
    for (const std::string& from : hosts) {
      for (const std::string& to : hosts) {
        if (from != to) (void)net.SetLinkLossProbability(from, to, p);
      }
    }
  };
  set_loss(options.link_loss_probability);
  Random fault_rng(options.seed ^ 0x5eedf00dULL);
  if (options.torn_shipment_probability > 0) {
    coord.shipper().set_transport_fault([&](std::string* bytes) {
      if (!bytes->empty() &&
          fault_rng.NextDouble() < options.torn_shipment_probability) {
        bytes->resize(fault_rng.Uniform(bytes->size()));
      }
    });
  }

  // Replica-crash schedule: go down mid-apply a third of the way in, come
  // back two thirds in and resume from the partial prefix.
  db::repl::ReplicaNode* victim =
      replicas.empty() ? nullptr : replicas.front();
  size_t down_at = workload.size() / 3;
  size_t up_at = 2 * workload.size() / 3;

  std::vector<std::string> executed;
  std::vector<size_t> acked_idx;
  std::vector<uint64_t> last_epoch(replicas.size(), 0);
  for (size_t i = 0; i < workload.size(); ++i) {
    if (options.crash_after_statement >= 0 &&
        i > static_cast<size_t>(options.crash_after_statement)) {
      report.crashed = true;
      break;
    }
    if (options.replica_crash && victim != nullptr && i == down_at) {
      // The victim applies only half of its pending batch — a crash in
      // the middle of a shipment — then goes dark.
      std::vector<db::repl::CommitEntry> pending = coord.log().EntriesAfter(
          victim->last_applied_lsn(), workload.size() + 1);
      if (pending.size() > 1) {
        std::string bytes = db::repl::EncodeShipment(pending);
        Result<db::repl::ReplicaNode::ApplyOutcome> out =
            victim->ApplyShipment(bytes, pending.size() / 2);
        if (!out.ok()) {
          report.violations.push_back("partial apply failed: " +
                                      std::string(out.status().message()));
        }
      }
      victim->set_down(true);
    }
    if (options.replica_crash && victim != nullptr && i == up_at) {
      victim->set_down(false);
    }
    coord.Heartbeat();
    uint64_t lsn_before = coord.log().last_lsn();
    Result<db::QueryResult> result = coord.Execute(workload[i]);
    if (result.ok()) {
      executed.push_back(workload[i]);
      acked_idx.push_back(executed.size() - 1);
    } else if (coord.log().last_lsn() > lsn_before) {
      // Committed on the primary but below quorum / lost in transit:
      // executed, not acked. Failover may legitimately discard it.
      executed.push_back(workload[i]);
    } else {
      report.violations.push_back(
          "statement failed before commit: " + workload[i] + " (" +
          std::string(result.status().message()) + ")");
    }
    for (size_t r = 0; r < replicas.size(); ++r) {
      uint64_t epoch = replicas[r]->applied_epoch();
      if (epoch < last_epoch[r]) {
        report.violations.push_back("replica epoch went backwards on " +
                                    replicas[r]->host());
      }
      last_epoch[r] = epoch;
    }
  }
  report.acked = acked_idx.size();

  // Faults stop at the crash/drain point; what must now hold is that
  // resumable shipping converges every survivor.
  set_loss(0.0);
  coord.shipper().set_transport_fault({});
  if (victim != nullptr) victim->set_down(false);

  std::string primary_dump;
  std::string promoted_host;
  if (report.crashed) {
    net.clock().Advance(copts.heartbeat_timeout_seconds + 1);
    // Quorum-holder-down boundary: take the most caught-up replica down
    // before the promotion decision. With ack_quorum <= 1 down replica it
    // may be the sole holder of acked commits, so the coordinator must
    // refuse the lossy promotion whenever the holder is strictly ahead of
    // every surviving candidate — not silently discard its commits.
    db::repl::ReplicaNode* holder = nullptr;
    bool holder_ahead = false;
    if (options.down_quorum_holder_at_failover) {
      for (db::repl::ReplicaNode* replica : replicas) {
        if (replica->down()) continue;
        if (holder == nullptr ||
            std::make_pair(holder->term(), holder->last_applied_lsn()) <
                std::make_pair(replica->term(),
                               replica->last_applied_lsn())) {
          holder = replica;
        }
      }
      if (holder != nullptr) {
        // Ahead means ahead of the BEST survivor: a co-equal survivor
        // covers every commit the holder acked, so promotion is safe.
        db::repl::ReplicaNode* best_survivor = nullptr;
        for (db::repl::ReplicaNode* replica : replicas) {
          if (replica == holder || replica->down()) continue;
          if (best_survivor == nullptr ||
              std::make_pair(best_survivor->term(),
                             best_survivor->last_applied_lsn()) <
                  std::make_pair(replica->term(),
                                 replica->last_applied_lsn())) {
            best_survivor = replica;
          }
        }
        // A lone downed holder is trivially "ahead" of the empty set.
        holder_ahead =
            best_survivor == nullptr ||
            std::make_pair(best_survivor->term(),
                           best_survivor->last_applied_lsn()) <
                std::make_pair(holder->term(), holder->last_applied_lsn());
        holder->set_down(true);
      }
    }
    Result<std::string> promoted = coord.MaybeFailover();
    if (holder != nullptr) {
      // The coordinator's bound: refusal fires iff (a) the one downed
      // node reaches the ack quorum (quorum <= 1 here) and (b) it is
      // strictly ahead of the best survivor. NotFound (no candidate at
      // all) also counts as a safe refusal.
      bool expect_refusal = holder_ahead && options.ack_quorum <= 1 &&
                            options.ack_quorum > 0;
      if (promoted.ok()) {
        if (expect_refusal) {
          report.violations.push_back(
              "lossy promotion proceeded although the quorum-holding "
              "replica " +
              holder->host() + " was down and ahead");
        }
        holder->set_down(false);
      } else {
        StatusCode code = promoted.status().code();
        if (code != StatusCode::kFailedPrecondition &&
            code != StatusCode::kNotFound) {
          report.violations.push_back(
              "failover with quorum holder down failed oddly: " +
              std::string(promoted.status().message()));
          return report;
        }
        if (code == StatusCode::kFailedPrecondition && !expect_refusal) {
          report.violations.push_back(
              "promotion refused although survivors covered the quorum");
        }
        // The refusal is the safe outcome; recover the holder and retry.
        holder->set_down(false);
        promoted = coord.MaybeFailover();
      }
    }
    if (!promoted.ok()) {
      report.violations.push_back("failover failed: " +
                                  std::string(promoted.status().message()));
      return report;
    }
    promoted_host = *promoted;
    primary_dump = DumpDatabase(*coord.primary(), &report.recovered_items);
    // Zero acked-commit loss: the promoted state must be the shadow
    // replay of an executed-statement prefix covering every ack.
    size_t min_prefix = acked_idx.empty() ? 0 : acked_idx.back() + 1;
    bool matched = false;
    for (size_t k = min_prefix; k <= executed.size(); ++k) {
      std::vector<std::string> prefix(executed.begin(),
                                      executed.begin() + k);
      Result<std::string> want = ReplayDump(prefix);
      if (want.ok() && *want == primary_dump) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      report.violations.push_back(
          "promoted state is not an acked-covering prefix of the "
          "executed workload (acked-commit loss?)");
    }
  } else {
    primary_dump = DumpDatabase(primary, &report.recovered_items);
    Result<std::string> want = ReplayDump(executed);
    if (!want.ok() || *want != primary_dump) {
      report.violations.push_back(
          "primary state diverged from the shadow replay");
    }
  }

  for (int pass = 0; pass < 3; ++pass) {
    if (coord.ShipAll().ok()) break;
  }
  for (db::repl::ReplicaNode* replica : replicas) {
    if (replica->host() == promoted_host || replica->down()) continue;
    if (DumpDatabase(replica->database(), nullptr) != primary_dump) {
      report.violations.push_back("replica " + replica->host() +
                                  " diverged after drain");
    }
    if (replica->applied_epoch() != coord.primary()->commit_epoch()) {
      report.violations.push_back("replica " + replica->host() +
                                  " epoch mismatch after drain");
    }
  }
  report.wal_bytes = net.TotalTraffic();
  return report;
}

namespace {

/// Comparable image of one query result: display rows, sorted when the
/// statement carries no total order.
std::string RenderResult(const db::QueryResult& result, bool ordered) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const db::Row& row : result.rows) {
    std::string line;
    for (const db::Value& v : row) {
      line += v.ToDisplayString();
      line += "|";
    }
    rows.push_back(std::move(line));
  }
  if (!ordered) std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& line : rows) out += line + "\n";
  return out;
}

}  // namespace

CrashReport RunShardCrashCase(const ShardCrashOptions& options) {
  CrashReport report;
  std::vector<std::string> workload =
      GenerateWalWorkload(options.seed, options.statements);
  // The same statement list drives the sharded run and the single-node
  // shadow: the partition clause is routing metadata on a plain database.
  workload[0] += " PARTITION BY HASH(ID) PARTITIONS " +
                 std::to_string(options.shards);

  // Full mesh over the coordinator, every shard primary and every replica.
  sim::Network net;
  std::vector<std::string> hosts{"web"};
  for (int i = 0; i < options.shards; ++i) {
    std::string host = "s" + std::to_string(i);
    hosts.push_back(host);
    for (int r = 1; r <= options.replicas_per_shard; ++r) {
      hosts.push_back(host + "-r" + std::to_string(r));
    }
  }
  for (const std::string& host : hosts) net.AddHost({host, 50.0, 4});
  for (const std::string& from : hosts) {
    for (const std::string& to : hosts) {
      if (from != to) {
        net.AddLink(from, to, sim::BandwidthSchedule::Constant(100.0), 0.001);
      }
    }
  }

  db::shard::ShardOptions sopts;
  sopts.coordinator_host = "web";
  for (int i = 0; i < options.shards; ++i) {
    sopts.shard_hosts.push_back("s" + std::to_string(i));
  }
  sopts.replicas_per_shard = static_cast<size_t>(options.replicas_per_shard);
  sopts.repl_options.ack_quorum = options.ack_quorum;
  db::shard::ShardCoordinator coord(&net, sopts);
  const size_t shards = coord.num_shards();

  auto heartbeat_all = [&] {
    for (size_t s = 0; s < shards; ++s) coord.repl(s)->Heartbeat();
  };
  auto drain_all = [&]() -> bool {
    bool ok = true;
    for (size_t s = 0; s < shards; ++s) {
      bool shipped = false;
      for (int pass = 0; pass < 3 && !shipped; ++pass) {
        shipped = coord.repl(s)->ShipAll().ok();
      }
      ok = ok && shipped;
    }
    return ok;
  };

  db::Database shadow("SHADOW");
  for (const std::string& sql : workload) {
    heartbeat_all();
    Result<db::QueryResult> sharded = coord.Execute(sql);
    if (!sharded.ok()) {
      report.violations.push_back("statement failed before the crash: " +
                                  sql + " (" +
                                  std::string(sharded.status().message()) +
                                  ")");
      return report;
    }
    ++report.acked;
    Result<db::QueryResult> replayed = shadow.Execute(sql);
    if (!replayed.ok()) {
      report.violations.push_back("shadow replay failed: " + sql);
      return report;
    }
  }
  // Full drain: every replica holds every acked commit, so whichever one
  // the failover promotes must preserve them all.
  if (!drain_all()) {
    report.violations.push_back("pre-crash drain did not converge");
    return report;
  }

  const std::string agg_sql =
      "SELECT COUNT(*), SUM(SCORE), MIN(SCORE), MAX(SCORE) FROM T";
  const size_t victim = static_cast<size_t>(options.seed % shards);
  db::repl::ReplicationCoordinator* vrepl = coord.repl(victim);
  const uint64_t failovers_before = vrepl->failovers();

  // The hook fires right before each per-shard scan of the scatter (which
  // runs serially while installed): on reaching the victim, its primary
  // goes silent past the heartbeat timeout and a replica is promoted
  // mid-statement. The shared sim clock advance makes every OTHER shard's
  // primary look dead too, so they are immediately heartbeated back.
  bool fired = false;
  coord.SetScatterHook([&](size_t s) {
    if (fired || s != victim) return;
    fired = true;
    net.clock().Advance(sopts.repl_options.heartbeat_timeout_seconds + 1);
    if (!vrepl->PrimaryDown()) {
      report.violations.push_back("victim primary not presumed down");
      return;
    }
    Result<std::string> promoted = vrepl->MaybeFailover();
    if (!promoted.ok()) {
      report.violations.push_back(
          "mid-scatter failover failed: " +
          std::string(promoted.status().message()));
    }
    heartbeat_all();
  });
  Result<db::QueryResult> scatter = coord.Execute(agg_sql);
  coord.SetScatterHook({});
  report.crashed = fired;
  if (!fired) {
    report.violations.push_back("scatter never reached the victim shard");
    return report;
  }
  if (vrepl->failovers() == failovers_before) {
    report.violations.push_back("failover did not run");
  }
  if (!scatter.ok()) {
    // The replication layer's codes must pass through the scatter path
    // verbatim; anything else is a mangled failure.
    StatusCode code = scatter.status().code();
    if (code != StatusCode::kUnavailable && code != StatusCode::kAborted) {
      report.violations.push_back(
          "mid-failover scatter failed with an unexpected code: " +
          std::string(scatter.status().message()));
    }
  }

  // Recovery: primaries heartbeated, replicas drained, then the same
  // aggregate re-runs serially against the promoted topology.
  heartbeat_all();
  if (!drain_all()) {
    report.violations.push_back("post-failover drain did not converge");
  }
  Result<db::QueryResult> rerun = coord.Execute(agg_sql);
  Result<db::QueryResult> shadow_agg = shadow.Execute(agg_sql);
  if (!rerun.ok() || !shadow_agg.ok()) {
    report.violations.push_back("post-recovery aggregate failed: " +
                                std::string(rerun.status().message()));
    return report;
  }
  if (scatter.ok() &&
      RenderResult(*scatter, false) != RenderResult(*rerun, false)) {
    report.violations.push_back(
        "mid-failover scatter diverged from the post-recovery re-run");
  }
  if (RenderResult(*rerun, false) != RenderResult(*shadow_agg, false)) {
    report.violations.push_back(
        "post-recovery aggregate lost acked commits (shadow mismatch)");
  }

  // Writes flow to the promoted primary, and the whole partitioned table
  // still equals the shadow row-for-row.
  const std::string post_insert =
      "INSERT INTO T (ID, NAME, SCORE) VALUES (100000, 'postcrash', 7)";
  Result<db::QueryResult> write = coord.Execute(post_insert);
  if (!write.ok()) {
    report.violations.push_back("post-failover write failed: " +
                                std::string(write.status().message()));
  } else if (!shadow.Execute(post_insert).ok()) {
    report.violations.push_back("shadow replay of the post-crash write "
                                "failed");
  }
  const std::string scan_sql = "SELECT * FROM T ORDER BY ID";
  Result<db::QueryResult> all = coord.Execute(scan_sql);
  Result<db::QueryResult> shadow_all = shadow.Execute(scan_sql);
  if (!all.ok() || !shadow_all.ok()) {
    report.violations.push_back("post-recovery table scan failed");
    return report;
  }
  if (RenderResult(*all, true) != RenderResult(*shadow_all, true)) {
    report.violations.push_back(
        "sharded table diverged from the shadow after failover");
  }
  report.recovered_items = all->rows.size();
  report.wal_bytes = net.TotalTraffic();
  return report;
}

}  // namespace easia::testing
