#ifndef EASIA_TESTING_FAULT_INJECTION_H_
#define EASIA_TESTING_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/random.h"
#include "common/result.h"
#include "fileserver/vfs.h"

namespace easia::testing {

/// What happens to bytes that were appended but not fsynced when the
/// environment crashes.
enum class CrashSurvival {
  /// Every appended byte up to the crash point survives (write-through
  /// model; crash points land on exact byte boundaries — used to sweep a
  /// record's every boundary).
  kAll,
  /// Only fsynced bytes survive (strict durability model).
  kSyncedOnly,
  /// Fsynced bytes survive plus a seeded-random prefix of the unsynced
  /// tail — a torn write.
  kRandomTail,
};

/// A seeded, declarative description of the faults one run injects.
/// Deterministic: the same plan against the same workload produces the
/// same faults, so every failure reproduces from its seed.
struct FaultPlan {
  uint64_t seed = 1;

  /// Crash after this many bytes have been appended to files whose path
  /// contains `crash_path_filter` (every file when empty). Negative
  /// disables crashing. Crash semantics are longjmp-free: the environment
  /// simply stops persisting — every subsequent operation fails with
  /// kUnavailable until `Reopen()` simulates the restart.
  int64_t crash_after_bytes = -1;
  std::string crash_path_filter;
  CrashSurvival survival = CrashSurvival::kAll;

  /// Probability an append fails with a transient error (kUnavailable)
  /// before writing anything — an injected EIO.
  double append_error_probability = 0.0;
  /// Probability an fsync silently does nothing (reports OK, durability
  /// lost) — the silent-drop fault class. Leave 0 to keep the
  /// acked-implies-durable invariant checkable.
  double drop_fsync_probability = 0.0;
  /// Probability a whole-file read returns only a prefix (short read).
  double short_read_probability = 0.0;
};

/// An in-memory io::Env that injects the faults a FaultPlan describes.
/// Tracks, per file, the full buffered contents and the prefix known
/// durable (fsynced); a crash discards buffered bytes according to the
/// plan's survival policy when the environment is reopened.
class FaultyEnv : public io::Env {
 public:
  explicit FaultyEnv(FaultPlan plan);

  // --- io::Env ---
  Result<std::unique_ptr<io::LogFile>> OpenAppend(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         std::string_view contents) override;
  Status RemoveFile(const std::string& path) override;
  Status Truncate(const std::string& path) override;

  // --- harness controls ---
  bool crashed() const;
  /// Simulates the post-crash restart: applies the survival policy to
  /// every file (buffered bytes are kept, torn or discarded), marks the
  /// surviving bytes durable, clears the crashed flag and disarms the
  /// crash trigger. Also the way to start a run from a pre-built image.
  void Reopen();
  /// Bytes appended so far to files matching the crash filter (the crash
  /// counter; use it to size `crash_after_bytes` sweeps).
  uint64_t bytes_appended() const;
  /// Next n fsyncs return an error (without persisting) — for testing
  /// that fsync failures propagate as Status.
  void FailNextFsyncs(int n);

  /// The next restart's durable image of `path` under the current plan's
  /// survival policy (kNotFound when the file does not exist).
  Result<std::string> DurableContents(const std::string& path) const;
  /// Buffered (process-visible) contents, ignoring durability.
  Result<std::string> BufferedContents(const std::string& path) const;
  /// Flips one bit — corruption the CRC layer must reject.
  void FlipBit(const std::string& path, size_t byte_offset, int bit);
  /// Truncates the buffered file to `len` bytes (torn tail).
  void TruncateTo(const std::string& path, size_t len);

 private:
  class FaultyLogFile;

  struct FileState {
    std::string data;   // everything appended (process-visible)
    size_t synced = 0;  // durable prefix
  };

  /// Called with mu_ held.
  Status AppendLocked(const std::string& path, std::string_view data);
  Status SyncLocked(const std::string& path);
  std::string SurvivingLocked(const FileState& f) const;
  bool MatchesCrashFilter(const std::string& path) const;

  mutable std::mutex mu_;
  FaultPlan plan_;
  mutable Random rng_;
  bool crashed_ = false;
  uint64_t appended_ = 0;
  int fail_fsyncs_ = 0;
  std::map<std::string, FileState> files_;
};

/// A fs::Vfs decorator injecting transient storage errors in front of any
/// base implementation — the file-server analogue of FaultyEnv. Used to
/// exercise the retry-with-backoff path (`FileServer::WithRetry`) and the
/// reconciler's dangling/orphan handling.
class FaultInjectingVfs : public fs::Vfs {
 public:
  explicit FaultInjectingVfs(fs::Vfs* base, uint64_t seed = 1)
      : base_(base), rng_(seed) {}

  /// The next n mutating/reading operations fail with kUnavailable.
  void FailNextOps(int n) { fail_ops_.store(n); }
  /// Every operation independently fails with probability p.
  void set_error_probability(double p) { error_probability_ = p; }
  uint64_t faults_injected() const { return faults_.load(); }

  // --- fs::Vfs ---
  Status WriteFile(const std::string& path, std::string contents,
                   const std::string& owner = "") override;
  Status CreateSparseFile(const std::string& path, uint64_t size,
                          const std::string& owner = "") override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Result<fs::FileStat> Stat(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status Pin(const std::string& path) override;
  Status Unpin(const std::string& path) override;
  bool IsPinned(const std::string& path) const override;
  std::vector<std::string> List(
      const std::string& prefix = "/") const override;
  uint64_t TotalBytes() const override { return base_->TotalBytes(); }
  size_t FileCount() const override { return base_->FileCount(); }

 private:
  /// Returns the injected error, or OK to forward to the base.
  Status MaybeFault(const char* op) const;

  fs::Vfs* base_;
  mutable std::mutex mu_;  // guards rng_
  mutable Random rng_;
  double error_probability_ = 0.0;
  mutable std::atomic<int> fail_ops_{0};
  mutable std::atomic<uint64_t> faults_{0};
};

}  // namespace easia::testing

#endif  // EASIA_TESTING_FAULT_INJECTION_H_
