// Asynchronous batch jobs: submit long-running post-processing through
// /jobs/submit, get the job id back immediately, poll /jobs/status while
// workers drain the queue, and survive a crash via the persistent journal.
#include <cstdio>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "core/archive.h"
#include "core/turbulence_setup.h"

using namespace easia;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::easia::Status _s = (expr);                                   \
    if (!_s.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (false)

namespace {

struct Instance {
  std::unique_ptr<core::Archive> archive;
  std::string dataset;
  std::string session;
};

/// Builds one archive incarnation. Seeding is deterministic, so a
/// "restarted" incarnation sees the same datasets the crashed one did;
/// only the job journal carries state across the restart.
Instance Boot(const std::string& journal_path) {
  Instance inst;
  core::Archive::Options options;
  options.job_options.journal_path = journal_path;
  inst.archive = std::make_unique<core::Archive>(options);
  inst.archive->AddFileServer("fs1.hpc.example.ac.uk", 8.0);
  (void)core::CreateTurbulenceSchema(inst.archive.get());
  core::SeedOptions seed;
  seed.hosts = {"fs1.hpc.example.ac.uk"};
  seed.simulations = 1;
  seed.timesteps_per_simulation = 2;
  seed.grid_n = 8;
  auto seeded = core::SeedTurbulenceData(inst.archive.get(), seed);
  inst.dataset = (*seeded)[0].dataset_urls[0];
  (void)inst.archive->InitializeXuis();
  (void)core::AttachNativeOperations(inst.archive.get());
  (void)inst.archive->AddUser("alice", "secret",
                              web::UserRole::kAuthorised);
  inst.session = *inst.archive->Login("alice", "secret");
  return inst;
}

void ShowStatus(Instance& inst, const std::string& id) {
  auto status = inst.archive->Get(inst.session, "/jobs/status", {{"id", id}});
  // Crude de-HTML for terminal output: show the state row only.
  size_t at = status.body.find("<th>state</th><td>");
  if (at != std::string::npos) {
    size_t start = at + 18;
    size_t end = status.body.find("</td>", start);
    std::printf("  job %s state: %s\n", id.c_str(),
                status.body.substr(start, end - start).c_str());
  }
}

}  // namespace

int main() {
  const std::string journal = "/tmp/easia_async_jobs_example.jobj";
  std::remove(journal.c_str());

  std::printf("=== submit returns immediately ===\n");
  std::string job_id;
  {
    Instance inst = Boot(journal);
    auto submit = inst.archive->Get(inst.session, "/jobs/submit",
                                    {{"op", "FieldStats"},
                                     {"dataset", inst.dataset},
                                     {"priority", "5"}});
    if (submit.status != 200) {
      std::fprintf(stderr, "submit failed: %s\n", submit.body.c_str());
      return 1;
    }
    job_id = submit.body;  // plain text: the job id
    std::printf("  submitted FieldStats as job %s (no work done yet)\n",
                job_id.c_str());
    ShowStatus(inst, job_id);

    // The archive "crashes" here: the Instance is destroyed with the job
    // still queued. Every transition was journalled, so nothing is lost.
    std::printf("=== simulated crash (archive torn down) ===\n");
  }

  std::printf("=== restart: journal recovery re-enqueues the job ===\n");
  Instance inst = Boot(journal);
  ShowStatus(inst, job_id);

  // Workers drain the queue. In a server this is
  // `archive.jobs().Start(4)` with real threads; the deterministic
  // single-step drain below is what the tests and this demo use.
  size_t ran = inst.archive->jobs().RunPending();
  std::printf("=== worker drained %zu job(s) ===\n", ran);
  ShowStatus(inst, job_id);

  // Results are downloadable output URLs, exactly like synchronous /runop.
  auto job = inst.archive->jobs().queue().Get(
      static_cast<jobs::JobId>(*ParseInt64(job_id)));
  CHECK_OK(job.status());
  for (const std::string& url : job->output_urls) {
    std::printf("  output: %s\n", url.c_str());
  }
  std::printf("%s", job->output_text.c_str());

  std::remove(journal.c_str());
  return 0;
}
