// XUIS lifecycle: generate the default specification from the catalogue,
// round-trip it through XML + DTD validation, customise it, and install a
// personalised interface for one user class.
#include <cstdio>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xuis/serialize.h"

using namespace easia;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::easia::Status _s = (expr);                                   \
    if (!_s.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (false)

int main() {
  core::Archive archive;
  archive.AddFileServer("fs1.soton.ac.uk");
  CHECK_OK(core::CreateTurbulenceSchema(&archive));
  core::SeedOptions seed;
  seed.hosts = {"fs1.soton.ac.uk"};
  seed.simulations = 2;
  seed.timesteps_per_simulation = 2;
  seed.grid_n = 8;
  CHECK_OK(core::SeedTurbulenceData(&archive, seed).status());

  // 1. The default XUIS, exactly what the paper's generator tool emits:
  //    tables, columns, types, sizes, samples, pk/refby and fk links.
  CHECK_OK(archive.InitializeXuis());
  auto text = xuis::ToXmlText(archive.xuis().Default());
  CHECK_OK(text.status());
  std::printf("default XUIS: %zu bytes, %zu tables, %zu columns\n",
              text->size(), archive.xuis().Default().tables.size(),
              archive.xuis().Default().TotalColumns());

  // 2. Round trip: parse the XML back and compare structure.
  auto parsed = xuis::ParseXuisText(*text);
  CHECK_OK(parsed.status());
  std::printf("round-trip: %zu tables, %zu columns (must match)\n",
              parsed->tables.size(), parsed->TotalColumns());

  // 3. DTD validation rejects malformed XUIS documents.
  auto dtd = xml::Dtd::Parse(xml::XuisDtdText());
  CHECK_OK(dtd.status());
  auto bad = xml::Parse(
      "<xuis database=\"X\"><table name=\"T\">"
      "<column name=\"C\" colid=\"T.C\"/>"  // missing required <type>
      "</table></xuis>");
  CHECK_OK(bad.status());
  Status verdict = dtd->Validate(*bad->root);
  std::printf("validating a bad XUIS: %s (expected: rejected)\n",
              verdict.ToString().c_str());

  // 4. Customisation: aliases, hiding, FK substitution, samples.
  xuis::XuisCustomizer customizer(archive.xuis().MutableDefault());
  CHECK_OK(customizer.SetTableAlias("AUTHOR", "Author"));
  CHECK_OK(customizer.SetColumnAlias("AUTHOR.NAME", "Name"));
  CHECK_OK(customizer.HideColumn("AUTHOR.EMAIL"));
  CHECK_OK(customizer.SetFkSubstitution("SIMULATION.AUTHOR_KEY",
                                        "AUTHOR.NAME"));
  CHECK_OK(customizer.SetSamples("SIMULATION.REYNOLDS_NUMBER",
                                 {"1600", "3200"}));
  // User-defined relationship with no RI constraint behind it:
  // VISUALISATION_FILE.VIS_NAME -> RESULT_FILE.FILE_NAME.
  CHECK_OK(customizer.AddUserDefinedRelationship(
      "VISUALISATION_FILE.VIS_NAME", "RESULT_FILE.FILE_NAME"));
  std::printf("customised: alias/hide/fk-subst/user-defined link applied\n");

  // 5. Personalisation: the "students" user class sees a trimmed interface.
  xuis::XuisSpec student_view = archive.xuis().Default();
  student_view.user = "student";
  xuis::XuisCustomizer student_customizer(&student_view);
  CHECK_OK(student_customizer.HideTable("CODE_FILE"));
  CHECK_OK(student_customizer.HideTable("VISUALISATION_FILE"));
  archive.xuis().SetForUser("student", std::move(student_view));
  std::printf("default view: %zu visible tables; student view: %zu\n",
              archive.xuis().Default().VisibleTables().size(),
              archive.xuis().For("student").VisibleTables().size());

  // 6. The customised spec still serialises to valid XUIS XML.
  auto final_text = xuis::ToXmlText(archive.xuis().For("student"));
  CHECK_OK(final_text.status());
  std::printf("personalised XUIS serialises to %zu bytes of valid XML\n",
              final_text->size());
  return 0;
}
