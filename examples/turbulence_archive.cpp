// The full UK Turbulence Consortium scenario: three file-server hosts, a
// customised XUIS-driven web interface, QBE search, hyperlink browsing and
// the GetImage server-side visualisation operation from the paper.
#include <cstdio>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "common/string_util.h"
#include "xuis/serialize.h"

using namespace easia;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::easia::Status _s = (expr);                                   \
    if (!_s.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (false)

static void PrintSection(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

int main() {
  core::Archive archive;
  // "Many distributed machines acting as file servers for a single
  // database."
  for (const char* host : {"fs1.soton.ac.uk", "fs2.man.ac.uk",
                           "fs3.qmw.ac.uk"}) {
    archive.AddFileServer(host);
  }
  archive.AddClientHost("browser.ucl.ac.uk");
  CHECK_OK(core::CreateTurbulenceSchema(&archive));

  core::SeedOptions seed;
  seed.hosts = {"fs1.soton.ac.uk", "fs2.man.ac.uk", "fs3.qmw.ac.uk"};
  seed.simulations = 3;
  seed.timesteps_per_simulation = 4;
  seed.grid_n = 16;
  auto seeded = core::SeedTurbulenceData(&archive, seed);
  CHECK_OK(seeded.status());

  // Default XUIS from the catalogue, then the paper's customisations:
  // table/column aliases and the AUTHOR_KEY -> AUTHOR.NAME substitution.
  CHECK_OK(archive.InitializeXuis());
  xuis::XuisCustomizer customizer(archive.xuis().MutableDefault());
  CHECK_OK(customizer.SetTableAlias("SIMULATION", "Simulation"));
  CHECK_OK(customizer.SetTableAlias("RESULT_FILE", "Result files"));
  CHECK_OK(customizer.SetColumnAlias("SIMULATION.REYNOLDS_NUMBER",
                                     "Reynolds number"));
  CHECK_OK(customizer.SetFkSubstitution("SIMULATION.AUTHOR_KEY",
                                        "AUTHOR.NAME"));
  CHECK_OK(core::AttachGetImageOperation(&archive,
                                         (*seeded)[0].simulation_key, 16));
  CHECK_OK(core::AttachNativeOperations(&archive));
  CHECK_OK(core::AttachSdbUrlOperation(&archive, "fs2.man.ac.uk"));

  archive.AddUser("turbulence", "consortium", web::UserRole::kAuthorised);

  PrintSection("XUIS fragment (SIMULATION table)");
  auto xml = xuis::ToXmlText(archive.xuis().Default());
  CHECK_OK(xml.status());
  // Print just the first 40 lines.
  size_t shown = 0, pos = 0;
  while (shown < 40 && pos < xml->size()) {
    size_t eol = xml->find('\n', pos);
    if (eol == std::string::npos) eol = xml->size();
    std::printf("%s\n", xml->substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown;
  }
  std::printf("... (%zu bytes total)\n", xml->size());

  // --- Web walk-through ---
  auto session = archive.Login("turbulence", "consortium");
  CHECK_OK(session.status());

  PrintSection("Table index (/tables)");
  auto index = archive.Get(*session, "/tables");
  std::printf("%s\n", index.body.c_str());

  PrintSection("QBE search: simulations with Reynolds number >= 1000");
  auto results = archive.Get(*session, "/search",
                             {{"table", "SIMULATION"},
                              {"show.SIMULATION_KEY", "1"},
                              {"show.TITLE", "1"},
                              {"show.AUTHOR_KEY", "1"},
                              {"op.REYNOLDS_NUMBER", ">="},
                              {"value.REYNOLDS_NUMBER", "1000"}});
  std::printf("%s\n", results.body.c_str());

  PrintSection("Primary-key browse: result files of one simulation");
  auto browse = archive.Get(*session, "/browse",
                            {{"table", "RESULT_FILE"},
                             {"column", "SIMULATION_KEY"},
                             {"value", (*seeded)[0].simulation_key}});
  std::printf("%.2400s...\n", browse.body.c_str());

  PrintSection("GetImage operation form (/opform)");
  auto form = archive.Get(*session, "/opform",
                          {{"op", "GetImage"},
                           {"dataset", (*seeded)[0].dataset_urls[0]}});
  std::printf("%s\n", form.body.c_str());

  PrintSection("Run GetImage server-side (/runop)");
  auto run = archive.Get(*session, "/runop",
                         {{"op", "GetImage"},
                          {"dataset", (*seeded)[0].dataset_urls[0]},
                          {"slice", "x4"},
                          {"type", "u"}});
  std::printf("%s\n", run.body.c_str());

  PrintSection("Operation chaining with progress monitoring (future work)");
  // Declare the chain in the XUIS: Subsample then GetImage (both must be
  // operations on the same column; add a native GetImage twin for the
  // chain since the EaScript one is simulation-guarded).
  xuis::OperationSpec native_gi;
  native_gi.name = "GetImageN";
  native_gi.type = "NATIVE";
  native_gi.guest_access = true;
  native_gi.location.kind = xuis::OperationLocation::Kind::kUrl;
  native_gi.location.url = "native:builtin";
  archive.engine().natives().Register(
      "GetImageN", *archive.engine().natives().Get("GetImage").value());
  CHECK_OK(customizer.AddOperation("RESULT_FILE.DOWNLOAD_RESULT",
                                   native_gi));
  xuis::OperationChainSpec chain;
  chain.name = "SubsampleThenImage";
  chain.description = "Decimate the grid, then render a slice";
  chain.step_operations = {"Subsample", "GetImageN"};
  CHECK_OK(customizer.AddOperationChain("RESULT_FILE.DOWNLOAD_RESULT",
                                        chain));
  archive.engine().set_progress_listener([](const ops::ProgressEvent& e) {
    std::printf("  [progress] %-20s %s\n",
                std::string(ops::ProgressStageName(e.stage)).c_str(),
                e.operation.c_str());
  });
  auto chained = archive.Get(*session, "/runchain",
                             {{"chain", "SubsampleThenImage"},
                              {"dataset", (*seeded)[0].dataset_urls[0]},
                              {"Subsample.factor", "2"},
                              {"GetImageN.slice", "x1"},
                              {"GetImageN.type", "u"}});
  archive.engine().set_progress_listener(nullptr);
  std::printf("chain HTTP %d; output mentions step 2 image: %s\n",
              chained.status,
              chained.body.find("slice_x1_u.pgm") != std::string::npos
                  ? "yes"
                  : "no");

  PrintSection("Tokenised download to a consumer site");
  auto urls = archive.Execute("SELECT DOWNLOAD_RESULT FROM RESULT_FILE",
                              "turbulence");
  CHECK_OK(urls.status());
  std::string token_url = urls->rows[0][0].ToDisplayString();
  auto seconds = archive.Download(token_url, "browser.ucl.ac.uk");
  CHECK_OK(seconds.status());
  std::printf("downloaded %s in %s (simulated)\n", token_url.c_str(),
              HumanDuration(*seconds).c_str());

  PrintSection("Traffic summary");
  std::printf("bytes moved across all links: %s\n",
              HumanBytes(archive.network().TotalTraffic()).c_str());
  std::printf("linked files under SQL/MED control: %zu\n",
              archive.med().TotalLinkedFiles());
  return 0;
}
