// Coordinated backup and recovery: the SQL/MED guarantee that external
// files are backed up *in synchronisation with* the database, plus the
// reconcile pass that repairs link state after a disaster.
#include <cstdio>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "common/string_util.h"
#include "fileserver/url.h"

using namespace easia;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::easia::Status _s = (expr);                                   \
    if (!_s.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (false)

int main() {
  core::Archive archive;
  archive.AddFileServer("fs1.soton.ac.uk");
  archive.AddFileServer("fs2.man.ac.uk");
  CHECK_OK(core::CreateTurbulenceSchema(&archive));
  core::SeedOptions seed;
  seed.hosts = {"fs1.soton.ac.uk", "fs2.man.ac.uk"};
  seed.simulations = 2;
  seed.timesteps_per_simulation = 2;
  seed.grid_n = 8;
  auto seeded = core::SeedTurbulenceData(&archive, seed);
  CHECK_OK(seeded.status());

  std::printf("=== 1. Coordinated backup ===\n");
  auto backup_id = archive.backups().CreateBackup();
  CHECK_OK(backup_id.status());
  const auto& set = archive.backups().backups().at(*backup_id);
  std::printf("backup #%llu: database image %s + %zu linked files (%s; "
              "RECOVERY YES files carry bytes)\n",
              static_cast<unsigned long long>(*backup_id),
              HumanBytes(set.db_snapshot.size()).c_str(), set.files.size(),
              HumanBytes(set.TotalFileBytes()).c_str());

  std::printf("\n=== 2. Disaster ===\n");
  // A file server loses a dataset at the file-system level...
  auto victim = fs::ParseFileUrl((*seeded)[0].dataset_urls[0]);
  auto server = *archive.fleet().GetServer(victim->host);
  CHECK_OK(server->vfs().Unpin(victim->path));
  CHECK_OK(server->vfs().DeleteFile(victim->path));
  std::printf("lost file: http://%s%s\n", victim->host.c_str(),
              victim->path.c_str());
  // ...and an operator error wipes a metadata table.
  CHECK_OK(archive.Execute("DELETE FROM RESULT_FILE WHERE SIMULATION_KEY "
                           "= '" + (*seeded)[1].simulation_key + "'")
               .status());
  std::printf("operator deleted %s's RESULT_FILE rows\n",
              (*seeded)[1].simulation_key.c_str());

  // Reconcile detects the dangling DATALINK.
  auto report = archive.backups().Reconcile();
  CHECK_OK(report.status());
  std::printf("reconcile: %zu values checked, %zu dangling\n",
              report->values_checked, report->dangling_urls.size());

  std::printf("\n=== 3. Restore ===\n");
  CHECK_OK(archive.backups().Restore(*backup_id));
  auto rows = archive.Execute("SELECT COUNT(*) FROM RESULT_FILE");
  CHECK_OK(rows.status());
  std::printf("RESULT_FILE rows after restore: %lld (expected 4)\n",
              static_cast<long long>(rows->rows[0][0].AsInt()));
  std::printf("lost file re-materialised: %s, pinned: %s\n",
              server->vfs().Exists(victim->path) ? "yes" : "NO",
              server->vfs().IsPinned(victim->path) ? "yes" : "NO");
  auto clean = archive.backups().Reconcile();
  CHECK_OK(clean.status());
  std::printf("final reconcile: %s (%zu values, %zu intact, %zu relinked)\n",
              clean->Clean() ? "clean" : "NOT CLEAN", clean->values_checked,
              clean->intact, clean->relinked);
  return clean->Clean() ? 0 : 1;
}
