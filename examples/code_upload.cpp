// Code upload: an authorised user uploads post-processing code that runs
// server-side in the EaScript sandbox (the paper's secure Java upload),
// including what happens when the code misbehaves.
#include <cstdio>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "common/string_util.h"

using namespace easia;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::easia::Status _s = (expr);                                   \
    if (!_s.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (false)

int main() {
  core::Archive archive;
  archive.AddFileServer("fs1.hpc.example.ac.uk");
  CHECK_OK(core::CreateTurbulenceSchema(&archive));
  core::SeedOptions seed;
  seed.hosts = {"fs1.hpc.example.ac.uk"};
  seed.simulations = 1;
  seed.timesteps_per_simulation = 1;
  seed.grid_n = 8;
  auto seeded = core::SeedTurbulenceData(&archive, seed);
  CHECK_OK(seeded.status());
  CHECK_OK(archive.InitializeXuis());
  CHECK_OK(core::AttachCodeUpload(&archive));
  archive.AddUser("alice", "secret", web::UserRole::kAuthorised);

  const std::string dataset = (*seeded)[0].dataset_urls[0];

  // A well-behaved uploaded code: per-plane mean of the u component,
  // written to a relative file name (the paper's calling convention).
  const char* kGoodCode = R"EA(
let f = arg(0);
let n = tbf_n(f);
let report = "plane,mean_u\n";
for (let i = 0; i < n; i = i + 1) {
  let s = tbf_slice(f, "x", i, "u");
  let total = 0;
  for (let j = 0; j < len(s); j = j + 1) { total = total + s[j]; }
  report = report + str(i) + "," + str(total / len(s)) + "\n";
}
write("plane_means.csv", report);
print("computed " + str(n) + " plane means");
)EA";

  auto alice = archive.Login("alice", "secret");
  CHECK_OK(alice.status());
  std::printf("=== authorised upload ===\n");
  auto good = archive.Get(*alice, "/upload",
                          {{"table", "RESULT_FILE"},
                           {"column", "DOWNLOAD_RESULT"},
                           {"dataset", dataset},
                           {"code", kGoodCode}});
  std::printf("status=%d\n%s\n", good.status, good.body.c_str());

  // Guests may not upload at all.
  auto guest = archive.Login("guest", "guest");
  CHECK_OK(guest.status());
  auto denied = archive.Get(*guest, "/upload",
                            {{"table", "RESULT_FILE"},
                             {"column", "DOWNLOAD_RESULT"},
                             {"dataset", dataset},
                             {"code", kGoodCode}});
  std::printf("=== guest upload ===\nstatus=%d (expected 403)\n",
              denied.status);

  // Sandbox escape attempt: reading a file outside the permitted surface.
  std::printf("=== sandbox: reading another file ===\n");
  auto escape = archive.Get(*alice, "/upload",
                            {{"table", "RESULT_FILE"},
                             {"column", "DOWNLOAD_RESULT"},
                             {"dataset", dataset},
                             {"code",
                              "let secret = read(\"/etc/passwd\");\n"}});
  std::printf("status=%d (expected 403, permission denied inside)\n",
              escape.status);

  // Runaway code hits the step quota instead of hanging the server.
  std::printf("=== sandbox: infinite loop ===\n");
  archive.engine().sandbox_limits().max_steps = 200000;
  auto runaway = archive.Get(*alice, "/upload",
                             {{"table", "RESULT_FILE"},
                              {"column", "DOWNLOAD_RESULT"},
                              {"dataset", dataset},
                              {"code", "let i = 0;\nwhile (true) { i = i + 1; }\n"}});
  std::printf("status=%d (expected 400, step quota exceeded)\n",
              runaway.status);

  // Operation statistics (paper future work, implemented).
  std::printf("=== operation statistics ===\n");
  for (const auto& [name, stats] : archive.engine().stats()) {
    std::printf("%-24s invocations=%llu failures=%llu output=%s\n",
                name.c_str(),
                static_cast<unsigned long long>(stats.invocations),
                static_cast<unsigned long long>(stats.failures),
                HumanBytes(stats.total_output_bytes).c_str());
  }
  return 0;
}
