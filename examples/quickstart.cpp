// Quickstart: stand up an EASIA archive with one remote file server,
// archive a simulation result *where it was generated*, register its
// metadata with a DATALINK, and download it through an encrypted access
// token — the end-to-end loop of the paper in ~100 lines.
#include <cstdio>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "common/string_util.h"
#include "turbulence/tbf.h"

using namespace easia;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::easia::Status _s = (expr);                              \
    if (!_s.ok()) {                                           \
      std::fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                               \
    }                                                         \
  } while (false)

int main() {
  core::Archive archive;

  // A file server at the site that ran the simulation (e.g. the national
  // supercomputing centre), linked to the database host over the paper's
  // measured SuperJANET rates.
  archive.AddFileServer("fs1.hpc.example.ac.uk");
  archive.AddClientHost("desktop.qmw.ac.uk");

  // The five-table turbulence schema (AUTHOR, SIMULATION, RESULT_FILE,
  // CODE_FILE, VISUALISATION_FILE).
  CHECK_OK(core::CreateTurbulenceSchema(&archive));

  // Archive one materialised 16^3 dataset on the file server, then record
  // it in the database. The INSERT carries a DATALINK value; FILE LINK
  // CONTROL makes the DBMS verify the file exists and take control of it.
  core::SeedOptions seed;
  seed.hosts = {"fs1.hpc.example.ac.uk"};
  seed.simulations = 1;
  seed.timesteps_per_simulation = 1;
  seed.grid_n = 16;
  auto seeded = core::SeedTurbulenceData(&archive, seed);
  CHECK_OK(seeded.status());
  std::printf("archived dataset: %s\n",
              (*seeded)[0].dataset_urls[0].c_str());

  // The file is now pinned: deleting it behind the database's back fails.
  auto server = archive.fleet().GetServer("fs1.hpc.example.ac.uk");
  Status del = (*server)->vfs().DeleteFile(
      "/archive/" + (*seeded)[0].simulation_key + "/" +
      (*seeded)[0].simulation_key + "_t0000_n16.tbf");
  std::printf("deleting a linked file: %s (expected: refused)\n",
              del.ToString().c_str());

  // Query the metadata. SELECT rewrites the DATALINK into its token form:
  //   http://host/dir/access_token;file
  archive.AddUser("alice", "secret", web::UserRole::kAuthorised);
  auto rows = archive.Execute(
      "SELECT FILE_NAME, FILE_SIZE, DOWNLOAD_RESULT FROM RESULT_FILE",
      "alice");
  CHECK_OK(rows.status());
  std::string token_url = rows->rows[0][2].ToDisplayString();
  std::printf("tokenised URL:    %s\n", token_url.c_str());

  // Download it over the simulated network (evening rates apply at t=0).
  auto seconds = archive.Download(token_url, "desktop.qmw.ac.uk");
  CHECK_OK(seconds.status());
  std::printf("downloaded %s in %s (simulated)\n",
              HumanBytes(turb::Field::FileBytes(16)).c_str(),
              HumanDuration(*seconds).c_str());

  // A guest gets no token, and a token-less fetch is refused.
  auto guest_rows = archive.Execute(
      "SELECT DOWNLOAD_RESULT FROM RESULT_FILE", "guest");
  CHECK_OK(guest_rows.status());
  std::string guest_url = guest_rows->rows[0][0].ToDisplayString();
  auto guest_download = archive.Download(guest_url, "desktop.qmw.ac.uk");
  std::printf("guest download:   %s (expected: refused)\n",
              guest_download.status().ToString().c_str());
  return 0;
}
