// Tests of the XUIS <operationchain> markup (paper future work: "extend
// XUIS DTD for more complex operation specification — operation chaining,
// operations applied to multiple datasets") across serialisation, the
// customiser, the web route and the multi-dataset engine path.
#include <gtest/gtest.h>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "ops/engine.h"
#include "xuis/customize.h"
#include "xuis/serialize.h"

namespace easia {
namespace {

class ChainWebTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = std::make_unique<core::Archive>();
    archive_->AddFileServer("fs1", 8.0);
    archive_->AddFileServer("fs2", 8.0);
    ASSERT_TRUE(core::CreateTurbulenceSchema(archive_.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1", "fs2"};
    seed.simulations = 1;
    seed.timesteps_per_simulation = 4;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive_.get(), seed);
    ASSERT_TRUE(seeded.ok());
    seeded_ = *seeded;
    ASSERT_TRUE(archive_->InitializeXuis().ok());
    ASSERT_TRUE(core::AttachNativeOperations(archive_.get()).ok());
    // Native GetImage too (guest-accessible, column-local name).
    xuis::OperationSpec gi;
    gi.name = "GetImage";
    gi.type = "NATIVE";
    gi.guest_access = true;
    gi.location.kind = xuis::OperationLocation::Kind::kUrl;
    gi.location.url = "native:builtin";
    xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
    ASSERT_TRUE(c.AddOperation("RESULT_FILE.DOWNLOAD_RESULT", gi).ok());
    ASSERT_TRUE(archive_->AddUser("alice", "pw",
                                  web::UserRole::kAuthorised).ok());
  }

  Status AddChain(bool guest_access = false) {
    xuis::OperationChainSpec chain;
    chain.name = "SubsampleThenImage";
    chain.description = "Decimate then visualise";
    chain.guest_access = guest_access;
    chain.step_operations = {"Subsample", "GetImage"};
    xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
    return c.AddOperationChain("RESULT_FILE.DOWNLOAD_RESULT",
                               std::move(chain));
  }

  std::unique_ptr<core::Archive> archive_;
  std::vector<core::SeededSimulation> seeded_;
};

TEST_F(ChainWebTest, CustomizerValidatesSteps) {
  ASSERT_TRUE(AddChain().ok());
  xuis::OperationChainSpec bad;
  bad.name = "Broken";
  bad.step_operations = {"NoSuchOp"};
  xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
  EXPECT_TRUE(
      c.AddOperationChain("RESULT_FILE.DOWNLOAD_RESULT", bad).IsNotFound());
  xuis::OperationChainSpec empty;
  empty.name = "Empty";
  EXPECT_FALSE(
      c.AddOperationChain("RESULT_FILE.DOWNLOAD_RESULT", empty).ok());
}

TEST_F(ChainWebTest, ChainSurvivesXmlRoundTripAndDtd) {
  ASSERT_TRUE(AddChain(true).ok());
  auto text = xuis::ToXmlText(archive_->xuis().Default());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("<operationchain"), std::string::npos);
  EXPECT_NE(text->find("<stepref"), std::string::npos);
  auto back = xuis::ParseXuisText(*text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const xuis::XuisColumn* col =
      back->FindColumnById("RESULT_FILE.DOWNLOAD_RESULT");
  ASSERT_NE(col, nullptr);
  const xuis::OperationChainSpec* chain = col->FindChain("SubsampleThenImage");
  ASSERT_NE(chain, nullptr);
  EXPECT_TRUE(chain->guest_access);
  EXPECT_EQ(chain->step_operations,
            (std::vector<std::string>{"Subsample", "GetImage"}));
}

TEST_F(ChainWebTest, ParserRejectsDanglingStepref) {
  const char* kBad = R"XML(
<xuis database="X">
 <table name="T">
  <column name="C" colid="T.C">
   <type><DATALINK/></type>
   <operationchain name="Chain"><stepref operation="Ghost"/></operationchain>
  </column>
 </table>
</xuis>)XML";
  EXPECT_FALSE(xuis::ParseXuisText(kBad).ok());
}

TEST_F(ChainWebTest, RunChainOverTheWeb) {
  ASSERT_TRUE(AddChain().ok());
  std::string alice = *archive_->Login("alice", "pw");
  auto resp = archive_->Get(alice, "/runchain",
                            {{"chain", "SubsampleThenImage"},
                             {"dataset", seeded_[0].dataset_urls[0]},
                             {"Subsample.factor", "2"},
                             {"GetImage.slice", "x1"},
                             {"GetImage.type", "u"}});
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("Step 1: Subsample"), std::string::npos);
  EXPECT_NE(resp.body.find("Step 2: GetImage"), std::string::npos);
  EXPECT_NE(resp.body.find("slice_x1_u.pgm"), std::string::npos);
}

TEST_F(ChainWebTest, ChainGuestPolicyOnWeb) {
  ASSERT_TRUE(AddChain(/*guest_access=*/false).ok());
  std::string guest = *archive_->Login("guest", "guest");
  auto resp = archive_->Get(guest, "/runchain",
                            {{"chain", "SubsampleThenImage"},
                             {"dataset", seeded_[0].dataset_urls[0]}});
  EXPECT_EQ(resp.status, 403);
  EXPECT_EQ(archive_->Get(guest, "/runchain",
                          {{"chain", "Nope"},
                           {"dataset", seeded_[0].dataset_urls[0]}})
                .status,
            404);
}

TEST_F(ChainWebTest, ChainLinkAppearsInResultTable) {
  ASSERT_TRUE(AddChain(true).ok());
  std::string alice = *archive_->Login("alice", "pw");
  auto resp = archive_->Get(alice, "/search",
                            {{"table", "RESULT_FILE"}, {"all", "1"}});
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("SubsampleThenImage (chain)"), std::string::npos);
  EXPECT_NE(resp.body.find("/runchain?"), std::string::npos);
}

TEST_F(ChainWebTest, InvokeMultiSpansHosts) {
  const xuis::XuisColumn* col = archive_->xuis().Default().FindColumnById(
      "RESULT_FILE.DOWNLOAD_RESULT");
  const xuis::OperationSpec* stats = col->FindOperation("FieldStats");
  ASSERT_NE(stats, nullptr);
  ops::InvocationContext ctx;
  ctx.user = "alice";
  ctx.is_guest = false;
  auto multi = archive_->engine().InvokeMulti(
      *stats, seeded_[0].dataset_urls, {}, ctx);
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  EXPECT_EQ(multi->results.size(), 4u);
  // Two hosts share the work: makespan < serial.
  std::set<std::string> hosts;
  for (const auto& r : multi->results) hosts.insert(r.host);
  EXPECT_EQ(hosts.size(), 2u);
  EXPECT_LT(multi->makespan_seconds, multi->serial_seconds);
  EXPECT_GT(multi->makespan_seconds, 0.0);
}

TEST_F(ChainWebTest, InvokeMultiEmptyRejected) {
  const xuis::XuisColumn* col = archive_->xuis().Default().FindColumnById(
      "RESULT_FILE.DOWNLOAD_RESULT");
  const xuis::OperationSpec* stats = col->FindOperation("FieldStats");
  ops::InvocationContext ctx;
  EXPECT_FALSE(archive_->engine().InvokeMulti(*stats, {}, {}, ctx).ok());
}

}  // namespace
}  // namespace easia
