// Edge cases of the SQL executor: multi-column grouping, star expansion,
// coercions, NULL corner cases, self-referential FKs, and the SQL/MED
// rewrite hook observed through a fake coordinator.
#include <gtest/gtest.h>

#include "db/database.h"

namespace easia::db {
namespace {

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("EDGE");
    Must("CREATE TABLE T ("
         " K VARCHAR(10) NOT NULL,"
         " GRP VARCHAR(10),"
         " SUB VARCHAR(10),"
         " N INTEGER,"
         " D DOUBLE,"
         " PRIMARY KEY (K))");
    Must("INSERT INTO T VALUES ('a', 'x', 'p', 1, 1.5)");
    Must("INSERT INTO T VALUES ('b', 'x', 'p', 2, 2.5)");
    Must("INSERT INTO T VALUES ('c', 'x', 'q', 3, NULL)");
    Must("INSERT INTO T VALUES ('d', 'y', 'p', 4, 4.5)");
    Must("INSERT INTO T VALUES ('e', 'y', NULL, NULL, 5.5)");
  }

  void Must(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  QueryResult Q(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExecutorEdgeTest, MultiColumnGroupBy) {
  QueryResult r = Q(
      "SELECT GRP, SUB, COUNT(*), SUM(N) FROM T GROUP BY GRP, SUB "
      "ORDER BY GRP, SUB");
  // Groups: (x,p) (x,q) (y,NULL) (y,p) — NULL sorts first within y.
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].AsString(), "x");
  EXPECT_EQ(r.rows[0][1].AsString(), "p");
  EXPECT_EQ(r.rows[0][2].AsInt(), 2);
  EXPECT_EQ(r.rows[0][3].AsInt(), 3);
  EXPECT_TRUE(r.rows[2][1].is_null() || r.rows[3][1].is_null());
}

TEST_F(ExecutorEdgeTest, GroupByNullKeysFormOneGroup) {
  // All-NULL keys coalesce into a single group on both executor paths,
  // and that group aggregates like any other (COUNT(*) counts its rows,
  // COUNT(col)/SUM skip NULL inputs independently of the NULL key).
  Must("INSERT INTO T VALUES ('f', 'y', NULL, 7, NULL)");
  QueryResult r = Q("SELECT SUB, COUNT(*), SUM(N) FROM T GROUP BY SUB");
  ASSERT_EQ(r.rows.size(), 3u);  // p, q, NULL — never one group per NULL
  bool saw_null_group = false;
  for (const Row& row : r.rows) {
    if (row[0].is_null()) {
      saw_null_group = true;
      EXPECT_EQ(row[1].AsInt(), 2);  // rows e and f
      EXPECT_EQ(row[2].AsInt(), 7);  // e's N is NULL, f contributes 7
    }
  }
  EXPECT_TRUE(saw_null_group);
}

TEST_F(ExecutorEdgeTest, LimitBoundsOutputGroupsNotInputRows) {
  // LIMIT on an aggregate applies to the grouped output; the underlying
  // scan must not short-circuit, or group counts would come up short.
  QueryResult r = Q("SELECT GRP, COUNT(*) FROM T GROUP BY GRP LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  std::string grp = r.rows[0][0].AsString();
  QueryResult full =
      Q("SELECT COUNT(*) FROM T WHERE GRP = '" + grp + "'");
  EXPECT_EQ(r.rows[0][1].AsInt(), full.rows[0][0].AsInt());

  EXPECT_EQ(Q("SELECT GRP, COUNT(*) FROM T GROUP BY GRP LIMIT 0")
                .rows.size(),
            0u);
  // Ungrouped aggregates yield one row; LIMIT 1 keeps it intact.
  r = Q("SELECT SUM(N) FROM T LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
  // OFFSET past the single aggregate row leaves nothing.
  EXPECT_EQ(Q("SELECT SUM(N) FROM T LIMIT 1 OFFSET 1").rows.size(), 0u);
  // HAVING filters groups before LIMIT counts them.
  r = Q("SELECT GRP, COUNT(*) FROM T GROUP BY GRP"
        " HAVING COUNT(*) > 2 LIMIT 5");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "x");
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
}

TEST_F(ExecutorEdgeTest, HavingWithoutGroupBy) {
  QueryResult r = Q("SELECT COUNT(*) FROM T HAVING COUNT(*) > 10");
  EXPECT_EQ(r.rows.size(), 0u);
  r = Q("SELECT COUNT(*) FROM T HAVING COUNT(*) > 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
}

TEST_F(ExecutorEdgeTest, AggregateArithmetic) {
  QueryResult r = Q("SELECT MAX(N) - MIN(N) FROM T");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(ExecutorEdgeTest, StarInAggregateContext) {
  QueryResult r = Q("SELECT GRP, COUNT(*) FROM T GROUP BY GRP ORDER BY GRP");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "x");
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
}

TEST_F(ExecutorEdgeTest, QualifiedStarExpansion) {
  Must("CREATE TABLE U (K VARCHAR(10), M INTEGER)");
  Must("INSERT INTO U VALUES ('a', 10)");
  QueryResult r = Q("SELECT T.K, U.* FROM T JOIN U ON T.K = U.K");
  EXPECT_EQ(r.column_names,
            (std::vector<std::string>{"K", "K", "M"}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][2].AsInt(), 10);
}

TEST_F(ExecutorEdgeTest, LimitZeroAndOffsetBeyond) {
  EXPECT_EQ(Q("SELECT * FROM T LIMIT 0").rows.size(), 0u);
  EXPECT_EQ(Q("SELECT * FROM T LIMIT 10 OFFSET 99").rows.size(), 0u);
  EXPECT_EQ(Q("SELECT * FROM T LIMIT 2 OFFSET 4").rows.size(), 1u);
}

TEST_F(ExecutorEdgeTest, DistinctWithNulls) {
  QueryResult r = Q("SELECT DISTINCT SUB FROM T");
  EXPECT_EQ(r.rows.size(), 3u);  // p, q, NULL
}

TEST_F(ExecutorEdgeTest, InListWithNullNeedle) {
  // NULL IN (...) is unknown -> filtered out; NOT IN likewise.
  EXPECT_EQ(Q("SELECT * FROM T WHERE SUB IN ('p', 'q')").rows.size(), 4u);
  EXPECT_EQ(Q("SELECT * FROM T WHERE SUB NOT IN ('p')").rows.size(), 1u);
}

TEST_F(ExecutorEdgeTest, CoalesceAndNullArithmetic) {
  QueryResult r = Q("SELECT COALESCE(N, 0) + 1 FROM T WHERE K = 'e'");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  // NULL propagates through arithmetic; WHERE drops unknowns.
  EXPECT_EQ(Q("SELECT * FROM T WHERE N + 1 > 0").rows.size(), 4u);
}

TEST_F(ExecutorEdgeTest, NotOperator) {
  EXPECT_EQ(Q("SELECT * FROM T WHERE NOT GRP = 'x'").rows.size(), 2u);
  EXPECT_EQ(Q("SELECT * FROM T WHERE NOT (N > 1 AND N < 4)").rows.size(),
            2u);  // a and d; NULL N row is unknown
}

TEST_F(ExecutorEdgeTest, InsertCoercions) {
  // Integer literal into DOUBLE column, string into INTEGER column.
  Must("INSERT INTO T VALUES ('f', 'z', 'r', '7', 3)");
  QueryResult r = Q("SELECT N, D FROM T WHERE K = 'f'");
  EXPECT_EQ(r.rows[0][0].AsInt(), 7);
  EXPECT_EQ(r.rows[0][1].type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 3.0);
  // Lossy coercion rejected.
  EXPECT_FALSE(db_->Execute(
      "INSERT INTO T VALUES ('g', 'z', 'r', 2.5, 1)").ok());
}

TEST_F(ExecutorEdgeTest, SelfReferentialForeignKey) {
  Must("CREATE TABLE TREE ("
       " ID VARCHAR(10) NOT NULL,"
       " PARENT VARCHAR(10),"
       " PRIMARY KEY (ID),"
       " FOREIGN KEY (PARENT) REFERENCES TREE (ID))");
  Must("INSERT INTO TREE VALUES ('root', NULL)");
  Must("INSERT INTO TREE VALUES ('leaf', 'root')");
  EXPECT_FALSE(db_->Execute(
      "INSERT INTO TREE VALUES ('orphan', 'ghost')").ok());
  EXPECT_FALSE(db_->Execute(
      "DELETE FROM TREE WHERE ID = 'root'").ok());
  Must("DELETE FROM TREE WHERE ID = 'leaf'");
  Must("DELETE FROM TREE WHERE ID = 'root'");
}

TEST_F(ExecutorEdgeTest, UniqueConstraintWithNulls) {
  Must("CREATE TABLE UQ (A VARCHAR(5), B INTEGER, UNIQUE (B))");
  Must("INSERT INTO UQ VALUES ('x', 1)");
  EXPECT_FALSE(db_->Execute("INSERT INTO UQ VALUES ('y', 1)").ok());
  // NULLs escape UNIQUE (SQL semantics).
  Must("INSERT INTO UQ VALUES ('y', NULL)");
  Must("INSERT INTO UQ VALUES ('z', NULL)");
}

TEST_F(ExecutorEdgeTest, OrderByMixedDirections) {
  QueryResult r = Q("SELECT K FROM T ORDER BY GRP ASC, N DESC");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsString(), "c");  // x group, N=3 first
  EXPECT_EQ(r.rows[2][0].AsString(), "a");
}

// --- SQL/MED rewrite hook observed through a fake coordinator ---

class FakeCoordinator : public DatalinkCoordinator {
 public:
  Status PrepareLink(uint64_t, const DatalinkOptions&,
                     const std::string&) override {
    ++links;
    return Status::OK();
  }
  Status PrepareUnlink(uint64_t, const DatalinkOptions&,
                       const std::string&) override {
    ++unlinks;
    return Status::OK();
  }
  void CommitTxn(uint64_t) override { ++commits; }
  void AbortTxn(uint64_t) override { ++aborts; }
  Result<std::string> ResolveForRead(const DatalinkOptions&,
                                     const std::string& url,
                                     const std::string& user) override {
    ++resolves;
    last_user = user;
    return url + "#token";
  }

  int links = 0, unlinks = 0, commits = 0, aborts = 0, resolves = 0;
  std::string last_user;
};

TEST(FakeCoordinatorTest, RewriteAppliesOnlyToDatalinkColumns) {
  Database db("FAKE");
  FakeCoordinator coordinator;
  db.set_coordinator(&coordinator);
  ASSERT_TRUE(db.Execute(
      "CREATE TABLE F (K VARCHAR(5) PRIMARY KEY,"
      " D DATALINK LINKTYPE URL FILE LINK CONTROL READ PERMISSION DB,"
      " V VARCHAR(50))").ok());
  ASSERT_TRUE(db.Execute(
      "INSERT INTO F VALUES ('a', 'http://h/f1', 'http://h/not-a-link')")
                  .ok());
  EXPECT_EQ(coordinator.links, 1);
  EXPECT_EQ(coordinator.commits, 1);
  ExecContext ctx;
  ctx.user = "someone";
  Result<QueryResult> r = db.Execute("SELECT D, V FROM F", ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsString(), "http://h/f1#token");
  EXPECT_EQ(r->rows[0][1].AsString(), "http://h/not-a-link");  // untouched
  EXPECT_EQ(coordinator.resolves, 1);
  EXPECT_EQ(coordinator.last_user, "someone");
  // resolve_datalinks=false bypasses the hook.
  ctx.resolve_datalinks = false;
  r = db.Execute("SELECT D FROM F", ctx);
  EXPECT_EQ(r->rows[0][0].AsString(), "http://h/f1");
  EXPECT_EQ(coordinator.resolves, 1);
}

TEST(FakeCoordinatorTest, RewriteSurvivesJoinAndAlias) {
  Database db("FAKE");
  FakeCoordinator coordinator;
  db.set_coordinator(&coordinator);
  ASSERT_TRUE(db.Execute(
      "CREATE TABLE A (K VARCHAR(5) PRIMARY KEY)").ok());
  ASSERT_TRUE(db.Execute(
      "CREATE TABLE B (K VARCHAR(5) PRIMARY KEY,"
      " D DATALINK LINKTYPE URL FILE LINK CONTROL READ PERMISSION DB)")
                  .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO A VALUES ('a')").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO B VALUES ('a', 'http://h/f')").ok());
  Result<QueryResult> r = db.Execute(
      "SELECT b.D AS link FROM A a JOIN B b ON a.K = b.K");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsString(), "http://h/f#token");
}

TEST(FakeCoordinatorTest, AbortNotifiesCoordinator) {
  Database db("FAKE");
  FakeCoordinator coordinator;
  db.set_coordinator(&coordinator);
  ASSERT_TRUE(db.Execute(
      "CREATE TABLE F (K VARCHAR(5) PRIMARY KEY,"
      " D DATALINK LINKTYPE URL FILE LINK CONTROL)").ok());
  ASSERT_TRUE(db.Execute("BEGIN").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO F VALUES ('a', 'http://h/f')").ok());
  ASSERT_TRUE(db.Execute("ROLLBACK").ok());
  EXPECT_EQ(coordinator.aborts, 1);
  EXPECT_EQ(coordinator.commits, 0);
}

TEST(FakeCoordinatorTest, UpdateKeepingSameUrlSkipsRelink) {
  Database db("FAKE");
  FakeCoordinator coordinator;
  db.set_coordinator(&coordinator);
  ASSERT_TRUE(db.Execute(
      "CREATE TABLE F (K VARCHAR(5) PRIMARY KEY, N INTEGER,"
      " D DATALINK LINKTYPE URL FILE LINK CONTROL)").ok());
  ASSERT_TRUE(db.Execute(
      "INSERT INTO F VALUES ('a', 1, 'http://h/f')").ok());
  EXPECT_EQ(coordinator.links, 1);
  // Updating an unrelated column must not touch the file manager.
  ASSERT_TRUE(db.Execute("UPDATE F SET N = 2").ok());
  EXPECT_EQ(coordinator.links, 1);
  EXPECT_EQ(coordinator.unlinks, 0);
}

}  // namespace
}  // namespace easia::db

namespace easia::db {
namespace {

class PointLookupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("PL");
    ASSERT_TRUE(db_->Execute(
        "CREATE TABLE P (A VARCHAR(10) NOT NULL, B INTEGER NOT NULL,"
        " V VARCHAR(20), PRIMARY KEY (A, B))").ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db_->Execute(
          "INSERT INTO P VALUES ('k" + std::to_string(i % 10) + "', " +
          std::to_string(i) + ", 'v" + std::to_string(i) + "')").ok());
    }
  }
  std::unique_ptr<Database> db_;
};

TEST_F(PointLookupTest, FullPkEqualityFindsRow) {
  auto r = db_->Execute("SELECT V FROM P WHERE A = 'k3' AND B = 13");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "v13");
}

TEST_F(PointLookupTest, FullPkEqualityMissReturnsEmpty) {
  auto r = db_->Execute("SELECT V FROM P WHERE A = 'k3' AND B = 999");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 0u);
}

TEST_F(PointLookupTest, ExtraConjunctsStillApplied) {
  auto r = db_->Execute(
      "SELECT V FROM P WHERE A = 'k3' AND B = 13 AND V = 'nope'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 0u);
  r = db_->Execute(
      "SELECT V FROM P WHERE A = 'k3' AND B = 13 AND V LIKE 'v%'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(PointLookupTest, PartialPkFallsBackToScan) {
  auto r = db_->Execute("SELECT V FROM P WHERE A = 'k3'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 5u);  // 5 rows share each A value
}

TEST_F(PointLookupTest, OrDisablesFastPathSemantics) {
  auto r = db_->Execute(
      "SELECT V FROM P WHERE (A = 'k3' AND B = 13) OR (A = 'k4' AND B = 14)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(PointLookupTest, CoercedLiteralMatchesIndex) {
  // String literal for the INTEGER pk component.
  auto r = db_->Execute("SELECT V FROM P WHERE A = 'k3' AND B = '13'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
  // Uncoercible literal: no row, no error.
  r = db_->Execute("SELECT V FROM P WHERE A = 'k3' AND B = 'xx'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 0u);
}

TEST_F(PointLookupTest, AggregatesSeeLookupResult) {
  auto r = db_->Execute(
      "SELECT COUNT(*) FROM P WHERE A = 'k3' AND B = 13");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST_F(PointLookupTest, ReversedOperandOrderWorks) {
  auto r = db_->Execute("SELECT V FROM P WHERE 'k3' = A AND 13 = B");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

}  // namespace
}  // namespace easia::db
