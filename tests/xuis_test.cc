#include <gtest/gtest.h>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "xuis/customize.h"
#include "xuis/generator.h"
#include "xuis/model.h"
#include "xuis/serialize.h"

namespace easia::xuis {
namespace {

class XuisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = std::make_unique<core::Archive>();
    archive_->AddFileServer("fs1");
    ASSERT_TRUE(core::CreateTurbulenceSchema(archive_.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1"};
    seed.simulations = 2;
    seed.timesteps_per_simulation = 2;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive_.get(), seed);
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
    seeded_ = *seeded;
  }

  std::unique_ptr<core::Archive> archive_;
  std::vector<core::SeededSimulation> seeded_;
};

TEST_F(XuisTest, GeneratorExtractsSchema) {
  auto spec = GenerateDefaultXuis(archive_->database());
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->database, "EASIA");
  EXPECT_EQ(spec->tables.size(), 5u);
  const XuisTable* sim = spec->FindTable("SIMULATION");
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->primary_key, "SIMULATION.SIMULATION_KEY");
  const XuisColumn* key = sim->FindColumn("SIMULATION_KEY");
  ASSERT_NE(key, nullptr);
  EXPECT_TRUE(key->is_primary_key);
  // Primary-key browsing targets: the three referencing tables.
  EXPECT_EQ(key->referenced_by.size(), 3u);
  const XuisColumn* fk = sim->FindColumn("AUTHOR_KEY");
  ASSERT_NE(fk, nullptr);
  ASSERT_TRUE(fk->fk.has_value());
  EXPECT_EQ(fk->fk->table_column, "AUTHOR.AUTHOR_KEY");
}

TEST_F(XuisTest, GeneratorRecordsTypesAndSizes) {
  auto spec = GenerateDefaultXuis(archive_->database());
  ASSERT_TRUE(spec.ok());
  const XuisColumn* col = spec->FindColumnById("AUTHOR.AUTHOR_KEY");
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col->type, db::DataType::kVarchar);
  EXPECT_EQ(col->size, 30u);
  const XuisColumn* dl =
      spec->FindColumnById("RESULT_FILE.DOWNLOAD_RESULT");
  ASSERT_NE(dl, nullptr);
  EXPECT_EQ(dl->type, db::DataType::kDatalink);
}

TEST_F(XuisTest, GeneratorHarvestsSamples) {
  GeneratorOptions opts;
  opts.samples_per_column = 2;
  auto spec = GenerateDefaultXuis(archive_->database(), opts);
  ASSERT_TRUE(spec.ok());
  const XuisColumn* key = spec->FindColumnById("SIMULATION.SIMULATION_KEY");
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(key->samples.size(), 2u);
  // CLOBs never produce samples.
  const XuisColumn* desc = spec->FindColumnById("SIMULATION.DESCRIPTION");
  ASSERT_NE(desc, nullptr);
  EXPECT_TRUE(desc->samples.empty());
}

TEST_F(XuisTest, SampleHarvestingCanBeDisabled) {
  GeneratorOptions opts;
  opts.harvest_samples = false;
  auto spec = GenerateDefaultXuis(archive_->database(), opts);
  ASSERT_TRUE(spec.ok());
  for (const XuisTable& t : spec->tables) {
    for (const XuisColumn& c : t.columns) {
      EXPECT_TRUE(c.samples.empty());
    }
  }
}

TEST_F(XuisTest, SerialiseParseRoundTrip) {
  auto spec = GenerateDefaultXuis(archive_->database());
  ASSERT_TRUE(spec.ok());
  archive_->xuis().SetDefault(std::move(*spec));
  ASSERT_TRUE(core::AttachGetImageOperation(
      archive_.get(), seeded_[0].simulation_key, 8).ok());
  XuisCustomizer customizer(archive_->xuis().MutableDefault());
  UploadSpec upload;
  upload.type = "EASCRIPT";
  upload.format = "ea";
  Condition cond;
  cond.colid = "RESULT_FILE.MEASUREMENT";
  cond.op = Condition::Op::kEq;
  cond.value = "u,v,w,p";
  upload.conditions.push_back(cond);
  ASSERT_TRUE(
      customizer.SetUpload("RESULT_FILE.DOWNLOAD_RESULT", upload).ok());

  auto text = ToXmlText(archive_->xuis().Default());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto back = ParseXuisText(*text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->tables.size(), 5u);
  EXPECT_EQ(back->TotalColumns(),
            archive_->xuis().Default().TotalColumns());
  const XuisColumn* dl = back->FindColumnById("RESULT_FILE.DOWNLOAD_RESULT");
  ASSERT_NE(dl, nullptr);
  ASSERT_TRUE(dl->upload.has_value());
  EXPECT_EQ(dl->upload->conditions.size(), 1u);
  EXPECT_EQ(dl->upload->conditions[0].value, "u,v,w,p");
}

TEST_F(XuisTest, OperationSerialisationPreservesEverything) {
  ASSERT_TRUE(archive_->InitializeXuis().ok());
  ASSERT_TRUE(core::AttachGetImageOperation(
      archive_.get(), seeded_[0].simulation_key, 8).ok());
  auto text = ToXmlText(archive_->xuis().Default());
  ASSERT_TRUE(text.ok());
  auto back = ParseXuisText(*text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const XuisColumn* dl = back->FindColumnById("RESULT_FILE.DOWNLOAD_RESULT");
  ASSERT_EQ(dl->operations.size(), 1u);
  const OperationSpec& op = dl->operations[0];
  EXPECT_EQ(op.name, "GetImage");
  EXPECT_EQ(op.type, "EASCRIPT");
  EXPECT_EQ(op.format, "jar");
  EXPECT_TRUE(op.guest_access);
  ASSERT_EQ(op.conditions.size(), 1u);
  EXPECT_EQ(op.conditions[0].colid, "RESULT_FILE.SIMULATION_KEY");
  EXPECT_EQ(op.location.kind, OperationLocation::Kind::kDatabaseResult);
  EXPECT_EQ(op.location.result_colid, "CODE_FILE.DOWNLOAD_CODE_FILE");
  ASSERT_EQ(op.location.conditions.size(), 1u);
  EXPECT_EQ(op.location.conditions[0].value, "GetImage.jar");
  ASSERT_EQ(op.parameters.size(), 2u);
  EXPECT_EQ(op.parameters[0].control, ParamSpec::Control::kSelect);
  EXPECT_EQ(op.parameters[0].name, "slice");
  EXPECT_EQ(op.parameters[0].select_size, 4);
  EXPECT_FALSE(op.parameters[0].options.empty());
  EXPECT_EQ(op.parameters[1].control, ParamSpec::Control::kRadio);
  EXPECT_EQ(op.parameters[1].options.size(), 4u);
}

TEST_F(XuisTest, CustomizerMutations) {
  ASSERT_TRUE(archive_->InitializeXuis().ok());
  XuisCustomizer c(archive_->xuis().MutableDefault());
  ASSERT_TRUE(c.SetTableAlias("AUTHOR", "Author").ok());
  ASSERT_TRUE(c.SetColumnAlias("AUTHOR.NAME", "Name").ok());
  ASSERT_TRUE(c.HideColumn("AUTHOR.EMAIL").ok());
  ASSERT_TRUE(c.HideTable("VISUALISATION_FILE").ok());
  ASSERT_TRUE(c.SetFkSubstitution("SIMULATION.AUTHOR_KEY",
                                  "AUTHOR.NAME").ok());
  ASSERT_TRUE(c.SetSamples("SIMULATION.GRID_SIZE", {"64", "128"}).ok());
  const XuisSpec& spec = archive_->xuis().Default();
  EXPECT_EQ(spec.FindTable("AUTHOR")->DisplayName(), "Author");
  EXPECT_TRUE(spec.FindColumnById("AUTHOR.EMAIL")->hidden);
  EXPECT_EQ(spec.VisibleTables().size(), 4u);
  EXPECT_EQ(spec.FindColumnById("SIMULATION.AUTHOR_KEY")->fk->subst_column,
            "AUTHOR.NAME");
  EXPECT_EQ(spec.FindColumnById("SIMULATION.GRID_SIZE")->samples.size(), 2u);
}

TEST_F(XuisTest, CustomizerErrors) {
  ASSERT_TRUE(archive_->InitializeXuis().ok());
  XuisCustomizer c(archive_->xuis().MutableDefault());
  EXPECT_FALSE(c.SetTableAlias("NOPE", "x").ok());
  EXPECT_FALSE(c.SetColumnAlias("AUTHOR.NOPE", "x").ok());
  EXPECT_FALSE(c.SetColumnAlias("badcolid", "x").ok());
  // FK substitution requires an existing relationship.
  EXPECT_FALSE(c.SetFkSubstitution("AUTHOR.NAME", "X.Y").ok());
  // User-defined relationship cannot overwrite a real FK.
  EXPECT_FALSE(c.AddUserDefinedRelationship("SIMULATION.AUTHOR_KEY",
                                            "X.Y").ok());
}

TEST_F(XuisTest, UserDefinedRelationship) {
  ASSERT_TRUE(archive_->InitializeXuis().ok());
  XuisCustomizer c(archive_->xuis().MutableDefault());
  ASSERT_TRUE(c.AddUserDefinedRelationship("VISUALISATION_FILE.VIS_NAME",
                                           "RESULT_FILE.FILE_NAME").ok());
  const XuisColumn* col =
      archive_->xuis().Default().FindColumnById(
          "VISUALISATION_FILE.VIS_NAME");
  ASSERT_TRUE(col->fk.has_value());
  EXPECT_TRUE(col->fk->user_defined);
  // Survives serialisation.
  auto text = ToXmlText(archive_->xuis().Default());
  ASSERT_TRUE(text.ok());
  auto back = ParseXuisText(*text);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->FindColumnById("VISUALISATION_FILE.VIS_NAME")
                  ->fk->user_defined);
}

TEST_F(XuisTest, RegistryPersonalisation) {
  ASSERT_TRUE(archive_->InitializeXuis().ok());
  XuisSpec personal = archive_->xuis().Default();
  personal.user = "bob";
  XuisCustomizer c(&personal);
  ASSERT_TRUE(c.HideTable("CODE_FILE").ok());
  archive_->xuis().SetForUser("bob", std::move(personal));
  EXPECT_TRUE(archive_->xuis().HasPersonal("bob"));
  EXPECT_FALSE(archive_->xuis().HasPersonal("alice"));
  EXPECT_EQ(archive_->xuis().For("bob").VisibleTables().size(), 4u);
  EXPECT_EQ(archive_->xuis().For("alice").VisibleTables().size(), 5u);
}

TEST(ConditionTest, Operators) {
  Condition c;
  c.colid = "T.C";
  c.value = "S1";
  c.op = Condition::Op::kEq;
  EXPECT_TRUE(c.Matches("S1"));
  EXPECT_FALSE(c.Matches("S2"));
  c.op = Condition::Op::kNe;
  EXPECT_TRUE(c.Matches("S2"));
  c.op = Condition::Op::kLike;
  c.value = "S%";
  EXPECT_TRUE(c.Matches("S123"));
  EXPECT_FALSE(c.Matches("X"));
  c.op = Condition::Op::kLt;
  c.value = "10";
  EXPECT_TRUE(c.Matches("9"));     // numeric comparison
  EXPECT_FALSE(c.Matches("11"));
  c.op = Condition::Op::kGt;
  c.value = "abc";
  EXPECT_TRUE(c.Matches("abd"));   // lexicographic fallback
}

TEST(OperationSpecTest, AppliesTo) {
  OperationSpec op;
  Condition c1;
  c1.colid = "T.KEY";
  c1.op = Condition::Op::kEq;
  c1.value = "S1";
  Condition c2;
  c2.colid = "T.FMT";
  c2.op = Condition::Op::kEq;
  c2.value = "TBF";
  op.conditions = {c1, c2};
  auto cells = [](const std::string& colid) -> std::optional<std::string> {
    if (colid == "T.KEY") return "S1";
    if (colid == "T.FMT") return "TBF";
    return std::nullopt;
  };
  EXPECT_TRUE(op.AppliesTo(cells));
  auto wrong = [](const std::string& colid) -> std::optional<std::string> {
    if (colid == "T.KEY") return "S2";
    if (colid == "T.FMT") return "TBF";
    return std::nullopt;
  };
  EXPECT_FALSE(op.AppliesTo(wrong));
  auto missing = [](const std::string&) -> std::optional<std::string> {
    return std::nullopt;
  };
  EXPECT_FALSE(op.AppliesTo(missing));
}

TEST(SplitColidTest, Parsing) {
  auto ok = SplitColid("TABLE.COLUMN");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->first, "TABLE");
  EXPECT_EQ(ok->second, "COLUMN");
  EXPECT_FALSE(SplitColid("NODOT").ok());
  EXPECT_FALSE(SplitColid(".X").ok());
  EXPECT_FALSE(SplitColid("X.").ok());
}

}  // namespace
}  // namespace easia::xuis
