#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/string_util.h"
#include "db/database.h"
#include "db/executor.h"
#include "db/parser.h"
#include "db/planner.h"
#include "db/store/bulk_loader.h"
#include "db/store/column_page.h"
#include "db/store/radix_index.h"

namespace easia::db {
namespace {

// ---------------------------------------------------------------------------
// Radix prefix index
// ---------------------------------------------------------------------------

TEST(RadixIndexTest, PrefixLookupAscendingRowIds) {
  store::RadixIndex idx;
  idx.Insert("NGC1275", 3);
  idx.Insert("NGC1275", 1);  // duplicate key, second row
  idx.Insert("NGC224", 2);
  idx.Insert("M31", 4);
  idx.Insert("NGC1", 5);

  EXPECT_EQ(idx.PrefixRowIds("NGC"), (std::vector<uint64_t>{1, 2, 3, 5}));
  EXPECT_EQ(idx.PrefixRowIds("NGC1"), (std::vector<uint64_t>{1, 3, 5}));
  EXPECT_EQ(idx.PrefixRowIds("NGC1275"), (std::vector<uint64_t>{1, 3}));
  EXPECT_EQ(idx.PrefixRowIds("M"), (std::vector<uint64_t>{4}));
  EXPECT_TRUE(idx.PrefixRowIds("X").empty());
  EXPECT_TRUE(idx.PrefixRowIds("NGC12755").empty());
  // Empty prefix enumerates everything.
  EXPECT_EQ(idx.PrefixRowIds("").size(), 5u);
}

TEST(RadixIndexTest, PrefixValuesLexicographicWithLimit) {
  store::RadixIndex idx;
  idx.Insert("carbon", 1);
  idx.Insert("calcium", 2);
  idx.Insert("cadmium", 3);
  idx.Insert("argon", 4);
  idx.Insert("carbon", 5);  // duplicate value: reported once

  EXPECT_EQ(idx.PrefixValues("ca", 0),
            (std::vector<std::string>{"cadmium", "calcium", "carbon"}));
  EXPECT_EQ(idx.PrefixValues("ca", 2),
            (std::vector<std::string>{"cadmium", "calcium"}));
  EXPECT_EQ(idx.PrefixValues("", 0).size(), 4u);
}

TEST(RadixIndexTest, RemovePrunesAndRecompresses) {
  store::RadixIndex idx;
  const size_t baseline_nodes = idx.GetStats().nodes;
  for (uint64_t i = 0; i < 64; ++i) {
    idx.Insert("key" + std::to_string(i), i);
  }
  EXPECT_EQ(idx.entries(), 64u);
  EXPECT_GT(idx.GetStats().nodes, baseline_nodes);

  for (uint64_t i = 0; i < 64; ++i) {
    idx.Remove("key" + std::to_string(i), i);
  }
  EXPECT_EQ(idx.entries(), 0u);
  EXPECT_TRUE(idx.PrefixRowIds("").empty());
  // Emptied leaves are pruned: the trie shrinks back to its root.
  EXPECT_EQ(idx.GetStats().nodes, baseline_nodes);

  // Removing an absent pair is a no-op.
  idx.Insert("abc", 1);
  idx.Remove("abc", 99);
  idx.Remove("abd", 1);
  EXPECT_EQ(idx.PrefixRowIds("abc"), (std::vector<uint64_t>{1}));
}

TEST(RadixIndexTest, SplitEdgeKeepsBothValues) {
  store::RadixIndex idx;
  idx.Insert("stream", 1);
  idx.Insert("strong", 2);  // splits the "str" edge
  idx.Insert("str", 3);     // value ends exactly at the split point
  EXPECT_EQ(idx.PrefixRowIds("str"), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(idx.PrefixRowIds("stre"), (std::vector<uint64_t>{1}));
  EXPECT_EQ(idx.PrefixValues("str", 0),
            (std::vector<std::string>{"str", "stream", "strong"}));
}

// ---------------------------------------------------------------------------
// Columnar pages
// ---------------------------------------------------------------------------

ColumnDef MakeColumn(const char* name, DataType type) {
  ColumnDef col;
  col.name = name;
  col.type = type;
  return col;
}

TableDef CatalogDef() {
  TableDef def;
  def.name = "OBJ";
  def.columns = {MakeColumn("ID", DataType::kInteger),
                 MakeColumn("NAME", DataType::kVarchar),
                 MakeColumn("MAG", DataType::kDouble)};
  def.primary_key = {"ID"};
  return def;
}

Row CatalogRow(int64_t id, const char* name, double mag) {
  return {Value::Integer(id), Value::Varchar(name), Value::Double(mag)};
}

TEST(ColumnStoreTest, AppendGetUpdateDelete) {
  TableDef def = CatalogDef();
  store::ColumnStore cs(def);
  ASSERT_TRUE(cs.Append(1, CatalogRow(1, "M31", 3.4)).ok());
  ASSERT_TRUE(cs.Append(2, CatalogRow(2, "M33", 5.7)).ok());
  ASSERT_TRUE(
      cs.Append(3, {Value::Integer(3), Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(cs.LiveRows(), 3u);

  Result<Row> got = cs.Get(2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[1].AsString(), "M33");
  EXPECT_DOUBLE_EQ((*got)[2].AsDouble(), 5.7);

  got = cs.Get(3);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE((*got)[1].is_null());

  ASSERT_TRUE(cs.Update(2, CatalogRow(2, "Triangulum", 5.72)).ok());
  got = cs.Get(2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[1].AsString(), "Triangulum");

  ASSERT_TRUE(cs.Delete(1).ok());
  EXPECT_EQ(cs.LiveRows(), 2u);
  EXPECT_FALSE(cs.Get(1).ok());
  EXPECT_FALSE(cs.Contains(1));
  EXPECT_FALSE(cs.Delete(1).ok());
  EXPECT_FALSE(cs.Update(99, CatalogRow(99, "x", 0)).ok());
}

TEST(ColumnStoreTest, ForEachRowAscendingAfterOutOfOrderAppend) {
  TableDef def = CatalogDef();
  store::ColumnStore cs(def);
  // WAL replay can append out of RowId order; scans must still be sorted.
  ASSERT_TRUE(cs.Append(5, CatalogRow(5, "e", 1)).ok());
  ASSERT_TRUE(cs.Append(2, CatalogRow(2, "b", 2)).ok());
  ASSERT_TRUE(cs.Append(9, CatalogRow(9, "i", 3)).ok());
  std::vector<RowId> seen;
  cs.ForEachRow([&](RowId id, const Row&) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<RowId>{2, 5, 9}));
  EXPECT_EQ(cs.FilterScan({}), (std::vector<RowId>{2, 5, 9}));
}

TEST(ColumnStoreTest, FilterScanKernel) {
  TableDef def = CatalogDef();
  store::ColumnStore cs(def);
  ASSERT_TRUE(cs.Append(1, CatalogRow(1, "NGC1275", 11.9)).ok());
  ASSERT_TRUE(cs.Append(2, CatalogRow(2, "NGC224", 3.4)).ok());
  ASSERT_TRUE(cs.Append(3, CatalogRow(3, "M33", 5.7)).ok());
  ASSERT_TRUE(
      cs.Append(4, {Value::Integer(4), Value::Null(), Value::Null()}).ok());

  using Op = store::ColPredicate::Op;
  auto pred = [](size_t col, Op op, Value lit) {
    store::ColPredicate p;
    p.column = col;
    p.op = op;
    p.literal = std::move(lit);
    return p;
  };

  EXPECT_EQ(cs.FilterScan({pred(2, Op::kGt, Value::Double(5.0))}),
            (std::vector<RowId>{1, 3}));
  EXPECT_EQ(cs.FilterScan({pred(1, Op::kLike, Value::Varchar("NGC%"))}),
            (std::vector<RowId>{1, 2}));
  EXPECT_EQ(cs.FilterScan({pred(1, Op::kNotLike, Value::Varchar("NGC%"))}),
            (std::vector<RowId>{3}));  // NULL never matches either way
  EXPECT_EQ(cs.FilterScan({pred(1, Op::kIsNull, Value::Null())}),
            (std::vector<RowId>{4}));
  EXPECT_EQ(cs.FilterScan({pred(1, Op::kIsNotNull, Value::Null())}),
            (std::vector<RowId>{1, 2, 3}));
  // Conjunction.
  EXPECT_EQ(cs.FilterScan({pred(1, Op::kLike, Value::Varchar("NGC%")),
                           pred(2, Op::kLt, Value::Double(5.0))}),
            (std::vector<RowId>{2}));
  // NULL literal comparisons reject every row (SQL three-valued logic).
  EXPECT_TRUE(cs.FilterScan({pred(0, Op::kEq, Value::Null())}).empty());
  // Integer column compared against an integer literal.
  EXPECT_EQ(cs.FilterScan({pred(0, Op::kGe, Value::Integer(3))}),
            (std::vector<RowId>{3, 4}));
}

TEST(ColumnStoreTest, AggregateScanZeroRowsAndGroups) {
  TableDef def = CatalogDef();
  store::ColumnStore cs(def);
  std::vector<store::AggSpec> aggs = {
      {store::AggSpec::Fn::kCountStar, 0},
      {store::AggSpec::Fn::kSum, 2},
      {store::AggSpec::Fn::kMin, 2},
  };
  // Global group over an empty store: one row, COUNT 0, SUM/MIN NULL.
  Result<std::vector<store::AggGroup>> r = cs.AggregateScan({}, {}, aggs);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].aggregates[0].AsInt(), 0);
  EXPECT_TRUE((*r)[0].aggregates[1].is_null());
  EXPECT_TRUE((*r)[0].aggregates[2].is_null());

  // GROUP BY over an empty store: no groups at all.
  r = cs.AggregateScan({}, {1}, aggs);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());

  ASSERT_TRUE(cs.Append(1, CatalogRow(1, "a", 2.0)).ok());
  ASSERT_TRUE(cs.Append(2, CatalogRow(2, "b", 4.0)).ok());
  ASSERT_TRUE(cs.Append(3, CatalogRow(3, "a", 6.0)).ok());
  r = cs.AggregateScan({}, {1}, aggs);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);  // first-seen order: "a" then "b"
  EXPECT_EQ((*r)[0].first_row[1].AsString(), "a");
  EXPECT_EQ((*r)[0].aggregates[0].AsInt(), 2);
  EXPECT_DOUBLE_EQ((*r)[0].aggregates[1].AsDouble(), 8.0);
  EXPECT_DOUBLE_EQ((*r)[0].aggregates[2].AsDouble(), 2.0);
  EXPECT_EQ((*r)[1].first_row[1].AsString(), "b");
  EXPECT_EQ((*r)[1].aggregates[0].AsInt(), 1);
}

// ---------------------------------------------------------------------------
// Bulk file format
// ---------------------------------------------------------------------------

TEST(BulkFormatTest, SerializeParseRoundTrip) {
  TableDef def = CatalogDef();
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back(CatalogRow(i, ("obj" + std::to_string(i)).c_str(),
                              i * 0.5));
  }
  std::string image = store::SerializeBulk(def, rows, 4);
  Result<store::BulkFile> parsed = store::ParseBulk(image);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->columns,
            (std::vector<std::string>{"ID", "NAME", "MAG"}));
  EXPECT_EQ(parsed->types,
            (std::vector<DataType>{DataType::kInteger, DataType::kVarchar,
                                   DataType::kDouble}));
  ASSERT_EQ(parsed->chunks.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(parsed->chunks[0].size(), 4u);
  EXPECT_EQ(parsed->chunks[2].size(), 2u);
  EXPECT_EQ(parsed->total_rows(), 10u);
  EXPECT_EQ(parsed->chunks[1][0][1].AsString(), "obj4");
}

TEST(BulkFormatTest, CorruptionAndTruncationRejected) {
  TableDef def = CatalogDef();
  std::vector<Row> rows = {CatalogRow(1, "a", 1.0), CatalogRow(2, "b", 2.0)};
  std::string image = store::SerializeBulk(def, rows, 0);

  EXPECT_FALSE(store::ParseBulk("EASIAJUNK1" + image.substr(10)).ok());
  EXPECT_FALSE(store::ParseBulk(image.substr(0, image.size() - 3)).ok());

  // Flip one payload byte: the chunk CRC must catch it.
  std::string corrupt = image;
  corrupt[corrupt.size() - 2] ^= 0x40;
  Result<store::BulkFile> r = store::ParseBulk(corrupt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// COPY ... FROM (binary bulk ingest through the SQL surface)
// ---------------------------------------------------------------------------

class CopyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "easia_copy_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    db_ = std::make_unique<Database>("COPYDB");
    Exec(
        "CREATE TABLE STAR (ID INTEGER PRIMARY KEY, NAME VARCHAR(64), "
        "MAG DOUBLE) STORE COLUMNAR");
    Exec(
        "CREATE TABLE STAR_ROW (ID INTEGER PRIMARY KEY, NAME VARCHAR(64), "
        "MAG DOUBLE)");
  }

  QueryResult Exec(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::string WriteBulk(const std::string& file, const TableDef& def,
                        const std::vector<Row>& rows, size_t chunk_rows) {
    std::string path = dir_ + "_" + file;
    EXPECT_TRUE(
        store::WriteBulkFile(io::RealEnv(), path, def, rows, chunk_rows)
            .ok());
    return path;
  }

  const TableDef& Def(const std::string& name) {
    Result<const TableDef*> def = db_->catalog().GetTable(name);
    EXPECT_TRUE(def.ok());
    return **def;
  }

  int64_t Count(const std::string& table) {
    QueryResult r = Exec("SELECT COUNT(*) FROM " + table);
    return r.rows[0][0].AsInt();
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(CopyTest, BulkIngestIntoColumnarAndRowTables) {
  std::vector<Row> rows;
  for (int i = 0; i < 2500; ++i) {
    rows.push_back(CatalogRow(i, ("S" + std::to_string(i)).c_str(), i * 0.1));
  }
  std::string path = WriteBulk("stars.ebk", Def("STAR"), rows, 1000);

  QueryResult r = Exec("COPY STAR FROM '" + path + "'");
  EXPECT_EQ(r.rows_affected, 2500u);
  EXPECT_EQ(Count("STAR"), 2500);
  EXPECT_EQ(db_->stats().bulk_chunks, 3u);  // 1000 + 1000 + 500

  // The same file loads into the row-store twin (format is storage
  // agnostic; the header matches both defs modulo the table name).
  QueryResult r2 = Exec("COPY STAR_ROW FROM '" + path + "'");
  EXPECT_EQ(r2.rows_affected, 2500u);
  EXPECT_EQ(Count("STAR_ROW"), 2500);
  EXPECT_EQ(db_->stats().bulk_chunks, 6u);

  // Loaded data is queryable through every path, including the radix
  // index built during ingest.
  QueryResult q = Exec("SELECT NAME FROM STAR WHERE NAME LIKE 'S249%'");
  EXPECT_EQ(q.rows.size(), 11u);  // S249 + S2490..S2499
}

TEST_F(CopyTest, HeaderMismatchRejected) {
  TableDef other;
  other.name = "OTHER";
  other.columns = {MakeColumn("ID", DataType::kInteger),
                   MakeColumn("TITLE", DataType::kVarchar),
                   MakeColumn("MAG", DataType::kDouble)};
  std::string path = WriteBulk("other.ebk", other,
                               {CatalogRow(1, "x", 1.0)}, 0);
  Result<QueryResult> r = db_->Execute("COPY STAR FROM '" + path + "'");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Count("STAR"), 0);

  // Arity mismatch.
  TableDef narrow;
  narrow.name = "NARROW";
  narrow.columns = {MakeColumn("ID", DataType::kInteger)};
  std::string path2 =
      WriteBulk("narrow.ebk", narrow, {{Value::Integer(1)}}, 0);
  EXPECT_FALSE(db_->Execute("COPY STAR FROM '" + path2 + "'").ok());

  // Missing file.
  EXPECT_FALSE(db_->Execute("COPY STAR FROM '/no/such/file.ebk'").ok());
}

TEST_F(CopyTest, BadRowAbortsItsChunkKeepsPriorChunks) {
  // Chunks of 2: {1,2}, {3,1} — the second chunk hits a duplicate PK.
  std::vector<Row> rows = {CatalogRow(1, "a", 1.0), CatalogRow(2, "b", 2.0),
                           CatalogRow(3, "c", 3.0), CatalogRow(1, "d", 4.0)};
  std::string path = WriteBulk("dup.ebk", Def("STAR"), rows, 2);
  Result<QueryResult> r = db_->Execute("COPY STAR FROM '" + path + "'");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
  // Chunk 1 committed and stays; chunk 2 rolled back entirely.
  EXPECT_EQ(Count("STAR"), 2);
  EXPECT_EQ(db_->stats().bulk_chunks, 1u);
  QueryResult q = Exec("SELECT NAME FROM STAR WHERE ID = 3");
  EXPECT_TRUE(q.rows.empty());
}

TEST_F(CopyTest, RejectedInsideExplicitTransaction) {
  std::vector<Row> rows = {CatalogRow(1, "a", 1.0)};
  std::string path = WriteBulk("one.ebk", Def("STAR"), rows, 0);
  Exec("BEGIN");
  Result<QueryResult> r = db_->Execute("COPY STAR FROM '" + path + "'");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  Exec("ROLLBACK");
  // Outside the transaction it works.
  EXPECT_EQ(Exec("COPY STAR FROM '" + path + "'").rows_affected, 1u);
}

TEST_F(CopyTest, NullsAndCoercionMatchInsert) {
  std::vector<Row> rows = {
      {Value::Integer(1), Value::Null(), Value::Integer(7)},  // int -> double
      {Value::Integer(2), Value::Varchar("x"), Value::Null()},
  };
  std::string path = WriteBulk("nulls.ebk", Def("STAR"), rows, 0);
  EXPECT_EQ(Exec("COPY STAR FROM '" + path + "'").rows_affected, 2u);
  Exec("INSERT INTO STAR_ROW VALUES (1, NULL, 7)");
  Exec("INSERT INTO STAR_ROW VALUES (2, 'x', NULL)");
  QueryResult a = Exec("SELECT * FROM STAR ORDER BY ID");
  QueryResult b = Exec("SELECT * FROM STAR_ROW ORDER BY ID");
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    for (size_t c = 0; c < a.rows[i].size(); ++c) {
      EXPECT_EQ(a.rows[i][c].ToDisplayString(), b.rows[i][c].ToDisplayString())
          << "row " << i << " col " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Columnar tables behave like row tables through the whole SQL surface
// ---------------------------------------------------------------------------

class ColumnarParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("PARITY");
    for (const char* suffix : {"", "_ROW"}) {
      std::string store =
          std::string(suffix).empty() ? " STORE COLUMNAR" : "";
      Exec("CREATE TABLE OBJ" + std::string(suffix) +
           " (ID INTEGER PRIMARY KEY, NAME VARCHAR(64), KIND VARCHAR(16), "
           "MAG DOUBLE, HITS INTEGER)" +
           store);
    }
    const char* seed[][4] = {
        {"1", "'NGC1275'", "'galaxy'", "11.9"},
        {"2", "'NGC224'", "'galaxy'", "3.4"},
        {"3", "'M33'", "'galaxy'", "5.7"},
        {"4", "'Vega'", "'star'", "0.03"},
        {"5", "'Sirius'", "'star'", "-1.46"},
        {"6", "'NGC7000'", "'nebula'", "4.0"},
        {"7", "'unnamed'", "NULL", "NULL"},
    };
    int hits = 0;
    for (const auto& s : seed) {
      for (const char* suffix : {"", "_ROW"}) {
        Exec(std::string("INSERT INTO OBJ") + suffix + " VALUES (" + s[0] +
             ", " + s[1] + ", " + s[2] + ", " + s[3] + ", " +
             std::to_string(hits % 3) + ")");
      }
      ++hits;
    }
  }

  QueryResult Exec(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  /// Runs the same query shape against the columnar table and its
  /// row-store twin and expects identical result tables.
  void ExpectSameAsRowStore(const std::string& query_tail) {
    QueryResult a = Exec("SELECT " + ReplaceAll(query_tail, "$T", "OBJ"));
    QueryResult b =
        Exec("SELECT " + ReplaceAll(query_tail, "$T", "OBJ_ROW"));
    EXPECT_EQ(a.column_names, b.column_names) << query_tail;
    EXPECT_EQ(a.column_types, b.column_types) << query_tail;
    ASSERT_EQ(a.rows.size(), b.rows.size()) << query_tail;
    for (size_t i = 0; i < a.rows.size(); ++i) {
      ASSERT_EQ(a.rows[i].size(), b.rows[i].size());
      for (size_t c = 0; c < a.rows[i].size(); ++c) {
        EXPECT_EQ(a.rows[i][c].ToDisplayString(),
                  b.rows[i][c].ToDisplayString())
            << query_tail << " row " << i << " col " << c;
      }
    }
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ColumnarParityTest, ScansFiltersAndDml) {
  ExpectSameAsRowStore("* FROM $T");
  ExpectSameAsRowStore("* FROM $T WHERE MAG > 3.0");
  ExpectSameAsRowStore("NAME FROM $T WHERE NAME LIKE 'NGC%'");
  ExpectSameAsRowStore("NAME FROM $T WHERE NAME LIKE '%7%'");
  ExpectSameAsRowStore("* FROM $T WHERE KIND IS NULL");
  ExpectSameAsRowStore("* FROM $T WHERE ID = 4");

  for (const char* t : {"OBJ", "OBJ_ROW"}) {
    Exec(std::string("UPDATE ") + t +
         " SET NAME = 'Andromeda', MAG = 3.44 WHERE ID = 2");
    Exec(std::string("DELETE FROM ") + t + " WHERE ID = 6");
  }
  ExpectSameAsRowStore("* FROM $T");
  ExpectSameAsRowStore("NAME FROM $T WHERE NAME LIKE 'Andro%'");
  // The radix index dropped the deleted/renamed entries.
  ExpectSameAsRowStore("NAME FROM $T WHERE NAME LIKE 'NGC%'");
}

TEST_F(ColumnarParityTest, AggregatesMatchRowPath) {
  for (const char* tail : {
           "COUNT(*) FROM $T",
           "COUNT(KIND) FROM $T",
           "COUNT(*), SUM(MAG), MIN(MAG), MAX(MAG), AVG(MAG) FROM $T",
           "SUM(HITS) FROM $T",
           "KIND, COUNT(*) FROM $T GROUP BY KIND",
           "KIND, COUNT(*), AVG(MAG) FROM $T GROUP BY KIND",
           "KIND, MIN(NAME), MAX(NAME) FROM $T GROUP BY KIND",
           "KIND, HITS, COUNT(*) FROM $T GROUP BY KIND, HITS",
           "COUNT(*) FROM $T WHERE MAG > 3.0",
           "KIND, SUM(MAG) FROM $T WHERE NAME LIKE 'NGC%' GROUP BY KIND",
           "COUNT(*) FROM $T WHERE MAG > 1000",  // empty: COUNT 0
           "SUM(MAG) FROM $T WHERE MAG > 1000",  // empty: NULL
           "KIND, COUNT(*) FROM $T WHERE MAG > 1000 GROUP BY KIND",
       }) {
    ExpectSameAsRowStore(tail);
  }
}

TEST_F(ColumnarParityTest, RollbackRestoresColumnarStateAndIndexes) {
  Exec("BEGIN");
  Exec("UPDATE OBJ SET NAME = 'renamed' WHERE ID = 1");
  Exec("DELETE FROM OBJ WHERE ID = 2");
  Exec("INSERT INTO OBJ VALUES (8, 'NGC9999', 'galaxy', 9.9, 0)");
  Exec("ROLLBACK");
  ExpectSameAsRowStore("* FROM $T");
  ExpectSameAsRowStore("NAME FROM $T WHERE NAME LIKE 'NGC%'");
  QueryResult q = Exec("SELECT NAME FROM OBJ WHERE NAME LIKE 'renamed%'");
  EXPECT_TRUE(q.rows.empty());
}

// ---------------------------------------------------------------------------
// Planner: columnar kernels, prefix scans and the aggregate fast path
// ---------------------------------------------------------------------------

class StorePlannerTest : public ColumnarParityTest {
 protected:
  std::string Plan(const std::string& select_sql) {
    QueryResult r = Exec("EXPLAIN " + select_sql);
    std::string joined;
    for (const Row& row : r.rows) {
      joined += row[0].AsString();
      joined += "\n";
    }
    return joined;
  }
};

TEST_F(StorePlannerTest, ColumnarFilterKernelInExplain) {
  std::string plan = Plan("SELECT * FROM OBJ WHERE MAG > 3.0");
  EXPECT_NE(plan.find("[columnar filter]"), std::string::npos) << plan;
  // Row-store twin: plain pushdown, no kernel marker.
  plan = Plan("SELECT * FROM OBJ_ROW WHERE MAG > 3.0");
  EXPECT_EQ(plan.find("[columnar filter]"), std::string::npos) << plan;
  // A non-convertible conjunct disables the kernel wholesale.
  plan = Plan("SELECT * FROM OBJ WHERE MAG > 3.0 AND ID + 1 > 2");
  EXPECT_EQ(plan.find("[columnar filter]"), std::string::npos) << plan;
}

TEST_F(StorePlannerTest, PrefixScanInExplain) {
  std::string plan = Plan("SELECT NAME FROM OBJ WHERE NAME LIKE 'NGC%'");
  EXPECT_NE(plan.find("prefix scan via (NAME), prefix 'NGC'"),
            std::string::npos)
      << plan;
  // Leading wildcard: nothing to narrow, stays a seq scan.
  plan = Plan("SELECT NAME FROM OBJ WHERE NAME LIKE '%NGC'");
  EXPECT_EQ(plan.find("prefix scan"), std::string::npos) << plan;
  // Row store has no radix index.
  plan = Plan("SELECT NAME FROM OBJ_ROW WHERE NAME LIKE 'NGC%'");
  EXPECT_EQ(plan.find("prefix scan"), std::string::npos) << plan;
  // Escaped wildcard resolves into the literal prefix.
  plan = Plan("SELECT NAME FROM OBJ WHERE NAME LIKE 'a\\%b%'");
  EXPECT_NE(plan.find("prefix 'a%b'"), std::string::npos) << plan;
}

TEST_F(StorePlannerTest, AggregateFastPathInExplain) {
  std::string plan = Plan("SELECT KIND, COUNT(*) FROM OBJ GROUP BY KIND");
  EXPECT_NE(plan.find("[columnar fast path]"), std::string::npos) << plan;
  plan = Plan("SELECT KIND, COUNT(*) FROM OBJ_ROW GROUP BY KIND");
  EXPECT_NE(plan.find("[row path]"), std::string::npos) << plan;
  // HAVING keeps the row path even on columnar tables.
  plan = Plan(
      "SELECT KIND, COUNT(*) FROM OBJ GROUP BY KIND HAVING COUNT(*) > 1");
  EXPECT_NE(plan.find("[row path]"), std::string::npos) << plan;
  // SUM over a text column is ineligible (kernel would reject statically
  // where the row path errors only on actual aggregation).
  plan = Plan("SELECT SUM(NAME) FROM OBJ");
  EXPECT_NE(plan.find("[row path]"), std::string::npos) << plan;
}

TEST_F(StorePlannerTest, PrefixScanParityWithNaiveExecutor) {
  // Planned (prefix scan) and naive (full scan) paths agree on escapes,
  // mid-pattern wildcards, and patterns with no literal prefix.
  for (const char* pattern :
       {"NGC%", "NGC_2%", "M%", "%", "NGC1275", "S%s", "NGC\\%", "unn%d"}) {
    std::string sql = std::string("SELECT NAME FROM OBJ WHERE NAME LIKE '") +
                      pattern + "' ORDER BY NAME";
    Result<Statement> stmt = ParseSql(sql);
    ASSERT_TRUE(stmt.ok());
    TableLookup lookup = [this](const std::string& name) {
      return db_->GetTable(name);
    };
    ExecuteOptions planned_opts;
    planned_opts.use_planner = true;
    ExecuteOptions naive_opts;
    naive_opts.use_planner = false;
    Result<QueryResult> planned =
        ExecuteSelect(*stmt->select, lookup, nullptr, planned_opts);
    Result<QueryResult> naive =
        ExecuteSelect(*stmt->select, lookup, nullptr, naive_opts);
    ASSERT_TRUE(planned.ok()) << sql;
    ASSERT_TRUE(naive.ok()) << sql;
    ASSERT_EQ(planned->rows.size(), naive->rows.size()) << sql;
    for (size_t i = 0; i < planned->rows.size(); ++i) {
      EXPECT_EQ(planned->rows[i][0].AsString(), naive->rows[i][0].AsString())
          << sql;
    }
  }
}

TEST_F(StorePlannerTest, TypeaheadValuesMatchLikeQuery) {
  Result<const Table*> table = db_->GetTable("OBJ");
  ASSERT_TRUE(table.ok());
  std::vector<std::string> values =
      (*table)->RadixPrefixValues("NAME", "NGC", 10);
  QueryResult q = Exec(
      "SELECT DISTINCT NAME FROM OBJ WHERE NAME LIKE 'NGC%' ORDER BY NAME");
  ASSERT_EQ(values.size(), q.rows.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], q.rows[i][0].AsString());
  }
}

// ---------------------------------------------------------------------------
// Secondary (non-unique) index maintenance under UPDATE/DELETE churn
// ---------------------------------------------------------------------------

class SecondaryIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("IDX");
    Exec("CREATE TABLE AUTHOR (AK VARCHAR(10) PRIMARY KEY, NAME VARCHAR(40))");
    Exec(
        "CREATE TABLE SIM (SK VARCHAR(10) PRIMARY KEY, AK VARCHAR(10), "
        "TITLE VARCHAR(80), FOREIGN KEY (AK) REFERENCES AUTHOR (AK))");
    Exec("INSERT INTO AUTHOR VALUES ('A1', 'Papiani')");
    Exec("INSERT INTO AUTHOR VALUES ('A2', 'Wason')");
    Exec("INSERT INTO SIM VALUES ('S1', 'A1', 'channel')");
    Exec("INSERT INTO SIM VALUES ('S2', 'A1', 'box')");
    Exec("INSERT INTO SIM VALUES ('S3', 'A2', 'shear')");
    Exec("INSERT INTO SIM VALUES ('S4', NULL, 'unowned')");
  }

  QueryResult Exec(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  /// RowIds FindByIndex returns for SIM.AK = `key` (the secondary index
  /// the FK maintains), cross-checked against a full scan.
  std::vector<RowId> IndexIds(const std::string& key) {
    Result<const Table*> table = db_->GetTable("SIM");
    EXPECT_TRUE(table.ok());
    Result<std::vector<RowId>> ids =
        (*table)->FindByIndex({"AK"}, {Value::Varchar(key)});
    EXPECT_TRUE(ids.ok()) << ids.status().ToString();
    std::vector<RowId> via_index = ids.ok() ? *ids : std::vector<RowId>{};
    // The index answer must equal a predicate scan (stale entries and
    // lost entries both show up here).
    std::vector<RowId> via_scan;
    (*table)->ForEachRow([&](RowId id, const Row& row) {
      if (!row[1].is_null() && row[1].AsString() == key) {
        via_scan.push_back(id);
      }
    });
    EXPECT_EQ(via_index, via_scan) << "index disagrees with scan for " << key;
    return via_index;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SecondaryIndexTest, UpdateMovesEntryBetweenKeys) {
  EXPECT_EQ(IndexIds("A1").size(), 2u);
  EXPECT_EQ(IndexIds("A2").size(), 1u);
  Exec("UPDATE SIM SET AK = 'A2' WHERE SK = 'S1'");
  EXPECT_EQ(IndexIds("A1").size(), 1u);
  EXPECT_EQ(IndexIds("A2").size(), 2u);
}

TEST_F(SecondaryIndexTest, NullTransitions) {
  Exec("UPDATE SIM SET AK = NULL WHERE SK = 'S3'");
  EXPECT_TRUE(IndexIds("A2").empty());
  Exec("UPDATE SIM SET AK = 'A2' WHERE SK = 'S4'");
  EXPECT_EQ(IndexIds("A2").size(), 1u);
}

TEST_F(SecondaryIndexTest, DeleteRemovesEntry) {
  Exec("DELETE FROM SIM WHERE SK = 'S2'");
  EXPECT_EQ(IndexIds("A1").size(), 1u);
  Exec("DELETE FROM SIM WHERE AK = 'A1'");
  EXPECT_TRUE(IndexIds("A1").empty());
}

TEST_F(SecondaryIndexTest, RollbackRestoresIndexEntries) {
  Exec("BEGIN");
  Exec("UPDATE SIM SET AK = 'A2' WHERE SK = 'S1'");
  Exec("DELETE FROM SIM WHERE SK = 'S3'");
  Exec("INSERT INTO SIM VALUES ('S5', 'A1', 'extra')");
  Exec("ROLLBACK");
  EXPECT_EQ(IndexIds("A1").size(), 2u);
  EXPECT_EQ(IndexIds("A2").size(), 1u);
}

TEST_F(SecondaryIndexTest, PlannedIndexScanAgreesAfterChurn) {
  // Churn, then compare the planner's index scan against the naive path.
  Exec("UPDATE SIM SET AK = 'A2' WHERE SK = 'S2'");
  Exec("UPDATE SIM SET AK = NULL WHERE SK = 'S1'");
  Exec("DELETE FROM SIM WHERE SK = 'S3'");
  Exec("INSERT INTO SIM VALUES ('S5', 'A2', 'late')");
  const std::string sql = "SELECT SK FROM SIM WHERE AK = 'A2' ORDER BY SK";
  Result<Statement> stmt = ParseSql(sql);
  ASSERT_TRUE(stmt.ok());
  TableLookup lookup = [this](const std::string& name) {
    return db_->GetTable(name);
  };
  ExecuteOptions planned_opts;
  planned_opts.use_planner = true;
  ExecuteOptions naive_opts;
  naive_opts.use_planner = false;
  Result<QueryResult> planned =
      ExecuteSelect(*stmt->select, lookup, nullptr, planned_opts);
  Result<QueryResult> naive =
      ExecuteSelect(*stmt->select, lookup, nullptr, naive_opts);
  ASSERT_TRUE(planned.ok());
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(planned->rows.size(), naive->rows.size());
  for (size_t i = 0; i < planned->rows.size(); ++i) {
    EXPECT_EQ(planned->rows[i][0].AsString(), naive->rows[i][0].AsString());
  }
}

// ---------------------------------------------------------------------------
// Storage stats feed the observability gauges
// ---------------------------------------------------------------------------

TEST(StorageStatsTest, ColumnarTablesReportPagesAndRadix) {
  Database db("STATS");
  ASSERT_TRUE(db.Execute(
                    "CREATE TABLE C (ID INTEGER PRIMARY KEY, "
                    "NAME VARCHAR(32)) STORE COLUMNAR")
                  .ok());
  ASSERT_TRUE(
      db.Execute("CREATE TABLE R (ID INTEGER PRIMARY KEY, NAME VARCHAR(32))")
          .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO C VALUES (" + std::to_string(i) +
                           ", 'n" + std::to_string(i) + "')")
                    .ok());
  }
  Result<const Table*> c = db.GetTable("C");
  Result<const Table*> r = db.GetTable("R");
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(r.ok());
  Table::StorageStats cs = (*c)->GetStorageStats();
  EXPECT_TRUE(cs.columnar);
  EXPECT_EQ(cs.rows, 50u);
  EXPECT_GT(cs.columnar_bytes, 0u);
  EXPECT_GT(cs.radix_nodes, 1u);
  EXPECT_GT(cs.radix_bytes, 0u);
  Table::StorageStats rs = (*r)->GetStorageStats();
  EXPECT_FALSE(rs.columnar);
  EXPECT_EQ(rs.rows, 0u);
  EXPECT_EQ(rs.radix_nodes, 0u);
}

}  // namespace
}  // namespace easia::db
