#include <gtest/gtest.h>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "web/html.h"
#include "web/qbe.h"
#include "web/session.h"
#include "web/users.h"

namespace easia::web {
namespace {

// ---- Users ----

TEST(UserManagerTest, GuestSeededByDefault) {
  UserManager users;
  auto guest = users.Authenticate("guest", "guest");
  ASSERT_TRUE(guest.ok());
  EXPECT_TRUE(guest->IsGuest());
  EXPECT_FALSE(guest->CanDownload());
  EXPECT_FALSE(guest->CanUploadCode());
}

TEST(UserManagerTest, AddAuthenticateRoles) {
  UserManager users;
  ASSERT_TRUE(users.AddUser("alice", "pw", UserRole::kAuthorised).ok());
  ASSERT_TRUE(users.AddUser("root", "pw2", UserRole::kAdmin).ok());
  EXPECT_TRUE(users.Authenticate("alice", "pw")->CanDownload());
  EXPECT_TRUE(users.Authenticate("root", "pw2")->CanManageUsers());
  EXPECT_FALSE(users.Authenticate("alice", "pw")->CanManageUsers());
  EXPECT_TRUE(users.Authenticate("alice", "wrong").status()
                  .IsPermissionDenied());
  EXPECT_TRUE(users.Authenticate("nobody", "pw").status()
                  .IsPermissionDenied());
}

TEST(UserManagerTest, DuplicateAndRemove) {
  UserManager users;
  ASSERT_TRUE(users.AddUser("a", "x", UserRole::kGuest).ok());
  EXPECT_FALSE(users.AddUser("a", "y", UserRole::kGuest).ok());
  ASSERT_TRUE(users.RemoveUser("a").ok());
  EXPECT_FALSE(users.RemoveUser("a").ok());
}

TEST(UserManagerTest, PasswordChange) {
  UserManager users;
  ASSERT_TRUE(users.AddUser("a", "old", UserRole::kGuest).ok());
  ASSERT_TRUE(users.SetPassword("a", "new").ok());
  EXPECT_FALSE(users.Authenticate("a", "old").ok());
  EXPECT_TRUE(users.Authenticate("a", "new").ok());
}

// ---- Sessions ----

TEST(SessionTest, LoginGetLogout) {
  UserManager users;
  ManualClock clock(0);
  SessionManager sessions(&users, &clock, 100.0);
  auto id = sessions.Login("guest", "guest");
  ASSERT_TRUE(id.ok());
  auto session = sessions.Get(*id);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->user.name, "guest");
  ASSERT_TRUE(sessions.Logout(*id).ok());
  EXPECT_FALSE(sessions.Get(*id).ok());
}

TEST(SessionTest, IdleTimeout) {
  UserManager users;
  ManualClock clock(0);
  SessionManager sessions(&users, &clock, 100.0);
  std::string id = *sessions.Login("guest", "guest");
  clock.Advance(90);
  EXPECT_TRUE(sessions.Get(id).ok());  // touch refreshes
  clock.Advance(90);
  EXPECT_TRUE(sessions.Get(id).ok());
  clock.Advance(101);
  EXPECT_TRUE(sessions.Get(id).status().IsTokenExpired());
}

TEST(SessionTest, SweepExpired) {
  UserManager users;
  ManualClock clock(0);
  SessionManager sessions(&users, &clock, 50.0);
  (void)*sessions.Login("guest", "guest");
  (void)*sessions.Login("guest", "guest");
  clock.Advance(51);
  EXPECT_EQ(sessions.SweepExpired(), 2u);
  EXPECT_EQ(sessions.ActiveCount(), 0u);
}

TEST(SessionTest, IdsAreUnique) {
  UserManager users;
  ManualClock clock(0);
  SessionManager sessions(&users, &clock);
  EXPECT_NE(*sessions.Login("guest", "guest"),
            *sessions.Login("guest", "guest"));
}

// ---- HTML ----

TEST(HtmlWriterTest, NestingAndEscaping) {
  HtmlWriter w;
  w.Open("p", {{"class", "a\"b"}}).Text("1 < 2").Close();
  EXPECT_EQ(w.str(), "<p class=\"a&quot;b\">1 &lt; 2</p>");
}

TEST(HtmlWriterTest, FinishClosesOpenTags) {
  HtmlWriter w;
  w.Open("div").Open("ul").Open("li").Text("x");
  EXPECT_EQ(w.Finish(), "<div><ul><li>x</li></ul></div>");
}

TEST(UrlEncodeTest, EncodesReserved) {
  EXPECT_EQ(UrlEncode("a b&c=d/e"), "a%20b%26c%3Dd%2Fe");
  EXPECT_EQ(UrlEncode("safe-chars_1.2~"), "safe-chars_1.2~");
}

TEST(BuildUrlTest, QueryString) {
  EXPECT_EQ(BuildUrl("/browse", {{"table", "AUTHOR"}, {"value", "A 1"}}),
            "/browse?table=AUTHOR&value=A%201");
  EXPECT_EQ(BuildUrl("/x", {}), "/x");
}

// ---- QBE + full web stack over a real archive ----

class WebTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = std::make_unique<core::Archive>();
    archive_->AddFileServer("fs1", 8.0);
    ASSERT_TRUE(core::CreateTurbulenceSchema(archive_.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1"};
    seed.simulations = 2;
    seed.timesteps_per_simulation = 2;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive_.get(), seed);
    ASSERT_TRUE(seeded.ok());
    seeded_ = *seeded;
    ASSERT_TRUE(archive_->InitializeXuis().ok());
    ASSERT_TRUE(core::AttachGetImageOperation(
        archive_.get(), seeded_[0].simulation_key, 8).ok());
    ASSERT_TRUE(core::AttachCodeUpload(archive_.get()).ok());
    ASSERT_TRUE(
        archive_->AddUser("alice", "pw", UserRole::kAuthorised).ok());
    ASSERT_TRUE(archive_->AddUser("root", "pw", UserRole::kAdmin).ok());
    alice_ = *archive_->Login("alice", "pw");
    guest_ = *archive_->Login("guest", "guest");
  }

  const xuis::XuisSpec& Spec() { return archive_->xuis().Default(); }

  std::unique_ptr<core::Archive> archive_;
  std::vector<core::SeededSimulation> seeded_;
  std::string alice_;
  std::string guest_;
};

TEST_F(WebTest, QbeTranslationBasics) {
  QbeRequest req;
  req.table = "SIMULATION";
  req.selected_columns = {"SIMULATION_KEY", "TITLE"};
  req.restrictions = {{"GRID_SIZE", ">=", "8"},
                      {"TITLE", "LIKE", "Decaying%"}};
  req.order_by = "SIMULATION_KEY";
  req.descending = true;
  req.limit = 10;
  auto sql = TranslateToSql(Spec(), req);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(*sql,
            "SELECT SIMULATION_KEY, TITLE FROM SIMULATION "
            "WHERE GRID_SIZE >= 8 AND TITLE LIKE 'Decaying%' "
            "ORDER BY SIMULATION_KEY DESC LIMIT 10");
  // And it runs.
  EXPECT_TRUE(archive_->Execute(*sql).ok());
}

TEST_F(WebTest, QbeWildcardsBecomeLike) {
  QbeRequest req;
  req.table = "AUTHOR";
  req.restrictions = {{"NAME", "=", "A*r"}};
  auto sql = TranslateToSql(Spec(), req);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("NAME LIKE 'A%r'"), std::string::npos) << *sql;
  req.restrictions = {{"NAME", "=", "?mith"}};
  sql = TranslateToSql(Spec(), req);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("NAME LIKE '_mith'"), std::string::npos);
}

TEST_F(WebTest, QbePrimaryKeysAlwaysSelected) {
  QbeRequest req;
  req.table = "SIMULATION";
  req.selected_columns = {"TITLE"};
  auto sql = TranslateToSql(Spec(), req);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("SIMULATION_KEY"), std::string::npos);
}

TEST_F(WebTest, QbeRejectsHiddenAndUnknown) {
  xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
  ASSERT_TRUE(c.HideColumn("AUTHOR.EMAIL").ok());
  QbeRequest req;
  req.table = "AUTHOR";
  req.selected_columns = {"EMAIL"};
  EXPECT_TRUE(TranslateToSql(Spec(), req).status().IsPermissionDenied());
  req.selected_columns = {"NOPE"};
  EXPECT_TRUE(TranslateToSql(Spec(), req).status().IsNotFound());
  req.selected_columns = {};
  req.restrictions = {{"NAME", "DROP", "x"}};
  EXPECT_FALSE(TranslateToSql(Spec(), req).ok());
  // Numeric columns reject non-numeric restrictions (injection guard).
  req.restrictions = {{"AGE", "=", "1 OR 1=1"}};
  req.table = "AUTHOR";
  EXPECT_FALSE(TranslateToSql(Spec(), req).ok());
}

TEST_F(WebTest, QbeSqlInjectionViaQuotesIsEscaped) {
  QbeRequest req;
  req.table = "AUTHOR";
  req.restrictions = {{"NAME", "=", "x' OR '1'='1"}};
  auto sql = TranslateToSql(Spec(), req);
  ASSERT_TRUE(sql.ok());
  // The quotes must be doubled, making it a literal.
  EXPECT_NE(sql->find("'x'' OR ''1''=''1'"), std::string::npos) << *sql;
  auto result = archive_->Execute(*sql);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 0u);
}

TEST_F(WebTest, QueryFormListsColumnsOperatorsSamples) {
  std::string form = RenderQueryForm(*Spec().FindTable("SIMULATION"));
  EXPECT_NE(form.find("value.SIMULATION_KEY"), std::string::npos);
  EXPECT_NE(form.find("op.TITLE"), std::string::npos);
  EXPECT_NE(form.find("LIKE"), std::string::npos);
  EXPECT_NE(form.find("sample.SIMULATION_KEY"), std::string::npos);
  EXPECT_NE(form.find(seeded_[0].simulation_key), std::string::npos);
}

TEST_F(WebTest, LoginFlow) {
  auto good = archive_->Get("", "/login",
                            {{"user", "alice"}, {"password", "pw"}});
  EXPECT_EQ(good.status, 200);
  EXPECT_FALSE(good.body.empty());
  auto bad = archive_->Get("", "/login",
                           {{"user", "alice"}, {"password", "nope"}});
  EXPECT_EQ(bad.status, 403);
  auto no_session = archive_->Get("", "/tables");
  EXPECT_EQ(no_session.status, 401);
  auto bogus = archive_->Get("bogus-session", "/tables");
  EXPECT_EQ(bogus.status, 401);
}

TEST_F(WebTest, TablesIndex) {
  auto resp = archive_->Get(alice_, "/tables");
  ASSERT_EQ(resp.status, 200);
  for (const char* table : {"AUTHOR", "SIMULATION", "RESULT_FILE"}) {
    EXPECT_NE(resp.body.find(table), std::string::npos) << table;
  }
}

TEST_F(WebTest, SearchRendersLinksPerColumnKind) {
  auto resp = archive_->Get(alice_, "/search",
                            {{"table", "RESULT_FILE"}, {"all", "1"}});
  ASSERT_EQ(resp.status, 200) << resp.body;
  // FK browsing link to the parent simulation.
  EXPECT_NE(resp.body.find("/browse?column=SIMULATION_KEY&amp;table=SIMULATION"),
            std::string::npos) << resp.body;
  // DATALINK download link with an access token (';' separator).
  EXPECT_NE(resp.body.find(";"), std::string::npos);
  // Size display next to the file name.
  EXPECT_NE(resp.body.find("KB)"), std::string::npos);
  // Operations column present.
  EXPECT_NE(resp.body.find("GetImage"), std::string::npos);
  EXPECT_NE(resp.body.find("Upload code"), std::string::npos);
}

TEST_F(WebTest, GuestSeesNoDownloadLinkButCanBrowse) {
  auto resp = archive_->Get(guest_, "/search",
                            {{"table", "RESULT_FILE"}, {"all", "1"}});
  ASSERT_EQ(resp.status, 200);
  // Guest cell shows the file but there is no tokenised href for it.
  EXPECT_EQ(resp.body.find(".tbf\">"), std::string::npos) << resp.body;
  // Guests don't get the upload link either.
  EXPECT_EQ(resp.body.find("Upload code"), std::string::npos);
  // GetImage is guest-accessible so it still shows.
  EXPECT_NE(resp.body.find("GetImage"), std::string::npos);
}

TEST_F(WebTest, PrimaryKeyBrowsing) {
  auto resp = archive_->Get(alice_, "/search",
                            {{"table", "SIMULATION"}, {"all", "1"}});
  ASSERT_EQ(resp.status, 200);
  // SIMULATION_KEY links to the three referencing tables.
  EXPECT_NE(resp.body.find("[RESULT_FILE]"), std::string::npos);
  EXPECT_NE(resp.body.find("[CODE_FILE]"), std::string::npos);
  EXPECT_NE(resp.body.find("[VISUALISATION_FILE]"), std::string::npos);
  // Follow the browse link.
  auto browse = archive_->Get(alice_, "/browse",
                              {{"table", "RESULT_FILE"},
                               {"column", "SIMULATION_KEY"},
                               {"value", seeded_[0].simulation_key}});
  ASSERT_EQ(browse.status, 200);
  EXPECT_NE(browse.body.find("_t0000_n8.tbf"), std::string::npos);
}

TEST_F(WebTest, BrowseRespectsHiddenTablesAndColumns) {
  // FK/PK browsing must honour the same XUIS visibility rules as QBE —
  // previously BrowseSql skipped the hidden checks entirely.
  xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
  ASSERT_TRUE(c.HideColumn("RESULT_FILE.SIMULATION_KEY").ok());
  auto hidden_col = archive_->Get(alice_, "/browse",
                                  {{"table", "RESULT_FILE"},
                                   {"column", "SIMULATION_KEY"},
                                   {"value", seeded_[0].simulation_key}});
  EXPECT_EQ(hidden_col.status, 403) << hidden_col.body;
  ASSERT_TRUE(c.HideTable("CODE_FILE").ok());
  auto hidden_table = archive_->Get(alice_, "/browse",
                                    {{"table", "CODE_FILE"},
                                     {"column", "SIMULATION_KEY"},
                                     {"value", seeded_[0].simulation_key}});
  EXPECT_EQ(hidden_table.status, 403) << hidden_table.body;
  // Unknown table/column still report 400, not 403.
  auto unknown = archive_->Get(alice_, "/browse",
                               {{"table", "NOPE"},
                                {"column", "X"},
                                {"value", "1"}});
  EXPECT_EQ(unknown.status, 400);
}

TEST_F(WebTest, TypeaheadMatchesDirectLikeQuery) {
  auto resp = archive_->Get(alice_, "/typeahead",
                            {{"table", "SIMULATION"},
                             {"column", "TITLE"},
                             {"prefix", "Decaying"},
                             {"limit", "10"}});
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_EQ(resp.content_type, "text/plain");
  auto direct = archive_->Execute(
      "SELECT DISTINCT TITLE FROM SIMULATION WHERE TITLE LIKE 'Decaying%' "
      "ORDER BY TITLE LIMIT 10");
  ASSERT_TRUE(direct.ok());
  ASSERT_FALSE(direct->rows.empty());
  std::string want;
  for (const auto& row : direct->rows) {
    want += row[0].ToDisplayString();
    want += "\n";
  }
  EXPECT_EQ(resp.body, want);
  // The limit caps the completion list.
  auto limited = archive_->Get(alice_, "/typeahead",
                               {{"table", "SIMULATION"},
                                {"column", "TITLE"},
                                {"prefix", "Decaying"},
                                {"limit", "1"}});
  ASSERT_EQ(limited.status, 200);
  EXPECT_EQ(limited.body, want.substr(0, want.find('\n') + 1));
  // No match -> empty body, still 200.
  auto none = archive_->Get(alice_, "/typeahead",
                            {{"table", "SIMULATION"},
                             {"column", "TITLE"},
                             {"prefix", "Zebra"}});
  ASSERT_EQ(none.status, 200);
  EXPECT_TRUE(none.body.empty());
}

TEST_F(WebTest, TypeaheadEscapesWildcardsInPrefix) {
  // A literal % in the typed prefix must not act as a wildcard: no title
  // contains a percent sign, so this returns nothing (an unescaped '%'
  // would match every row).
  auto resp = archive_->Get(alice_, "/typeahead",
                            {{"table", "SIMULATION"},
                             {"column", "TITLE"},
                             {"prefix", "%"}});
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_TRUE(resp.body.empty());
  // Same for '_' (would otherwise match any first character).
  auto underscore = archive_->Get(alice_, "/typeahead",
                                  {{"table", "SIMULATION"},
                                   {"column", "TITLE"},
                                   {"prefix", "_ecaying"}});
  ASSERT_EQ(underscore.status, 200);
  EXPECT_TRUE(underscore.body.empty());
  // Quotes cannot break out of the SQL literal.
  auto quote = archive_->Get(alice_, "/typeahead",
                             {{"table", "SIMULATION"},
                              {"column", "TITLE"},
                              {"prefix", "x' OR '1'='1"}});
  ASSERT_EQ(quote.status, 200) << quote.body;
  EXPECT_TRUE(quote.body.empty());
}

TEST_F(WebTest, TypeaheadRespectsHiddenTablesAndColumns) {
  xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
  ASSERT_TRUE(c.HideColumn("AUTHOR.EMAIL").ok());
  auto hidden_col = archive_->Get(alice_, "/typeahead",
                                  {{"table", "AUTHOR"},
                                   {"column", "EMAIL"},
                                   {"prefix", "a"}});
  EXPECT_EQ(hidden_col.status, 404) << hidden_col.body;
  ASSERT_TRUE(c.HideTable("CODE_FILE").ok());
  auto hidden_table = archive_->Get(alice_, "/typeahead",
                                    {{"table", "CODE_FILE"},
                                     {"column", "CODE_NAME"},
                                     {"prefix", "G"}});
  EXPECT_EQ(hidden_table.status, 404) << hidden_table.body;
  auto unknown = archive_->Get(alice_, "/typeahead",
                               {{"table", "NOPE"}, {"column", "X"}});
  EXPECT_EQ(unknown.status, 404);
  auto bad_limit = archive_->Get(alice_, "/typeahead",
                                 {{"table", "SIMULATION"},
                                  {"column", "TITLE"},
                                  {"prefix", "D"},
                                  {"limit", "0"}});
  EXPECT_EQ(bad_limit.status, 400);
  auto no_session = archive_->Get("", "/typeahead",
                                  {{"table", "SIMULATION"},
                                   {"column", "TITLE"}});
  EXPECT_EQ(no_session.status, 401);
}

TEST_F(WebTest, FkSubstitutionShowsName) {
  xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
  ASSERT_TRUE(c.SetFkSubstitution("SIMULATION.AUTHOR_KEY",
                                  "AUTHOR.NAME").ok());
  auto resp = archive_->Get(alice_, "/search",
                            {{"table", "SIMULATION"}, {"all", "1"}});
  ASSERT_EQ(resp.status, 200);
  // The FK cell displays the author's name, not the raw key.
  EXPECT_NE(resp.body.find("A. N. Author"), std::string::npos) << resp.body;
}

TEST_F(WebTest, ClobRematerialisation) {
  auto search = archive_->Get(alice_, "/search",
                              {{"table", "SIMULATION"}, {"all", "1"}});
  EXPECT_NE(search.body.find("clob"), std::string::npos);
  auto object = archive_->Get(
      alice_, "/object",
      {{"table", "SIMULATION"},
       {"column", "DESCRIPTION"},
       {"pk0.SIMULATION_KEY", seeded_[0].simulation_key}});
  ASSERT_EQ(object.status, 200) << object.body;
  EXPECT_EQ(object.content_type, "text/plain");
  EXPECT_NE(object.body.find("Direct numerical simulation"),
            std::string::npos);
}

TEST_F(WebTest, QueryFormThenSearch) {
  auto form = archive_->Get(alice_, "/query", {{"table", "AUTHOR"}});
  ASSERT_EQ(form.status, 200);
  auto results = archive_->Get(alice_, "/search",
                               {{"table", "AUTHOR"},
                                {"show.NAME", "1"},
                                {"op.NAME", "LIKE"},
                                {"value.NAME", "%Author%"}});
  ASSERT_EQ(results.status, 200);
  EXPECT_NE(results.body.find("A. N. Author"), std::string::npos);
  EXPECT_EQ(results.body.find("B. Researcher"), std::string::npos);
}

TEST_F(WebTest, OperationFormAndRun) {
  std::string dataset = seeded_[0].dataset_urls[0];
  auto form = archive_->Get(alice_, "/opform",
                            {{"op", "GetImage"}, {"dataset", dataset}});
  ASSERT_EQ(form.status, 200);
  EXPECT_NE(form.body.find("Select the slice"), std::string::npos);
  EXPECT_NE(form.body.find("u speed"), std::string::npos);
  auto run = archive_->Get(alice_, "/runop",
                           {{"op", "GetImage"},
                            {"dataset", dataset},
                            {"slice", "x1"},
                            {"type", "p"}});
  ASSERT_EQ(run.status, 200) << run.body;
  EXPECT_NE(run.body.find("slice.pgm"), std::string::npos);
}

TEST_F(WebTest, UploadFormAndRun) {
  std::string dataset = seeded_[0].dataset_urls[0];
  auto form = archive_->Get(alice_, "/upload",
                            {{"table", "RESULT_FILE"},
                             {"column", "DOWNLOAD_RESULT"},
                             {"dataset", dataset}});
  ASSERT_EQ(form.status, 200);
  EXPECT_NE(form.body.find("textarea"), std::string::npos);
  auto run = archive_->Get(alice_, "/upload",
                           {{"table", "RESULT_FILE"},
                            {"column", "DOWNLOAD_RESULT"},
                            {"dataset", dataset},
                            {"code", "print(tbf_n(arg(0)));"}});
  ASSERT_EQ(run.status, 200) << run.body;
  EXPECT_NE(run.body.find("8"), std::string::npos);
  // Guests are refused outright.
  auto guest_run = archive_->Get(guest_, "/upload",
                                 {{"table", "RESULT_FILE"},
                                  {"column", "DOWNLOAD_RESULT"},
                                  {"dataset", dataset},
                                  {"code", "print(1);"}});
  EXPECT_EQ(guest_run.status, 403);
}

TEST_F(WebTest, UserManagementAdminOnly) {
  std::string root = *archive_->Login("root", "pw");
  auto list = archive_->Get(root, "/users");
  ASSERT_EQ(list.status, 200);
  EXPECT_NE(list.body.find("alice"), std::string::npos);
  auto add = archive_->Get(root, "/users/add",
                           {{"user", "bob"}, {"password", "x"},
                            {"role", "authorised"}});
  ASSERT_EQ(add.status, 200);
  EXPECT_TRUE(archive_->Login("bob", "x").ok());
  auto remove = archive_->Get(root, "/users/remove", {{"user", "bob"}});
  ASSERT_EQ(remove.status, 200);
  EXPECT_FALSE(archive_->Login("bob", "x").ok());
  // Non-admins bounce.
  EXPECT_EQ(archive_->Get(alice_, "/users").status, 403);
  EXPECT_EQ(archive_->Get(guest_, "/users").status, 403);
}

TEST_F(WebTest, PersonalisedXuisChangesView) {
  xuis::XuisSpec trimmed = archive_->xuis().Default();
  xuis::XuisCustomizer c(&trimmed);
  ASSERT_TRUE(c.HideTable("CODE_FILE").ok());
  archive_->xuis().SetForUser("guest", std::move(trimmed));
  auto guest_tables = archive_->Get(guest_, "/tables");
  EXPECT_EQ(guest_tables.body.find("CODE_FILE"), std::string::npos);
  auto alice_tables = archive_->Get(alice_, "/tables");
  EXPECT_NE(alice_tables.body.find("CODE_FILE"), std::string::npos);
}

TEST_F(WebTest, UnknownRouteIs404) {
  EXPECT_EQ(archive_->Get(alice_, "/nonsense").status, 404);
  EXPECT_EQ(archive_->Get(alice_, "/query", {{"table", "NOPE"}}).status, 404);
  EXPECT_EQ(archive_->Get(alice_, "/opform", {{"op", "NOPE"}}).status, 404);
}

TEST_F(WebTest, SessionExpiryBouncesRequests) {
  archive_->clock().Advance(archive_->options().session_timeout_seconds + 1);
  EXPECT_EQ(archive_->Get(alice_, "/tables").status, 401);
}

}  // namespace
}  // namespace easia::web
