// Tests of the assembled Archive facade and the turbulence scenario setup.
#include <gtest/gtest.h>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "fileserver/url.h"
#include "sim/bandwidth.h"

namespace easia::core {
namespace {

TEST(ArchiveTest, TopologyWiring) {
  Archive archive;
  fs::FileServer* fs1 = archive.AddFileServer("fs1");
  EXPECT_EQ(fs1->host(), "fs1");
  EXPECT_TRUE(archive.network().HasHost("fs1"));
  EXPECT_TRUE(archive.network().HasHost(archive.options().db_host));
  // Paper-calibrated asymmetric link by default.
  double day = 10 * 3600.0;
  auto to_db = archive.network().EstimateTransfer(
      "fs1", archive.options().db_host, 85 * sim::kMegabyte, day);
  auto from_db = archive.network().EstimateTransfer(
      archive.options().db_host, "fs1", 85 * sim::kMegabyte, day);
  ASSERT_TRUE(to_db.ok());
  ASSERT_TRUE(from_db.ok());
  EXPECT_GT(*to_db, *from_db);  // uploads slower than downloads
}

TEST(ArchiveTest, ConstantRateLinkOption) {
  Archive archive;
  archive.AddFileServer("fs1", /*constant_mbps=*/8.0);
  auto t = archive.network().EstimateTransfer(
      "fs1", archive.options().db_host, sim::kMegabyte, 0.0);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(*t, 1.0 + 0.05, 1e-6);  // 1 MB at 1 MB/s + latency
}

TEST(ArchiveTest, ClientHostLinksToEveryServer) {
  Archive archive;
  archive.AddFileServer("fs1");
  archive.AddFileServer("fs2");
  archive.AddClientHost("client", 8.0);
  for (const char* host : {"fs1", "fs2"}) {
    EXPECT_TRUE(archive.network()
                    .EstimateTransfer(host, "client", 1000, 0.0)
                    .ok())
        << host;
  }
}

TEST(ArchiveTest, DownloadRequiresRoute) {
  Archive archive;
  fs::FileServer* fs1 = archive.AddFileServer("fs1");
  ASSERT_TRUE(fs1->Put("/f.txt", "hello").ok());
  // No client host registered -> unavailable.
  EXPECT_FALSE(archive.Download("http://fs1/f.txt", "client").ok());
  archive.AddClientHost("client", 8.0);
  auto seconds = archive.Download("http://fs1/f.txt", "client");
  ASSERT_TRUE(seconds.ok()) << seconds.status().ToString();
  // Unknown file.
  EXPECT_TRUE(archive.Download("http://fs1/missing.txt", "client")
                  .status()
                  .IsNotFound());
  // Unknown host.
  EXPECT_FALSE(archive.Download("http://fs9/f.txt", "client").ok());
}

TEST(ArchiveTest, SchemaMatchesPaper) {
  Archive archive;
  ASSERT_TRUE(CreateTurbulenceSchema(&archive).ok());
  const db::Catalog& catalog = archive.database().catalog();
  EXPECT_EQ(catalog.TableCount(), 5u);
  // RESULT_FILE.DOWNLOAD_RESULT carries the paper's DATALINK options.
  auto def = catalog.GetTable("RESULT_FILE");
  ASSERT_TRUE(def.ok());
  const db::ColumnDef* dl = (*def)->FindColumn("DOWNLOAD_RESULT");
  ASSERT_NE(dl, nullptr);
  ASSERT_TRUE(dl->datalink.has_value());
  EXPECT_TRUE(dl->datalink->file_link_control);
  EXPECT_EQ(dl->datalink->read_permission,
            db::DatalinkOptions::ReadPermission::kDb);
  EXPECT_EQ(dl->datalink->recovery, db::DatalinkOptions::Recovery::kYes);
  EXPECT_EQ(dl->datalink->on_unlink,
            db::DatalinkOptions::OnUnlink::kRestore);
  // Composite primary key, as in the paper's XUIS fragment.
  EXPECT_EQ((*def)->primary_key,
            (std::vector<std::string>{"FILE_NAME", "SIMULATION_KEY"}));
}

TEST(ArchiveTest, SparseSeedingIsPaperScale) {
  Archive archive;
  archive.AddFileServer("fs1");
  ASSERT_TRUE(CreateTurbulenceSchema(&archive).ok());
  SeedOptions seed;
  seed.hosts = {"fs1"};
  seed.simulations = 1;
  seed.timesteps_per_simulation = 2;
  seed.sparse = true;
  seed.sparse_bytes = turb::kLargeSimulationBytes;
  auto seeded = SeedTurbulenceData(&archive, seed);
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  auto server = archive.fleet().GetServer("fs1");
  EXPECT_EQ((*server)->vfs().TotalBytes(),
            2 * turb::kLargeSimulationBytes);
  // Sparse files are still linked and pinned.
  for (const std::string& url : (*seeded)[0].dataset_urls) {
    auto parsed = fs::ParseFileUrl(url);
    EXPECT_TRUE((*server)->vfs().IsPinned(parsed->path));
  }
  // FILE_SIZE metadata reflects the declared size.
  auto rows = archive.Execute("SELECT FILE_SIZE FROM RESULT_FILE");
  EXPECT_EQ(rows->rows[0][0].AsInt(),
            static_cast<int64_t>(turb::kLargeSimulationBytes));
}

TEST(ArchiveTest, SeedRequiresHosts) {
  Archive archive;
  ASSERT_TRUE(CreateTurbulenceSchema(&archive).ok());
  SeedOptions seed;  // no hosts
  EXPECT_FALSE(SeedTurbulenceData(&archive, seed).ok());
}

TEST(ArchiveTest, AttachGetImageIsIdempotentOnCodeFile) {
  Archive archive;
  archive.AddFileServer("fs1");
  ASSERT_TRUE(CreateTurbulenceSchema(&archive).ok());
  SeedOptions seed;
  seed.hosts = {"fs1"};
  seed.simulations = 2;
  seed.timesteps_per_simulation = 1;
  seed.grid_n = 8;
  auto seeded = SeedTurbulenceData(&archive, seed);
  ASSERT_TRUE(seeded.ok());
  ASSERT_TRUE(archive.InitializeXuis().ok());
  // Attach for two different simulations: one CODE_FILE row, two ops.
  ASSERT_TRUE(AttachGetImageOperation(&archive,
                                      (*seeded)[0].simulation_key, 8).ok());
  ASSERT_TRUE(AttachGetImageOperation(&archive,
                                      (*seeded)[1].simulation_key, 8).ok());
  auto rows = archive.Execute("SELECT COUNT(*) FROM CODE_FILE");
  EXPECT_EQ(rows->rows[0][0].AsInt(), 1);
  EXPECT_EQ(archive.xuis().Default().TotalOperations(), 2u);
}

TEST(ArchiveTest, GetImageScriptParses) {
  // The shipped script must at least parse (execution covered elsewhere).
  EXPECT_NE(GetImageScriptSource().find("tbf_slice"), std::string::npos);
}

TEST(ArchiveTest, ObjectUploadOverTheWeb) {
  Archive archive;
  archive.AddFileServer("fs1", 8.0);
  ASSERT_TRUE(CreateTurbulenceSchema(&archive).ok());
  SeedOptions seed;
  seed.hosts = {"fs1"};
  seed.simulations = 1;
  seed.timesteps_per_simulation = 1;
  seed.grid_n = 8;
  auto seeded = SeedTurbulenceData(&archive, seed);
  ASSERT_TRUE(seeded.ok());
  ASSERT_TRUE(archive.InitializeXuis().ok());
  ASSERT_TRUE(archive.AddUser("alice", "pw",
                              web::UserRole::kAuthorised).ok());
  std::string alice = *archive.Login("alice", "pw");
  std::string guest = *archive.Login("guest", "guest");
  const std::string sim_key = (*seeded)[0].simulation_key;
  // Authorised upload into the CLOB column.
  auto put = archive.Get(alice, "/object/put",
                         {{"table", "SIMULATION"},
                          {"column", "DESCRIPTION"},
                          {"pk0.SIMULATION_KEY", sim_key},
                          {"value", "Uploaded abstract text"}});
  ASSERT_EQ(put.status, 200) << put.body;
  // Rematerialise it back.
  auto get = archive.Get(alice, "/object",
                         {{"table", "SIMULATION"},
                          {"column", "DESCRIPTION"},
                          {"pk0.SIMULATION_KEY", sim_key}});
  ASSERT_EQ(get.status, 200);
  EXPECT_EQ(get.body, "Uploaded abstract text");
  // Guests cannot upload; non-LOB columns are refused; missing row 404s.
  EXPECT_EQ(archive.Get(guest, "/object/put",
                        {{"table", "SIMULATION"},
                         {"column", "DESCRIPTION"},
                         {"pk0.SIMULATION_KEY", sim_key},
                         {"value", "x"}})
                .status,
            403);
  EXPECT_EQ(archive.Get(alice, "/object/put",
                        {{"table", "SIMULATION"},
                         {"column", "TITLE"},
                         {"pk0.SIMULATION_KEY", sim_key},
                         {"value", "x"}})
                .status,
            400);
  EXPECT_EQ(archive.Get(alice, "/object/put",
                        {{"table", "SIMULATION"},
                         {"column", "DESCRIPTION"},
                         {"pk0.SIMULATION_KEY", "NOPE"},
                         {"value", "x"}})
                .status,
            404);
}

TEST(ArchiveTest, StatsAccumulate) {
  Archive archive;
  archive.AddFileServer("fs1", 8.0);
  ASSERT_TRUE(CreateTurbulenceSchema(&archive).ok());
  EXPECT_GT(archive.database().stats().statements, 0u);
  EXPECT_EQ(archive.web().requests_served(), 0u);
  (void)archive.Get("", "/login", {{"user", "guest"}, {"password", "guest"}});
  EXPECT_EQ(archive.web().requests_served(), 1u);
}

}  // namespace
}  // namespace easia::core
