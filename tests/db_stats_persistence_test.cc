// Planner-statistics persistence: the per-column sketches must survive
// checkpoint/restart byte-for-byte (snapshot stats blocks), be rebuilt
// identically by WAL replay (deterministic sketch maintenance), and stay
// consistent with the recovered row image after a mid-workload crash.
// Runs entirely against the FaultyEnv fault-injection seam.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "db/database.h"
#include "db/table.h"
#include "testing/fault_injection.h"

namespace easia::db {
namespace {

using testing::CrashSurvival;
using testing::FaultPlan;
using testing::FaultyEnv;

DatabaseOptions Options(FaultyEnv* env) {
  DatabaseOptions opts;
  opts.wal_path = "/db/wal";
  opts.snapshot_path = "/db/snapshot";
  opts.env = env;
  return opts;
}

/// The table's full stats block, encoded — deep equality in one compare.
std::string EncodedStats(const Database& db, const std::string& table) {
  Result<const Table*> t = db.GetTable(table);
  EXPECT_TRUE(t.ok()) << table;
  if (!t.ok()) return {};
  std::string out;
  (*t)->table_stats().EncodeTo(&out);
  return out;
}

/// A workload whose sketch state a rebuild-from-rows cannot reproduce:
/// the extreme N values are inserted and then deleted, so only carried
/// widen-only min/max history remembers them. Statements past `limit`
/// are skipped (crash sweeps); failures after a crash are expected.
void RunWorkload(Database* db, int limit = 1 << 30) {
  int n = 0;
  auto exec = [&](const std::string& sql) {
    if (n++ >= limit) return;
    (void)db->Execute(sql);
  };
  exec("CREATE TABLE T ("
       " K INTEGER NOT NULL,"
       " C VARCHAR(16),"
       " N INTEGER,"
       " PRIMARY KEY (K))");
  for (int i = 0; i < 120; ++i) {
    std::string value = (i % 9 == 0) ? "NULL" : std::to_string(i % 12);
    exec("INSERT INTO T VALUES (" + std::to_string(i) + ", 'c" +
         std::to_string(i % 8) + "', " + value + ")");
  }
  exec("INSERT INTO T VALUES (200, 'extreme', -999999)");
  exec("INSERT INTO T VALUES (201, 'extreme', 999999)");
  exec("DELETE FROM T WHERE K >= 200");
  exec("DELETE FROM T WHERE K < 10");
}

TEST(DbStatsPersistenceTest, CheckpointRestartPreservesSketchExactly) {
  FaultyEnv env(FaultPlan{});
  std::string before;
  {
    Database db("STATS", Options(&env));
    ASSERT_TRUE(db.Recover().ok());
    RunWorkload(&db);
    ASSERT_TRUE(db.Checkpoint().ok());
    before = EncodedStats(db, "T");
    ASSERT_FALSE(before.empty());
  }
  Database recovered("STATS", Options(&env));
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(EncodedStats(recovered, "T"), before);

  // The carried history is what makes the block worth persisting: the
  // deleted extremes still bound N, where a rebuild from the surviving
  // rows would shrink to [0, 11].
  Result<const Table*> t = recovered.GetTable("T");
  ASSERT_TRUE(t.ok());
  const stats::ColumnSketch& n = (*t)->table_stats().column(2);
  EXPECT_EQ(n.min_value().AsInt(), -999999);
  EXPECT_EQ(n.max_value().AsInt(), 999999);
  EXPECT_EQ(n.rows(), (*t)->RowCount());
}

TEST(DbStatsPersistenceTest, WalReplayRebuildsIdenticalSketch) {
  FaultyEnv env(FaultPlan{});
  std::string at_crash;
  {
    Database db("STATS", Options(&env));
    ASSERT_TRUE(db.Recover().ok());
    RunWorkload(&db);
    at_crash = EncodedStats(db, "T");
  }  // crash: no checkpoint, the WAL is the only persistent state

  Database recovered("STATS", Options(&env));
  ASSERT_TRUE(recovered.Recover().ok());
  // Sketch maintenance is deterministic (FNV hashing, no clocks or
  // randomness), so replaying the same operations — including the
  // deleted extremes — reproduces the identical encoded block.
  EXPECT_EQ(EncodedStats(recovered, "T"), at_crash);
}

TEST(DbStatsPersistenceTest, CheckpointPlusWalTailReplaysConsistently) {
  FaultyEnv env(FaultPlan{});
  std::string at_crash;
  {
    Database db("STATS", Options(&env));
    ASSERT_TRUE(db.Recover().ok());
    RunWorkload(&db);
    ASSERT_TRUE(db.Checkpoint().ok());
    // Post-checkpoint tail lives only in the WAL.
    ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (300, 'tail', 42)").ok());
    ASSERT_TRUE(db.Execute("DELETE FROM T WHERE K = 11").ok());
    at_crash = EncodedStats(db, "T");
  }
  Database recovered("STATS", Options(&env));
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(EncodedStats(recovered, "T"), at_crash);
}

TEST(DbStatsPersistenceTest, CrashSweepKeepsSketchConsistentWithRows) {
  // Size the WAL with an uncrashed probe run, then crash at several
  // interior byte boundaries. Whatever prefix survives, the recovered
  // sketch must agree with the recovered row image, and recovery from
  // the same crash point must be bit-deterministic.
  uint64_t wal_bytes = 0;
  {
    FaultyEnv env(FaultPlan{});
    Database db("STATS", Options(&env));
    ASSERT_TRUE(db.Recover().ok());
    RunWorkload(&db);
    wal_bytes = env.bytes_appended();
    ASSERT_GT(wal_bytes, 0u);
  }
  for (int i = 1; i <= 4; ++i) {
    uint64_t boundary = wal_bytes * i / 5;
    auto recover_once = [&](std::string* encoded) {
      FaultPlan plan;
      plan.seed = 7;
      plan.crash_after_bytes = static_cast<int64_t>(boundary);
      plan.survival = CrashSurvival::kAll;
      FaultyEnv env(plan);
      {
        Database db("STATS", Options(&env));
        (void)db.Recover();
        RunWorkload(&db);  // statements past the crash point fail
      }
      EXPECT_TRUE(env.crashed()) << "boundary " << boundary;
      env.Reopen();
      Database recovered("STATS", Options(&env));
      ASSERT_TRUE(recovered.Recover().ok()) << "boundary " << boundary;
      Result<const Table*> t = recovered.GetTable("T");
      if (!t.ok()) return;  // crash before CREATE TABLE committed
      const stats::TableStats& stats = (*t)->table_stats();
      ASSERT_EQ(stats.column_count(), 3u);
      EXPECT_EQ(stats.column(0).rows(), (*t)->RowCount())
          << "boundary " << boundary;
      *encoded = EncodedStats(recovered, "T");
    };
    std::string first, second;
    recover_once(&first);
    recover_once(&second);
    EXPECT_EQ(first, second) << "recovery not deterministic at boundary "
                             << boundary;
  }
}

}  // namespace
}  // namespace easia::db
