// Property tests for the fixed-bucket histogram: quantile monotonicity,
// sum/count conservation, merge associativity, agreement with a
// sorted-vector oracle, and race-free concurrent recording (the latter is
// what the `tsan` label buys). Randomised rounds are seeded and scale with
// EASIA_FUZZ_ITERS for soak runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/metrics.h"

namespace easia::obs {
namespace {

size_t FuzzRounds(size_t base) {
  const char* env = std::getenv("EASIA_FUZZ_ITERS");
  if (env == nullptr) return base;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : base;
}

/// Draws an observation spread across the interesting range of `bounds`:
/// mostly inside the bucketed range, occasionally zero or past the last
/// bound (the +Inf overflow bucket).
double DrawValue(Random* rng, const std::vector<double>& bounds,
                 bool allow_overflow) {
  uint64_t pick = rng->Uniform(20);
  if (pick == 0) return 0;
  double top = bounds.back();
  if (allow_overflow && pick == 1) {
    return top * (1.0 + static_cast<double>(rng->Uniform(1000)) / 100.0);
  }
  // Log-uniform across the bounds so small buckets get traffic too.
  double lo = bounds.front() / 4;
  double u = static_cast<double>(rng->Uniform(1u << 20)) /
             static_cast<double>(1u << 20);
  return lo * std::pow(top / lo, u);
}

/// The exact order statistic the histogram estimates: the ceil(q*n)-th
/// smallest observation (matching Histogram::Quantile's rank definition).
double OracleQuantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

/// Index of the bucket `v` lands in (le semantics; bounds.size() = +Inf).
size_t BucketIndex(const std::vector<double>& bounds, double v) {
  return static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

TEST(ObsHistogramTest, QuantilesMonotonicAcrossRandomWorkloads) {
  size_t rounds = FuzzRounds(50);
  std::vector<double> bounds = Histogram::LatencyBounds();
  for (size_t round = 0; round < rounds; ++round) {
    Random rng(4242 + round);
    Histogram h(bounds);
    size_t n = 1 + rng.Uniform(500);
    for (size_t i = 0; i < n; ++i) {
      h.Observe(DrawValue(&rng, bounds, /*allow_overflow=*/true));
    }
    double prev = 0;
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
      double cur = h.Quantile(q);
      EXPECT_GE(cur, prev) << "q=" << q << " round=" << round;
      prev = cur;
    }
  }
}

TEST(ObsHistogramTest, SumAndCountConserved) {
  size_t rounds = FuzzRounds(50);
  std::vector<double> bounds = Histogram::ExponentialBounds(0.001, 2.0, 12);
  for (size_t round = 0; round < rounds; ++round) {
    Random rng(7700 + round);
    Histogram h(bounds);
    double expected_sum = 0;
    size_t n = rng.Uniform(400);
    for (size_t i = 0; i < n; ++i) {
      double v = DrawValue(&rng, bounds, true);
      expected_sum += v;
      h.Observe(v);
    }
    EXPECT_EQ(h.count(), n);
    EXPECT_NEAR(h.sum(), expected_sum, 1e-9 * (1 + std::abs(expected_sum)));
    // Bucket counts partition the observations exactly.
    std::vector<uint64_t> buckets = h.BucketCounts();
    ASSERT_EQ(buckets.size(), bounds.size() + 1);
    uint64_t total = 0;
    for (uint64_t b : buckets) total += b;
    EXPECT_EQ(total, n);
  }
}

TEST(ObsHistogramTest, MergeIsAssociativeAndCommutative) {
  size_t rounds = FuzzRounds(30);
  std::vector<double> bounds = Histogram::LatencyBounds();
  for (size_t round = 0; round < rounds; ++round) {
    Random rng(31337 + round);
    Histogram a(bounds), b(bounds), c(bounds);
    Histogram left(bounds), right(bounds), swapped(bounds);
    for (Histogram* h : {&a, &b, &c}) {
      size_t n = rng.Uniform(200);
      for (size_t i = 0; i < n; ++i) {
        h->Observe(DrawValue(&rng, bounds, true));
      }
    }
    // left = (a + b) + c; right = a + (b + c); swapped = c + b + a.
    ASSERT_TRUE(left.MergeFrom(a).ok());
    ASSERT_TRUE(left.MergeFrom(b).ok());
    ASSERT_TRUE(left.MergeFrom(c).ok());
    Histogram bc(bounds);
    ASSERT_TRUE(bc.MergeFrom(b).ok());
    ASSERT_TRUE(bc.MergeFrom(c).ok());
    ASSERT_TRUE(right.MergeFrom(a).ok());
    ASSERT_TRUE(right.MergeFrom(bc).ok());
    ASSERT_TRUE(swapped.MergeFrom(c).ok());
    ASSERT_TRUE(swapped.MergeFrom(b).ok());
    ASSERT_TRUE(swapped.MergeFrom(a).ok());
    EXPECT_EQ(left.BucketCounts(), right.BucketCounts());
    EXPECT_EQ(left.BucketCounts(), swapped.BucketCounts());
    EXPECT_EQ(left.count(), right.count());
    EXPECT_NEAR(left.sum(), right.sum(), 1e-9 * (1 + std::abs(left.sum())));
    EXPECT_NEAR(left.sum(), swapped.sum(),
                1e-9 * (1 + std::abs(left.sum())));
  }
}

TEST(ObsHistogramTest, MergeRejectsMismatchedBounds) {
  Histogram a(Histogram::LatencyBounds());
  Histogram b(Histogram::ExponentialBounds(1.0, 2.0, 4));
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

TEST(ObsHistogramTest, QuantileAgreesWithSortedOracleWithinOneBucket) {
  size_t rounds = FuzzRounds(50);
  std::vector<double> bounds = Histogram::LatencyBounds();
  for (size_t round = 0; round < rounds; ++round) {
    Random rng(90210 + round);
    Histogram h(bounds);
    std::vector<double> observed;
    size_t n = 1 + rng.Uniform(300);
    for (size_t i = 0; i < n; ++i) {
      // Stay inside the bucketed range: the overflow bucket has no upper
      // bound, so no finite estimate can promise oracle agreement there.
      double v = DrawValue(&rng, bounds, /*allow_overflow=*/false);
      if (v > bounds.back()) v = bounds.back();
      observed.push_back(v);
      h.Observe(v);
    }
    std::sort(observed.begin(), observed.end());
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
      double oracle = OracleQuantile(observed, q);
      double estimate = h.Quantile(q);
      // Both the estimate and the exact order statistic live in the same
      // bucket (same rank definition), so they differ by at most that
      // bucket's width.
      size_t bucket = BucketIndex(bounds, oracle);
      ASSERT_LT(bucket, bounds.size());
      double lo = bucket == 0 ? 0.0 : bounds[bucket - 1];
      double width = bounds[bucket] - lo;
      EXPECT_LE(std::abs(estimate - oracle), width + 1e-12)
          << "q=" << q << " round=" << round << " oracle=" << oracle
          << " estimate=" << estimate;
    }
  }
}

TEST(ObsHistogramTest, OverflowBucketReportsLastBound) {
  std::vector<double> bounds = {1.0, 2.0, 4.0};
  Histogram h(bounds);
  for (int i = 0; i < 10; ++i) h.Observe(100.0);
  EXPECT_EQ(h.Quantile(0.5), 4.0);
  EXPECT_EQ(h.BucketCounts().back(), 10u);
}

TEST(ObsHistogramTest, ConcurrentRecordingLosesNothing) {
  // Race-freedom regression (run under `ctest -L tsan` in the sanitizer
  // build): hammer one histogram from several threads, then check the
  // conservation properties that any dropped or torn update would break.
  std::vector<double> bounds = Histogram::LatencyBounds();
  Histogram h(bounds);
  constexpr int kThreads = 4;
  const size_t per_thread = FuzzRounds(50) * 40;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::vector<double> expected_sums(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(555 + static_cast<uint64_t>(t));
      double local = 0;
      for (size_t i = 0; i < per_thread; ++i) {
        double v = DrawValue(&rng, bounds, true);
        local += v;
        h.Observe(v);
      }
      expected_sums[static_cast<size_t>(t)] = local;
    });
  }
  for (std::thread& t : threads) t.join();
  double expected_sum = 0;
  for (double s : expected_sums) expected_sum += s;
  EXPECT_EQ(h.count(), per_thread * kThreads);
  EXPECT_NEAR(h.sum(), expected_sum, 1e-6 * (1 + std::abs(expected_sum)));
  std::vector<uint64_t> buckets = h.BucketCounts();
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  EXPECT_EQ(total, per_thread * kThreads);
}

TEST(ObsHistogramTest, ConcurrentCountersAndGauges) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("easia_test_total", "test");
  Gauge* gauge = registry.GetGauge("easia_test_gauge", "test");
  constexpr int kThreads = 4;
  constexpr uint64_t kPer = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kPer; ++i) {
        counter->Increment();
        gauge->Add(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(), kPer * kThreads);
  EXPECT_EQ(gauge->value(), static_cast<double>(kPer * kThreads));
}

}  // namespace
}  // namespace easia::obs
