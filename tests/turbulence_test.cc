#include <gtest/gtest.h>

#include <cmath>

#include "fileserver/file_server.h"
#include "turbulence/field.h"
#include "turbulence/tbf.h"

namespace easia::turb {
namespace {

TEST(ComponentTest, Names) {
  EXPECT_EQ(*ComponentFromName("u"), Component::kU);
  EXPECT_EQ(*ComponentFromName("p"), Component::kP);
  EXPECT_FALSE(ComponentFromName("q").ok());
  EXPECT_EQ(ComponentName(Component::kW), "w");
}

TEST(TaylorGreenTest, InitialConditionAtOrigin) {
  FieldPoint pt = TaylorGreen(M_PI / 2, 0, 0, 0, 0.01);
  EXPECT_NEAR(pt.u, 1.0, 1e-12);  // sin(pi/2)cos(0)cos(0)
  EXPECT_NEAR(pt.v, 0.0, 1e-12);
  EXPECT_NEAR(pt.w, 0.0, 1e-12);
}

TEST(TaylorGreenTest, DecaysInTime) {
  FieldPoint early = TaylorGreen(1.0, 0.5, 0.25, 0.0, 0.1);
  FieldPoint late = TaylorGreen(1.0, 0.5, 0.25, 10.0, 0.1);
  EXPECT_LT(std::fabs(late.u), std::fabs(early.u));
  EXPECT_NEAR(late.u / early.u, std::exp(-2.0 * 0.1 * 10.0), 1e-12);
}

TEST(FieldTest, GenerateAndSample) {
  Field field = Field::Generate(8, 0.0, 0.01);
  EXPECT_EQ(field.n(), 8u);
  // Spot-check a grid point against the analytic solution.
  double h = 2 * M_PI / 8;
  FieldPoint expected = TaylorGreen(2 * h, 3 * h, 5 * h, 0.0, 0.01);
  EXPECT_NEAR(field.At(Component::kU, 2, 3, 5), expected.u, 1e-12);
  EXPECT_NEAR(field.At(Component::kP, 2, 3, 5), expected.p, 1e-12);
}

TEST(FieldTest, WIsIdenticallyZero) {
  Field field = Field::Generate(8, 0.3, 0.01);
  FieldStats s = field.Stats(Component::kW);
  EXPECT_DOUBLE_EQ(s.min, 0);
  EXPECT_DOUBLE_EQ(s.max, 0);
}

TEST(FieldTest, VelocityBoundsAndSymmetry) {
  Field field = Field::Generate(16, 0.0, 0.01);
  FieldStats u = field.Stats(Component::kU);
  EXPECT_LE(u.max, 1.0 + 1e-12);
  EXPECT_GE(u.min, -1.0 - 1e-12);
  // The Taylor-Green u field is antisymmetric: mean ~ 0.
  EXPECT_NEAR(u.mean, 0.0, 1e-12);
}

TEST(FieldTest, KineticEnergyDecays) {
  Field t0 = Field::Generate(12, 0.0, 0.05);
  Field t1 = Field::Generate(12, 2.0, 0.05);
  EXPECT_GT(t0.KineticEnergy(), t1.KineticEnergy());
  // E(t) = E(0) * exp(-4 nu t) exactly for this flow.
  EXPECT_NEAR(t1.KineticEnergy() / t0.KineticEnergy(),
              std::exp(-4.0 * 0.05 * 2.0), 1e-9);
}

TEST(FieldTest, KineticEnergyMatchesTheory) {
  // Volume average of u^2+v^2 over the periodic box is 1/4; E = 1/8.
  Field field = Field::Generate(32, 0.0, 0.01);
  EXPECT_NEAR(field.KineticEnergy(), 0.125, 1e-9);
}

TEST(FieldTest, VorticityPositive) {
  Field field = Field::Generate(16, 0.0, 0.01);
  EXPECT_GT(field.MaxVorticity(), 0.5);
}

TEST(SliceTest, ExtractsCorrectPlane) {
  Field field = Field::Generate(8, 0.0, 0.01);
  Slice2D slice = *field.Slice('x', 3, Component::kV);
  EXPECT_EQ(slice.n1, 8u);
  EXPECT_EQ(slice.n2, 8u);
  for (size_t j = 0; j < 8; ++j) {
    for (size_t k = 0; k < 8; ++k) {
      EXPECT_DOUBLE_EQ(slice.At(j, k), field.At(Component::kV, 3, j, k));
    }
  }
  Slice2D zslice = *field.Slice('z', 2, Component::kU);
  EXPECT_DOUBLE_EQ(zslice.At(4, 5), field.At(Component::kU, 4, 5, 2));
}

TEST(SliceTest, BoundsChecked) {
  Field field = Field::Generate(8, 0.0, 0.01);
  EXPECT_FALSE(field.Slice('x', 8, Component::kU).ok());
  EXPECT_FALSE(field.Slice('q', 0, Component::kU).ok());
}

TEST(SliceTest, PgmFormat) {
  Field field = Field::Generate(8, 0.0, 0.01);
  Slice2D slice = *field.Slice('z', 0, Component::kU);
  std::string pgm = slice.ToPgm();
  EXPECT_EQ(pgm.substr(0, 3), "P5\n");
  EXPECT_NE(pgm.find("8 8\n255\n"), std::string::npos);
  // Header + exactly 64 pixel bytes.
  size_t header_end = pgm.find("255\n") + 4;
  EXPECT_EQ(pgm.size() - header_end, 64u);
}

TEST(SliceTest, RawBytesIsDataReduction) {
  Field field = Field::Generate(16, 0.0, 0.01);
  Slice2D slice = *field.Slice('x', 0, Component::kU);
  // 3-D -> 2-D: reduction by the grid extent.
  EXPECT_EQ(slice.RawBytes() * 16,
            16ull * 16 * 16 * sizeof(double));
}

TEST(TbfTest, HeaderRoundTrip) {
  Field field = Field::Generate(8, 1.5, 0.02);
  std::string bytes = SerializeTbf(field, 7);
  auto header = ParseTbfHeader(bytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->n, 8u);
  EXPECT_EQ(header->timestep, 7u);
  EXPECT_DOUBLE_EQ(header->time, 1.5);
  EXPECT_DOUBLE_EQ(header->nu, 0.02);
}

TEST(TbfTest, FullRoundTrip) {
  Field field = Field::Generate(8, 0.5, 0.01);
  std::string bytes = SerializeTbf(field, 3);
  EXPECT_EQ(bytes.size(), Field::FileBytes(8) - 64 + 28);  // header is 28B
  auto back = ParseTbf(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->n(), 8u);
  EXPECT_DOUBLE_EQ(back->time(), 0.5);
  for (size_t i = 0; i < 8; i += 3) {
    for (size_t j = 0; j < 8; j += 3) {
      for (size_t k = 0; k < 8; k += 3) {
        EXPECT_DOUBLE_EQ(back->At(Component::kP, i, j, k),
                         field.At(Component::kP, i, j, k));
      }
    }
  }
}

TEST(TbfTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTbf("not a tbf").ok());
  Field field = Field::Generate(4, 0, 0.01);
  std::string bytes = SerializeTbf(field, 0);
  bytes.resize(bytes.size() - 10);  // truncated
  EXPECT_FALSE(ParseTbf(bytes).ok());
}

TEST(DatasetSpecTest, SizesMatchPaperScale) {
  // A 256^3 four-field double dataset is ~537 MB — the paper's "large
  // simulation" (544 MB) scale.
  DatasetSpec spec;
  spec.grid_n = 256;
  EXPECT_NEAR(static_cast<double>(spec.SizeBytes()),
              536.9e6, 1e6);
  EXPECT_GT(kLargeSimulationBytes, spec.SizeBytes());
  EXPECT_EQ(kSmallSimulationBytes, 85000000u);
}

TEST(DatasetSpecTest, FileNameFormat) {
  DatasetSpec spec;
  spec.simulation_key = "S19990110150932";
  spec.timestep = 42;
  spec.grid_n = 128;
  EXPECT_EQ(spec.FileName(), "S19990110150932_t0042_n128.tbf");
}

TEST(ArchiveDatasetTest, MaterialisedAndSparse) {
  fs::FileServer server("fs1");
  DatasetSpec spec;
  spec.simulation_key = "S1";
  spec.grid_n = 8;
  spec.materialize = true;
  auto url = ArchiveDataset(&server, "/archive/S1", spec);
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(*url, "http://fs1/archive/S1/S1_t0000_n8.tbf");
  auto stat = server.vfs().Stat("/archive/S1/S1_t0000_n8.tbf");
  ASSERT_TRUE(stat.ok());
  EXPECT_FALSE(stat->sparse);
  // Archived bytes parse back to a valid field.
  auto bytes = server.vfs().ReadFile("/archive/S1/S1_t0000_n8.tbf");
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(ParseTbf(*bytes).ok());

  DatasetSpec sparse = spec;
  sparse.timestep = 1;
  sparse.grid_n = 256;
  sparse.materialize = false;
  auto url2 = ArchiveDataset(&server, "/archive/S1", sparse);
  ASSERT_TRUE(url2.ok());
  auto stat2 = server.vfs().Stat("/archive/S1/S1_t0001_n256.tbf");
  ASSERT_TRUE(stat2.ok());
  EXPECT_TRUE(stat2->sparse);
  EXPECT_EQ(stat2->size, sparse.SizeBytes());
}

class SliceConsistencyTest
    : public ::testing::TestWithParam<std::tuple<char, int>> {};

TEST_P(SliceConsistencyTest, SliceStatsWithinFieldStats) {
  auto [axis, index] = GetParam();
  Field field = Field::Generate(12, 0.2, 0.01);
  for (Component c : {Component::kU, Component::kV, Component::kP}) {
    Slice2D slice = *field.Slice(axis, static_cast<size_t>(index), c);
    FieldStats fs = field.Stats(c);
    FieldStats ss = slice.Stats();
    EXPECT_GE(ss.min, fs.min - 1e-12);
    EXPECT_LE(ss.max, fs.max + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AxesAndIndexes, SliceConsistencyTest,
    ::testing::Combine(::testing::Values('x', 'y', 'z'),
                       ::testing::Values(0, 5, 11)));

}  // namespace
}  // namespace easia::turb
