#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "db/repl/coordinator.h"
#include "db/repl/replica.h"
#include "db/repl/shipper.h"
#include "db/repl/wire.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "web/cache.h"
#include "web/server.h"
#include "web/session.h"
#include "web/users.h"
#include "xuis/customize.h"
#include "xuis/generator.h"

namespace easia::db::repl {
namespace {

/// Canonical textual image of every table (same shape as the crash
/// harness's dump): two nodes are equal iff their dumps match.
std::string Dump(const Database& db) {
  std::ostringstream out;
  for (const std::string& name : db.catalog().TableNames()) {
    out << "#" << name << "\n";
    Result<const Table*> table = db.GetTable(name);
    if (!table.ok()) continue;
    (*table)->ForEachRow([&](RowId id, const Row& row) {
      out << id;
      for (const Value& v : row) out << "|" << v.ToDisplayString();
      out << "\n";
    });
  }
  return out.str();
}

/// Full-mesh sim network: "db" plus replicas "r1".."rN".
sim::Network MakeNet(int replicas) {
  sim::Network net;
  std::vector<std::string> hosts = {"db"};
  for (int i = 1; i <= replicas; ++i) hosts.push_back("r" + std::to_string(i));
  for (const std::string& h : hosts) net.AddHost({h, 50.0, 4});
  for (const std::string& a : hosts) {
    for (const std::string& b : hosts) {
      if (a != b) {
        net.AddLink(a, b, sim::BandwidthSchedule::Constant(100.0), 0.001);
      }
    }
  }
  return net;
}

void MustExec(ReplicationCoordinator& coord, const std::string& sql) {
  Result<QueryResult> r = coord.Execute(sql);
  ASSERT_TRUE(r.ok()) << sql << ": " << r.status().message();
}

// ---- Wire framing ----

/// Captures real commit entries by running DML on a listener-attached
/// database, so the wire tests exercise genuine WAL record payloads.
std::vector<CommitEntry> CaptureEntries() {
  Database db("P");
  ReplicationLog log;
  db.set_commit_listener(
      [&](uint64_t epoch, const std::vector<WalRecord>& records) {
        log.Append(epoch, records);
      });
  EXPECT_TRUE(db.Execute("CREATE TABLE T (ID INTEGER PRIMARY KEY, "
                         "NAME VARCHAR(32))").ok());
  EXPECT_TRUE(db.Execute("INSERT INTO T VALUES (1, 'alpha')").ok());
  EXPECT_TRUE(db.Execute("INSERT INTO T VALUES (2, 'beta')").ok());
  EXPECT_TRUE(db.Execute("UPDATE T SET NAME = 'gamma' WHERE ID = 1").ok());
  return log.EntriesAfter(0, 100);
}

TEST(ReplWireTest, ShipmentRoundTrip) {
  std::vector<CommitEntry> entries = CaptureEntries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries.front().lsn, 1u);
  EXPECT_EQ(entries.back().lsn, 4u);

  std::string bytes = EncodeShipment(entries);
  Shipment shipment = DecodeShipment(bytes);
  EXPECT_FALSE(shipment.torn);
  ASSERT_EQ(shipment.entries.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(shipment.entries[i].lsn, entries[i].lsn);
    EXPECT_EQ(shipment.entries[i].epoch, entries[i].epoch);
    EXPECT_EQ(shipment.entries[i].records.size(), entries[i].records.size());
  }
  // Re-encoding the decoded entries reproduces the wire bytes exactly.
  EXPECT_EQ(EncodeShipment(shipment.entries), bytes);
}

TEST(ReplWireTest, TruncationYieldsIntactPrefix) {
  std::vector<CommitEntry> entries = CaptureEntries();
  std::string bytes = EncodeShipment(entries);
  // Every possible tear point: the decode must never error, never invent
  // entries, and the surviving prefix must re-encode to a prefix of the
  // original bytes (i.e. only whole intact frames are kept). A cut that
  // lands exactly on a frame boundary is indistinguishable from a short
  // but complete shipment, so only mid-frame cuts must report the tear.
  std::set<size_t> boundaries = {0};
  {
    size_t pos = 0;
    for (const CommitEntry& entry : entries) {
      pos += 8 + 1 + entry.Encode().size();  // len + crc + tag + body
      boundaries.insert(pos);
    }
  }
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Shipment shipment = DecodeShipment(bytes.substr(0, cut));
    EXPECT_EQ(shipment.torn, boundaries.count(cut) == 0) << "cut=" << cut;
    EXPECT_LT(shipment.entries.size(), entries.size());
    std::string prefix = EncodeShipment(shipment.entries);
    EXPECT_EQ(bytes.compare(0, prefix.size(), prefix), 0) << "cut=" << cut;
  }
}

TEST(ReplWireTest, CorruptionStopsAtBadFrame) {
  std::vector<CommitEntry> entries = CaptureEntries();
  std::string bytes = EncodeShipment(entries);
  // Flip a byte inside the LAST frame's payload: earlier frames decode,
  // the corrupt one fails its CRC and marks the shipment torn.
  std::string last = entries.back().Encode();
  std::string corrupt = bytes;
  corrupt[bytes.size() - last.size() / 2 - 1] ^= 0x40;
  Shipment shipment = DecodeShipment(corrupt);
  EXPECT_TRUE(shipment.torn);
  EXPECT_EQ(shipment.entries.size(), entries.size() - 1);
}

// ---- Replica apply semantics ----

TEST(ReplReplicaTest, DuplicateShipmentsAreIdempotent) {
  std::vector<CommitEntry> entries = CaptureEntries();
  std::string bytes = EncodeShipment(entries);

  ReplicaNode replica("r1");
  Result<ReplicaNode::ApplyOutcome> first = replica.ApplyShipment(bytes);
  ASSERT_TRUE(first.ok()) << first.status().message();
  EXPECT_EQ(first->applied, entries.size());
  EXPECT_EQ(replica.last_applied_lsn(), entries.back().lsn);
  uint64_t epoch = replica.applied_epoch();
  EXPECT_EQ(epoch, entries.back().epoch);

  // A retried shipment (e.g. after a lost ack) applies nothing and moves
  // neither the LSN nor the epoch.
  Result<ReplicaNode::ApplyOutcome> again = replica.ApplyShipment(bytes);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->applied, 0u);
  EXPECT_EQ(replica.last_applied_lsn(), entries.back().lsn);
  EXPECT_EQ(replica.applied_epoch(), epoch);
  EXPECT_EQ(replica.counters().duplicate_entries.load(), entries.size());
}

TEST(ReplReplicaTest, GapIsRejectedWithoutApplying) {
  std::vector<CommitEntry> entries = CaptureEntries();
  // Drop the first entry: the shipment now starts at LSN 2 against a
  // fresh replica — an LSN gap, which must fail kOutOfRange (the replica
  // needs a bootstrap) without applying anything.
  std::vector<CommitEntry> gapped(entries.begin() + 1, entries.end());
  ReplicaNode replica("r1");
  Result<ReplicaNode::ApplyOutcome> out =
      replica.ApplyShipment(EncodeShipment(gapped));
  EXPECT_EQ(out.status().code(), StatusCode::kOutOfRange)
      << out.status().message();
  EXPECT_EQ(replica.last_applied_lsn(), 0u);
  EXPECT_EQ(replica.applied_epoch(), 0u);
}

TEST(ReplReplicaTest, EpochNeverMovesBackwards) {
  std::vector<CommitEntry> entries = CaptureEntries();
  ReplicaNode replica("r1");
  ASSERT_TRUE(replica.ApplyShipment(EncodeShipment(entries)).ok());
  uint64_t epoch = replica.applied_epoch();

  // A forged next entry carrying a stale epoch must be rejected as
  // corruption: epochs are strictly increasing along the LSN order.
  CommitEntry forged;
  forged.lsn = entries.back().lsn + 1;
  forged.epoch = epoch - 1;
  forged.records = entries.back().records;
  Result<ReplicaNode::ApplyOutcome> out =
      replica.ApplyShipment(EncodeShipment({forged}));
  EXPECT_TRUE(out.status().IsCorruption()) << out.status().message();
  EXPECT_EQ(replica.applied_epoch(), epoch);
}

// ---- Shipping & convergence ----

TEST(ReplShipTest, CommitsConvergeAcrossReplicas) {
  sim::Network net = MakeNet(2);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 2;
  ReplicationCoordinator coord(&primary, &net, opts);
  ReplicaNode* r1 = coord.AddReplica("r1");
  ReplicaNode* r2 = coord.AddReplica("r2");

  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, "
                  "NAME VARCHAR(32), W DOUBLE)");
  for (int i = 1; i <= 10; ++i) {
    MustExec(coord, "INSERT INTO T VALUES (" + std::to_string(i) +
                        ", 'row', 1.5)");
  }
  MustExec(coord, "DELETE FROM T WHERE ID = 3");
  MustExec(coord, "UPDATE T SET NAME = 'edited' WHERE ID = 7");

  EXPECT_EQ(coord.log().last_lsn(), 13u);
  EXPECT_EQ(r1->last_applied_lsn(), 13u);
  EXPECT_EQ(r2->last_applied_lsn(), 13u);
  EXPECT_EQ(r1->applied_epoch(), primary.commit_epoch());
  EXPECT_EQ(r2->applied_epoch(), primary.commit_epoch());
  std::string want = Dump(primary);
  EXPECT_EQ(Dump(r1->database()), want);
  EXPECT_EQ(Dump(r2->database()), want);
  // Shipping actually crossed the sim network.
  EXPECT_GT(net.LinkTraffic("db", "r1"), 0u);
  EXPECT_GT(net.LinkTraffic("db", "r2"), 0u);
}

TEST(ReplShipTest, ResumesFromReplicaLsnAfterLinkOutage) {
  sim::Network net = MakeNet(2);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 1;  // one live replica is enough to ack
  ReplicationCoordinator coord(&primary, &net, opts);
  ReplicaNode* r1 = coord.AddReplica("r1");
  ReplicaNode* r2 = coord.AddReplica("r2");

  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");
  MustExec(coord, "INSERT INTO T VALUES (1, 'a')");
  ASSERT_EQ(r1->last_applied_lsn(), 2u);

  // Cut db -> r1: commits keep acking through r2 while r1 falls behind.
  ASSERT_TRUE(net.SetLinkDown("db", "r1", true).ok());
  MustExec(coord, "INSERT INTO T VALUES (2, 'b')");
  MustExec(coord, "INSERT INTO T VALUES (3, 'c')");
  EXPECT_EQ(r1->last_applied_lsn(), 2u);
  EXPECT_EQ(r2->last_applied_lsn(), 4u);
  EXPECT_GT(coord.shipper().counters().failed_transfers.load(), 0u);

  // No successful-after-failure shipment has happened yet: the resume
  // counter only counts recoveries, not ordinary catch-up shipments.
  EXPECT_EQ(coord.shipper().counters().resumes.load(), 0u);

  // Link restored: the next ship resumes from r1's own LSN — it receives
  // exactly the two missed commits, not a full retransmission.
  ASSERT_TRUE(net.SetLinkDown("db", "r1", false).ok());
  uint64_t entries_before = coord.shipper().counters().entries_shipped.load();
  ASSERT_TRUE(coord.ShipAll().ok());
  EXPECT_EQ(r1->last_applied_lsn(), 4u);
  EXPECT_EQ(coord.shipper().counters().entries_shipped.load(),
            entries_before + 2);
  EXPECT_EQ(Dump(r1->database()), Dump(primary));
  // Exactly one resume: the first ship after r1's string of failures.
  EXPECT_EQ(coord.shipper().counters().resumes.load(), 1u);
  MustExec(coord, "INSERT INTO T VALUES (4, 'd')");
  EXPECT_EQ(coord.shipper().counters().resumes.load(), 1u);
}

TEST(ReplShipTest, TrimmedLogTriggersSnapshotBootstrap) {
  sim::Network net = MakeNet(1);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 0;
  ReplicationCoordinator coord(&primary, &net, opts);
  ReplicaNode* r1 = coord.AddReplica("r1");

  ASSERT_TRUE(net.SetLinkDown("db", "r1", true).ok());
  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");
  MustExec(coord, "INSERT INTO T VALUES (1, 'a')");
  MustExec(coord, "INSERT INTO T VALUES (2, 'b')");
  // The primary trims its shipping log past the replica's resume point
  // (e.g. to bound memory): resuming is impossible, bootstrap kicks in.
  coord.log().TrimThrough(2);
  ASSERT_TRUE(net.SetLinkDown("db", "r1", false).ok());
  ASSERT_TRUE(coord.ShipAll().ok());
  EXPECT_EQ(r1->last_applied_lsn(), 3u);
  EXPECT_EQ(r1->applied_epoch(), primary.commit_epoch());
  EXPECT_EQ(Dump(r1->database()), Dump(primary));
}

// ---- Routing & quorum ----

TEST(ReplRoutingTest, ReadsGoToCaughtUpReplicaWritesToPrimary) {
  sim::Network net = MakeNet(1);
  Database primary("PRIMARY");
  ReplicationCoordinator coord(&primary, &net, {});
  ReplicaNode* r1 = coord.AddReplica("r1");

  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");
  MustExec(coord, "INSERT INTO T VALUES (1, 'a')");
  EXPECT_EQ(coord.writes(), 2u);

  ReadTicket ticket = coord.RouteRead();
  EXPECT_TRUE(ticket.replica);
  EXPECT_EQ(ticket.node, "r1");
  EXPECT_EQ(ticket.epoch, r1->applied_epoch());

  Result<QueryResult> rows = coord.Execute("SELECT V FROM T WHERE ID = 1");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_GE(coord.reads_replica(), 2u);
  EXPECT_EQ(coord.reads_primary(), 0u);
  // The DML never touched the replica directly: it owns zero writes.
  EXPECT_EQ(r1->counters().entries_applied.load(), 2u);
}

TEST(ReplRoutingTest, LaggedReplicaFallsBackToPrimary) {
  sim::Network net = MakeNet(1);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 0;  // fire-and-forget so a cut link creates lag
  opts.max_read_lag_epochs = 1;
  ReplicationCoordinator coord(&primary, &net, opts);
  ReplicaNode* r1 = coord.AddReplica("r1");

  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");
  ASSERT_TRUE(net.SetLinkDown("db", "r1", true).ok());
  MustExec(coord, "INSERT INTO T VALUES (1, 'a')");
  // One epoch behind: still inside the staleness bound, replica serves.
  EXPECT_TRUE(coord.RouteRead().replica);
  MustExec(coord, "INSERT INTO T VALUES (2, 'b')");
  // Two epochs behind: outside the bound, reads fall back to the primary.
  ReadTicket ticket = coord.RouteRead();
  EXPECT_FALSE(ticket.replica);
  EXPECT_EQ(ticket.node, "db");
  EXPECT_EQ(ticket.epoch, primary.commit_epoch());
  // Caught up again: replica resumes serving.
  ASSERT_TRUE(net.SetLinkDown("db", "r1", false).ok());
  ASSERT_TRUE(coord.ShipAll().ok());
  EXPECT_TRUE(coord.RouteRead().replica);
  EXPECT_EQ(r1->last_applied_lsn(), 3u);
}

TEST(ReplRoutingTest, CommitBelowQuorumIsNotAcked) {
  sim::Network net = MakeNet(1);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 1;
  ReplicationCoordinator coord(&primary, &net, opts);
  coord.AddReplica("r1");

  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");
  ASSERT_TRUE(net.SetLinkDown("db", "r1", true).ok());
  Result<QueryResult> r = coord.Execute("INSERT INTO T VALUES (1, 'a')");
  // Durable on the primary but unacked: kAborted, not kUnavailable — the
  // statement DID apply once, so a blind retry would double-apply it. The
  // message carries the committed LSN for idempotent de-duplication.
  EXPECT_EQ(r.status().code(), StatusCode::kAborted)
      << r.status().message();
  EXPECT_NE(std::string(r.status().message()).find("lsn 2"),
            std::string::npos)
      << r.status().message();
  EXPECT_EQ(coord.quorum_failures(), 1u);
  EXPECT_EQ(coord.log().last_lsn(), 2u);

  // Reads that still route to the primary DO see the unacked row — the
  // primary committed it; only the ack was withheld.
  Result<QueryResult> rows = coord.Execute("SELECT * FROM T");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);
}

// ---- Failover ----

TEST(ReplFailoverTest, PromotesMostCaughtUpReplica) {
  sim::Network net = MakeNet(2);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 1;
  opts.heartbeat_timeout_seconds = 5.0;
  ReplicationCoordinator coord(&primary, &net, opts);
  ReplicaNode* r1 = coord.AddReplica("r1");
  ReplicaNode* r2 = coord.AddReplica("r2");

  coord.Heartbeat();
  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");
  MustExec(coord, "INSERT INTO T VALUES (1, 'a')");
  // r2 loses its link; r1 keeps acking two more commits and ends ahead.
  ASSERT_TRUE(net.SetLinkDown("db", "r2", true).ok());
  MustExec(coord, "INSERT INTO T VALUES (2, 'b')");
  MustExec(coord, "INSERT INTO T VALUES (3, 'c')");
  ASSERT_GT(r1->last_applied_lsn(), r2->last_applied_lsn());
  std::string acked_state = Dump(r1->database());

  // While the primary is live, failover refuses.
  EXPECT_EQ(coord.MaybeFailover().status().code(),
            StatusCode::kFailedPrecondition);

  // Silence past the timeout: primary presumed dead, r1 (max LSN) wins.
  net.clock().Advance(opts.heartbeat_timeout_seconds + 1);
  EXPECT_TRUE(coord.PrimaryDown());
  Result<std::string> promoted = coord.MaybeFailover();
  ASSERT_TRUE(promoted.ok()) << promoted.status().message();
  EXPECT_EQ(*promoted, "r1");
  EXPECT_EQ(coord.failovers(), 1u);
  EXPECT_EQ(coord.primary_host(), "r1");
  // Promotion itself changes no data: the new primary is exactly the
  // acked state.
  EXPECT_EQ(Dump(*coord.primary()), acked_state);
  // The promoted node left the read-replica set.
  std::vector<ReplicaInfo> info = coord.replica_info();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_EQ(info[0].host, "r2");

  // Writes now land on r1 and ship to r2 over r1 -> r2 links; the pair
  // reconverges even though r2 missed commits from the dead primary.
  ASSERT_TRUE(net.SetLinkDown("db", "r2", false).ok());
  MustExec(coord, "INSERT INTO T VALUES (4, 'd')");
  EXPECT_EQ(Dump(r2->database()), Dump(*coord.primary()));
  EXPECT_EQ(r2->applied_epoch(), coord.primary()->commit_epoch());
  EXPECT_GT(net.LinkTraffic("r1", "r2"), 0u);
}

TEST(ReplFailoverTest, ReadsDegradeToReplicaWhilePrimaryDown) {
  sim::Network net = MakeNet(1);
  Database primary("PRIMARY");
  ReplicationCoordinator coord(&primary, &net, {});
  coord.AddReplica("r1");
  coord.Heartbeat();
  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");

  net.clock().Advance(6.0);
  ASSERT_TRUE(coord.PrimaryDown());
  // Reads survive the failover window on the most caught-up replica...
  EXPECT_TRUE(coord.RouteRead().replica);
  // ...while writes are refused until a failover re-targets them.
  Result<QueryResult> w = coord.Execute("INSERT INTO T VALUES (1, 'a')");
  EXPECT_EQ(w.status().code(), StatusCode::kUnavailable);
}

TEST(ReplFailoverTest, RefusesLossyPromotionWhileQuorumHolderDown) {
  sim::Network net = MakeNet(2);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 1;
  opts.heartbeat_timeout_seconds = 5.0;
  ReplicationCoordinator coord(&primary, &net, opts);
  ReplicaNode* r1 = coord.AddReplica("r1");
  ReplicaNode* r2 = coord.AddReplica("r2");

  coord.Heartbeat();
  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");
  MustExec(coord, "INSERT INTO T VALUES (1, 'alpha')");
  // With ack_quorum = 1 the commit below is acked solely through r1.
  ASSERT_TRUE(net.SetLinkDown("db", "r2", true).ok());
  MustExec(coord, "INSERT INTO T VALUES (2, 'bravo')");
  ASSERT_EQ(r1->last_applied_lsn(), 3u);
  ASSERT_EQ(r2->last_applied_lsn(), 2u);

  // r1 crashes, then the primary: the only live candidate (r2) lacks an
  // acked commit that r1 — down, and reaching the quorum bound on its
  // own — may be the sole surviving holder of. Promotion must refuse,
  // not silently discard it.
  r1->set_down(true);
  ASSERT_TRUE(net.SetLinkDown("db", "r2", false).ok());
  net.clock().Advance(opts.heartbeat_timeout_seconds + 1);
  Result<std::string> promoted = coord.MaybeFailover();
  EXPECT_EQ(promoted.status().code(), StatusCode::kFailedPrecondition)
      << (promoted.ok() ? *promoted : promoted.status().message());
  EXPECT_EQ(coord.failovers_refused(), 1u);
  EXPECT_EQ(coord.failovers(), 0u);

  // The holder recovers: promotion proceeds, picks it, and the acked
  // commit survives the failover.
  r1->set_down(false);
  promoted = coord.MaybeFailover();
  ASSERT_TRUE(promoted.ok()) << promoted.status().message();
  EXPECT_EQ(*promoted, "r1");
  EXPECT_EQ(coord.failovers(), 1u);
  EXPECT_EQ(coord.lossy_failovers(), 0u);
  EXPECT_NE(Dump(*coord.primary()).find("bravo"), std::string::npos);
}

TEST(ReplFailoverTest, DivergedReplicaIsFencedAndBootstrapped) {
  sim::Network net = MakeNet(2);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 1;
  opts.heartbeat_timeout_seconds = 5.0;
  // The reviewer scenario: the operator forces promotion although the
  // most caught-up replica is down, so its log tail diverges.
  opts.allow_lossy_failover = true;
  ReplicationCoordinator coord(&primary, &net, opts);
  ReplicaNode* r1 = coord.AddReplica("r1");
  ReplicaNode* r2 = coord.AddReplica("r2");

  coord.Heartbeat();
  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");
  MustExec(coord, "INSERT INTO T VALUES (1, 'alpha')");
  // r1 alone applies two more commits, then goes down; the primary dies.
  ASSERT_TRUE(net.SetLinkDown("db", "r2", true).ok());
  MustExec(coord, "INSERT INTO T VALUES (2, 'bravo')");
  MustExec(coord, "INSERT INTO T VALUES (3, 'charlie')");
  ASSERT_EQ(r1->last_applied_lsn(), 4u);
  ASSERT_EQ(r2->last_applied_lsn(), 2u);
  r1->set_down(true);
  ASSERT_TRUE(net.SetLinkDown("db", "r2", false).ok());
  net.clock().Advance(opts.heartbeat_timeout_seconds + 1);
  Result<std::string> promoted = coord.MaybeFailover();
  ASSERT_TRUE(promoted.ok()) << promoted.status().message();
  EXPECT_EQ(*promoted, "r2");
  EXPECT_EQ(coord.lossy_failovers(), 1u);
  EXPECT_EQ(coord.log().current_term(), 2u);
  uint64_t old_epoch = r1->applied_epoch();

  // The new timeline re-uses the LSNs r1 still holds from the dead one.
  // The sole remaining replica (r1) is down, so these commit on the new
  // primary but miss the quorum: kAborted, durable-but-unacked.
  for (const char* sql : {"INSERT INTO T VALUES (7, 'xray')",
                          "INSERT INTO T VALUES (8, 'yankee')"}) {
    Result<QueryResult> w = coord.Execute(sql);
    EXPECT_EQ(w.status().code(), StatusCode::kAborted)
        << sql << ": " << w.status().message();
  }

  // r1 returns carrying rows 2 and 3 at (term 1, lsn 4) — data the
  // cluster discarded. Reads must not route to it: it has not crossed
  // the failover barrier (term mismatch), even though its epoch alone
  // looks plausibly fresh.
  r1->set_down(false);
  ASSERT_EQ(r1->term(), 1u);
  ReadTicket ticket = coord.RouteRead();
  EXPECT_FALSE(ticket.replica) << "stale-timeline replica served a read";

  // Shipping fences it — LSN 4 lies past term 1's end in the shipped
  // term history, so entries are NOT skipped as duplicates; the replica
  // rejects kOutOfRange and the coordinator re-seeds it by snapshot.
  ASSERT_TRUE(coord.ShipAll().ok());
  EXPECT_GT(r1->counters().diverged_rejects.load(), 0u);
  EXPECT_EQ(r1->term(), 2u);
  std::string want = Dump(*coord.primary());
  EXPECT_EQ(Dump(r1->database()), want);
  // The discarded old-timeline rows are gone, the new ones present...
  EXPECT_EQ(want.find("bravo"), std::string::npos);
  EXPECT_NE(want.find("xray"), std::string::npos);
  // ...and the epoch barrier kept epochs unique: the bootstrapped
  // replica sits at the new primary's epoch, above the dead timeline's.
  EXPECT_EQ(r1->applied_epoch(), coord.primary()->commit_epoch());
  EXPECT_GT(r1->applied_epoch(), old_epoch);
  // Once re-seeded onto the current term, it serves reads again.
  EXPECT_TRUE(coord.RouteRead().replica);
}

// ---- Metrics ----

TEST(ReplMetricsTest, FamiliesExposeLagAndCounters) {
  sim::Network net = MakeNet(1);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 0;
  ReplicationCoordinator coord(&primary, &net, opts);
  coord.AddReplica("r1");
  obs::MetricsRegistry metrics;
  coord.RegisterMetrics(&metrics);

  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");
  ASSERT_TRUE(net.SetLinkDown("db", "r1", true).ok());
  MustExec(coord, "INSERT INTO T VALUES (1, 'a')");

  // Exact name + label-set keys, not substring probes: a renamed label
  // or a stray extra series in the per-replica families must fail here.
  std::vector<obs::MetricSample> samples = metrics.Collect();
  auto series_of = [&](const std::string& name) {
    std::vector<std::pair<obs::Labels, double>> out;
    for (const obs::MetricSample& s : samples) {
      if (s.name == name) out.emplace_back(s.labels, s.value);
    }
    return out;
  };
  using Series = std::vector<std::pair<obs::Labels, double>>;
  EXPECT_EQ(series_of("easia_repl_replica_lag_epochs"),
            (Series{{{{"replica", "r1"}}, 1.0}}));
  EXPECT_EQ(series_of("easia_repl_replica_applied_lsn"),
            (Series{{{{"replica", "r1"}}, 1.0}}));
  EXPECT_EQ(series_of("easia_repl_writes_total"), (Series{{{}, 2.0}}));
  Series shipments = series_of("easia_repl_shipments_total");
  ASSERT_EQ(shipments.size(), 1u);
  EXPECT_TRUE(shipments[0].first.empty());
  // And the rendered exposition carries the same exact series.
  std::string text = metrics.RenderPrometheusText();
  EXPECT_NE(text.find("easia_repl_replica_lag_epochs{replica=\"r1\"} 1"),
            std::string::npos)
      << text;
}

// ---- Web integration: replica reads & cache epoch validation ----

TEST(ReplWebTest, BrowsePagesValidateAgainstServingNodeEpoch) {
  sim::Network net = MakeNet(1);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 0;        // let the link cut create replica lag
  opts.max_read_lag_epochs = 8;  // stale-bounded: lagging replica serves
  ReplicationCoordinator coord(&primary, &net, opts);
  ReplicaNode* r1 = coord.AddReplica("r1");

  MustExec(coord, "CREATE TABLE STAR (ID INTEGER PRIMARY KEY, "
                  "NAME VARCHAR(32))");
  MustExec(coord, "INSERT INTO STAR VALUES (1, 'vega')");

  Result<xuis::XuisSpec> spec = xuis::GenerateDefaultXuis(primary);
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  xuis::XuisRegistry registry;
  registry.SetDefault(*spec);
  web::UserManager users;
  ManualClock clock(0);
  web::SessionManager sessions(&users, &clock);
  web::RenderCache cache;

  web::ArchiveWebServer::Deps deps;
  deps.database = &primary;
  deps.xuis = &registry;
  deps.users = &users;
  deps.sessions = &sessions;
  deps.cache = &cache;
  deps.repl = &coord;
  web::ArchiveWebServer server(deps);

  web::HttpRequest login;
  login.path = "/login";
  login.params = {{"user", "guest"}, {"password", "guest"}};
  web::HttpResponse resp = server.Handle(login);
  ASSERT_EQ(resp.status, 200) << resp.body;
  web::HttpRequest browse;
  browse.path = "/browse";
  browse.params = {{"table", "STAR"}, {"column", "ID"}, {"value", "1"}};
  browse.session_id = resp.body;

  // First hit renders on the caught-up replica and caches under ITS epoch.
  uint64_t replica_reads = coord.reads_replica();
  resp = server.Handle(browse);
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("vega"), std::string::npos);
  EXPECT_GT(coord.reads_replica(), replica_reads);
  EXPECT_EQ(coord.reads_primary(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // A write the replica has NOT applied (link cut): the replica still
  // serves within the lag bound, and the cached page stays VALID — its
  // epoch matches the serving replica's state, which genuinely has not
  // changed. Validating against the primary's epoch here would wrongly
  // drop the entry (and, after catch-up, wrongly keep a stale one).
  ASSERT_TRUE(net.SetLinkDown("db", "r1", true).ok());
  MustExec(coord, "UPDATE STAR SET NAME = 'altair' WHERE ID = 1");
  ASSERT_LT(r1->applied_epoch(), primary.commit_epoch());
  resp = server.Handle(browse);
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("vega"), std::string::npos);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().invalidations, 0u);

  // Catch-up advances the replica's epoch, which invalidates the page;
  // the re-render shows the new row from the replica.
  ASSERT_TRUE(net.SetLinkDown("db", "r1", false).ok());
  ASSERT_TRUE(coord.ShipAll().ok());
  ASSERT_EQ(r1->applied_epoch(), primary.commit_epoch());
  resp = server.Handle(browse);
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("altair"), std::string::npos);
  EXPECT_EQ(resp.body.find("vega"), std::string::npos);
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // /stats shows the replication table to operators.
  web::HttpRequest stats;
  stats.path = "/stats";
  stats.session_id = browse.session_id;
  resp = server.Handle(stats);
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("replication: primary db"), std::string::npos);
  EXPECT_NE(resp.body.find("r1"), std::string::npos);
}

// ---- Concurrency (tsan label): readers race one writer ----

TEST(ReplConcurrencyTest, ConcurrentReadsDuringWritesStayConsistent) {
  sim::Network net = MakeNet(2);
  Database primary("PRIMARY");
  CoordinatorOptions opts;
  opts.ack_quorum = 2;
  ReplicationCoordinator coord(&primary, &net, opts);
  coord.AddReplica("r1");
  ReplicaNode* r2 = coord.AddReplica("r2");
  obs::MetricsRegistry metrics;
  coord.RegisterMetrics(&metrics);

  MustExec(coord, "CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8))");
  constexpr int kRows = 40;

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::atomic<uint64_t> reads{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        Result<QueryResult> rows = coord.Execute("SELECT * FROM T");
        // Replicas apply whole commits, so a read sees 0..kRows complete
        // rows — never a torn row.
        ASSERT_TRUE(rows.ok()) << rows.status().message();
        ASSERT_LE(rows->rows.size(), static_cast<size_t>(kRows));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)metrics.RenderPrometheusText();
    }
  });
  for (int i = 1; i <= kRows; ++i) {
    MustExec(coord, "INSERT INTO T VALUES (" + std::to_string(i) + ", 'x')");
    coord.Heartbeat();
  }
  // On a single core the writer can finish before any reader is ever
  // scheduled; hold the readers open until at least one read completed so
  // the overlap the test exists for actually happens.
  while (reads.load(std::memory_order_relaxed) == 0) std::this_thread::yield();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  sampler.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(r2->last_applied_lsn(), static_cast<uint64_t>(kRows) + 1);
  EXPECT_EQ(Dump(r2->database()), Dump(primary));
}

}  // namespace
}  // namespace easia::db::repl
