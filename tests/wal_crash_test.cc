#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/random.h"
#include "testing/crash_harness.h"

namespace easia::testing {
namespace {

/// Iteration scaling: EASIA_FUZZ_ITERS overrides the default count so CI
/// can dial crash coverage up (soak runs) or down without editing tests.
int FuzzIters(int default_iters) {
  const char* env = std::getenv("EASIA_FUZZ_ITERS");
  if (env == nullptr) return default_iters;
  int parsed = std::atoi(env);
  return parsed > 0 ? parsed : default_iters;
}

std::string Describe(const CrashReport& report) {
  std::string out;
  for (const std::string& v : report.violations) {
    out += v;
    out += "\n";
  }
  return out;
}

/// Crash at every byte boundary of the log: for a small workload, every
/// prefix of the WAL stream is a recovery start state. No prefix may apply
/// a torn record or lose an acknowledged commit.
TEST(WalCrashTest, EveryByteBoundarySurvivesRecovery) {
  WalCrashOptions probe;
  probe.seed = 42;
  probe.statements = 6;
  probe.crash_after_bytes = -1;
  CrashReport full = RunWalCrashCase(probe);
  ASSERT_TRUE(full.Clean()) << Describe(full);
  ASSERT_FALSE(full.crashed);
  ASSERT_GT(full.wal_bytes, 0u);

  for (uint64_t boundary = 0; boundary <= full.wal_bytes; ++boundary) {
    WalCrashOptions options = probe;
    options.crash_after_bytes = static_cast<int64_t>(boundary);
    CrashReport report = RunWalCrashCase(options);
    EXPECT_TRUE(report.Clean())
        << "crash at byte " << boundary << " of " << full.wal_bytes << ":\n"
        << Describe(report);
    if (!report.Clean()) break;
    // Interior boundaries must actually crash (sanity on the fault seam).
    if (boundary < full.wal_bytes) EXPECT_TRUE(report.crashed);
  }
}

/// 200 seeded runs: random workloads, random crash points, cycling through
/// all three survival models (write-through, fsync-only, torn tail).
TEST(WalCrashTest, SeededCrashPointsNeverViolateDurability) {
  const int iters = FuzzIters(200);
  Random rng(0xC4A5);
  const CrashSurvival kModes[] = {CrashSurvival::kAll,
                                  CrashSurvival::kSyncedOnly,
                                  CrashSurvival::kRandomTail};
  for (int i = 0; i < iters; ++i) {
    WalCrashOptions options;
    options.seed = rng.Next();
    options.statements = 10 + static_cast<int>(rng.Uniform(20));
    options.survival = kModes[i % 3];

    WalCrashOptions probe = options;
    probe.crash_after_bytes = -1;
    CrashReport full = RunWalCrashCase(probe);
    ASSERT_TRUE(full.Clean()) << "iter " << i << " (uncrashed run):\n"
                              << Describe(full);
    ASSERT_GT(full.wal_bytes, 0u);

    options.crash_after_bytes =
        static_cast<int64_t>(rng.Uniform(full.wal_bytes + 1));
    CrashReport report = RunWalCrashCase(options);
    EXPECT_TRUE(report.Clean())
        << "iter " << i << " seed " << options.seed << " crash_after_bytes "
        << options.crash_after_bytes << " survival " << (i % 3) << ":\n"
        << Describe(report);
    if (!report.Clean()) break;
  }
}

/// A run that never reaches its crash point recovers to exactly the full
/// acked workload (the differential check also covers the happy path).
TEST(WalCrashTest, UncrashedRunRecoversAllAckedStatements) {
  WalCrashOptions options;
  options.seed = 7;
  options.statements = 20;
  options.crash_after_bytes = -1;
  CrashReport report = RunWalCrashCase(options);
  EXPECT_TRUE(report.Clean()) << Describe(report);
  EXPECT_FALSE(report.crashed);
  EXPECT_EQ(report.acked, 21u);  // CREATE TABLE + 20 DML statements
}

}  // namespace
}  // namespace easia::testing
