#include "testing/fault_injection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/io.h"
#include "db/database.h"
#include "db/wal.h"
#include "fileserver/file_server.h"
#include "jobs/journal.h"

namespace easia::testing {
namespace {

// --- FaultyEnv semantics ---------------------------------------------------

TEST(FaultyEnvTest, AppendSyncReadRoundTrip) {
  FaultyEnv env(FaultPlan{});
  auto file = env.OpenAppend("/log");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("hello ").ok());
  EXPECT_TRUE((*file)->Append("world").ok());
  EXPECT_TRUE((*file)->Sync().ok());
  auto contents = env.ReadFileToString("/log");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");
  EXPECT_TRUE(env.FileExists("/log"));
  EXPECT_FALSE(env.FileExists("/nope"));
}

TEST(FaultyEnvTest, SyncedOnlySurvivalDropsUnsyncedTail) {
  FaultPlan plan;
  plan.survival = CrashSurvival::kSyncedOnly;
  FaultyEnv env(plan);
  auto file = env.OpenAppend("/log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("-volatile").ok());
  auto durable = env.DurableContents("/log");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, "durable");
  env.Reopen();
  auto survived = env.ReadFileToString("/log");
  ASSERT_TRUE(survived.ok());
  EXPECT_EQ(*survived, "durable");
}

TEST(FaultyEnvTest, CrashPersistsExactPrefixThenFailsEverything) {
  FaultPlan plan;
  plan.crash_after_bytes = 4;
  FaultyEnv env(plan);
  auto file = env.OpenAppend("/log");
  ASSERT_TRUE(file.ok());
  Status s = (*file)->Append("abcdefgh");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(env.crashed());
  // Everything fails until the environment is reopened.
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE(env.ReadFileToString("/log").ok());
  EXPECT_FALSE(env.WriteFileAtomic("/other", "x").ok());
  env.Reopen();
  EXPECT_FALSE(env.crashed());
  auto survived = env.ReadFileToString("/log");
  ASSERT_TRUE(survived.ok());
  EXPECT_EQ(*survived, "abcd");  // exactly crash_after_bytes bytes
  // The trigger is disarmed after Reopen: appends work again.
  auto file2 = env.OpenAppend("/log");
  ASSERT_TRUE(file2.ok());
  EXPECT_TRUE((*file2)->Append("more").ok());
}

TEST(FaultyEnvTest, CrashFilterOnlyCountsMatchingPaths) {
  FaultPlan plan;
  plan.crash_after_bytes = 4;
  plan.crash_path_filter = "/wal";
  FaultyEnv env(plan);
  auto other = env.OpenAppend("/elsewhere");
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE((*other)->Append("lots of bytes, not counted").ok());
  auto wal = env.OpenAppend("/db/wal");
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE((*wal)->Append("abcdefgh").ok());
  EXPECT_TRUE(env.crashed());
}

TEST(FaultyEnvTest, WriteFileAtomicIsAllOrNothingAtCrash) {
  FaultPlan plan;
  plan.crash_after_bytes = 4;
  FaultyEnv env(plan);
  ASSERT_TRUE(env.WriteFileAtomic("/snap", "old").ok());  // 3 bytes counted
  EXPECT_FALSE(env.WriteFileAtomic("/snap", "new-contents").ok());
  env.Reopen();
  auto contents = env.ReadFileToString("/snap");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "old");  // never a prefix of the new image
}

TEST(FaultyEnvTest, FlipBitAndTruncateCorruptTheImage) {
  FaultyEnv env(FaultPlan{});
  ASSERT_TRUE(env.WriteFileAtomic("/f", std::string("AAAA")).ok());
  env.FlipBit("/f", 1, 0);
  auto contents = env.ReadFileToString("/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ((*contents)[1], 'A' ^ 1);
  env.TruncateTo("/f", 2);
  contents = env.ReadFileToString("/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 2u);
}

// --- fsync failure propagation (regression) --------------------------------

// WalWriter::Sync must propagate an fsync failure as a Status instead of
// silently reporting durability that does not exist.
TEST(FsyncPropagationTest, WalSyncReturnsErrorStatus) {
  FaultyEnv env(FaultPlan{});
  auto wal = db::WalWriter::Open(&env, "/db/wal");
  ASSERT_TRUE(wal.ok());
  db::WalRecord rec;
  rec.type = db::WalRecordType::kBegin;
  rec.txn_id = 1;
  ASSERT_TRUE(wal->Append(rec).ok());
  env.FailNextFsyncs(1);
  Status s = wal->Sync();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(wal->Sync().ok());  // transient: next sync succeeds
}

// A commit that cannot make its WAL durable must fail the statement rather
// than acknowledge a commit that would be lost by a crash.
TEST(FsyncPropagationTest, CommitFailsWhenWalSyncFails) {
  FaultyEnv env(FaultPlan{});
  db::DatabaseOptions opts;
  opts.wal_path = "/db/wal";
  opts.sync_on_commit = true;
  opts.env = &env;
  db::Database db("T", opts);
  ASSERT_TRUE(db.Recover().ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE T (ID INTEGER)").ok());
  env.FailNextFsyncs(1);
  auto r = db.Execute("INSERT INTO T VALUES (1)");
  EXPECT_FALSE(r.ok());
  // The failed statement rolled back: the row is not visible either.
  auto q = db.Execute("SELECT * FROM T");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->rows.empty());
}

// JobJournal::Append syncs each event; an fsync failure must surface.
TEST(FsyncPropagationTest, JobJournalAppendReturnsErrorStatus) {
  FaultyEnv env(FaultPlan{});
  auto journal = jobs::JobJournal::Open(&env, "/jobs/journal");
  ASSERT_TRUE(journal.ok());
  jobs::JobEvent event;
  event.job_id = 1;
  event.state = jobs::JobState::kSubmitted;
  ASSERT_TRUE(journal->Append(event).ok());
  env.FailNextFsyncs(1);
  EXPECT_FALSE(journal->Append(event).ok());
  EXPECT_TRUE(journal->Append(event).ok());
}

// --- FaultInjectingVfs + FileServer retry ----------------------------------

TEST(FileServerRetryTest, TransientReadErrorsAreRetried) {
  fs::FileServer server("fs1");
  ASSERT_TRUE(server.vfs().WriteFile("/d/a.tbf", "payload").ok());
  FaultInjectingVfs faulty(&server.vfs(), /*seed=*/7);
  server.InterposeVfs(&faulty);
  fs::RetryPolicy policy;
  policy.max_attempts = 4;
  std::vector<double> delays;
  policy.on_backoff = [&](int attempt, double delay) {
    (void)attempt;
    delays.push_back(delay);
  };
  server.set_retry_policy(policy);

  faulty.FailNextOps(2);
  auto response = server.Get("/d/a.tbf");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->content, "payload");
  EXPECT_EQ(server.retry_stats().retries, 2u);
  EXPECT_EQ(server.retry_stats().give_ups, 0u);
  // Advisory exponential backoff was reported for each retry.
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_GT(delays[1], delays[0]);
  server.InterposeVfs(nullptr);
}

TEST(FileServerRetryTest, PersistentErrorsGiveUpAfterBudget) {
  fs::FileServer server("fs1");
  ASSERT_TRUE(server.vfs().WriteFile("/d/a.tbf", "payload").ok());
  FaultInjectingVfs faulty(&server.vfs(), /*seed=*/7);
  server.InterposeVfs(&faulty);
  fs::RetryPolicy policy;
  policy.max_attempts = 3;
  server.set_retry_policy(policy);

  faulty.FailNextOps(100);
  auto response = server.Get("/d/a.tbf");
  EXPECT_FALSE(response.ok());
  EXPECT_GE(server.retry_stats().give_ups, 1u);
  EXPECT_GE(faulty.faults_injected(), 3u);
  server.InterposeVfs(nullptr);
}

TEST(FileServerRetryTest, PutRetriesTransientWriteErrors) {
  fs::FileServer server("fs1");
  FaultInjectingVfs faulty(&server.vfs(), /*seed=*/11);
  server.InterposeVfs(&faulty);
  fs::RetryPolicy policy;
  policy.max_attempts = 4;
  server.set_retry_policy(policy);

  faulty.FailNextOps(2);
  Status put = server.Put("/d/new.tbf", "bytes", "user");
  EXPECT_TRUE(put.ok()) << put.ToString();
  server.InterposeVfs(nullptr);
  EXPECT_TRUE(server.vfs().Exists("/d/new.tbf"));
}

}  // namespace
}  // namespace easia::testing
