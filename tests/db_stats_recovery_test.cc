// Regression tests for cumulative-counter recovery: /metrics counter
// families must never go backwards across checkpoint/restart, snapshot
// round-trips or WAL replay. V2 snapshots carry DatabaseStats; V1
// snapshots still load (counters start at zero); TokenManager counters
// are documented process-local and reset by design.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "common/coding.h"
#include "db/database.h"
#include "db/table.h"
#include "med/token.h"

namespace easia::db {
namespace {

class DbStatsRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("easia_stats_recovery_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DatabaseOptions Options() {
    DatabaseOptions opts;
    opts.wal_path = (dir_ / "wal.log").string();
    opts.snapshot_path = (dir_ / "snapshot.db").string();
    return opts;
  }

  void RunWorkload(Database* db) {
    ASSERT_TRUE(db->Execute("CREATE TABLE T (ID INTEGER PRIMARY KEY, "
                            "NAME VARCHAR(32))")
                    .ok());
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE(db->Execute("INSERT INTO T VALUES (" + std::to_string(i) +
                              ", 'row" + std::to_string(i) + "')")
                      .ok());
    }
    ASSERT_TRUE(
        db->Execute("UPDATE T SET NAME = 'changed' WHERE ID = 2").ok());
    ASSERT_TRUE(db->Execute("DELETE FROM T WHERE ID = 5").ok());
    ASSERT_TRUE(db->Execute("SELECT * FROM T").ok());
  }

  std::filesystem::path dir_;
};

TEST_F(DbStatsRecoveryTest, CountersSurviveCheckpointAndRestart) {
  DatabaseStats before;
  {
    Database db("STATS", Options());
    ASSERT_TRUE(db.Recover().ok());
    RunWorkload(&db);
    ASSERT_TRUE(db.Checkpoint().ok());
    before = db.stats();
  }
  EXPECT_EQ(before.rows_inserted, 5u);
  EXPECT_EQ(before.rows_updated, 1u);
  EXPECT_EQ(before.rows_deleted, 1u);

  Database restarted("STATS", Options());
  ASSERT_TRUE(restarted.Recover().ok());
  DatabaseStats after = restarted.stats();
  // The checkpoint snapshot carried every counter; nothing resets.
  EXPECT_EQ(after.statements, before.statements);
  EXPECT_EQ(after.queries, before.queries);
  EXPECT_EQ(after.rows_inserted, before.rows_inserted);
  EXPECT_EQ(after.rows_updated, before.rows_updated);
  EXPECT_EQ(after.rows_deleted, before.rows_deleted);
  EXPECT_EQ(after.txn_commits, before.txn_commits);
  EXPECT_EQ(after.txn_aborts, before.txn_aborts);
}

TEST_F(DbStatsRecoveryTest, WalReplayAdvancesCountersPastCheckpoint) {
  DatabaseStats at_crash;
  {
    Database db("STATS", Options());
    ASSERT_TRUE(db.Recover().ok());
    RunWorkload(&db);
    ASSERT_TRUE(db.Checkpoint().ok());
    // Post-checkpoint work lives only in the WAL.
    ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (10, 'late')").ok());
    ASSERT_TRUE(db.Execute("DELETE FROM T WHERE ID = 1").ok());
    at_crash = db.stats();
  }  // "crash": no second checkpoint

  Database recovered("STATS", Options());
  ASSERT_TRUE(recovered.Recover().ok());
  DatabaseStats after = recovered.stats();
  // Replayed DML counts like live DML: the row counters and commit count
  // match the pre-crash values exactly, so a /metrics scrape after
  // recovery never reads lower than one before the crash.
  EXPECT_EQ(after.rows_inserted, at_crash.rows_inserted);
  EXPECT_EQ(after.rows_updated, at_crash.rows_updated);
  EXPECT_EQ(after.rows_deleted, at_crash.rows_deleted);
  EXPECT_EQ(after.txn_commits, at_crash.txn_commits);
  // Statement/query counters are snapshot-carried but not WAL-replayed
  // (reads never hit the log); they restart from the checkpoint value.
  EXPECT_GE(at_crash.statements, after.statements);
  EXPECT_GE(after.statements, 8u);  // the pre-checkpoint workload
}

TEST_F(DbStatsRecoveryTest, SnapshotRoundTripIsMonotonic) {
  Database db("STATS");
  RunWorkload(&db);
  DatabaseStats before = db.stats();
  std::string image = db.SerializeSnapshot();

  // Into a fresh database: counters restore exactly.
  Database fresh("COPY");
  ASSERT_TRUE(fresh.LoadSnapshotFromString(image).ok());
  DatabaseStats copy = fresh.stats();
  EXPECT_EQ(copy.rows_inserted, before.rows_inserted);
  EXPECT_EQ(copy.txn_commits, before.txn_commits);

  // Back into the live database after more work (the backup-restore
  // path): max(current, persisted) keeps every counter monotonic even
  // though the data rolls back.
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (20, 'post-backup')").ok());
  DatabaseStats advanced = db.stats();
  ASSERT_TRUE(db.LoadSnapshotFromString(image).ok());
  DatabaseStats restored = db.stats();
  EXPECT_GE(restored.rows_inserted, advanced.rows_inserted);
  EXPECT_GE(restored.txn_commits, advanced.txn_commits);
  EXPECT_GE(restored.statements, advanced.statements);
  // The data itself did roll back (the restore is about state, the
  // counters are about history).
  auto rows = db.Execute("SELECT * FROM T WHERE ID = 20");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->rows.empty());
}

TEST_F(DbStatsRecoveryTest, V1SnapshotsStillLoad) {
  Database db("STATS");
  RunWorkload(&db);
  std::string v4 = db.SerializeSnapshot();
  ASSERT_EQ(v4.substr(0, 10), "EASIASNAP4");

  // Reconstruct the V1 layout by transcoding: V4 prepends an 8*8-byte
  // counter block to the body and appends a length-prefixed planner-stats
  // block after each table's rows; V1 has neither. Rows re-encode
  // byte-identically, so dropping those two additions yields a V1 body.
  Decoder dec(std::string_view(v4).substr(10 + 8 * 8,
                                          v4.size() - 10 - 8 * 8 - 4));
  std::string body;
  auto table_count = dec.GetU32();
  ASSERT_TRUE(table_count.ok());
  PutU32(&body, *table_count);
  for (uint32_t t = 0; t < *table_count; ++t) {
    auto def_sql = dec.GetLengthPrefixed();
    ASSERT_TRUE(def_sql.ok());
    PutLengthPrefixed(&body, *def_sql);
    auto next_row_id = dec.GetU64();
    ASSERT_TRUE(next_row_id.ok());
    PutU64(&body, *next_row_id);
    auto row_count = dec.GetU32();
    ASSERT_TRUE(row_count.ok());
    PutU32(&body, *row_count);
    for (uint32_t r = 0; r < *row_count; ++r) {
      auto id = dec.GetU64();
      ASSERT_TRUE(id.ok());
      PutU64(&body, *id);
      auto row = DecodeRow(&dec);
      ASSERT_TRUE(row.ok());
      EncodeRow(&body, *row);
    }
    ASSERT_TRUE(dec.GetLengthPrefixed().ok());  // drop the V4 stats block
  }
  ASSERT_TRUE(dec.Done());
  std::string v1 = "EASIASNAP1" + body;
  uint32_t crc = Crc32(body);
  for (int shift = 0; shift < 32; shift += 8) {
    v1 += static_cast<char>((crc >> shift) & 0xff);
  }

  Database old("OLD");
  ASSERT_TRUE(old.LoadSnapshotFromString(v1).ok());
  DatabaseStats stats = old.stats();
  // V1 carried no counters: documented reset-to-zero semantics.
  EXPECT_EQ(stats.rows_inserted, 0u);
  EXPECT_EQ(stats.txn_commits, 0u);
  auto rows = old.Execute("SELECT * FROM T");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 4u);
}

TEST_F(DbStatsRecoveryTest, TokenCountersResetByDesign) {
  // TokenManager counters are process-local (see med/token.h): the MED
  // layer persists nothing, so a restart starts them from zero. This test
  // pins that documented behaviour — if persistence is ever added, it
  // must update the docs and this expectation together.
  med::TokenManager first("secret");
  (void)first.Issue("/d/file.tbf", 100.0);
  (void)first.Issue("/d/file.tbf", 101.0);
  EXPECT_EQ(first.issued(), 2u);

  med::TokenManager restarted("secret");
  EXPECT_EQ(restarted.issued(), 0u);
  EXPECT_EQ(restarted.validated_ok(), 0u);
  EXPECT_EQ(restarted.rejected(), 0u);
}

}  // namespace
}  // namespace easia::db
