#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/io.h"
#include "db/database.h"
#include "db/executor.h"
#include "db/parser.h"
#include "db/shard/coordinator.h"
#include "db/store/bulk_loader.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "web/cache.h"
#include "web/server.h"
#include "web/session.h"
#include "web/users.h"
#include "xuis/customize.h"
#include "xuis/generator.h"

namespace easia::db::shard {
namespace {

/// Full-mesh sim network: coordinator "web", shards "s0".."sN-1" and
/// optional replica hosts "s<i>-r1".."s<i>-rK".
sim::Network MakeNet(size_t shards, size_t replicas_per_shard = 0) {
  sim::Network net;
  std::vector<std::string> hosts = {"web"};
  for (size_t i = 0; i < shards; ++i) {
    hosts.push_back("s" + std::to_string(i));
    for (size_t r = 1; r <= replicas_per_shard; ++r) {
      hosts.push_back("s" + std::to_string(i) + "-r" + std::to_string(r));
    }
  }
  for (const std::string& h : hosts) net.AddHost({h, 50.0, 4});
  for (const std::string& a : hosts) {
    for (const std::string& b : hosts) {
      if (a != b) {
        net.AddLink(a, b, sim::BandwidthSchedule::Constant(100.0), 0.001);
      }
    }
  }
  return net;
}

ShardOptions MakeOptions(size_t shards, size_t replicas_per_shard = 0) {
  ShardOptions options;
  options.coordinator_host = "web";
  for (size_t i = 0; i < shards; ++i) {
    options.shard_hosts.push_back("s" + std::to_string(i));
  }
  options.replicas_per_shard = replicas_per_shard;
  return options;
}

std::string Render(const QueryResult& r, bool ordered) {
  std::ostringstream out;
  for (size_t i = 0; i < r.column_names.size(); ++i) {
    out << (i > 0 ? "," : "") << r.column_names[i];
  }
  out << "\n";
  std::vector<std::string> rows;
  for (const Row& row : r.rows) {
    std::string line;
    for (const Value& v : row) line += v.ToDisplayString() + "|";
    rows.push_back(std::move(line));
  }
  if (!ordered) std::sort(rows.begin(), rows.end());
  for (const std::string& line : rows) out << line << "\n";
  return out.str();
}

/// Runs identical SQL against the sharded coordinator and a single-node
/// reference database (the PARTITION clause is routing metadata there),
/// asserting equal outcomes.
class ShardPair {
 public:
  explicit ShardPair(size_t shards, size_t replicas_per_shard = 0)
      : net_(MakeNet(shards, replicas_per_shard)),
        coord_(&net_, MakeOptions(shards, replicas_per_shard)),
        reference_("REF") {}

  void Exec(const std::string& sql) {
    Result<QueryResult> sharded = coord_.Execute(sql);
    Result<QueryResult> single = reference_.Execute(sql);
    ASSERT_EQ(sharded.ok(), single.ok())
        << sql << "\nsharded: " << sharded.status().message()
        << "\nsingle: " << single.status().message();
    if (!sharded.ok()) {
      EXPECT_EQ(sharded.status().message(), single.status().message()) << sql;
    }
  }

  void Check(const std::string& sql, bool ordered = false) {
    Result<QueryResult> sharded = coord_.Execute(sql);
    Result<QueryResult> single = reference_.Execute(sql);
    ASSERT_EQ(sharded.ok(), single.ok())
        << sql << "\nsharded: " << sharded.status().message()
        << "\nsingle: " << single.status().message();
    if (!sharded.ok()) {
      EXPECT_EQ(sharded.status().message(), single.status().message()) << sql;
      return;
    }
    EXPECT_EQ(Render(*sharded, ordered), Render(*single, ordered)) << sql;
  }

  ShardCoordinator& coord() { return coord_; }
  Database& reference() { return reference_; }

 private:
  sim::Network net_;
  ShardCoordinator coord_;
  Database reference_;
};

std::vector<std::string> PlanLines(ShardCoordinator& coord,
                                   const std::string& sql) {
  Result<QueryResult> r = coord.Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().message();
  std::vector<std::string> lines;
  if (r.ok()) {
    for (const Row& row : r->rows) lines.push_back(row[0].ToDisplayString());
  }
  return lines;
}

// ---- Routing ----

TEST(ShardRouting, RowsSpreadDeterministically) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE SIM (ID INTEGER PRIMARY KEY, HOST VARCHAR(16)) "
            "PARTITION BY HASH(ID) PARTITIONS 8");
  for (int i = 0; i < 64; ++i) {
    pair.Exec("INSERT INTO SIM VALUES (" + std::to_string(i) + ", 'h" +
              std::to_string(i % 3) + "')");
  }
  // Every row lives on exactly one shard; all shards hold some rows.
  size_t total = 0;
  std::set<int64_t> seen;
  for (size_t s = 0; s < pair.coord().num_shards(); ++s) {
    Result<const Table*> table = pair.coord().shard_db(s)->GetTable("SIM");
    ASSERT_TRUE(table.ok());
    EXPECT_GT((*table)->RowCount(), 0u) << "shard " << s << " empty";
    total += (*table)->RowCount();
    (*table)->ForEachRow([&](RowId, const Row& row) {
      EXPECT_TRUE(seen.insert(row[0].AsInt()).second)
          << "row " << row[0].AsInt() << " on two shards";
    });
  }
  EXPECT_EQ(total, 64u);

  // An identical coordinator routes identically (hash is deterministic).
  sim::Network net2 = MakeNet(4);
  ShardCoordinator coord2(&net2, MakeOptions(4));
  ASSERT_TRUE(coord2
                  .Execute("CREATE TABLE SIM (ID INTEGER PRIMARY KEY, "
                           "HOST VARCHAR(16)) "
                           "PARTITION BY HASH(ID) PARTITIONS 8")
                  .ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(coord2
                    .Execute("INSERT INTO SIM VALUES (" + std::to_string(i) +
                             ", 'x')")
                    .ok());
  }
  for (size_t s = 0; s < 4; ++s) {
    Result<const Table*> a = pair.coord().shard_db(s)->GetTable("SIM");
    Result<const Table*> b = coord2.shard_db(s)->GetTable("SIM");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ((*a)->RowCount(), (*b)->RowCount()) << "shard " << s;
  }
}

TEST(ShardRouting, NumericPkHashesConsistentlyAcrossLiteralForms) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE D (K DOUBLE PRIMARY KEY, V INTEGER) "
            "PARTITION BY HASH(K) PARTITIONS 4");
  pair.Exec("INSERT INTO D VALUES (5, 1)");  // integer literal, double column
  // The row must be findable through a double-literal equality too.
  pair.Check("SELECT V FROM D WHERE K = 5.0");
  pair.Check("SELECT V FROM D WHERE K = 5");
  pair.Exec("INSERT INTO D VALUES (5.0, 2)");  // same key: duplicate
}

TEST(ShardRouting, DuplicatePrimaryKeyAcrossStatements) {
  ShardPair pair(3);
  pair.Exec("CREATE TABLE T (ID INTEGER PRIMARY KEY, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 3");
  pair.Exec("INSERT INTO T VALUES (1, 10), (2, 20)");
  pair.Exec("INSERT INTO T VALUES (2, 99)");        // duplicate
  pair.Exec("INSERT INTO T VALUES (3, 30), (3, 31)");  // dup inside statement
  pair.Check("SELECT * FROM T ORDER BY ID");
}

TEST(ShardRouting, BroadcastTablesAreIdenticalEverywhere) {
  ShardPair pair(3);
  pair.Exec("CREATE TABLE LOOKUP (ID INTEGER PRIMARY KEY, NAME VARCHAR(8))");
  pair.Exec("INSERT INTO LOOKUP VALUES (1, 'a'), (2, 'b')");
  pair.Exec("UPDATE LOOKUP SET NAME = 'z' WHERE ID = 2");
  for (size_t s = 0; s < 3; ++s) {
    Result<const Table*> table = pair.coord().shard_db(s)->GetTable("LOOKUP");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->RowCount(), 2u) << "shard " << s;
  }
  pair.Check("SELECT * FROM LOOKUP ORDER BY ID");
}

// ---- Pruning, proven through EXPLAIN ----

TEST(ShardPruning, EqualityPrunesToOneShard) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE T (ID INTEGER PRIMARY KEY, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  for (int i = 0; i < 32; ++i) {
    pair.Exec("INSERT INTO T VALUES (" + std::to_string(i) + ", " +
              std::to_string(i * 10) + ")");
  }
  std::vector<std::string> lines =
      PlanLines(pair.coord(), "EXPLAIN SELECT V FROM T WHERE ID = 7");
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines[0].find("strategy=single"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("scanned 1 of 4 shards (3 pruned)"),
            std::string::npos)
      << lines[0];
  pair.Check("SELECT V FROM T WHERE ID = 7");
  // A NULL equality matches nothing: every shard prunes.
  ShardCounters before = pair.coord().counters();
  pair.Check("SELECT V FROM T WHERE ID = NULL");
  ShardCounters after = pair.coord().counters();
  EXPECT_EQ(after.scanned_shards - before.scanned_shards, 0u);
  EXPECT_EQ(after.pruned_shards - before.pruned_shards, 4u);
}

TEST(ShardPruning, InListScansOnlyMatchingShards) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE T (ID INTEGER PRIMARY KEY, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  for (int i = 0; i < 32; ++i) {
    pair.Exec("INSERT INTO T VALUES (" + std::to_string(i) + ", " +
              std::to_string(i) + ")");
  }
  std::vector<std::string> lines = PlanLines(
      pair.coord(), "EXPLAIN SELECT COUNT(*) FROM T WHERE ID IN (3, 4)");
  ASSERT_FALSE(lines.empty());
  // At most two shards can hold two keys.
  EXPECT_TRUE(lines[0].find("scanned 1 of 4") != std::string::npos ||
              lines[0].find("scanned 2 of 4") != std::string::npos)
      << lines[0];
  pair.Check("SELECT COUNT(*) FROM T WHERE ID IN (3, 4)");
  pair.Check("SELECT V FROM T WHERE ID IN (3, 4, NULL)");
}

TEST(ShardPruning, RangePrunesFromShardSketches) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE T (ID INTEGER PRIMARY KEY, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  for (int i = 0; i < 64; ++i) {
    pair.Exec("INSERT INTO T VALUES (" + std::to_string(i) + ", " +
              std::to_string(i) + ")");
  }
  // ID > 1000 is beyond every shard's max sketch: all four shards prune.
  std::vector<std::string> lines =
      PlanLines(pair.coord(), "EXPLAIN SELECT * FROM T WHERE ID > 1000");
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines[0].find("scanned 0 of 4 shards (4 pruned)"),
            std::string::npos)
      << lines[0];
  pair.Check("SELECT * FROM T WHERE ID > 1000");
  pair.Check("SELECT COUNT(*) FROM T WHERE ID <= 10");
  pair.Check("SELECT COUNT(*) FROM T WHERE 20 < ID");
}

TEST(ShardPruning, AblationKnobScansEverything) {
  sim::Network net = MakeNet(4);
  ShardOptions options = MakeOptions(4);
  options.enable_pruning = false;
  ShardCoordinator coord(&net, options);
  ASSERT_TRUE(coord
                  .Execute("CREATE TABLE T (ID INTEGER PRIMARY KEY, "
                           "V INTEGER) PARTITION BY HASH(ID) PARTITIONS 4")
                  .ok());
  ASSERT_TRUE(coord.Execute("INSERT INTO T VALUES (1, 1), (2, 2)").ok());
  std::vector<std::string> lines =
      PlanLines(coord, "EXPLAIN SELECT V FROM T WHERE ID = 1");
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines[0].find("scanned 4 of 4 shards (0 pruned)"),
            std::string::npos)
      << lines[0];
}

TEST(ShardPruning, ExplainAnalyzeReportsPerShardActuals) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE T (ID INTEGER PRIMARY KEY, G INTEGER, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  for (int i = 0; i < 40; ++i) {
    pair.Exec("INSERT INTO T VALUES (" + std::to_string(i) + ", " +
              std::to_string(i % 4) + ", " + std::to_string(i) + ")");
  }
  std::vector<std::string> lines = PlanLines(
      pair.coord(), "EXPLAIN ANALYZE SELECT G, SUM(V) FROM T GROUP BY G");
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines[0].find("strategy=scatter"), std::string::npos) << lines[0];
  bool saw_actual = false;
  bool saw_total = false;
  for (const std::string& line : lines) {
    if (line.find("actual rows=") != std::string::npos) saw_actual = true;
    if (line.find("total: 4 rows") != std::string::npos) saw_total = true;
  }
  EXPECT_TRUE(saw_actual);
  EXPECT_TRUE(saw_total);
}

// ---- Scatter/gather merge edge cases ----

TEST(ShardMerge, AggregatesMatchSingleNode) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE M (ID INTEGER PRIMARY KEY, G INTEGER, V INTEGER, "
            "D DOUBLE, S VARCHAR(8)) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  for (int i = 0; i < 50; ++i) {
    pair.Exec("INSERT INTO M VALUES (" + std::to_string(i) + ", " +
              std::to_string(i % 5) + ", " + std::to_string(i * 3) + ", " +
              std::to_string(i) + ".5, 's" + std::to_string(i % 7) + "')");
  }
  pair.Check("SELECT COUNT(*) FROM M");
  pair.Check("SELECT G, COUNT(*), SUM(V), MIN(V), MAX(V), AVG(V) FROM M "
             "GROUP BY G ORDER BY G", true);
  pair.Check("SELECT G, SUM(D) FROM M GROUP BY G ORDER BY G", true);
  pair.Check("SELECT G, MIN(S), MAX(S) FROM M GROUP BY G ORDER BY G", true);
  pair.Check("SELECT G, SUM(V) + COUNT(*) FROM M GROUP BY G ORDER BY G", true);
  pair.Check("SELECT G FROM M GROUP BY G HAVING SUM(V) > 300 ORDER BY G",
             true);
  pair.Check("SELECT S, COUNT(*) FROM M WHERE V > 30 GROUP BY S ORDER BY S",
             true);
}

TEST(ShardMerge, NullOnlyGroups) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE N (ID INTEGER PRIMARY KEY, G INTEGER, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  for (int i = 0; i < 12; ++i) {
    // Group 0 holds only NULL values; group 1 mixes NULL and non-NULL.
    std::string v = (i % 2 == 0) ? "NULL" : std::to_string(i);
    std::string g = (i % 2 == 0) ? "0" : "1";
    pair.Exec("INSERT INTO N VALUES (" + std::to_string(i) + ", " + g + ", " +
              v + ")");
  }
  pair.Exec("INSERT INTO N VALUES (100, NULL, NULL)");  // NULL group key
  pair.Check("SELECT G, COUNT(V), SUM(V), MIN(V), AVG(V) FROM N "
             "GROUP BY G ORDER BY G", true);
  pair.Check("SELECT COUNT(V), SUM(V) FROM N WHERE G = 0");
}

TEST(ShardMerge, EmptyShardsAndEmptyTables) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE E (ID INTEGER PRIMARY KEY, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  // Aggregates over an entirely empty table: one synthesized group.
  pair.Check("SELECT COUNT(*), SUM(V), MIN(V) FROM E");
  pair.Check("SELECT V, COUNT(*) FROM E GROUP BY V");
  // One row: three shards stay empty but still participate in scatter.
  pair.Exec("INSERT INTO E VALUES (1, 42)");
  pair.Check("SELECT COUNT(*), SUM(V), AVG(V) FROM E");
  pair.Check("SELECT V, COUNT(*) FROM E GROUP BY V");
}

TEST(ShardMerge, LimitAndOffsetBoundMergedGroups) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE L (ID INTEGER PRIMARY KEY, G INTEGER, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  for (int i = 0; i < 60; ++i) {
    pair.Exec("INSERT INTO L VALUES (" + std::to_string(i) + ", " +
              std::to_string(i % 10) + ", " + std::to_string(i) + ")");
  }
  pair.Check("SELECT G, SUM(V) FROM L GROUP BY G ORDER BY G LIMIT 3", true);
  pair.Check("SELECT G, SUM(V) FROM L GROUP BY G ORDER BY G "
             "LIMIT 4 OFFSET 7", true);
  pair.Check("SELECT G, SUM(V) FROM L GROUP BY G ORDER BY SUM(V) DESC "
             "LIMIT 2", true);
  // Without ORDER BY the group output order is first-encounter order —
  // the sequence map must reproduce it exactly for LIMIT to agree.
  pair.Check("SELECT G, COUNT(*) FROM L GROUP BY G LIMIT 5", true);
}

TEST(ShardMerge, GatherHandlesNonAggregateShapes) {
  ShardPair pair(3);
  pair.Exec("CREATE TABLE G1 (ID INTEGER PRIMARY KEY, V INTEGER, "
            "S VARCHAR(8)) PARTITION BY HASH(ID) PARTITIONS 3");
  for (int i = 0; i < 30; ++i) {
    pair.Exec("INSERT INTO G1 VALUES (" + std::to_string(i) + ", " +
              std::to_string(i % 6) + ", 'v" + std::to_string(i % 4) + "')");
  }
  pair.Check("SELECT DISTINCT V FROM G1");
  pair.Check("SELECT * FROM G1 WHERE V > 2 ORDER BY ID", true);
  pair.Check("SELECT S, V FROM G1 ORDER BY S, V, ID LIMIT 7", true);
  // Insertion order (no ORDER BY + LIMIT) must match the single node.
  pair.Check("SELECT ID FROM G1 LIMIT 10", true);
}

// ---- Cross-shard joins and foreign keys ----

TEST(ShardJoins, CrossShardFkJoinMatchesSingleNode) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE AUTHOR (AUTHOR_KEY INTEGER PRIMARY KEY, "
            "NAME VARCHAR(16)) PARTITION BY HASH(AUTHOR_KEY) PARTITIONS 4");
  pair.Exec("CREATE TABLE SIMULATION (SIM_KEY INTEGER PRIMARY KEY, "
            "AUTHOR_KEY INTEGER, POINTS INTEGER, "
            "FOREIGN KEY (AUTHOR_KEY) REFERENCES AUTHOR (AUTHOR_KEY)) "
            "PARTITION BY HASH(SIM_KEY) PARTITIONS 4");
  for (int i = 0; i < 8; ++i) {
    pair.Exec("INSERT INTO AUTHOR VALUES (" + std::to_string(i) + ", 'a" +
              std::to_string(i) + "')");
  }
  for (int i = 0; i < 40; ++i) {
    pair.Exec("INSERT INTO SIMULATION VALUES (" + std::to_string(i) + ", " +
              std::to_string(i % 8) + ", " + std::to_string(i * 100) + ")");
  }
  pair.Check("SELECT A.NAME, S.POINTS FROM SIMULATION S "
             "JOIN AUTHOR A ON S.AUTHOR_KEY = A.AUTHOR_KEY "
             "WHERE S.POINTS > 1000 ORDER BY S.SIM_KEY", true);
  pair.Check("SELECT A.NAME, COUNT(*) FROM SIMULATION S "
             "JOIN AUTHOR A ON S.AUTHOR_KEY = A.AUTHOR_KEY "
             "GROUP BY A.NAME ORDER BY A.NAME", true);
  // Legacy (non-planned) executor over the reference tables as a second
  // oracle: materialised nested-loop joins, whole-WHERE filter.
  const std::string join_sql =
      "SELECT A.NAME, S.POINTS FROM SIMULATION S "
      "JOIN AUTHOR A ON S.AUTHOR_KEY = A.AUTHOR_KEY ORDER BY S.SIM_KEY";
  Result<Statement> stmt = ParseSql(join_sql);
  ASSERT_TRUE(stmt.ok());
  Database& reference = pair.reference();
  TableLookup lookup = [&reference](const std::string& name) {
    return reference.GetTable(name);
  };
  ExecuteOptions legacy;
  legacy.use_planner = false;
  Result<QueryResult> naive =
      ExecuteSelect(*stmt->select, lookup, nullptr, legacy);
  Result<QueryResult> sharded = pair.coord().Execute(join_sql);
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();
  ASSERT_TRUE(naive.ok()) << naive.status().message();
  EXPECT_EQ(Render(*sharded, true), Render(*naive, true));
}

TEST(ShardJoins, ColocatedPkJoinPrunesBothSides) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE A (ID INTEGER PRIMARY KEY, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  pair.Exec("CREATE TABLE B (ID INTEGER PRIMARY KEY, W INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  for (int i = 0; i < 20; ++i) {
    pair.Exec("INSERT INTO A VALUES (" + std::to_string(i) + ", " +
              std::to_string(i) + ")");
    pair.Exec("INSERT INTO B VALUES (" + std::to_string(i) + ", " +
              std::to_string(i * 2) + ")");
  }
  // Equality on A's pk propagates through the colocated join to B.
  std::vector<std::string> lines = PlanLines(
      pair.coord(),
      "EXPLAIN SELECT A.V, B.W FROM A JOIN B ON A.ID = B.ID WHERE A.ID = 5");
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines[0].find("scanned 1 of 4 shards (3 pruned)"),
            std::string::npos)
      << lines[0];
  pair.Check("SELECT A.V, B.W FROM A JOIN B ON A.ID = B.ID WHERE A.ID = 5");
  pair.Check("SELECT A.V, B.W FROM A JOIN B ON A.ID = B.ID ORDER BY A.ID",
             true);
}

TEST(ShardFk, ViolationsDetectedAcrossShards) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE P (ID INTEGER PRIMARY KEY, NAME VARCHAR(8)) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  pair.Exec("CREATE TABLE C (ID INTEGER PRIMARY KEY, P_ID INTEGER, "
            "FOREIGN KEY (P_ID) REFERENCES P (ID)) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  pair.Exec("INSERT INTO P VALUES (1, 'a'), (2, 'b')");
  pair.Exec("INSERT INTO C VALUES (10, 1)");   // parent on another shard
  pair.Exec("INSERT INTO C VALUES (11, 99)");  // no parent anywhere
  pair.Exec("INSERT INTO C VALUES (12, NULL)");  // NULL FK: allowed
  pair.Exec("DELETE FROM P WHERE ID = 1");     // RESTRICT: child 10 exists
  pair.Exec("DELETE FROM P WHERE ID = 2");     // no children: fine
  pair.Exec("UPDATE C SET P_ID = 2 WHERE ID = 10");  // parent gone
  pair.Check("SELECT * FROM P ORDER BY ID");
  pair.Check("SELECT * FROM C ORDER BY ID");
}

// ---- DML semantics ----

TEST(ShardDml, UpdateMigratesRowsBetweenShards) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE T (ID INTEGER PRIMARY KEY, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  for (int i = 0; i < 20; ++i) {
    pair.Exec("INSERT INTO T VALUES (" + std::to_string(i) + ", " +
              std::to_string(i) + ")");
  }
  uint64_t before = pair.coord().counters().migrations;
  // Shifting every pk by 100 moves most rows to different shards.
  pair.Exec("UPDATE T SET ID = ID + 100 WHERE V < 10");
  EXPECT_GT(pair.coord().counters().migrations, before);
  pair.Check("SELECT * FROM T ORDER BY ID");
  pair.Check("SELECT COUNT(*), SUM(ID) FROM T");
  // Aggregation after migration still matches (order_dirty path).
  pair.Check("SELECT V, COUNT(*) FROM T GROUP BY V LIMIT 5", true);
  // Reassigning onto an existing key is a duplicate.
  pair.Exec("UPDATE T SET ID = 110 WHERE ID = 111");
  // Swap-style chain: 19 -> 20 is fine because 20 is free.
  pair.Exec("UPDATE T SET ID = ID + 1 WHERE ID = 19");
  pair.Check("SELECT * FROM T ORDER BY ID");
}

TEST(ShardDml, MultiRowInsertSplitsAcrossShards) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE T (ID INTEGER PRIMARY KEY, V VARCHAR(8)) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  pair.Exec("INSERT INTO T VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd'), "
            "(5, 'e'), (6, 'f')");
  pair.Check("SELECT * FROM T ORDER BY ID");
  pair.Check("SELECT ID FROM T LIMIT 3", true);  // insertion order preserved
  // A failing row (duplicate) must leave nothing applied.
  pair.Exec("INSERT INTO T VALUES (7, 'g'), (1, 'dup')");
  pair.Check("SELECT * FROM T ORDER BY ID");
}

TEST(ShardDml, BroadcastCopyAppliesEverywhereAndCompensatesOnFailure) {
  sim::Network net = MakeNet(2, 1);
  ShardOptions options = MakeOptions(2, 1);
  options.repl_options.ack_quorum = 1;
  ShardCoordinator coord(&net, options);
  ASSERT_TRUE(
      coord.Execute("CREATE TABLE B (ID INTEGER PRIMARY KEY, V INTEGER)")
          .ok());
  ASSERT_TRUE(coord.Execute("INSERT INTO B VALUES (1, 1)").ok());

  Result<const TableDef*> def = coord.catalog().GetTable("B");
  ASSERT_TRUE(def.ok());
  std::vector<Row> rows;
  for (int i = 10; i < 20; ++i) {
    rows.push_back({Value::Integer(i), Value::Integer(i)});
  }
  std::string path = ::testing::TempDir() + "easia_shard_bcast.ebk";
  ASSERT_TRUE(
      store::WriteBulkFile(io::RealEnv(), path, **def, rows, 4).ok());

  // Happy path: COPY fans out to every shard identically.
  Result<QueryResult> copied = coord.Execute("COPY B FROM '" + path + "'");
  ASSERT_TRUE(copied.ok()) << copied.status().message();
  EXPECT_EQ(copied->rows_affected, 10u);
  for (size_t s = 0; s < coord.num_shards(); ++s) {
    Result<const Table*> table = coord.shard_db(s)->GetTable("B");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->RowCount(), 11u) << "shard " << s;
  }

  // Failure mid-fan-out: shard 1's replica is unreachable, so its write
  // commits under quorum (kAborted). The coordinator must compensate —
  // deleting the copied rows from every shard written — instead of
  // leaving the broadcast table divergent across shards.
  std::vector<Row> more;
  for (int i = 30; i < 40; ++i) {
    more.push_back({Value::Integer(i), Value::Integer(i)});
  }
  std::string path2 = ::testing::TempDir() + "easia_shard_bcast2.ebk";
  ASSERT_TRUE(
      store::WriteBulkFile(io::RealEnv(), path2, **def, more, 4).ok());
  ASSERT_TRUE(net.SetLinkDown("s1", "s1-r1", true).ok());
  Result<QueryResult> failed = coord.Execute("COPY B FROM '" + path2 + "'");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kAborted);
  for (size_t s = 0; s < coord.num_shards(); ++s) {
    Result<const Table*> table = coord.shard_db(s)->GetTable("B");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->RowCount(), 11u) << "shard " << s;
  }
  ASSERT_TRUE(net.SetLinkDown("s1", "s1-r1", false).ok());
  Result<QueryResult> count = coord.Execute("SELECT COUNT(*) FROM B");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 11);
  (void)std::remove(path.c_str());
  (void)std::remove(path2.c_str());
}

TEST(ShardDml, TransactionsAndPartitionedCopyRejected) {
  sim::Network net = MakeNet(2);
  ShardCoordinator coord(&net, MakeOptions(2));
  ASSERT_TRUE(coord
                  .Execute("CREATE TABLE T (ID INTEGER PRIMARY KEY) "
                           "PARTITION BY HASH(ID) PARTITIONS 2")
                  .ok());
  Result<QueryResult> begin = coord.Execute("BEGIN");
  ASSERT_FALSE(begin.ok());
  EXPECT_EQ(begin.status().code(), StatusCode::kFailedPrecondition);
  Result<QueryResult> copy = coord.Execute("COPY T FROM '/tmp/x.bulk'");
  ASSERT_FALSE(copy.ok());
  EXPECT_EQ(copy.status().code(), StatusCode::kFailedPrecondition);
}

// ---- Replication composition ----

TEST(ShardRepl, ScatterReadsSurviveShardFailover) {
  sim::Network net = MakeNet(3, 2);
  ShardOptions options = MakeOptions(3, 2);
  options.repl_options.ack_quorum = 2;
  ShardCoordinator coord(&net, options);
  ASSERT_TRUE(coord
                  .Execute("CREATE TABLE T (ID INTEGER PRIMARY KEY, "
                           "V INTEGER) PARTITION BY HASH(ID) PARTITIONS 3")
                  .ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(coord
                    .Execute("INSERT INTO T VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i) + ")")
                    .ok());
  }
  Result<QueryResult> before = coord.Execute("SELECT COUNT(*), SUM(V) FROM T");
  ASSERT_TRUE(before.ok());
  // Fail over shard 1's primary; its fully-shipped replica takes over.
  ASSERT_TRUE(coord.repl(1) != nullptr);
  coord.repl(1)->Heartbeat();
  ASSERT_TRUE(coord.repl(1)->ShipAll().ok());
  net.clock().Advance(options.repl_options.heartbeat_timeout_seconds + 1);
  ASSERT_TRUE(coord.repl(1)->PrimaryDown());
  Result<std::string> promoted = coord.repl(1)->MaybeFailover();
  ASSERT_TRUE(promoted.ok()) << promoted.status().message();
  // The sim clock is shared: re-heartbeat the untouched shards so their
  // (live) primaries are not presumed dead too.
  for (size_t s = 0; s < coord.num_shards(); ++s) coord.repl(s)->Heartbeat();
  Result<QueryResult> after = coord.Execute("SELECT COUNT(*), SUM(V) FROM T");
  ASSERT_TRUE(after.ok()) << after.status().message();
  EXPECT_EQ(Render(*before, false), Render(*after, false));
  // Writes keep flowing through the promoted primary.
  ASSERT_TRUE(coord.Execute("INSERT INTO T VALUES (100, 100)").ok());
  Result<QueryResult> count = coord.Execute("SELECT COUNT(*) FROM T");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 31);
}

TEST(ShardRepl, CoordinatorReadsFollowPromotedPrimary) {
  sim::Network net = MakeNet(3, 2);
  ShardOptions options = MakeOptions(3, 2);
  options.repl_options.ack_quorum = 2;
  ShardCoordinator coord(&net, options);
  ASSERT_TRUE(coord
                  .Execute("CREATE TABLE T (ID INTEGER PRIMARY KEY, "
                           "V INTEGER) PARTITION BY HASH(ID) PARTITIONS 3")
                  .ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        coord.Execute("INSERT INTO T VALUES (" + std::to_string(i) + ", 0)")
            .ok());
  }
  // Fail over shard 0's primary onto a fully-shipped replica.
  ASSERT_TRUE(coord.repl(0) != nullptr);
  coord.repl(0)->Heartbeat();
  ASSERT_TRUE(coord.repl(0)->ShipAll().ok());
  net.clock().Advance(options.repl_options.heartbeat_timeout_seconds + 1);
  ASSERT_TRUE(coord.repl(0)->PrimaryDown());
  ASSERT_TRUE(coord.repl(0)->MaybeFailover().ok());
  for (size_t s = 0; s < coord.num_shards(); ++s) coord.repl(s)->Heartbeat();

  // Rows committed after the failover land on the promoted primary; the
  // coordinator's own reads — duplicate-pk probes, UPDATE target scans,
  // min/max pruning sketches, the web cache validator — must see them
  // there, not on the demoted initial primary.
  uint64_t epoch_before = coord.combined_epoch();
  for (int i = 100; i < 112; ++i) {
    ASSERT_TRUE(
        coord.Execute("INSERT INTO T VALUES (" + std::to_string(i) + ", 1)")
            .ok());
  }
  EXPECT_GT(coord.combined_epoch(), epoch_before);

  // Duplicate-pk probe sees post-failover rows.
  Result<QueryResult> dup = coord.Execute("INSERT INTO T VALUES (105, 2)");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraintViolation);

  // UPDATE target scan finds post-failover rows (a stale scan would find
  // no target and silently update nothing).
  Result<QueryResult> update =
      coord.Execute("UPDATE T SET V = 9 WHERE ID = 105");
  ASSERT_TRUE(update.ok()) << update.status().message();
  EXPECT_EQ(update->rows_affected, 1u);
  Result<QueryResult> read = coord.Execute("SELECT V FROM T WHERE ID = 105");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->rows.size(), 1u);
  EXPECT_EQ(read->rows[0][0].AsInt(), 9);

  // Range pruning reads the promoted primary's min/max sketch: shards
  // whose only in-range rows arrived after the failover must not be
  // pruned via the demoted primary's stale sketch.
  Result<QueryResult> count =
      coord.Execute("SELECT COUNT(*) FROM T WHERE ID >= 100");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 12);

  // shard_db follows the promotion: summing per-shard rows covers all 24.
  size_t rows = 0;
  for (const ShardInfo& info : coord.shard_info()) {
    rows += info.partitioned_rows;
  }
  EXPECT_EQ(rows, 24u);
}

// ---- Observability ----

TEST(ShardObs, CountersAndMetricsFamilies) {
  ShardPair pair(4);
  pair.Exec("CREATE TABLE T (ID INTEGER PRIMARY KEY, G INTEGER, V INTEGER) "
            "PARTITION BY HASH(ID) PARTITIONS 4");
  for (int i = 0; i < 20; ++i) {
    pair.Exec("INSERT INTO T VALUES (" + std::to_string(i) + ", " +
              std::to_string(i % 2) + ", " + std::to_string(i) + ")");
  }
  pair.Check("SELECT G, SUM(V) FROM T GROUP BY G ORDER BY G", true);  // scatter
  pair.Check("SELECT V FROM T WHERE ID = 3");                // single (pruned)
  pair.Check("SELECT DISTINCT G FROM T");                    // gather
  ShardCounters c = pair.coord().counters();
  EXPECT_GE(c.queries_scatter, 1u);
  EXPECT_GE(c.queries_single, 1u);
  EXPECT_GE(c.queries_gather, 1u);
  EXPECT_GT(c.writes, 0u);
  EXPECT_GT(c.scanned_shards, 0u);
  EXPECT_GT(c.pruned_shards, 0u);

  obs::MetricsRegistry metrics;
  pair.coord().RegisterMetrics(&metrics);
  std::string text = metrics.RenderPrometheusText();
  for (const char* family :
       {"easia_shard_rows", "easia_shard_lag_epochs",
        "easia_shard_queries_total", "easia_shard_scanned_shards_total",
        "easia_shard_pruned_shards_total", "easia_shard_writes_total",
        "easia_shard_migrations_total"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
  EXPECT_NE(text.find("easia_shard_queries_total{strategy=\"scatter\"}"),
            std::string::npos)
      << text;

  std::vector<ShardInfo> info = pair.coord().shard_info();
  ASSERT_EQ(info.size(), 4u);
  size_t rows = 0;
  for (const ShardInfo& i : info) rows += i.partitioned_rows;
  EXPECT_EQ(rows, 20u);
}

// ---- Web layer over a sharded backend ----

TEST(ShardWeb, BrowseAndStatsRouteThroughCoordinator) {
  sim::Network net = MakeNet(4);
  ShardCoordinator coord(&net, MakeOptions(4));
  ASSERT_TRUE(coord
                  .Execute("CREATE TABLE STAR (ID INTEGER PRIMARY KEY, "
                           "NAME VARCHAR(32)) "
                           "PARTITION BY HASH(ID) PARTITIONS 4")
                  .ok());
  for (int i = 1; i <= 12; ++i) {
    ASSERT_TRUE(coord
                    .Execute("INSERT INTO STAR VALUES (" + std::to_string(i) +
                             ", 'star" + std::to_string(i) + "')")
                    .ok());
  }

  // Shard 0's catalogue mirror drives XUIS generation unchanged.
  Result<xuis::XuisSpec> spec = xuis::GenerateDefaultXuis(*coord.shard_db(0));
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  xuis::XuisRegistry registry;
  registry.SetDefault(*spec);
  web::UserManager users;
  ManualClock clock(0);
  web::SessionManager sessions(&users, &clock);
  web::RenderCache cache;

  web::ArchiveWebServer::Deps deps;
  deps.database = coord.shard_db(0);
  deps.xuis = &registry;
  deps.users = &users;
  deps.sessions = &sessions;
  deps.cache = &cache;
  deps.shard = &coord;
  web::ArchiveWebServer server(deps);

  web::HttpRequest login;
  login.path = "/login";
  login.params = {{"user", "guest"}, {"password", "guest"}};
  web::HttpResponse resp = server.Handle(login);
  ASSERT_EQ(resp.status, 200) << resp.body;
  std::string session_id = resp.body;

  // /browse by a non-partition-key value: rows live on several shards,
  // but the page shows them all (the query gathers across shards).
  web::HttpRequest browse;
  browse.path = "/browse";
  browse.params = {{"table", "STAR"}, {"column", "NAME"}, {"value", "star7"}};
  browse.session_id = session_id;
  resp = server.Handle(browse);
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("star7"), std::string::npos);

  // A write through the coordinator bumps the combined epoch, so the
  // cached page invalidates even when the write landed on another shard.
  web::HttpRequest browse2 = browse;
  resp = server.Handle(browse2);
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(cache.stats().hits, 1u);
  ASSERT_TRUE(coord.Execute("UPDATE STAR SET NAME = 'nova7' WHERE ID = 7")
                  .ok());
  resp = server.Handle(browse);
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.find("star7"), std::string::npos) << resp.body;

  // /stats renders the per-shard table.
  web::HttpRequest stats;
  stats.path = "/stats";
  stats.session_id = session_id;
  resp = server.Handle(stats);
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("sharding: 4 shards"), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("s3"), std::string::npos);
  EXPECT_NE(resp.body.find("partitioned rows"), std::string::npos);
}

}  // namespace
}  // namespace easia::db::shard
