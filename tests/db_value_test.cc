#include <gtest/gtest.h>

#include "db/value.h"

namespace easia::db {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_EQ(DataTypeName(DataType::kDatalink), "DATALINK");
  EXPECT_EQ(*DataTypeFromName("varchar"), DataType::kVarchar);
  EXPECT_EQ(*DataTypeFromName("INT"), DataType::kInteger);
  EXPECT_EQ(*DataTypeFromName("REAL"), DataType::kDouble);
  EXPECT_FALSE(DataTypeFromName("GEOMETRY").ok());
}

TEST(ValueTest, NullBehaviour) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToDisplayString(), "NULL");
  EXPECT_EQ(v.ToSqlLiteral(), "NULL");
  EXPECT_EQ(v.Compare(Value::Null()), 0);
  EXPECT_LT(v.Compare(Value::Integer(0)), 0);  // NULLs sort first
}

TEST(ValueTest, NumericComparisonsCrossType) {
  EXPECT_EQ(Value::Integer(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Integer(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Timestamp(100).Compare(Value::Integer(99)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Varchar("abc").Compare(Value::Varchar("abd")), 0);
  EXPECT_EQ(Value::Varchar("x").Compare(Value::Clob("x")), 0);
}

TEST(ValueTest, SqlLiteralQuoting) {
  EXPECT_EQ(Value::Varchar("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Integer(-5).ToSqlLiteral(), "-5");
  EXPECT_EQ(Value::Double(2.5).ToSqlLiteral(), "2.5");
}

TEST(ValueTest, BlobDisplayHidesBytes) {
  Value v = Value::Blob(std::string(100, 'x'));
  EXPECT_EQ(v.ToDisplayString(), "<blob 100 bytes>");
}

TEST(ValueTest, KeyStringNormalisesNumerics) {
  EXPECT_EQ(Value::Integer(3).ToKeyString(), Value::Double(3.0).ToKeyString());
  EXPECT_NE(Value::Integer(3).ToKeyString(),
            Value::Varchar("3").ToKeyString());
  EXPECT_NE(Value::Null().ToKeyString(), Value::Integer(0).ToKeyString());
}

TEST(ValueTest, CoerceWidening) {
  EXPECT_DOUBLE_EQ(Value::Integer(4).CoerceTo(DataType::kDouble)->AsDouble(),
                   4.0);
  EXPECT_EQ(Value::Varchar("42").CoerceTo(DataType::kInteger)->AsInt(), 42);
  EXPECT_EQ(Value::Integer(99).CoerceTo(DataType::kTimestamp)->AsInt(), 99);
  EXPECT_EQ(Value::Varchar("hi").CoerceTo(DataType::kClob)->AsString(), "hi");
  EXPECT_EQ(Value::Varchar("http://h/p").CoerceTo(DataType::kDatalink)->type(),
            DataType::kDatalink);
}

TEST(ValueTest, CoerceRejectsLossy) {
  EXPECT_FALSE(Value::Double(2.5).CoerceTo(DataType::kInteger).ok());
  EXPECT_FALSE(Value::Varchar("abc").CoerceTo(DataType::kInteger).ok());
  EXPECT_FALSE(Value::Blob("xx").CoerceTo(DataType::kInteger).ok());
}

TEST(ValueTest, CoerceNullStaysNull) {
  EXPECT_TRUE(Value::Null().CoerceTo(DataType::kInteger)->is_null());
}

TEST(ValueTest, RoundTripThroughEncoding) {
  // Exercised thoroughly in db_wal_test; spot-check the display forms here.
  EXPECT_EQ(Value::Double(0.1).ToDisplayString(), "0.1");
  EXPECT_EQ(Value::Integer(0).ToDisplayString(), "0");
}

}  // namespace
}  // namespace easia::db
