#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "db/executor.h"
#include "db/parser.h"

namespace easia::db {
namespace {

int FuzzIters(int default_iters) {
  const char* env = std::getenv("EASIA_FUZZ_ITERS");
  if (env == nullptr) return default_iters;
  int parsed = std::atoi(env);
  return parsed > 0 ? parsed : default_iters;
}

/// Differential fuzzing: seeded random SELECTs executed through both the
/// query planner and the legacy executor must produce identical results.
/// The planner (predicate pushdown, index access, hash joins, LIMIT
/// short-circuit) is the optimised path; the legacy executor is the
/// naive-but-obviously-correct oracle.
class DifferentialFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("FUZZ");
    Exec(
        "CREATE TABLE AUTHOR ("
        " AUTHOR_KEY INTEGER NOT NULL,"
        " NAME VARCHAR(40),"
        " AGE INTEGER,"
        " PRIMARY KEY (AUTHOR_KEY))");
    Exec(
        "CREATE TABLE SIMULATION ("
        " SIMULATION_KEY INTEGER NOT NULL,"
        " AUTHOR_KEY INTEGER,"
        " RE DOUBLE,"
        " TITLE VARCHAR(60),"
        " PRIMARY KEY (SIMULATION_KEY),"
        " FOREIGN KEY (AUTHOR_KEY) REFERENCES AUTHOR (AUTHOR_KEY))");
    Random rng(0xDA7A);
    for (int i = 1; i <= 25; ++i) {
      std::string age = rng.OneIn(5) ? "NULL" : std::to_string(rng.Uniform(60));
      Exec("INSERT INTO AUTHOR VALUES (" + std::to_string(i) + ", 'name" +
           std::to_string(rng.Uniform(10)) + "', " + age + ")");
    }
    for (int i = 1; i <= 80; ++i) {
      std::string author =
          rng.OneIn(6) ? "NULL" : std::to_string(1 + rng.Uniform(25));
      Exec("INSERT INTO SIMULATION VALUES (" + std::to_string(i) + ", " +
           author + ", " + std::to_string(rng.Uniform(5000)) + ", 'title" +
           std::to_string(rng.Uniform(12)) + "')");
    }
  }

  void Exec(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  /// Rows rendered to comparable strings.
  static std::vector<std::string> Render(const QueryResult& result) {
    std::vector<std::string> out;
    out.reserve(result.rows.size());
    for (const Row& row : result.rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.ToDisplayString();
        line += "|";
      }
      out.push_back(std::move(line));
    }
    return out;
  }

  /// Runs one generated query through both executors. `ordered` asserts
  /// sequence equality (the query carries a total ORDER BY); otherwise the
  /// row multisets must match.
  void CheckEquivalent(const std::string& sql, bool ordered) {
    SCOPED_TRACE(sql);
    Result<Statement> stmt = ParseSql(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
    TableLookup lookup = [this](const std::string& name) {
      return db_->GetTable(name);
    };
    Result<QueryResult> planned =
        ExecuteSelect(*stmt->select, lookup, nullptr, {true});
    Result<QueryResult> naive =
        ExecuteSelect(*stmt->select, lookup, nullptr, {false});
    ASSERT_EQ(planned.ok(), naive.ok())
        << "planned: " << planned.status().ToString()
        << "\nnaive:   " << naive.status().ToString();
    if (!planned.ok()) return;
    EXPECT_EQ(planned->column_names, naive->column_names);
    std::vector<std::string> lhs = Render(*planned);
    std::vector<std::string> rhs = Render(*naive);
    if (!ordered) {
      std::sort(lhs.begin(), lhs.end());
      std::sort(rhs.begin(), rhs.end());
    }
    EXPECT_EQ(lhs, rhs);
  }

  std::unique_ptr<Database> db_;
};

/// One random predicate over the available columns.
std::string RandomPredicate(Random& rng, const std::vector<std::string>& cols) {
  const std::string& col = cols[rng.Uniform(cols.size())];
  static const char* kOps[] = {"=", "<>", "<", ">", "<=", ">="};
  switch (rng.Uniform(8)) {
    case 0:
      return col + " IS NULL";
    case 1:
      return col + " IS NOT NULL";
    default:
      return col + " " + kOps[rng.Uniform(6)] + " " +
             std::to_string(rng.Uniform(5000));
  }
}

std::string RandomWhere(Random& rng, const std::vector<std::string>& cols,
                        const std::string& prefix = " WHERE ") {
  size_t predicates = rng.Uniform(3);
  if (predicates == 0) return "";
  std::string where = prefix;
  for (size_t i = 0; i < predicates; ++i) {
    if (i > 0) where += rng.OneIn(3) ? " OR " : " AND ";
    where += RandomPredicate(rng, cols);
  }
  return where;
}

TEST_F(DifferentialFuzzTest, SingleTableSelects) {
  const int iters = FuzzIters(400);
  Random rng(0x51E7);
  const std::vector<std::string> cols = {"SIMULATION_KEY", "AUTHOR_KEY", "RE"};
  for (int i = 0; i < iters; ++i) {
    std::string sql = "SELECT ";
    if (rng.OneIn(8)) sql += "DISTINCT ";
    switch (rng.Uniform(3)) {
      case 0:
        sql += "*";
        break;
      case 1:
        sql += cols[rng.Uniform(cols.size())];
        break;
      default:
        sql += "SIMULATION_KEY, TITLE, RE";
    }
    sql += " FROM SIMULATION";
    sql += RandomWhere(rng, cols);
    bool ordered = rng.OneIn(2);
    if (ordered) {
      sql += " ORDER BY " + cols[rng.Uniform(cols.size())];
      if (rng.OneIn(2)) sql += " DESC";
      // Unique tiebreaker keeps the total order engine-independent.
      sql += ", SIMULATION_KEY";
      if (rng.OneIn(3)) {
        sql += " LIMIT " + std::to_string(1 + rng.Uniform(10));
        if (rng.OneIn(2)) sql += " OFFSET " + std::to_string(rng.Uniform(5));
      }
    }
    CheckEquivalent(sql, ordered);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

TEST_F(DifferentialFuzzTest, JoinSelects) {
  const int iters = FuzzIters(400);
  Random rng(0x70AD);
  const std::vector<std::string> cols = {"S.SIMULATION_KEY", "S.RE", "A.AGE",
                                         "A.AUTHOR_KEY"};
  for (int i = 0; i < iters; ++i) {
    std::string sql = "SELECT ";
    switch (rng.Uniform(3)) {
      case 0:
        sql += "*";
        break;
      case 1:
        sql += "A.NAME, S.TITLE";
        break;
      default:
        sql += "S.SIMULATION_KEY, A.AUTHOR_KEY, S.RE";
    }
    if (rng.OneIn(2)) {
      sql += " FROM SIMULATION S JOIN AUTHOR A"
             " ON S.AUTHOR_KEY = A.AUTHOR_KEY";
      sql += RandomWhere(rng, cols);
    } else {
      sql += " FROM SIMULATION S, AUTHOR A";
      sql += " WHERE S.AUTHOR_KEY = A.AUTHOR_KEY";
      sql += RandomWhere(rng, cols, " AND ");
    }
    bool ordered = rng.OneIn(2);
    if (ordered) {
      sql += " ORDER BY " + cols[rng.Uniform(cols.size())];
      if (rng.OneIn(2)) sql += " DESC";
      sql += ", S.SIMULATION_KEY";
      if (rng.OneIn(3)) sql += " LIMIT " + std::to_string(1 + rng.Uniform(12));
    }
    CheckEquivalent(sql, ordered);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

TEST_F(DifferentialFuzzTest, AggregateSelects) {
  const int iters = FuzzIters(200);
  Random rng(0xA66E);
  static const char* kAggs[] = {"COUNT(*)", "SUM(RE)", "MIN(RE)", "MAX(RE)",
                                "AVG(RE)", "COUNT(AUTHOR_KEY)"};
  const std::vector<std::string> cols = {"SIMULATION_KEY", "AUTHOR_KEY", "RE"};
  for (int i = 0; i < iters; ++i) {
    std::string sql = "SELECT ";
    bool grouped = rng.OneIn(2);
    if (grouped) sql += "AUTHOR_KEY, ";
    sql += kAggs[rng.Uniform(6)];
    if (rng.OneIn(2)) {
      sql += ", ";
      sql += kAggs[rng.Uniform(6)];
    }
    sql += " FROM SIMULATION";
    sql += RandomWhere(rng, cols);
    if (grouped) {
      sql += " GROUP BY AUTHOR_KEY";
      if (rng.OneIn(3)) sql += " HAVING COUNT(*) > 1";
    }
    CheckEquivalent(sql, /*ordered=*/false);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

}  // namespace
}  // namespace easia::db
