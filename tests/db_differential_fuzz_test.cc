#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "db/executor.h"
#include "db/parser.h"
#include "db/repl/replica.h"
#include "db/repl/shipper.h"
#include "db/repl/wire.h"
#include "db/shard/coordinator.h"
#include "sim/network.h"

namespace easia::db {
namespace {

int FuzzIters(int default_iters) {
  const char* env = std::getenv("EASIA_FUZZ_ITERS");
  if (env == nullptr) return default_iters;
  int parsed = std::atoi(env);
  return parsed > 0 ? parsed : default_iters;
}

constexpr size_t kFuzzShards = 4;

/// Full-mesh sim network for the sharded differential arm: coordinator
/// "web" plus shard hosts "s0".."s3".
sim::Network MakeShardNet() {
  sim::Network net;
  std::vector<std::string> hosts = {"web"};
  for (size_t i = 0; i < kFuzzShards; ++i) {
    hosts.push_back("s" + std::to_string(i));
  }
  for (const std::string& h : hosts) net.AddHost({h, 50.0, 4});
  for (const std::string& a : hosts) {
    for (const std::string& b : hosts) {
      if (a != b) {
        net.AddLink(a, b, sim::BandwidthSchedule::Constant(100.0), 0.001);
      }
    }
  }
  return net;
}

shard::ShardOptions MakeShardOptions() {
  shard::ShardOptions options;
  options.coordinator_host = "web";
  for (size_t i = 0; i < kFuzzShards; ++i) {
    options.shard_hosts.push_back("s" + std::to_string(i));
  }
  return options;
}

/// Differential fuzzing: seeded random SELECTs executed through both the
/// query planner and the legacy executor must produce identical results.
/// The planner (predicate pushdown, index access, hash joins, columnar
/// filter/aggregate kernels, radix prefix scans, LIMIT short-circuit) is
/// the optimised path; the legacy executor is the naive-but-obviously-
/// correct oracle. Every query additionally runs against a columnar twin
/// database (same DDL `STORE COLUMNAR`, same inserts), against a
/// replica fed purely by WAL-shipped commit entries (never by direct
/// DML), and against a 4-shard hash-partitioned coordinator (same DDL
/// plus `PARTITION BY HASH(<pk>) PARTITIONS 4`, scatter/gather
/// planning over sim links), so each check is six-way: {planned,
/// legacy} x {row store, columnar} plus {replica replay} plus
/// {sharded scatter/gather}.
class DifferentialFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("FUZZ");
    columnar_db_ = std::make_unique<Database>("CFUZZ");
    replica_ = std::make_unique<repl::ReplicaNode>("r1");
    db_->set_commit_listener(
        [this](uint64_t epoch, const std::vector<WalRecord>& records) {
          log_.Append(epoch, records);
        });
    ExecBoth(
        "CREATE TABLE AUTHOR ("
        " AUTHOR_KEY INTEGER NOT NULL,"
        " NAME VARCHAR(40),"
        " AGE INTEGER,"
        " PRIMARY KEY (AUTHOR_KEY))");
    ExecBoth(
        "CREATE TABLE SIMULATION ("
        " SIMULATION_KEY INTEGER NOT NULL,"
        " AUTHOR_KEY INTEGER,"
        " RE DOUBLE,"
        " TITLE VARCHAR(60),"
        " PRIMARY KEY (SIMULATION_KEY),"
        " FOREIGN KEY (AUTHOR_KEY) REFERENCES AUTHOR (AUTHOR_KEY))");
    Random rng(0xDA7A);
    for (int i = 1; i <= 25; ++i) {
      std::string age = rng.OneIn(5) ? "NULL" : std::to_string(rng.Uniform(60));
      ExecBoth("INSERT INTO AUTHOR VALUES (" + std::to_string(i) + ", 'name" +
               std::to_string(rng.Uniform(10)) + "', " + age + ")");
    }
    for (int i = 1; i <= 80; ++i) {
      std::string author =
          rng.OneIn(6) ? "NULL" : std::to_string(1 + rng.Uniform(25));
      ExecBoth("INSERT INTO SIMULATION VALUES (" + std::to_string(i) + ", " +
               author + ", " + std::to_string(rng.Uniform(5000)) + ", 'title" +
               std::to_string(rng.Uniform(12)) + "')");
    }
  }

  /// Runs DDL/DML against the row-store database, its columnar twin
  /// (CREATE TABLE gains the STORE COLUMNAR clause) and the 4-shard
  /// coordinator (CREATE TABLE gains a PARTITION BY HASH clause on the
  /// table's primary key, so every row is hash-routed to one shard).
  void ExecBoth(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    std::string csql = sql;
    if (sql.rfind("CREATE TABLE", 0) == 0) csql += " STORE COLUMNAR";
    Result<QueryResult> cr = columnar_db_->Execute(csql);
    ASSERT_TRUE(cr.ok()) << csql << " -> " << cr.status().ToString();
    std::string ssql = sql;
    if (sql.rfind("CREATE TABLE", 0) == 0) {
      size_t pk = sql.find("PRIMARY KEY (");
      ASSERT_NE(pk, std::string::npos) << sql;
      pk += std::string("PRIMARY KEY (").size();
      size_t end = sql.find(')', pk);
      ASSERT_NE(end, std::string::npos) << sql;
      ssql += " PARTITION BY HASH(" + sql.substr(pk, end - pk) +
              ") PARTITIONS " + std::to_string(kFuzzShards);
    }
    Result<QueryResult> sr = shard_.Execute(ssql);
    ASSERT_TRUE(sr.ok()) << ssql << " -> " << sr.status().ToString();
  }

  /// Rows rendered to comparable strings.
  static std::vector<std::string> Render(const QueryResult& result) {
    std::vector<std::string> out;
    out.reserve(result.rows.size());
    for (const Row& row : result.rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.ToDisplayString();
        line += "|";
      }
      out.push_back(std::move(line));
    }
    return out;
  }

  /// Runs one generated query through planned and legacy executors on the
  /// row-store database AND the columnar twin; all four runs must agree.
  /// `ordered` asserts sequence equality (the query carries a total
  /// ORDER BY); otherwise the row multisets must match.
  void CheckEquivalent(const std::string& sql, bool ordered) {
    SCOPED_TRACE(sql);
    Result<Statement> stmt = ParseSql(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
    // Catch the replica up to the primary's shipping log (no network —
    // the wire encode/decode path is still exercised), then include it
    // as a fifth differential arm: replayed state must answer queries
    // exactly like the state built by direct execution.
    std::vector<repl::CommitEntry> pending =
        log_.EntriesAfter(replica_->last_applied_lsn(), log_.size() + 1);
    if (!pending.empty()) {
      Result<repl::ReplicaNode::ApplyOutcome> applied =
          replica_->ApplyShipment(repl::EncodeShipment(pending));
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      ASSERT_EQ(applied->applied, pending.size());
    }
    struct Run {
      const char* label;
      Result<QueryResult> result;
    };
    std::vector<Run> runs;
    for (Database* database : {db_.get(), columnar_db_.get()}) {
      TableLookup lookup = [database](const std::string& name) {
        return database->GetTable(name);
      };
      bool row_store = database == db_.get();
      runs.push_back({row_store ? "row/planned" : "columnar/planned",
                      ExecuteSelect(*stmt->select, lookup, nullptr, {true})});
      runs.push_back({row_store ? "row/naive" : "columnar/naive",
                      ExecuteSelect(*stmt->select, lookup, nullptr, {false})});
    }
    {
      Database* database = &replica_->database();
      TableLookup lookup = [database](const std::string& name) {
        return database->GetTable(name);
      };
      runs.push_back({"replica/planned",
                      ExecuteSelect(*stmt->select, lookup, nullptr, {true})});
    }
    // Sixth arm: the shard coordinator plans the same SELECT across four
    // hash partitions (pruning + scatter partial aggregation or
    // coordinator-side gather) and must still agree with the naive
    // single-node oracle.
    runs.push_back({"sharded/planned", shard_.Execute(sql)});
    const Run& oracle = runs[1];  // row-store naive path
    for (const Run& run : runs) {
      ASSERT_EQ(run.result.ok(), oracle.result.ok())
          << run.label << ": " << run.result.status().ToString()
          << "\noracle:  " << oracle.result.status().ToString();
    }
    if (!oracle.result.ok()) return;
    std::vector<std::string> want = Render(*oracle.result);
    if (!ordered) std::sort(want.begin(), want.end());
    for (const Run& run : runs) {
      EXPECT_EQ(run.result->column_names, oracle.result->column_names)
          << run.label;
      std::vector<std::string> got = Render(*run.result);
      if (!ordered) std::sort(got.begin(), got.end());
      EXPECT_EQ(got, want) << run.label;
    }
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Database> columnar_db_;
  repl::ReplicationLog log_;
  std::unique_ptr<repl::ReplicaNode> replica_;
  sim::Network shard_net_ = MakeShardNet();
  shard::ShardCoordinator shard_{&shard_net_, MakeShardOptions()};
};

/// One random predicate over the available columns.
std::string RandomPredicate(Random& rng, const std::vector<std::string>& cols) {
  const std::string& col = cols[rng.Uniform(cols.size())];
  static const char* kOps[] = {"=", "<>", "<", ">", "<=", ">="};
  switch (rng.Uniform(8)) {
    case 0:
      return col + " IS NULL";
    case 1:
      return col + " IS NOT NULL";
    default:
      return col + " " + kOps[rng.Uniform(6)] + " " +
             std::to_string(rng.Uniform(5000));
  }
}

/// A random LIKE predicate over SIMULATION.TITLE (values title0..title11).
/// Mostly prefix patterns (planner-pushable to the radix index on the
/// columnar twin), with occasional leading-wildcard, mid-pattern-%,
/// single-char-_ and escaped-wildcard shapes that must NOT take (or must
/// survive) the prefix fast path.
std::string RandomLikePredicate(Random& rng) {
  std::string digit = std::to_string(rng.Uniform(12));
  switch (rng.Uniform(8)) {
    case 0:
      return "TITLE LIKE 'title%'";  // matches everything
    case 1:
      return "TITLE LIKE '%" + digit + "'";  // leading wildcard
    case 2:
      return "TITLE LIKE 'title_'";  // single-char wildcard, no prefix tail
    case 3:
      return "TITLE LIKE 't%" + digit + "'";  // short prefix + wildcard tail
    case 4:
      return "TITLE LIKE 'title\\%'";  // escaped %: literal, matches nothing
    case 5:
      return "TITLE NOT LIKE 'title" + digit + "%'";
    case 6:
      return "TITLE LIKE 'xyz%'";  // empty result prefix
    default:
      return "TITLE LIKE 'title" + digit + "%'";
  }
}

std::string RandomWhere(Random& rng, const std::vector<std::string>& cols,
                        const std::string& prefix = " WHERE ") {
  size_t predicates = rng.Uniform(3);
  if (predicates == 0) return "";
  std::string where = prefix;
  for (size_t i = 0; i < predicates; ++i) {
    if (i > 0) where += rng.OneIn(3) ? " OR " : " AND ";
    where += RandomPredicate(rng, cols);
  }
  return where;
}

TEST_F(DifferentialFuzzTest, SingleTableSelects) {
  const int iters = FuzzIters(400);
  Random rng(0x51E7);
  const std::vector<std::string> cols = {"SIMULATION_KEY", "AUTHOR_KEY", "RE"};
  for (int i = 0; i < iters; ++i) {
    std::string sql = "SELECT ";
    if (rng.OneIn(8)) sql += "DISTINCT ";
    switch (rng.Uniform(3)) {
      case 0:
        sql += "*";
        break;
      case 1:
        sql += cols[rng.Uniform(cols.size())];
        break;
      default:
        sql += "SIMULATION_KEY, TITLE, RE";
    }
    sql += " FROM SIMULATION";
    sql += RandomWhere(rng, cols);
    bool ordered = rng.OneIn(2);
    if (ordered) {
      sql += " ORDER BY " + cols[rng.Uniform(cols.size())];
      if (rng.OneIn(2)) sql += " DESC";
      // Unique tiebreaker keeps the total order engine-independent.
      sql += ", SIMULATION_KEY";
      if (rng.OneIn(3)) {
        sql += " LIMIT " + std::to_string(1 + rng.Uniform(10));
        if (rng.OneIn(2)) sql += " OFFSET " + std::to_string(rng.Uniform(5));
      }
    }
    CheckEquivalent(sql, ordered);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

TEST_F(DifferentialFuzzTest, JoinSelects) {
  const int iters = FuzzIters(400);
  Random rng(0x70AD);
  const std::vector<std::string> cols = {"S.SIMULATION_KEY", "S.RE", "A.AGE",
                                         "A.AUTHOR_KEY"};
  for (int i = 0; i < iters; ++i) {
    std::string sql = "SELECT ";
    switch (rng.Uniform(3)) {
      case 0:
        sql += "*";
        break;
      case 1:
        sql += "A.NAME, S.TITLE";
        break;
      default:
        sql += "S.SIMULATION_KEY, A.AUTHOR_KEY, S.RE";
    }
    if (rng.OneIn(2)) {
      sql += " FROM SIMULATION S JOIN AUTHOR A"
             " ON S.AUTHOR_KEY = A.AUTHOR_KEY";
      sql += RandomWhere(rng, cols);
    } else {
      sql += " FROM SIMULATION S, AUTHOR A";
      sql += " WHERE S.AUTHOR_KEY = A.AUTHOR_KEY";
      sql += RandomWhere(rng, cols, " AND ");
    }
    bool ordered = rng.OneIn(2);
    if (ordered) {
      sql += " ORDER BY " + cols[rng.Uniform(cols.size())];
      if (rng.OneIn(2)) sql += " DESC";
      sql += ", S.SIMULATION_KEY";
      if (rng.OneIn(3)) sql += " LIMIT " + std::to_string(1 + rng.Uniform(12));
    }
    CheckEquivalent(sql, ordered);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

TEST_F(DifferentialFuzzTest, AggregateSelects) {
  const int iters = FuzzIters(200);
  Random rng(0xA66E);
  static const char* kAggs[] = {"COUNT(*)", "SUM(RE)", "MIN(RE)", "MAX(RE)",
                                "AVG(RE)", "COUNT(AUTHOR_KEY)"};
  const std::vector<std::string> cols = {"SIMULATION_KEY", "AUTHOR_KEY", "RE"};
  for (int i = 0; i < iters; ++i) {
    std::string sql = "SELECT ";
    bool grouped = rng.OneIn(2);
    if (grouped) sql += "AUTHOR_KEY, ";
    sql += kAggs[rng.Uniform(6)];
    if (rng.OneIn(2)) {
      sql += ", ";
      sql += kAggs[rng.Uniform(6)];
    }
    sql += " FROM SIMULATION";
    // A LIKE conjunct forces the aggregate onto mixed filter shapes: a
    // prefix pattern keeps the columnar fast path via the radix index, a
    // non-pushable one falls back to the row path.
    if (rng.OneIn(3)) {
      sql += " WHERE " + RandomLikePredicate(rng);
      sql += RandomWhere(rng, cols, " AND ");
    } else {
      sql += RandomWhere(rng, cols);
    }
    if (grouped) {
      sql += " GROUP BY AUTHOR_KEY";
      if (rng.OneIn(3)) sql += " HAVING COUNT(*) > 1";
    }
    CheckEquivalent(sql, /*ordered=*/false);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

TEST_F(DifferentialFuzzTest, NearInt64MaxAggregates) {
  // SUM/AVG accumulation near the INT64 boundary: the row executor, the
  // planner fast path and the columnar aggregation kernel must widen (or
  // saturate) identically, so a sum that would wrap in 64 bits renders
  // the same on all four paths. Seeded values cluster at +/-INT64_MAX so
  // two-element partial sums already overflow.
  ExecBoth(
      "CREATE TABLE EXTREME ("
      " ID INTEGER NOT NULL,"
      " G INTEGER,"
      " V INTEGER,"
      " PRIMARY KEY (ID))");
  Random rng(0xB16);
  static const char* kValues[] = {
      "9223372036854775807",   // INT64_MAX
      "9223372036854775806",   // INT64_MAX - 1
      "-9223372036854775807",  // INT64_MIN + 1
      "-9223372036854775806",
      "4611686018427387904",   // 2^62
      "-4611686018427387904",
      "1",
      "-1",
      "0",
      "NULL"};
  for (int i = 1; i <= 40; ++i) {
    ExecBoth("INSERT INTO EXTREME VALUES (" + std::to_string(i) + ", " +
             std::to_string(rng.Uniform(4)) + ", " +
             kValues[rng.Uniform(10)] + ")");
  }
  static const char* kAggs[] = {"SUM(V)", "AVG(V)", "MIN(V)", "MAX(V)",
                                "COUNT(V)"};
  const int iters = FuzzIters(200);
  for (int i = 0; i < iters; ++i) {
    std::string sql = "SELECT ";
    bool grouped = rng.OneIn(2);
    if (grouped) sql += "G, ";
    sql += kAggs[rng.Uniform(5)];
    if (rng.OneIn(2)) {
      sql += ", ";
      sql += kAggs[rng.Uniform(5)];
    }
    sql += " FROM EXTREME";
    switch (rng.Uniform(4)) {
      case 0:
        sql += " WHERE V > 0";
        break;
      case 1:
        sql += " WHERE V < 0";
        break;
      case 2:
        sql += " WHERE V IS NOT NULL";
        break;
      default:
        break;  // unfiltered: the full +/-INT64_MAX mix
    }
    if (grouped) sql += " GROUP BY G";
    CheckEquivalent(sql, /*ordered=*/false);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

TEST_F(DifferentialFuzzTest, PrefixLikeSelects) {
  const int iters = FuzzIters(300);
  Random rng(0x11CE);
  const std::vector<std::string> cols = {"SIMULATION_KEY", "AUTHOR_KEY", "RE"};
  for (int i = 0; i < iters; ++i) {
    std::string sql = "SELECT ";
    switch (rng.Uniform(3)) {
      case 0:
        sql += "*";
        break;
      case 1:
        sql += "TITLE";
        break;
      default:
        sql += "SIMULATION_KEY, TITLE";
    }
    sql += " FROM SIMULATION WHERE " + RandomLikePredicate(rng);
    if (rng.OneIn(3)) sql += " AND " + RandomPredicate(rng, cols);
    if (rng.OneIn(4)) sql += " OR " + RandomLikePredicate(rng);
    bool ordered = rng.OneIn(2);
    if (ordered) {
      sql += " ORDER BY TITLE, SIMULATION_KEY";
      if (rng.OneIn(3)) sql += " LIMIT " + std::to_string(1 + rng.Uniform(10));
    }
    CheckEquivalent(sql, ordered);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

}  // namespace
}  // namespace easia::db
