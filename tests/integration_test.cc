// End-to-end tests across the whole EASIA stack: archive-in-place, SQL/MED
// transaction consistency between database and file servers, coordinated
// backup/recovery, crash recovery, and the guest permission matrix.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "fileserver/url.h"
#include "turbulence/tbf.h"

namespace easia {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = std::make_unique<core::Archive>();
    for (const char* host : {"fs1", "fs2", "fs3"}) {
      archive_->AddFileServer(host);
    }
    archive_->AddClientHost("client");
    ASSERT_TRUE(core::CreateTurbulenceSchema(archive_.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1", "fs2", "fs3"};
    seed.simulations = 2;
    seed.timesteps_per_simulation = 3;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive_.get(), seed);
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
    seeded_ = *seeded;
    ASSERT_TRUE(archive_->InitializeXuis().ok());
    ASSERT_TRUE(archive_->AddUser("alice", "pw",
                                  web::UserRole::kAuthorised).ok());
  }

  std::unique_ptr<core::Archive> archive_;
  std::vector<core::SeededSimulation> seeded_;
};

TEST_F(IntegrationTest, DatasetsDistributedAcrossHosts) {
  std::set<std::string> hosts;
  for (const auto& sim : seeded_) {
    for (const std::string& url : sim.dataset_urls) {
      hosts.insert(fs::ParseFileUrl(url)->host);
    }
  }
  EXPECT_EQ(hosts.size(), 3u);
  EXPECT_EQ(archive_->med().TotalLinkedFiles(), 6u);
}

TEST_F(IntegrationTest, EveryDatasetPinnedOnItsHost) {
  for (const auto& sim : seeded_) {
    for (const std::string& url : sim.dataset_urls) {
      auto resolved = archive_->fleet().Resolve(url);
      ASSERT_TRUE(resolved.ok());
      EXPECT_TRUE(resolved->first->vfs().IsPinned(resolved->second.path))
          << url;
    }
  }
}

TEST_F(IntegrationTest, TokenisedDownloadEndToEnd) {
  auto rows = archive_->Execute(
      "SELECT DOWNLOAD_RESULT FROM RESULT_FILE", "alice");
  ASSERT_TRUE(rows.ok());
  for (const db::Row& row : rows->rows) {
    std::string url = row[0].AsString();
    EXPECT_NE(url.find(';'), std::string::npos);
    auto seconds = archive_->Download(url, "client");
    ASSERT_TRUE(seconds.ok()) << seconds.status().ToString();
    EXPECT_GT(*seconds, 0.0);
  }
}

TEST_F(IntegrationTest, GuestDownloadRefusedEndToEnd) {
  auto rows = archive_->Execute(
      "SELECT DOWNLOAD_RESULT FROM RESULT_FILE", "guest");
  ASSERT_TRUE(rows.ok());
  std::string url = rows->rows[0][0].AsString();
  EXPECT_EQ(url.find(';'), std::string::npos);  // no token for guests
  EXPECT_TRUE(archive_->Download(url, "client").status()
                  .IsPermissionDenied());
}

TEST_F(IntegrationTest, TransactionSpanningDbAndFiles) {
  // Archive a new file and register it inside an explicit transaction.
  auto server = archive_->fleet().GetServer("fs1");
  turb::Field field = turb::Field::Generate(8, 0.9, 0.01);
  ASSERT_TRUE((*server)->vfs().WriteFile("/archive/extra.tbf",
                                         turb::SerializeTbf(field, 9)).ok());
  ASSERT_TRUE(archive_->Execute("BEGIN").ok());
  ASSERT_TRUE(archive_->Execute(
      "INSERT INTO RESULT_FILE (FILE_NAME, SIMULATION_KEY, FILE_FORMAT, "
      "DOWNLOAD_RESULT) VALUES ('extra.tbf', '" +
      seeded_[0].simulation_key +
      "', 'TBF', 'http://fs1/archive/extra.tbf')").ok());
  // Not yet pinned (pending link).
  EXPECT_FALSE((*server)->vfs().IsPinned("/archive/extra.tbf"));
  ASSERT_TRUE(archive_->Execute("COMMIT").ok());
  EXPECT_TRUE((*server)->vfs().IsPinned("/archive/extra.tbf"));
}

TEST_F(IntegrationTest, AbortedTransactionLeavesNoTrace) {
  auto server = archive_->fleet().GetServer("fs2");
  ASSERT_TRUE((*server)->vfs().WriteFile("/archive/tmp.tbf", "x").ok());
  size_t linked_before = archive_->med().TotalLinkedFiles();
  ASSERT_TRUE(archive_->Execute("BEGIN").ok());
  ASSERT_TRUE(archive_->Execute(
      "INSERT INTO RESULT_FILE (FILE_NAME, SIMULATION_KEY, "
      "DOWNLOAD_RESULT) VALUES ('tmp.tbf', '" + seeded_[0].simulation_key +
      "', 'http://fs2/archive/tmp.tbf')").ok());
  ASSERT_TRUE(archive_->Execute("ROLLBACK").ok());
  EXPECT_EQ(archive_->med().TotalLinkedFiles(), linked_before);
  EXPECT_FALSE((*server)->vfs().IsPinned("/archive/tmp.tbf"));
  EXPECT_EQ(archive_->Execute("SELECT * FROM RESULT_FILE WHERE "
                              "FILE_NAME = 'tmp.tbf'")->rows.size(), 0u);
}

TEST_F(IntegrationTest, FailedInsertInMultiRowStatementUnwindsLinks) {
  auto server = archive_->fleet().GetServer("fs1");
  ASSERT_TRUE((*server)->vfs().WriteFile("/archive/ok.tbf", "x").ok());
  // Second row references a missing file: whole statement must fail and the
  // first row's link intent must be released.
  Status s = archive_->Execute(
      "INSERT INTO RESULT_FILE (FILE_NAME, SIMULATION_KEY, DOWNLOAD_RESULT) "
      "VALUES ('ok.tbf', '" + seeded_[0].simulation_key +
      "', 'http://fs1/archive/ok.tbf'), "
      "('bad.tbf', '" + seeded_[0].simulation_key +
      "', 'http://fs1/archive/missing.tbf')").status();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE((*server)->vfs().IsPinned("/archive/ok.tbf"));
  // The file can be linked by a later, valid statement.
  EXPECT_TRUE(archive_->Execute(
      "INSERT INTO RESULT_FILE (FILE_NAME, SIMULATION_KEY, DOWNLOAD_RESULT) "
      "VALUES ('ok.tbf', '" + seeded_[0].simulation_key +
      "', 'http://fs1/archive/ok.tbf')").ok());
}

TEST_F(IntegrationTest, CoordinatedBackupRestore) {
  ASSERT_TRUE(core::AttachGetImageOperation(
      archive_.get(), seeded_[0].simulation_key, 8).ok());
  auto backup_id = archive_->backups().CreateBackup();
  ASSERT_TRUE(backup_id.ok()) << backup_id.status().ToString();

  // Disaster: a host loses a RECOVERY YES dataset file behind our back.
  auto resolved = archive_->fleet().Resolve(seeded_[0].dataset_urls[0]);
  ASSERT_TRUE(resolved.ok());
  fs::FileServer* server = resolved->first;
  std::string path = resolved->second.path;
  ASSERT_TRUE(server->vfs().Unpin(path).ok());  // simulate FS-level loss
  ASSERT_TRUE(server->vfs().DeleteFile(path).ok());
  // Also corrupt the database by deleting all metadata.
  ASSERT_TRUE(archive_->Execute("DELETE FROM VISUALISATION_FILE").ok());

  ASSERT_TRUE(archive_->backups().Restore(*backup_id).ok());
  // The file is back, pinned, and its metadata row exists again.
  EXPECT_TRUE(server->vfs().Exists(path));
  EXPECT_TRUE(server->vfs().IsPinned(path));
  auto rows = archive_->Execute(
      "SELECT COUNT(*) FROM RESULT_FILE");
  EXPECT_EQ(rows->rows[0][0].AsInt(), 6);
  // Reconcile confirms a clean archive.
  auto report = archive_->backups().Reconcile();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Clean());
  EXPECT_EQ(report->values_checked, 7u);  // 6 datasets + GetImage.jar
}

TEST_F(IntegrationTest, ReconcileReportsDanglingFiles) {
  auto resolved = archive_->fleet().Resolve(seeded_[1].dataset_urls[0]);
  ASSERT_TRUE(resolved.ok());
  ASSERT_TRUE(resolved->first->vfs().Unpin(resolved->second.path).ok());
  ASSERT_TRUE(resolved->first->vfs().DeleteFile(resolved->second.path).ok());
  auto report = archive_->backups().Reconcile();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->Clean());
  ASSERT_EQ(report->dangling_urls.size(), 1u);
  EXPECT_EQ(report->dangling_urls[0], seeded_[1].dataset_urls[0]);
}

TEST_F(IntegrationTest, GuestPermissionMatrix) {
  ASSERT_TRUE(archive_->InitializeXuis().ok());
  ASSERT_TRUE(core::AttachGetImageOperation(
      archive_.get(), seeded_[0].simulation_key, 8).ok());
  ASSERT_TRUE(core::AttachNativeOperations(archive_.get()).ok());
  ASSERT_TRUE(core::AttachCodeUpload(archive_.get()).ok());
  std::string guest = *archive_->Login("guest", "guest");
  std::string alice = *archive_->Login("alice", "pw");
  std::string dataset = seeded_[0].dataset_urls[0];

  struct Case {
    const char* path;
    fs::HttpParams params;
    int guest_status;
    int alice_status;
  };
  std::vector<Case> cases = {
      {"/tables", {}, 200, 200},
      {"/search", {{"table", "RESULT_FILE"}, {"all", "1"}}, 200, 200},
      // Guest-accessible operation.
      {"/runop",
       {{"op", "GetImage"}, {"dataset", dataset}, {"slice", "x1"}},
       200, 200},
      // Authorised-only operation.
      {"/runop", {{"op", "Subsample"}, {"dataset", dataset}}, 403, 200},
      // Code upload.
      {"/upload",
       {{"table", "RESULT_FILE"}, {"column", "DOWNLOAD_RESULT"},
        {"dataset", dataset}, {"code", "print(1);"}},
       403, 200},
      // User management.
      {"/users", {}, 403, 403},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(archive_->Get(guest, c.path, c.params).status, c.guest_status)
        << "guest " << c.path;
    EXPECT_EQ(archive_->Get(alice, c.path, c.params).status, c.alice_status)
        << "alice " << c.path;
  }
}

TEST_F(IntegrationTest, SdbUrlOperationEndToEnd) {
  ASSERT_TRUE(core::AttachSdbUrlOperation(archive_.get(), "fs1").ok());
  std::string alice = *archive_->Login("alice", "pw");
  // Find a dataset hosted on fs1.
  std::string dataset;
  for (const auto& sim : seeded_) {
    for (const std::string& url : sim.dataset_urls) {
      if (url.find("//fs1/") != std::string::npos) dataset = url;
    }
  }
  ASSERT_FALSE(dataset.empty());
  auto resp = archive_->Get(alice, "/runop",
                            {{"op", "SDB"}, {"dataset", dataset}});
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("NCSA Scientific Data Browser"),
            std::string::npos);
}

// Crash-recovery across the full stack: a persistent database plus file
// servers; after "crash" (new Database over the same WAL), reconcile
// re-establishes link state.
TEST(PersistenceIntegrationTest, CrashRecoveryThenReconcile) {
  namespace stdfs = std::filesystem;
  stdfs::path dir = stdfs::temp_directory_path() / "easia_integration_wal";
  stdfs::remove_all(dir);
  stdfs::create_directories(dir);
  core::Archive::Options options;
  options.db_options.wal_path = (dir / "wal.log").string();
  options.db_options.snapshot_path = (dir / "snap.db").string();

  std::string dataset_url;
  {
    core::Archive archive(options);
    archive.AddFileServer("fs1");
    ASSERT_TRUE(archive.database().Recover().ok());
    ASSERT_TRUE(core::CreateTurbulenceSchema(&archive).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1"};
    seed.simulations = 1;
    seed.timesteps_per_simulation = 1;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(&archive, seed);
    ASSERT_TRUE(seeded.ok());
    dataset_url = (*seeded)[0].dataset_urls[0];
  }  // archive (and its "machines") go away — crash

  {
    core::Archive archive(options);
    fs::FileServer* server = archive.AddFileServer("fs1");
    // The file server's disk survived; re-materialise its file.
    turb::Field field = turb::Field::Generate(8, 0.0, 0.01);
    auto parsed = fs::ParseFileUrl(dataset_url);
    ASSERT_TRUE(server->vfs().WriteFile(parsed->path,
                                        turb::SerializeTbf(field, 0)).ok());
    // Database recovers from WAL.
    ASSERT_TRUE(archive.database().Recover().ok());
    auto rows = archive.Execute("SELECT COUNT(*) FROM RESULT_FILE");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows[0][0].AsInt(), 1);
    // Link state is gone (it lived on the "crashed" agent); reconcile
    // restores it from DATALINK values.
    auto report = archive.backups().Reconcile();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->relinked, 1u);
    EXPECT_TRUE(server->vfs().IsPinned(parsed->path));
  }
  stdfs::remove_all(dir);
}

}  // namespace
}  // namespace easia
