// Cross-cutting coverage: schema SQL round trips, code-location error
// paths, web error paths, XML fragment helper, and renderer guards.
#include <gtest/gtest.h>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "db/parser.h"
#include "ops/engine.h"
#include "web/qbe.h"
#include "xml/parser.h"

namespace easia {
namespace {

TEST(SchemaSqlTest, TurbulenceSchemaRoundTripsThroughToSql) {
  // Every CREATE TABLE the archive uses must regenerate to parseable SQL
  // that produces an identical definition (snapshot/recovery relies on it).
  core::Archive archive;
  ASSERT_TRUE(core::CreateTurbulenceSchema(&archive).ok());
  for (const std::string& name : archive.database().catalog().TableNames()) {
    auto def = archive.database().catalog().GetTable(name);
    ASSERT_TRUE(def.ok());
    std::string sql = (*def)->ToSql();
    auto reparsed = db::ParseSql(sql);
    ASSERT_TRUE(reparsed.ok()) << sql << "\n" << reparsed.status().ToString();
    const db::TableDef& again = reparsed->create_table->def;
    EXPECT_EQ(again.columns.size(), (*def)->columns.size()) << name;
    EXPECT_EQ(again.primary_key, (*def)->primary_key) << name;
    EXPECT_EQ(again.foreign_keys.size(), (*def)->foreign_keys.size());
    for (size_t i = 0; i < again.columns.size(); ++i) {
      EXPECT_EQ(again.columns[i].type, (*def)->columns[i].type);
      if ((*def)->columns[i].datalink.has_value()) {
        ASSERT_TRUE(again.columns[i].datalink.has_value());
        EXPECT_EQ(*again.columns[i].datalink, *(*def)->columns[i].datalink);
      }
    }
  }
}

TEST(XmlFragmentTest, ParseElementHelper) {
  auto node = xml::ParseElement("  <a x='1'><b/></a>  ");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->name(), "a");
  EXPECT_FALSE(xml::ParseElement("<a/><b/>").ok());
  EXPECT_FALSE(xml::ParseElement("just text").ok());
}

class CoverageFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = std::make_unique<core::Archive>();
    archive_->AddFileServer("fs1", 8.0);
    ASSERT_TRUE(core::CreateTurbulenceSchema(archive_.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1"};
    seed.simulations = 1;
    seed.timesteps_per_simulation = 1;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive_.get(), seed);
    ASSERT_TRUE(seeded.ok());
    seeded_ = *seeded;
    ASSERT_TRUE(archive_->InitializeXuis().ok());
    ASSERT_TRUE(archive_->AddUser("alice", "pw",
                                  web::UserRole::kAuthorised).ok());
  }

  std::unique_ptr<core::Archive> archive_;
  std::vector<core::SeededSimulation> seeded_;
};

TEST_F(CoverageFixture, BrowseSqlValidation) {
  const xuis::XuisSpec& spec = archive_->xuis().Default();
  auto good = web::BrowseSql(spec, "SIMULATION", "SIMULATION_KEY", "S1");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good,
            "SELECT * FROM SIMULATION WHERE SIMULATION_KEY = 'S1'");
  // Numeric columns take unquoted literals, with validation.
  auto numeric = web::BrowseSql(spec, "SIMULATION", "GRID_SIZE", "64");
  ASSERT_TRUE(numeric.ok());
  EXPECT_NE(numeric->find("GRID_SIZE = 64"), std::string::npos);
  EXPECT_FALSE(web::BrowseSql(spec, "SIMULATION", "GRID_SIZE",
                              "64 OR 1=1").ok());
  EXPECT_FALSE(web::BrowseSql(spec, "NOPE", "X", "1").ok());
  EXPECT_FALSE(web::BrowseSql(spec, "SIMULATION", "NOPE", "1").ok());
  // Quote escaping in string values.
  auto quoted = web::BrowseSql(spec, "AUTHOR", "NAME", "O'Brien");
  ASSERT_TRUE(quoted.ok());
  EXPECT_NE(quoted->find("'O''Brien'"), std::string::npos);
}

TEST_F(CoverageFixture, RunOpErrorPaths) {
  std::string alice = *archive_->Login("alice", "pw");
  EXPECT_EQ(archive_->Get(alice, "/runop", {{"op", "Nope"}}).status, 404);
  ASSERT_TRUE(core::AttachNativeOperations(archive_.get()).ok());
  EXPECT_EQ(archive_->Get(alice, "/runop", {{"op", "FieldStats"}}).status,
            400);  // missing dataset
  EXPECT_EQ(archive_->Get(alice, "/runop",
                          {{"op", "FieldStats"},
                           {"dataset", "http://fs1/missing.tbf"}})
                .status,
            400);
}

TEST_F(CoverageFixture, CodeLocationQueryErrors) {
  // database.result pointing at no rows / several rows.
  ASSERT_TRUE(archive_->Execute(
      "INSERT INTO CODE_FILE (CODE_NAME, CODE_TYPE) VALUES "
      "('a.jar', 'X'), ('b.jar', 'X')").ok());
  xuis::OperationSpec op;
  op.name = "Broken";
  op.type = "EASCRIPT";
  op.format = "ea";
  op.guest_access = true;
  op.location.kind = xuis::OperationLocation::Kind::kDatabaseResult;
  op.location.result_colid = "CODE_FILE.DOWNLOAD_CODE_FILE";
  ops::InvocationContext ctx;
  ctx.is_guest = false;
  // Two candidate rows -> ambiguous.
  Status ambiguous = archive_->engine()
                         .Invoke(op, seeded_[0].dataset_urls[0], {}, ctx)
                         .status();
  EXPECT_FALSE(ambiguous.ok());
  // Narrow to one row whose DATALINK is NULL.
  xuis::Condition cond;
  cond.colid = "CODE_FILE.CODE_NAME";
  cond.op = xuis::Condition::Op::kEq;
  cond.value = "a.jar";
  op.location.conditions.push_back(cond);
  Status null_code = archive_->engine()
                         .Invoke(op, seeded_[0].dataset_urls[0], {}, ctx)
                         .status();
  EXPECT_TRUE(null_code.IsNotFound()) << null_code.ToString();
  // No matching row at all.
  op.location.conditions[0].value = "zzz.jar";
  EXPECT_TRUE(archive_->engine()
                  .Invoke(op, seeded_[0].dataset_urls[0], {}, ctx)
                  .status()
                  .IsNotFound());
}

TEST_F(CoverageFixture, UploadConditionGuardsRenderering) {
  // Upload markup with an <if> that only matches MEASUREMENT='u,v,w,p'.
  xuis::UploadSpec upload;
  upload.type = "EASCRIPT";
  upload.format = "ea";
  xuis::Condition cond;
  cond.colid = "RESULT_FILE.MEASUREMENT";
  cond.op = xuis::Condition::Op::kEq;
  cond.value = "somethingelse";
  upload.conditions.push_back(cond);
  xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
  ASSERT_TRUE(c.SetUpload("RESULT_FILE.DOWNLOAD_RESULT", upload).ok());
  std::string alice = *archive_->Login("alice", "pw");
  auto resp = archive_->Get(alice, "/search",
                            {{"table", "RESULT_FILE"}, {"all", "1"}});
  ASSERT_EQ(resp.status, 200);
  // Condition doesn't match the seeded rows -> no upload link rendered.
  EXPECT_EQ(resp.body.find("Upload code"), std::string::npos);
}

TEST_F(CoverageFixture, DatalinkValueMustBeUrlShaped) {
  Status s = archive_->Execute(
      "INSERT INTO RESULT_FILE (FILE_NAME, SIMULATION_KEY, "
      "DOWNLOAD_RESULT) VALUES ('x', '" + seeded_[0].simulation_key +
      "', 'not-a-url')").status();
  EXPECT_FALSE(s.ok());
}

TEST_F(CoverageFixture, CheckpointInsideExplicitTxnRefused) {
  core::Archive::Options options;  // no persistence configured
  core::Archive plain(options);
  EXPECT_FALSE(plain.database().Checkpoint().ok());
}

TEST_F(CoverageFixture, SdbEndpointMissingParam) {
  ASSERT_TRUE(core::AttachSdbUrlOperation(archive_.get(), "fs1").ok());
  auto server = archive_->fleet().GetServer("fs1");
  EXPECT_FALSE(
      (*server)->InvokeEndpoint("/servlet/SDBservlet", {}).ok());
  auto ok = (*server)->InvokeEndpoint(
      "/servlet/SDBservlet",
      {{"file", fs::ParseFileUrl(seeded_[0].dataset_urls[0])->path}});
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok->find("NCSA"), std::string::npos);
}

}  // namespace
}  // namespace easia
