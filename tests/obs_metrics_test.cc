// The /metrics golden test: a scripted workload on an in-memory archive
// under its ManualClock renders the Prometheus text exposition, which must
// match the checked-in golden byte-for-byte (set EASIA_UPDATE_GOLDEN=1 to
// regenerate after an intentional change). A parser round-trip checks the
// text against MetricsRegistry::Collect(), a second identical archive
// checks run-to-run determinism, and registry unit tests pin the naming,
// escaping and conflict rules the exposition relies on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "db/shard/coordinator.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "xuis/customize.h"

#ifndef EASIA_SOURCE_DIR
#error "EASIA_SOURCE_DIR must be defined (see tests/CMakeLists.txt)"
#endif

namespace easia {
namespace {

std::string GoldenPath() {
  return std::string(EASIA_SOURCE_DIR) + "/tests/goldens/obs_metrics.txt";
}

struct ScriptedArchive {
  std::unique_ptr<core::Archive> archive;
  std::string session;
  // The shard coordinator registers pull-style callbacks into the
  // archive's registry, so it must stay alive for every later scrape
  // (network before coordinator: the coordinator borrows the links).
  std::unique_ptr<sim::Network> shard_net;
  std::unique_ptr<db::shard::ShardCoordinator> shard;
};

/// A fixed two-shard workload whose easia_shard_* families the golden
/// captures: one pruned point lookup, one scattered aggregate, one
/// coordinator-side gather.
void RunShardWorkload(ScriptedArchive* out) {
  out->shard_net = std::make_unique<sim::Network>();
  std::vector<std::string> hosts = {"web", "s0", "s1"};
  for (const std::string& h : hosts) out->shard_net->AddHost({h, 50.0, 4});
  for (const std::string& a : hosts) {
    for (const std::string& b : hosts) {
      if (a != b) {
        out->shard_net->AddLink(a, b, sim::BandwidthSchedule::Constant(100.0),
                                0.001);
      }
    }
  }
  db::shard::ShardOptions options;
  options.coordinator_host = "web";
  options.shard_hosts = {"s0", "s1"};
  out->shard = std::make_unique<db::shard::ShardCoordinator>(
      out->shard_net.get(), options);
  db::shard::ShardCoordinator* shard = out->shard.get();
  shard->RegisterMetrics(out->archive->metrics());
  EXPECT_TRUE(shard
                  ->Execute(
                      "CREATE TABLE SAMPLE ("
                      " ID INTEGER NOT NULL,"
                      " V INTEGER,"
                      " PRIMARY KEY (ID))"
                      " PARTITION BY HASH(ID) PARTITIONS 2")
                  .ok());
  for (int i = 1; i <= 8; ++i) {
    EXPECT_TRUE(shard
                    ->Execute("INSERT INTO SAMPLE VALUES (" +
                              std::to_string(i) + ", " +
                              std::to_string(i * 10) + ")")
                    .ok());
  }
  EXPECT_TRUE(shard->Execute("SELECT V FROM SAMPLE WHERE ID = 3").ok());
  EXPECT_TRUE(shard->Execute("SELECT COUNT(*), SUM(V) FROM SAMPLE").ok());
  EXPECT_TRUE(shard->Execute("SELECT DISTINCT V FROM SAMPLE").ok());
}

/// Builds an archive and replays the fixed workload the golden captures:
/// cached + uncached page renders, a query, a batch job, a 404, and a
/// sharded mini-workload feeding the easia_shard_* families.
ScriptedArchive RunScriptedWorkload() {
  ScriptedArchive out;
  core::Archive::Options options;
  out.archive = std::make_unique<core::Archive>(options);
  core::Archive* archive = out.archive.get();
  archive->AddFileServer("fs1", 8.0);
  EXPECT_TRUE(core::CreateTurbulenceSchema(archive).ok());
  core::SeedOptions seed;
  seed.hosts = {"fs1"};
  seed.simulations = 1;
  seed.timesteps_per_simulation = 2;
  seed.grid_n = 8;
  auto seeded = core::SeedTurbulenceData(archive, seed);
  EXPECT_TRUE(seeded.ok());
  EXPECT_TRUE(archive->InitializeXuis().ok());
  EXPECT_TRUE(core::AttachNativeOperations(archive).ok());
  EXPECT_TRUE(archive->AddUser("alice", "pw", web::UserRole::kAuthorised).ok());
  out.session = *archive->Login("alice", "pw");

  const std::string& session = out.session;
  EXPECT_EQ(archive->Get(session, "/tables").status, 200);
  EXPECT_EQ(archive->Get(session, "/tables").status, 200);  // cache hit
  EXPECT_EQ(archive
                ->Get(session, "/browse",
                      {{"table", "RESULT_FILE"},
                       {"column", "SIMULATION_KEY"},
                       {"value", (*seeded)[0].simulation_key}})
                .status,
            200);
  EXPECT_EQ(archive
                ->Get(session, "/search", {{"table", "SIMULATION"},
                                           {"all", "1"}})
                .status,
            200);
  auto submit = archive->Get(session, "/jobs/submit",
                             {{"op", "FieldStats"},
                              {"dataset", (*seeded)[0].dataset_urls[0]}});
  EXPECT_EQ(submit.status, 200) << submit.body;
  EXPECT_EQ(archive->jobs().RunPending(), 1u);
  EXPECT_EQ(archive->Get(session, "/no/such/page").status, 404);
  RunShardWorkload(&out);
  return out;
}

/// One parsed exposition sample (labels kept in rendered order).
struct ParsedSample {
  std::string name;
  obs::Labels labels;
  double value = 0;
};

std::string UnescapeLabelValue(const std::string& in) {
  std::string out;
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '\\' && i + 1 < in.size()) {
      ++i;
      if (in[i] == 'n') {
        out += '\n';
      } else {
        out += in[i];  // \\ and \"
      }
    } else {
      out += in[i];
    }
  }
  return out;
}

/// Minimal Prometheus text-format parser: enough for everything the
/// registry emits. Fails the test on any malformed line. (Out-parameter
/// because ASSERT_* requires a void-returning function.)
void ParseExpositionInto(const std::string& text,
                         std::vector<ParsedSample>* out_samples) {
  std::vector<ParsedSample> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    ParsedSample sample;
    size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    sample.name = line.substr(0, name_end);
    size_t value_start;
    if (line[name_end] == '{') {
      size_t close = line.rfind('}');
      ASSERT_NE(close, std::string::npos) << line;
      std::string body = line.substr(name_end + 1, close - name_end - 1);
      size_t pos = 0;
      while (pos < body.size()) {
        size_t eq = body.find('=', pos);
        ASSERT_NE(eq, std::string::npos) << line;
        std::string key = body.substr(pos, eq - pos);
        ASSERT_EQ(body[eq + 1], '"') << line;
        // Find the closing quote, skipping escaped characters.
        size_t v = eq + 2;
        std::string raw;
        while (v < body.size() && body[v] != '"') {
          if (body[v] == '\\' && v + 1 < body.size()) {
            raw += body[v];
            ++v;
          }
          raw += body[v];
          ++v;
        }
        ASSERT_LT(v, body.size()) << line;
        sample.labels.emplace_back(key, UnescapeLabelValue(raw));
        pos = v + 1;
        if (pos < body.size() && body[pos] == ',') ++pos;
      }
      value_start = close + 2;
    } else {
      value_start = name_end + 1;
    }
    ASSERT_LT(value_start, line.size()) << line;
    std::string value_text = line.substr(value_start);
    if (value_text == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else {
      sample.value = std::strtod(value_text.c_str(), nullptr);
    }
    out.push_back(std::move(sample));
  }
  *out_samples = std::move(out);
}

TEST(ObsMetricsGoldenTest, ScriptedWorkloadMatchesGolden) {
  ScriptedArchive scripted = RunScriptedWorkload();
  auto metrics = scripted.archive->Get(scripted.session, "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4");
  ASSERT_FALSE(metrics.body.empty());

  if (std::getenv("EASIA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << metrics.body;
    out.close();
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << GoldenPath()
      << " — run with EASIA_UPDATE_GOLDEN=1 to create it";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(metrics.body, golden.str())
      << "/metrics drifted from the golden; if the change is intentional, "
         "regenerate with EASIA_UPDATE_GOLDEN=1";
}

TEST(ObsMetricsGoldenTest, ExpositionIsDeterministicAcrossRuns) {
  ScriptedArchive first = RunScriptedWorkload();
  ScriptedArchive second = RunScriptedWorkload();
  auto a = first.archive->Get(first.session, "/metrics");
  auto b = second.archive->Get(second.session, "/metrics");
  ASSERT_EQ(a.status, 200);
  ASSERT_EQ(b.status, 200);
  EXPECT_EQ(a.body, b.body);
  // And stable when nothing happened in between: scraping must not
  // perturb what it measures (beyond its own pre-registered counters).
  auto c = first.archive->Get(first.session, "/metrics");
  auto d = first.archive->Get(first.session, "/metrics");
  ASSERT_EQ(c.status, 200);
  std::vector<ParsedSample> cs, ds;
  ParseExpositionInto(c.body, &cs);
  ParseExpositionInto(d.body, &ds);
  ASSERT_EQ(cs.size(), ds.size());
  for (size_t i = 0; i < cs.size(); ++i) {
    EXPECT_EQ(cs[i].name, ds[i].name);
    EXPECT_EQ(cs[i].labels, ds[i].labels);
    // Only the /metrics route's own counters may have advanced.
    bool self = false;
    for (const auto& [k, v] : cs[i].labels) {
      if (k == "route" && v == "/metrics") self = true;
    }
    if (!self && cs[i].name != "easia_trace_spans_total" &&
        cs[i].name != "easia_http_requests_total") {
      EXPECT_EQ(cs[i].value, ds[i].value) << cs[i].name;
    }
  }
}

TEST(ObsMetricsGoldenTest, ParserRoundTripMatchesCollect) {
  ScriptedArchive scripted = RunScriptedWorkload();
  obs::MetricsRegistry* registry = scripted.archive->metrics();
  ASSERT_NE(registry, nullptr);
  // Render and collect back-to-back with no requests in between, so both
  // views sample identical counter states.
  std::string text = registry->RenderPrometheusText();
  std::vector<obs::MetricSample> collected = registry->Collect();
  std::vector<ParsedSample> parsed;
  ParseExpositionInto(text, &parsed);
  ASSERT_EQ(parsed.size(), collected.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].name, collected[i].name) << i;
    EXPECT_EQ(parsed[i].labels, collected[i].labels) << parsed[i].name;
    EXPECT_EQ(parsed[i].value, collected[i].value) << parsed[i].name;
  }
  // The workload left recognisable marks: served requests per route, a
  // completed job, database activity and a render-cache hit.
  auto value_of = [&](const std::string& name,
                      const obs::Labels& labels) -> double {
    for (const ParsedSample& s : parsed) {
      if (s.name == name && s.labels == labels) return s.value;
    }
    ADD_FAILURE() << "sample not found: " << name;
    return -1;
  };
  EXPECT_EQ(value_of("easia_http_requests_total",
                     {{"code", "200"}, {"route", "/tables"}}),
            2.0);
  EXPECT_EQ(value_of("easia_http_requests_total",
                     {{"code", "404"}, {"route", "other"}}),
            1.0);
  EXPECT_EQ(value_of("easia_jobs_total", {{"event", "succeeded"}}), 1.0);
  EXPECT_GE(value_of("easia_db_queries_total", {}), 1.0);
  EXPECT_GE(value_of("easia_render_cache_events_total", {{"event", "hit"}}),
            1.0);
  EXPECT_EQ(value_of("easia_op_invocations_total", {{"op", "FieldStats"}}),
            1.0);
  // The shard mini-workload ran one statement per strategy: the pruned
  // point lookup forwarded to one shard, the aggregate scattered, the
  // DISTINCT gathered. Writes: CREATE TABLE + 8 INSERTs.
  EXPECT_EQ(value_of("easia_shard_queries_total", {{"strategy", "single"}}),
            1.0);
  EXPECT_EQ(value_of("easia_shard_queries_total", {{"strategy", "scatter"}}),
            1.0);
  EXPECT_EQ(value_of("easia_shard_queries_total", {{"strategy", "gather"}}),
            1.0);
  EXPECT_EQ(value_of("easia_shard_writes_total", {}), 9.0);
  EXPECT_EQ(value_of("easia_shard_rows", {{"shard", "0"}}) +
                value_of("easia_shard_rows", {{"shard", "1"}}),
            8.0);
}

TEST(ObsMetricsRegistryTest, NamingAndFormattingRules) {
  EXPECT_TRUE(obs::MetricsRegistry::ValidMetricName("easia_http_total"));
  EXPECT_TRUE(obs::MetricsRegistry::ValidMetricName("_x9"));
  EXPECT_FALSE(obs::MetricsRegistry::ValidMetricName("9lives"));
  EXPECT_FALSE(obs::MetricsRegistry::ValidMetricName("bad-name"));
  EXPECT_FALSE(obs::MetricsRegistry::ValidMetricName(""));
  EXPECT_TRUE(obs::MetricsRegistry::ValidLabelName("route"));
  EXPECT_FALSE(obs::MetricsRegistry::ValidLabelName("ro-ute"));

  EXPECT_EQ(obs::MetricsRegistry::FormatValue(0), "0");
  EXPECT_EQ(obs::MetricsRegistry::FormatValue(42), "42");
  EXPECT_EQ(obs::MetricsRegistry::FormatValue(-7), "-7");
  EXPECT_EQ(obs::MetricsRegistry::FormatValue(0.5), "0.5");
  EXPECT_EQ(obs::MetricsRegistry::FormatValue(
                std::numeric_limits<double>::infinity()),
            "+Inf");
}

TEST(ObsMetricsRegistryTest, LabelValuesEscapeCleanly) {
  obs::MetricsRegistry registry;
  registry
      .GetCounter("easia_test_total", "test", {{"path", "a\\b\"c\nd"}})
      ->Increment();
  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos)
      << text;
  // And the parser reverses it.
  std::vector<ParsedSample> parsed;
  ParseExpositionInto(text, &parsed);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].labels,
            (obs::Labels{{"path", "a\\b\"c\nd"}}));
}

TEST(ObsMetricsRegistryTest, KindConflictsReturnSinksNotCrashes) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("easia_thing", "as counter");
  ASSERT_NE(counter, nullptr);
  counter->Increment();
  // Same name, different kind: a sink comes back and the family is
  // untouched.
  obs::Gauge* gauge = registry.GetGauge("easia_thing", "as gauge");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(99);
  std::vector<obs::MetricSample> samples = registry.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].value, 1.0);
  // Callback registration refuses taken names.
  EXPECT_FALSE(registry
                   .RegisterCallback(
                       "easia_thing", "dup",
                       obs::MetricsRegistry::CallbackKind::kCounter,
                       [] {
                         return std::vector<std::pair<obs::Labels, double>>{};
                       })
                   .ok());
}

}  // namespace
}  // namespace easia
