#include <gtest/gtest.h>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "ops/archive.h"
#include "ops/engine.h"
#include "ops/native.h"
#include "turbulence/tbf.h"

namespace easia::ops {
namespace {

// ---- Archive container ----

TEST(ArchiveContainerTest, PackUnpackRoundTrip) {
  std::map<std::string, std::string> files = {
      {"main.ea", "print(1);"},
      {"README", "docs"},
      {"data.bin", std::string("\x00\x01\x02", 3)},
  };
  auto back = UnpackArchive(PackArchive(files));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, files);
}

TEST(ArchiveContainerTest, EmptyArchive) {
  auto back = UnpackArchive(PackArchive({}));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(ArchiveContainerTest, DetectsCorruption) {
  std::string packed = PackArchive({{"f", "contents"}});
  EXPECT_FALSE(UnpackArchive("garbage").ok());
  std::string flipped = packed;
  flipped[10] ^= 1;
  EXPECT_FALSE(UnpackArchive(flipped).ok());
  EXPECT_FALSE(UnpackArchive(packed.substr(0, packed.size() - 2)).ok());
}

TEST(ArchiveContainerTest, Formats) {
  EXPECT_TRUE(IsPackedFormat("jar"));
  EXPECT_TRUE(IsPackedFormat("tar.Z"));
  EXPECT_FALSE(IsPackedFormat("ea"));
}

// ---- Native operations ----

class NativeOpsTest : public ::testing::Test {
 protected:
  NativeOpsTest() : registry_(NativeRegistry::BuiltIns()) {
    turb::Field field = turb::Field::Generate(8, 0.0, 0.01);
    bytes_ = turb::SerializeTbf(field, 0);
  }

  NativeRegistry registry_;
  std::string bytes_;
};

TEST_F(NativeOpsTest, RegistryContents) {
  EXPECT_TRUE(registry_.Has("GetImage"));
  EXPECT_TRUE(registry_.Has("FieldStats"));
  EXPECT_TRUE(registry_.Has("SliceCsv"));
  EXPECT_TRUE(registry_.Has("Subsample"));
  EXPECT_TRUE(registry_.Has("KineticEnergy"));
  EXPECT_FALSE(registry_.Get("Nope").ok());
}

TEST_F(NativeOpsTest, GetImageProducesPgm) {
  const NativeOperation* op = *registry_.Get("GetImage");
  auto out = op->run(bytes_, {{"slice", "x2"}, {"type", "v"}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->files.size(), 1u);
  EXPECT_EQ(out->files[0].first, "slice_x2_v.pgm");
  EXPECT_EQ(out->files[0].second.substr(0, 2), "P5");
  EXPECT_NE(out->text.find("GetImage"), std::string::npos);
}

TEST_F(NativeOpsTest, GetImageSeparateIndexParam) {
  const NativeOperation* op = *registry_.Get("GetImage");
  auto out = op->run(bytes_, {{"slice", "y"}, {"index", "3"}, {"type", "p"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->files[0].first, "slice_y3_p.pgm");
}

TEST_F(NativeOpsTest, GetImageRejectsBadParams) {
  const NativeOperation* op = *registry_.Get("GetImage");
  EXPECT_FALSE(op->run(bytes_, {{"slice", "q1"}}).ok());
  EXPECT_FALSE(op->run(bytes_, {{"slice", "x99"}}).ok());
  EXPECT_FALSE(op->run(bytes_, {{"type", "zz"}}).ok());
  EXPECT_FALSE(op->run("not a tbf", {}).ok());
}

TEST_F(NativeOpsTest, FieldStatsCoversAllComponents) {
  const NativeOperation* op = *registry_.Get("FieldStats");
  auto out = op->run(bytes_, {});
  ASSERT_TRUE(out.ok());
  for (const char* comp : {"u:", "v:", "w:", "p:"}) {
    EXPECT_NE(out->text.find(comp), std::string::npos);
  }
}

TEST_F(NativeOpsTest, SubsampleShrinksGrid) {
  const NativeOperation* op = *registry_.Get("Subsample");
  auto out = op->run(bytes_, {{"factor", "2"}});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->files.size(), 1u);
  auto small = turb::ParseTbf(out->files[0].second);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->n(), 4u);
  EXPECT_FALSE(op->run(bytes_, {{"factor", "0"}}).ok());
  EXPECT_FALSE(op->run(bytes_, {{"factor", "99"}}).ok());
}

TEST_F(NativeOpsTest, ReductionModelsMatchRealOutputs) {
  // For every native op, the sparse-path size model should be close to the
  // size actually produced on a materialised dataset.
  for (const std::string& name : registry_.Names()) {
    const NativeOperation* op = *registry_.Get(name);
    auto out = op->run(bytes_, {});
    ASSERT_TRUE(out.ok()) << name;
    uint64_t real = out->TotalFileBytes();
    uint64_t modelled = op->reduction_model(bytes_.size());
    EXPECT_LT(real, modelled * 4 + 512) << name;
    EXPECT_GE(real * 4 + 512, modelled) << name;
  }
}

TEST(GridFromFileBytesTest, InvertsFileBytes) {
  for (size_t n : {8u, 16u, 64u, 128u, 256u}) {
    EXPECT_EQ(GridFromFileBytes(turb::Field::FileBytes(n)), n);
  }
  EXPECT_EQ(GridFromFileBytes(10), 0u);
}

// ---- OperationEngine end to end ----

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = std::make_unique<core::Archive>();
    archive_->AddFileServer("fs1", /*constant_mbps=*/8.0);
    archive_->AddFileServer("fs2", /*constant_mbps=*/8.0);
    ASSERT_TRUE(core::CreateTurbulenceSchema(archive_.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1", "fs2"};
    seed.simulations = 1;
    seed.timesteps_per_simulation = 2;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive_.get(), seed);
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
    seeded_ = *seeded;
    ASSERT_TRUE(archive_->InitializeXuis().ok());
    ASSERT_TRUE(core::AttachGetImageOperation(
        archive_.get(), seeded_[0].simulation_key, 8).ok());
    ASSERT_TRUE(core::AttachNativeOperations(archive_.get()).ok());
    auto spec = archive_->xuis().Default();
    get_image_ = FindOp("GetImage");
    field_stats_ = FindOp("FieldStats");
  }

  xuis::OperationSpec FindOp(const std::string& name) {
    const xuis::XuisColumn* col = archive_->xuis().Default().FindColumnById(
        "RESULT_FILE.DOWNLOAD_RESULT");
    for (const xuis::OperationSpec& op : col->operations) {
      if (op.name == name) return op;
    }
    ADD_FAILURE() << "operation not found: " << name;
    return {};
  }

  InvocationContext AuthorisedCtx() {
    InvocationContext ctx;
    ctx.user = "alice";
    ctx.is_guest = false;
    return ctx;
  }

  std::unique_ptr<core::Archive> archive_;
  std::vector<core::SeededSimulation> seeded_;
  xuis::OperationSpec get_image_;
  xuis::OperationSpec field_stats_;
};

TEST_F(EngineTest, EascriptOperationEndToEnd) {
  auto result = archive_->engine().Invoke(
      get_image_, seeded_[0].dataset_urls[0],
      {{"slice", "x2"}, {"type", "u"}}, AuthorisedCtx());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output.files.size(), 1u);
  EXPECT_EQ(result->output.files[0].first, "slice.pgm");
  EXPECT_EQ(result->output.files[0].second.substr(0, 2), "P5");
  EXPECT_GT(result->script_steps, 0u);
  // Output staged on the dataset's host, downloadable by URL.
  ASSERT_EQ(result->output_urls.size(), 1u);
  auto resolved = archive_->fleet().Resolve(result->output_urls[0]);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->first->vfs().Exists(resolved->second.path));
  // Data reduction: output is far smaller than the dataset.
  EXPECT_LT(result->output_bytes * 10, result->input_bytes);
}

TEST_F(EngineTest, OperationRunsOnDatasetHost) {
  for (const std::string& url : seeded_[0].dataset_urls) {
    auto result = archive_->engine().Invoke(get_image_, url, {},
                                            AuthorisedCtx());
    ASSERT_TRUE(result.ok());
    auto parsed = fs::ParseFileUrl(url);
    EXPECT_EQ(result->host, parsed->host);
  }
}

TEST_F(EngineTest, NativeOperation) {
  auto result = archive_->engine().Invoke(
      field_stats_, seeded_[0].dataset_urls[0], {}, AuthorisedCtx());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->output.text.find("u:"), std::string::npos);
  EXPECT_GT(result->exec_seconds, 0.0);
}

TEST_F(EngineTest, GuestBlockedFromNonGuestOps) {
  xuis::OperationSpec subsample = FindOp("Subsample");
  EXPECT_FALSE(subsample.guest_access);
  InvocationContext guest;
  guest.is_guest = true;
  Status s = archive_->engine()
                 .Invoke(subsample, seeded_[0].dataset_urls[0], {}, guest)
                 .status();
  EXPECT_TRUE(s.IsPermissionDenied());
  // Guest-accessible ops work.
  EXPECT_TRUE(archive_->engine()
                  .Invoke(get_image_, seeded_[0].dataset_urls[0], {}, guest)
                  .ok());
}

TEST_F(EngineTest, CachingAvoidsRecomputation) {
  archive_->engine().set_caching(true);
  auto first = archive_->engine().Invoke(
      get_image_, seeded_[0].dataset_urls[0], {{"slice", "x1"}},
      AuthorisedCtx());
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  auto second = archive_->engine().Invoke(
      get_image_, seeded_[0].dataset_urls[0], {{"slice", "x1"}},
      AuthorisedCtx());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  // Different parameters miss.
  auto third = archive_->engine().Invoke(
      get_image_, seeded_[0].dataset_urls[0], {{"slice", "x2"}},
      AuthorisedCtx());
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->cache_hit);
  const OperationStats stats = archive_->engine().stats().at("GetImage");
  EXPECT_EQ(stats.invocations, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST_F(EngineTest, CacheKeyIgnoresAccessToken) {
  archive_->engine().set_caching(true);
  std::string raw = seeded_[0].dataset_urls[0];
  auto first = archive_->engine().Invoke(get_image_, raw, {},
                                         AuthorisedCtx());
  ASSERT_TRUE(first.ok());
  auto tokenised = fs::WithToken(raw, "SOMETOKEN123");
  ASSERT_TRUE(tokenised.ok());
  auto second = archive_->engine().Invoke(get_image_, *tokenised, {},
                                          AuthorisedCtx());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
}

TEST_F(EngineTest, LruEvictsOldestWhenOverCapacity) {
  archive_->engine().set_caching(true);
  archive_->engine().set_cache_capacity(2);
  const std::string& url = seeded_[0].dataset_urls[0];
  for (const char* slice : {"x1", "x2", "x3"}) {
    ASSERT_TRUE(archive_->engine()
                    .Invoke(get_image_, url, {{"slice", slice}},
                            AuthorisedCtx())
                    .ok());
  }
  EXPECT_EQ(archive_->engine().cache_size(), 2u);
  EXPECT_EQ(archive_->engine().cache_evictions(), 1u);
  EXPECT_EQ(archive_->engine().stats().at("GetImage").cache_evictions, 1u);
  // The oldest entry (x1) was evicted; the newest (x3) survives.
  auto x1 = archive_->engine().Invoke(get_image_, url, {{"slice", "x1"}},
                                      AuthorisedCtx());
  ASSERT_TRUE(x1.ok());
  EXPECT_FALSE(x1->cache_hit);
  auto x3 = archive_->engine().Invoke(get_image_, url, {{"slice", "x3"}},
                                      AuthorisedCtx());
  ASSERT_TRUE(x3.ok());
  EXPECT_TRUE(x3->cache_hit);
}

TEST_F(EngineTest, LruHitPromotesEntry) {
  archive_->engine().set_caching(true);
  archive_->engine().set_cache_capacity(2);
  const std::string& url = seeded_[0].dataset_urls[0];
  auto invoke = [&](const char* slice) {
    auto r = archive_->engine().Invoke(get_image_, url, {{"slice", slice}},
                                       AuthorisedCtx());
    EXPECT_TRUE(r.ok());
    return r->cache_hit;
  };
  invoke("x1");
  invoke("x2");
  EXPECT_TRUE(invoke("x1"));   // promote x1 to most-recent
  invoke("x3");                // evicts x2, not x1
  EXPECT_TRUE(invoke("x1"));
  EXPECT_FALSE(invoke("x2"));
}

TEST_F(EngineTest, ShrinkingCapacityEvictsDownKeepingNewest) {
  archive_->engine().set_caching(true);
  const std::string& url = seeded_[0].dataset_urls[0];
  for (const char* slice : {"x1", "x2", "x3"}) {
    ASSERT_TRUE(archive_->engine()
                    .Invoke(get_image_, url, {{"slice", slice}},
                            AuthorisedCtx())
                    .ok());
  }
  EXPECT_EQ(archive_->engine().cache_size(), 3u);
  archive_->engine().set_cache_capacity(1);
  EXPECT_EQ(archive_->engine().cache_size(), 1u);
  EXPECT_EQ(archive_->engine().cache_evictions(), 2u);
  auto x3 = archive_->engine().Invoke(get_image_, url, {{"slice", "x3"}},
                                      AuthorisedCtx());
  ASSERT_TRUE(x3.ok());
  EXPECT_TRUE(x3->cache_hit);
}

TEST_F(EngineTest, ZeroCapacityDisablesCaching) {
  archive_->engine().set_caching(true);
  archive_->engine().set_cache_capacity(0);
  const std::string& url = seeded_[0].dataset_urls[0];
  for (int i = 0; i < 2; ++i) {
    auto r = archive_->engine().Invoke(get_image_, url, {{"slice", "x1"}},
                                       AuthorisedCtx());
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->cache_hit);
  }
  EXPECT_EQ(archive_->engine().cache_size(), 0u);
}

TEST_F(EngineTest, StatsTrackFailures) {
  auto bad = archive_->engine().Invoke(
      get_image_, seeded_[0].dataset_urls[0], {{"slice", "x99"}},
      AuthorisedCtx());
  EXPECT_FALSE(bad.ok());
  EXPECT_GE(archive_->engine().stats().at("GetImage").failures, 1u);
}

TEST_F(EngineTest, SparseDatasetSimulatesNativeOps) {
  // Archive a paper-scale sparse dataset and run a native op over it.
  auto server = archive_->fleet().GetServer("fs1");
  ASSERT_TRUE((*server)->vfs().CreateSparseFile(
      "/archive/big.tbf", turb::Field::FileBytes(256)).ok());
  ASSERT_TRUE(archive_->Execute(
      "INSERT INTO RESULT_FILE (FILE_NAME, SIMULATION_KEY, FILE_FORMAT, "
      "DOWNLOAD_RESULT) VALUES ('big.tbf', '" + seeded_[0].simulation_key +
      "', 'TBF', 'http://fs1/archive/big.tbf')").ok());
  auto result = archive_->engine().Invoke(
      field_stats_, "http://fs1/archive/big.tbf", {}, AuthorisedCtx());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->output.simulated);
  EXPECT_GT(result->input_bytes, 500000000u);
  EXPECT_LT(result->output_bytes, 1000u);
}

TEST_F(EngineTest, SparseDatasetRejectsScripts) {
  auto server = archive_->fleet().GetServer("fs2");
  ASSERT_TRUE((*server)->vfs().CreateSparseFile("/archive/sparse.tbf",
                                                1000000).ok());
  Status s = archive_->engine()
                 .Invoke(get_image_, "http://fs2/archive/sparse.tbf", {},
                         AuthorisedCtx())
                 .status();
  EXPECT_FALSE(s.ok());
}

TEST_F(EngineTest, UploadedCodeRunsAndWrites) {
  xuis::UploadSpec upload;
  upload.type = "EASCRIPT";
  upload.format = "ea";
  const char* kCode =
      "let s = tbf_stats(arg(0), \"u\");\n"
      "write(\"out.txt\", \"mean=\" + str(s[2]));\n"
      "print(\"done\");\n";
  auto result = archive_->engine().RunUploadedCode(
      upload, kCode, "main.ea", seeded_[0].dataset_urls[0], {},
      AuthorisedCtx());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output.text, "done\n");
  ASSERT_EQ(result->output.files.size(), 1u);
  EXPECT_EQ(result->output.files[0].first, "out.txt");
}

TEST_F(EngineTest, UploadedCodeGuestDenied) {
  xuis::UploadSpec upload;
  upload.guest_access = false;
  InvocationContext guest;
  guest.is_guest = true;
  Status s = archive_->engine()
                 .RunUploadedCode(upload, "print(1);", "main.ea",
                                  seeded_[0].dataset_urls[0], {}, guest)
                 .status();
  EXPECT_TRUE(s.IsPermissionDenied());
}

TEST_F(EngineTest, SandboxBlocksAbsolutePathWrites) {
  xuis::UploadSpec upload;
  upload.format = "ea";
  for (const char* bad : {"write(\"/etc/passwd\", \"x\");",
                          "write(\"../escape\", \"x\");",
                          "read(\"/other/file\");"}) {
    Status s = archive_->engine()
                   .RunUploadedCode(upload, bad, "main.ea",
                                    seeded_[0].dataset_urls[0], {},
                                    AuthorisedCtx())
                   .status();
    EXPECT_TRUE(s.IsPermissionDenied()) << bad << " -> " << s.ToString();
  }
}

TEST_F(EngineTest, SandboxBlocksForeignTbfAccess) {
  xuis::UploadSpec upload;
  upload.format = "ea";
  Status s = archive_->engine()
                 .RunUploadedCode(upload,
                                  "tbf_n(\"/archive/other.tbf\");", "main.ea",
                                  seeded_[0].dataset_urls[0], {},
                                  AuthorisedCtx())
                 .status();
  EXPECT_TRUE(s.IsPermissionDenied());
}

TEST_F(EngineTest, UploadedBundleFormat) {
  xuis::UploadSpec upload;
  upload.type = "EASCRIPT";
  upload.format = "jar";
  std::string bundle = PackArchive(
      {{"entry.ea", "print(\"bundled\");"}, {"lib.ea", "# unused"}});
  auto result = archive_->engine().RunUploadedCode(
      upload, bundle, "entry.ea", seeded_[0].dataset_urls[0], {},
      AuthorisedCtx());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output.text, "bundled\n");
  // Missing entry is an error.
  EXPECT_FALSE(archive_->engine()
                   .RunUploadedCode(upload, bundle, "nope.ea",
                                    seeded_[0].dataset_urls[0], {},
                                    AuthorisedCtx())
                   .ok());
}

TEST_F(EngineTest, UrlOperationInvokesEndpoint) {
  ASSERT_TRUE(core::AttachSdbUrlOperation(archive_.get(), "fs1").ok());
  xuis::OperationSpec sdb = FindOp("SDB");
  // Use a dataset on fs1 so the endpoint's VFS sees it.
  std::string url_on_fs1;
  for (const std::string& url : seeded_[0].dataset_urls) {
    if (url.find("//fs1/") != std::string::npos) url_on_fs1 = url;
  }
  ASSERT_FALSE(url_on_fs1.empty());
  auto result = archive_->engine().Invoke(sdb, url_on_fs1, {},
                                          AuthorisedCtx());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->output.text.find("NCSA Scientific Data Browser"),
            std::string::npos);
  EXPECT_NE(result->output.text.find("8x8x8 grid"), std::string::npos);
}

}  // namespace
}  // namespace easia::ops

namespace easia::ops {
namespace {

// Re-declare a light fixture for the future-work extensions (operation
// chaining + runtime progress monitoring).
class ChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = std::make_unique<core::Archive>();
    archive_->AddFileServer("fs1", 8.0);
    ASSERT_TRUE(core::CreateTurbulenceSchema(archive_.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1"};
    seed.simulations = 1;
    seed.timesteps_per_simulation = 1;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive_.get(), seed);
    ASSERT_TRUE(seeded.ok());
    dataset_ = (*seeded)[0].dataset_urls[0];
    subsample_.name = "Subsample";
    subsample_.type = "NATIVE";
    subsample_.guest_access = true;
    subsample_.location.kind = xuis::OperationLocation::Kind::kUrl;
    subsample_.location.url = "native:builtin";
    get_image_ = subsample_;
    get_image_.name = "GetImage";
    stats_op_ = subsample_;
    stats_op_.name = "FieldStats";
    ctx_.user = "alice";
    ctx_.is_guest = false;
  }

  std::unique_ptr<core::Archive> archive_;
  std::string dataset_;
  xuis::OperationSpec subsample_;
  xuis::OperationSpec get_image_;
  xuis::OperationSpec stats_op_;
  InvocationContext ctx_;
};

TEST_F(ChainTest, SubsampleThenGetImage) {
  // Chain: decimate the 8^3 grid to 4^3, then slice-render the result.
  std::vector<ChainStep> steps = {
      {&subsample_, {{"factor", "2"}}},
      {&get_image_, {{"slice", "x1"}, {"type", "u"}}},
  };
  auto results = archive_->engine().InvokeChain(steps, dataset_, ctx_);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 2u);
  // Step 2 consumed step 1's output (a 4^3 TBF): the PGM is 4x4.
  const std::string& pgm = (*results)[1].output.files[0].second;
  EXPECT_NE(pgm.find("4 4"), std::string::npos) << pgm.substr(0, 20);
  // The intermediate product stayed on fs1 (never crossed the network).
  EXPECT_EQ((*results)[0].host, "fs1");
  EXPECT_EQ((*results)[1].host, "fs1");
}

TEST_F(ChainTest, ChainStopsAtTextOnlyStep) {
  // FieldStats emits stats.txt, which is not a dataset GetImage can read.
  std::vector<ChainStep> steps = {
      {&stats_op_, {}},
      {&get_image_, {}},
  };
  auto results = archive_->engine().InvokeChain(steps, dataset_, ctx_);
  EXPECT_FALSE(results.ok());  // second step fails parsing stats.txt
}

TEST_F(ChainTest, EmptyChainRejected) {
  EXPECT_FALSE(archive_->engine().InvokeChain({}, dataset_, ctx_).ok());
}

TEST_F(ChainTest, ChainGuardsGuestAccessPerStep) {
  subsample_.guest_access = false;
  InvocationContext guest;
  guest.is_guest = true;
  std::vector<ChainStep> steps = {{&subsample_, {}}, {&get_image_, {}}};
  EXPECT_TRUE(archive_->engine()
                  .InvokeChain(steps, dataset_, guest)
                  .status()
                  .IsPermissionDenied());
}

TEST_F(ChainTest, ProgressEventsEmittedInOrder) {
  std::vector<std::string> stages;
  archive_->engine().set_progress_listener(
      [&](const ProgressEvent& event) {
        stages.push_back(std::string(ProgressStageName(event.stage)) + ":" +
                         event.operation);
      });
  ASSERT_TRUE(archive_->engine()
                  .Invoke(get_image_, dataset_, {{"slice", "x1"}}, ctx_)
                  .ok());
  ASSERT_GE(stages.size(), 2u);
  EXPECT_EQ(stages.front(), "executing:GetImage");
  EXPECT_EQ(stages.back(), "done:GetImage");
}

TEST_F(ChainTest, ProgressReportsFailures) {
  std::vector<ProgressEvent> events;
  archive_->engine().set_progress_listener(
      [&](const ProgressEvent& event) { events.push_back(event); });
  (void)archive_->engine().Invoke(get_image_, dataset_, {{"slice", "x99"}},
                                  ctx_);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().stage, ProgressEvent::Stage::kFailed);
  EXPECT_NE(events.back().detail.find("out of range"), std::string::npos);
}

TEST_F(ChainTest, ScriptOperationEmitsAllStages) {
  ASSERT_TRUE(archive_->InitializeXuis().ok());
  ASSERT_TRUE(core::AttachGetImageOperation(archive_.get(),
                                            "S19990100000001", 8).ok());
  const xuis::XuisColumn* col = archive_->xuis().Default().FindColumnById(
      "RESULT_FILE.DOWNLOAD_RESULT");
  const xuis::OperationSpec* script_op = &col->operations[0];
  std::vector<std::string> stages;
  archive_->engine().set_progress_listener(
      [&](const ProgressEvent& event) {
        stages.push_back(std::string(ProgressStageName(event.stage)));
      });
  ASSERT_TRUE(archive_->engine().Invoke(*script_op, dataset_, {}, ctx_).ok());
  EXPECT_EQ(stages, (std::vector<std::string>{
                        "executing", "resolving-code", "staging",
                        "collecting-outputs", "done"}));
}

}  // namespace
}  // namespace easia::ops
