#include <gtest/gtest.h>

#include "db/database.h"

namespace easia::db {
namespace {

class DbExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("TEST");
    Exec("CREATE TABLE AUTHOR ("
         " AUTHOR_KEY VARCHAR(30) NOT NULL,"
         " NAME VARCHAR(80) NOT NULL,"
         " AGE INTEGER,"
         " PRIMARY KEY (AUTHOR_KEY))");
    Exec("CREATE TABLE SIMULATION ("
         " SIMULATION_KEY VARCHAR(30) NOT NULL,"
         " AUTHOR_KEY VARCHAR(30),"
         " TITLE VARCHAR(200),"
         " RE DOUBLE,"
         " PRIMARY KEY (SIMULATION_KEY),"
         " FOREIGN KEY (AUTHOR_KEY) REFERENCES AUTHOR (AUTHOR_KEY))");
    Exec("INSERT INTO AUTHOR VALUES ('A1', 'Papiani', 30)");
    Exec("INSERT INTO AUTHOR VALUES ('A2', 'Wason', 28)");
    Exec("INSERT INTO AUTHOR VALUES ('A3', 'Nicole', NULL)");
    Exec("INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Channel flow', 1600)");
    Exec("INSERT INTO SIMULATION VALUES ('S2', 'A1', 'Decaying box', 3200)");
    Exec("INSERT INTO SIMULATION VALUES ('S3', 'A2', 'Shear layer', 800)");
  }

  QueryResult Exec(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Status ExecErr(const std::string& sql) {
    return db_->Execute(sql).status();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(DbExecTest, SelectAll) {
  QueryResult r = Exec("SELECT * FROM AUTHOR");
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.column_names,
            (std::vector<std::string>{"AUTHOR_KEY", "NAME", "AGE"}));
}

TEST_F(DbExecTest, WhereEquality) {
  QueryResult r = Exec("SELECT NAME FROM AUTHOR WHERE AUTHOR_KEY = 'A2'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Wason");
}

TEST_F(DbExecTest, WhereComparisonAndLogic) {
  QueryResult r = Exec(
      "SELECT SIMULATION_KEY FROM SIMULATION WHERE RE >= 1600 AND "
      "AUTHOR_KEY = 'A1' ORDER BY SIMULATION_KEY");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "S1");
  EXPECT_EQ(r.rows[1][0].AsString(), "S2");
}

TEST_F(DbExecTest, LikeWildcards) {
  QueryResult r = Exec("SELECT NAME FROM AUTHOR WHERE NAME LIKE '%a%'");
  EXPECT_EQ(r.rows.size(), 2u);  // Papiani, Wason
  r = Exec("SELECT NAME FROM AUTHOR WHERE NAME LIKE 'W_son'");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(DbExecTest, NullSemantics) {
  // NULL never matches comparisons...
  QueryResult r = Exec("SELECT NAME FROM AUTHOR WHERE AGE > 0");
  EXPECT_EQ(r.rows.size(), 2u);
  // ...but IS NULL finds it.
  r = Exec("SELECT NAME FROM AUTHOR WHERE AGE IS NULL");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Nicole");
  r = Exec("SELECT NAME FROM AUTHOR WHERE AGE IS NOT NULL");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DbExecTest, OrderByDescAndLimitOffset) {
  QueryResult r = Exec(
      "SELECT SIMULATION_KEY FROM SIMULATION ORDER BY RE DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "S2");
  EXPECT_EQ(r.rows[1][0].AsString(), "S1");
  r = Exec(
      "SELECT SIMULATION_KEY FROM SIMULATION ORDER BY RE DESC "
      "LIMIT 2 OFFSET 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "S3");
}

TEST_F(DbExecTest, OrderByAliasAndPosition) {
  QueryResult r = Exec(
      "SELECT NAME AS n FROM AUTHOR ORDER BY n DESC");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Wason");
  r = Exec("SELECT NAME FROM AUTHOR ORDER BY 1");
  EXPECT_EQ(r.rows[0][0].AsString(), "Nicole");
}

TEST_F(DbExecTest, Distinct) {
  QueryResult r = Exec("SELECT DISTINCT AUTHOR_KEY FROM SIMULATION");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DbExecTest, InList) {
  QueryResult r = Exec(
      "SELECT NAME FROM AUTHOR WHERE AUTHOR_KEY IN ('A1', 'A3')");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DbExecTest, Join) {
  QueryResult r = Exec(
      "SELECT s.TITLE, a.NAME FROM SIMULATION s "
      "JOIN AUTHOR a ON s.AUTHOR_KEY = a.AUTHOR_KEY "
      "WHERE a.NAME = 'Papiani' ORDER BY s.TITLE");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Channel flow");
  EXPECT_EQ(r.rows[0][1].AsString(), "Papiani");
}

TEST_F(DbExecTest, CrossJoinViaComma) {
  QueryResult r = Exec("SELECT a.NAME FROM AUTHOR a, SIMULATION s");
  EXPECT_EQ(r.rows.size(), 9u);  // 3 x 3
}

TEST_F(DbExecTest, AmbiguousColumnRejected) {
  Status s = ExecErr(
      "SELECT AUTHOR_KEY FROM SIMULATION s JOIN AUTHOR a "
      "ON s.AUTHOR_KEY = a.AUTHOR_KEY");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ambiguous"), std::string::npos);
}

TEST_F(DbExecTest, Aggregates) {
  QueryResult r = Exec(
      "SELECT COUNT(*), MIN(RE), MAX(RE), SUM(RE), AVG(RE) FROM SIMULATION");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 800);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 3200);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 5600);
  EXPECT_NEAR(r.rows[0][4].AsDouble(), 5600.0 / 3, 1e-9);
}

TEST_F(DbExecTest, CountIgnoresNulls) {
  QueryResult r = Exec("SELECT COUNT(AGE), COUNT(*) FROM AUTHOR");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
}

TEST_F(DbExecTest, GroupByWithHaving) {
  QueryResult r = Exec(
      "SELECT AUTHOR_KEY, COUNT(*) AS n FROM SIMULATION "
      "GROUP BY AUTHOR_KEY HAVING COUNT(*) > 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "A1");
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
}

TEST_F(DbExecTest, AggregateOverEmptyTable) {
  Exec("CREATE TABLE EMPTYT (x INTEGER)");
  QueryResult r = Exec("SELECT COUNT(*), SUM(x) FROM EMPTYT");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(DbExecTest, ScalarFunctions) {
  QueryResult r = Exec(
      "SELECT UPPER(NAME), LENGTH(NAME), SUBSTR(NAME, 1, 3) FROM AUTHOR "
      "WHERE AUTHOR_KEY = 'A1'");
  EXPECT_EQ(r.rows[0][0].AsString(), "PAPIANI");
  EXPECT_EQ(r.rows[0][1].AsInt(), 7);
  EXPECT_EQ(r.rows[0][2].AsString(), "Pap");
}

TEST_F(DbExecTest, Arithmetic) {
  QueryResult r = Exec("SELECT RE * 2 + 1 FROM SIMULATION WHERE "
                       "SIMULATION_KEY = 'S3'");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 1601);
  Status s = ExecErr("SELECT RE / 0 FROM SIMULATION");
  EXPECT_FALSE(s.ok());
}

TEST_F(DbExecTest, UpdateRows) {
  QueryResult r = Exec("UPDATE AUTHOR SET AGE = AGE + 1 WHERE AGE IS NOT NULL");
  EXPECT_EQ(r.rows_affected, 2u);
  QueryResult check = Exec("SELECT AGE FROM AUTHOR WHERE AUTHOR_KEY = 'A1'");
  EXPECT_EQ(check.rows[0][0].AsInt(), 31);
}

TEST_F(DbExecTest, DeleteRows) {
  QueryResult r = Exec("DELETE FROM SIMULATION WHERE AUTHOR_KEY = 'A1'");
  EXPECT_EQ(r.rows_affected, 2u);
  EXPECT_EQ(Exec("SELECT * FROM SIMULATION").rows.size(), 1u);
}

// --- Constraints ---

TEST_F(DbExecTest, PrimaryKeyDuplicateRejected) {
  Status s = ExecErr("INSERT INTO AUTHOR VALUES ('A1', 'Dup', 1)");
  EXPECT_TRUE(s.IsConstraintViolation());
  // Statement failure must not leave partial state.
  EXPECT_EQ(Exec("SELECT * FROM AUTHOR").rows.size(), 3u);
}

TEST_F(DbExecTest, NotNullRejected) {
  Status s = ExecErr("INSERT INTO AUTHOR (AUTHOR_KEY) VALUES ('A9')");
  EXPECT_TRUE(s.IsConstraintViolation());  // NAME is NOT NULL
}

TEST_F(DbExecTest, PrimaryKeyImplicitlyNotNull) {
  Status s = ExecErr("INSERT INTO AUTHOR VALUES (NULL, 'X', 1)");
  EXPECT_TRUE(s.IsConstraintViolation());
}

TEST_F(DbExecTest, VarcharSizeEnforced) {
  std::string long_key(31, 'k');
  Status s = ExecErr("INSERT INTO AUTHOR VALUES ('" + long_key +
                     "', 'X', 1)");
  EXPECT_TRUE(s.IsConstraintViolation());
}

TEST_F(DbExecTest, ForeignKeyParentMustExist) {
  Status s = ExecErr(
      "INSERT INTO SIMULATION VALUES ('S9', 'NOBODY', 'T', 1)");
  EXPECT_TRUE(s.IsConstraintViolation());
  // NULL FK is allowed.
  EXPECT_TRUE(db_->Execute(
      "INSERT INTO SIMULATION VALUES ('S9', NULL, 'T', 1)").ok());
}

TEST_F(DbExecTest, ParentDeleteRestricted) {
  Status s = ExecErr("DELETE FROM AUTHOR WHERE AUTHOR_KEY = 'A1'");
  EXPECT_TRUE(s.IsConstraintViolation());
  // A3 has no simulations and may go.
  EXPECT_TRUE(db_->Execute("DELETE FROM AUTHOR WHERE AUTHOR_KEY = 'A3'").ok());
}

TEST_F(DbExecTest, ParentKeyUpdateRestricted) {
  Status s = ExecErr(
      "UPDATE AUTHOR SET AUTHOR_KEY = 'AX' WHERE AUTHOR_KEY = 'A1'");
  EXPECT_TRUE(s.IsConstraintViolation());
}

TEST_F(DbExecTest, MultiRowInsertAtomicOnFailure) {
  Status s = ExecErr(
      "INSERT INTO AUTHOR VALUES ('A7', 'Ok', 1), ('A1', 'Dup', 2)");
  EXPECT_TRUE(s.IsConstraintViolation());
  // The whole statement (implicit txn) rolled back: A7 absent.
  EXPECT_EQ(Exec("SELECT * FROM AUTHOR WHERE AUTHOR_KEY = 'A7'").rows.size(),
            0u);
}

TEST_F(DbExecTest, DropTableRespectsReferences) {
  EXPECT_FALSE(ExecErr("DROP TABLE AUTHOR").ok());  // referenced
  EXPECT_TRUE(db_->Execute("DROP TABLE SIMULATION").ok());
  EXPECT_TRUE(db_->Execute("DROP TABLE AUTHOR").ok());
  EXPECT_FALSE(db_->Execute("SELECT * FROM AUTHOR").ok());
}

// --- Transactions ---

TEST_F(DbExecTest, ExplicitCommit) {
  Exec("BEGIN");
  Exec("INSERT INTO AUTHOR VALUES ('A8', 'Txn', 1)");
  Exec("COMMIT");
  EXPECT_EQ(Exec("SELECT * FROM AUTHOR").rows.size(), 4u);
}

TEST_F(DbExecTest, ExplicitRollback) {
  Exec("BEGIN");
  Exec("INSERT INTO AUTHOR VALUES ('A8', 'Txn', 1)");
  Exec("UPDATE AUTHOR SET AGE = 99");
  Exec("ROLLBACK");
  EXPECT_EQ(Exec("SELECT * FROM AUTHOR").rows.size(), 3u);
  EXPECT_EQ(Exec("SELECT AGE FROM AUTHOR WHERE AUTHOR_KEY = 'A1'")
                .rows[0][0]
                .AsInt(),
            30);
}

TEST_F(DbExecTest, FailedStatementAbortsTransaction) {
  Exec("BEGIN");
  Exec("INSERT INTO AUTHOR VALUES ('A8', 'Txn', 1)");
  Status s = ExecErr("INSERT INTO AUTHOR VALUES ('A8', 'Dup', 1)");
  EXPECT_TRUE(s.IsConstraintViolation());
  EXPECT_FALSE(db_->InTransaction());
  // Everything, including the first insert, was rolled back.
  EXPECT_EQ(Exec("SELECT * FROM AUTHOR").rows.size(), 3u);
}

TEST_F(DbExecTest, RollbackOfDdl) {
  Exec("BEGIN");
  Exec("CREATE TABLE SCRATCH (x INTEGER)");
  Exec("INSERT INTO SCRATCH VALUES (1)");
  Exec("ROLLBACK");
  EXPECT_FALSE(db_->Execute("SELECT * FROM SCRATCH").ok());
}

TEST_F(DbExecTest, RollbackOfDropRestoresData) {
  Exec("BEGIN");
  Exec("DELETE FROM SIMULATION");
  Exec("DROP TABLE SIMULATION");
  Exec("ROLLBACK");
  EXPECT_EQ(Exec("SELECT * FROM SIMULATION").rows.size(), 3u);
}

TEST_F(DbExecTest, NestedBeginRejected) {
  Exec("BEGIN");
  EXPECT_FALSE(ExecErr("BEGIN").ok());
}

TEST_F(DbExecTest, CommitWithoutBeginRejected) {
  EXPECT_FALSE(ExecErr("COMMIT").ok());
  EXPECT_FALSE(ExecErr("ROLLBACK").ok());
}

TEST_F(DbExecTest, StatsCount) {
  EXPECT_GT(db_->stats().rows_inserted, 0u);
  Exec("SELECT * FROM AUTHOR");
  EXPECT_GT(db_->stats().queries, 0u);
}

TEST_F(DbExecTest, QueryResultAccessors) {
  QueryResult r = Exec("SELECT NAME, AGE FROM AUTHOR WHERE AUTHOR_KEY='A1'");
  EXPECT_EQ(r.At(0, "NAME")->AsString(), "Papiani");
  EXPECT_FALSE(r.At(0, "NOPE").ok());
  EXPECT_FALSE(r.At(5, "NAME").ok());
}

}  // namespace
}  // namespace easia::db
