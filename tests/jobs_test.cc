// Job-queue subsystem: priority ordering, per-user quotas, retry with
// exponential backoff under ManualClock, deadline timeouts, journal
// round-trips and crash recovery (torn final record tolerated, running
// jobs re-enqueued).
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "jobs/journal.h"
#include "jobs/queue.h"
#include "jobs/scheduler.h"

namespace easia::jobs {
namespace {

// ---- Encoding ----

TEST(JobCodecTest, SpecRoundTrip) {
  JobSpec spec;
  spec.kind = JobKind::kChain;
  spec.user = "alice";
  spec.is_guest = false;
  spec.session_id = "s1";
  spec.operation = "SubsampleThenImage";
  spec.datasets = {"http://fs1/archive/a.tbf", "http://fs2/archive/b.tbf"};
  spec.params = {{"Subsample.factor", "2"}, {"GetImage.type", "u"}};
  spec.priority = 7;
  spec.timeout_seconds = 30;
  spec.max_attempts = 5;
  spec.code = "let x = 1;";
  spec.entry_filename = "main.ea";
  auto decoded = JobSpec::Decode(spec.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, JobKind::kChain);
  EXPECT_EQ(decoded->user, "alice");
  EXPECT_FALSE(decoded->is_guest);
  EXPECT_EQ(decoded->operation, "SubsampleThenImage");
  EXPECT_EQ(decoded->datasets, spec.datasets);
  EXPECT_EQ(decoded->params, spec.params);
  EXPECT_EQ(decoded->priority, 7);
  EXPECT_DOUBLE_EQ(decoded->timeout_seconds, 30);
  EXPECT_EQ(decoded->max_attempts, 5u);
  EXPECT_EQ(decoded->code, "let x = 1;");
}

TEST(JobCodecTest, EventRoundTripCarriesSpecOnlyWhenSubmitted) {
  JobEvent event;
  event.job_id = 42;
  event.state = JobState::kSubmitted;
  event.attempt = 0;
  event.time = 12.5;
  event.spec.operation = "GetImage";
  event.spec.datasets = {"http://fs1/a"};
  auto submitted = JobEvent::Decode(event.Encode());
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(submitted->spec.operation, "GetImage");

  event.state = JobState::kSucceeded;
  event.output_urls = {"http://fs1/tmp/x.pgm"};
  auto finished = JobEvent::Decode(event.Encode());
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(finished->output_urls, event.output_urls);
  EXPECT_TRUE(finished->spec.operation.empty());  // spec not persisted
}

TEST(JobCodecTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(JobEvent::Decode("nonsense").ok());
  EXPECT_FALSE(JobSpec::Decode("\xff\xff").ok());
}

// ---- Queue ----

JobSpec MakeSpec(const std::string& user, bool guest, int priority = 0) {
  JobSpec spec;
  spec.user = user;
  spec.is_guest = guest;
  spec.operation = "FieldStats";
  spec.datasets = {"http://fs1/archive/a.tbf"};
  spec.priority = priority;
  return spec;
}

TEST(JobQueueTest, PriorityOrderFifoWithinBand) {
  JobQueue queue;
  ASSERT_TRUE(queue.Submit(MakeSpec("alice", false, 0), 0).ok());
  ASSERT_TRUE(queue.Submit(MakeSpec("bob", false, 5), 0).ok());
  ASSERT_TRUE(queue.Submit(MakeSpec("carol", false, 5), 0).ok());
  auto first = queue.ClaimNext(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->spec.user, "bob");  // highest priority, earliest id
  auto second = queue.ClaimNext(0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->spec.user, "carol");
  auto third = queue.ClaimNext(0);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->spec.user, "alice");
}

TEST(JobQueueTest, GuestPriorityClamped) {
  JobQueue queue;
  auto job = queue.Submit(MakeSpec("guest", true, 9), 0);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->spec.priority, 0);
}

TEST(JobQueueTest, GuestQueueQuotaRejected) {
  QueueLimits limits;
  limits.guest_queued = 2;
  JobQueue queue(limits);
  ASSERT_TRUE(queue.Submit(MakeSpec("guest", true), 0).ok());
  ASSERT_TRUE(queue.Submit(MakeSpec("guest", true), 0).ok());
  auto third = queue.Submit(MakeSpec("guest", true), 0);
  EXPECT_TRUE(third.status().IsResourceExhausted())
      << third.status().ToString();
  // Other users are unaffected by the guest's full queue.
  EXPECT_TRUE(queue.Submit(MakeSpec("alice", false), 0).ok());
}

TEST(JobQueueTest, ConcurrencyCapSkipsBusyUser) {
  QueueLimits limits;
  limits.guest_concurrent = 1;
  JobQueue queue(limits);
  ASSERT_TRUE(queue.Submit(MakeSpec("guest", true), 0).ok());
  ASSERT_TRUE(queue.Submit(MakeSpec("guest", true), 0).ok());
  ASSERT_TRUE(queue.Submit(MakeSpec("alice", false), 0).ok());
  auto first = queue.ClaimNext(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->spec.user, "guest");
  // Guest is at their cap: the next claim must skip to alice.
  auto second = queue.ClaimNext(0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->spec.user, "alice");
  auto third = queue.ClaimNext(0);
  EXPECT_FALSE(third.has_value());
}

TEST(JobQueueTest, BackoffGateAndNextRetryTime) {
  JobQueue queue;
  auto job = queue.Submit(MakeSpec("alice", false), 0);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(queue.ClaimNext(0).has_value());
  ASSERT_TRUE(queue.MarkRetrying(job->id, 1.0, 5.0, "transient").ok());
  EXPECT_FALSE(queue.ClaimNext(4.9).has_value());
  ASSERT_TRUE(queue.NextRetryTime().has_value());
  EXPECT_DOUBLE_EQ(*queue.NextRetryTime(), 5.0);
  EXPECT_TRUE(queue.ClaimNext(5.0).has_value());
}

TEST(JobQueueTest, CancelRules) {
  JobQueue queue;
  auto job = queue.Submit(MakeSpec("alice", false), 0);
  ASSERT_TRUE(job.ok());
  // Another (non-admin) user may not cancel it; an admin may.
  EXPECT_TRUE(queue.Cancel(job->id, "bob", false, 1)
                  .status().IsPermissionDenied());
  ASSERT_TRUE(queue.Cancel(job->id, "root", true, 1).ok());
  EXPECT_EQ(queue.Get(job->id)->state, JobState::kCancelled);
  // Terminal jobs cannot be re-cancelled; running jobs cannot be killed.
  EXPECT_FALSE(queue.Cancel(job->id, "alice", false, 2).ok());
  auto running = queue.Submit(MakeSpec("alice", false), 0);
  ASSERT_TRUE(queue.ClaimNext(0).has_value());
  EXPECT_FALSE(queue.Cancel(running->id, "alice", false, 1).ok());
}

TEST(JobQueueTest, FinishedHistoryBounded) {
  QueueLimits limits;
  limits.max_finished_jobs = 2;
  JobQueue queue(limits);
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    auto job = queue.Submit(MakeSpec("alice", false), 0);
    ASSERT_TRUE(job.ok());
    ids.push_back(job->id);
    ASSERT_TRUE(queue.ClaimNext(0).has_value());
    ASSERT_TRUE(queue.MarkSucceeded(job->id, 1.0, {}, "", 0.1, {}).ok());
  }
  // Only the two most recent terminal jobs are retained for history.
  EXPECT_TRUE(queue.Get(ids[0]).status().IsNotFound());
  EXPECT_TRUE(queue.Get(ids[1]).status().IsNotFound());
  EXPECT_EQ(queue.Get(ids[2])->state, JobState::kSucceeded);
  EXPECT_EQ(queue.Get(ids[3])->state, JobState::kSucceeded);
  // Open jobs are never pruned, however old.
  auto open = queue.Submit(MakeSpec("alice", false), 0);
  ASSERT_TRUE(open.ok());
  for (int i = 0; i < 4; ++i) {
    // Higher priority so ClaimNext picks these over the idle open job.
    auto job = queue.Submit(MakeSpec("alice", false, 5), 0);
    ASSERT_TRUE(queue.ClaimNext(0).has_value());
    ASSERT_TRUE(queue.MarkSucceeded(job->id, 2.0, {}, "", 0.1, {}).ok());
  }
  EXPECT_EQ(queue.Get(open->id)->state, JobState::kSubmitted);
}

// ---- Journal recovery (unit) ----

std::string TempJournal(const char* name) {
  return testing::TempDir() + "/easia_" + name +
         std::to_string(::getpid()) + ".jobj";
}

TEST(JobJournalTest, RecoversPendingAndFinished) {
  std::string path = TempJournal("recover");
  std::remove(path.c_str());
  {
    auto journal = JobJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    auto submit = [&](JobId id, JobState state, uint32_t attempt) {
      JobEvent event;
      event.job_id = id;
      event.state = state;
      event.attempt = attempt;
      event.time = 1.0;
      if (state == JobState::kSubmitted) {
        event.spec = MakeSpec("alice", false);
      }
      ASSERT_TRUE(journal->Append(event).ok());
    };
    submit(1, JobState::kSubmitted, 0);
    submit(2, JobState::kSubmitted, 0);
    submit(3, JobState::kSubmitted, 0);
    submit(1, JobState::kRunning, 1);
    submit(1, JobState::kSucceeded, 1);
    submit(2, JobState::kRunning, 1);  // crash while running
  }
  auto recovered = RecoverQueue(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->max_job_id, 3u);
  ASSERT_EQ(recovered->finished.size(), 1u);
  EXPECT_EQ(recovered->finished[0].id, 1u);
  ASSERT_EQ(recovered->pending.size(), 2u);
  // Job 2 was mid-flight: re-enqueued with its attempt rolled back so the
  // crash does not eat into the retry budget.
  EXPECT_EQ(recovered->pending[0].id, 2u);
  EXPECT_EQ(recovered->pending[0].state, JobState::kSubmitted);
  EXPECT_EQ(recovered->pending[0].attempts, 0u);
  EXPECT_EQ(recovered->pending[1].id, 3u);
  std::remove(path.c_str());
}

TEST(JobJournalTest, ToleratesTornFinalRecord) {
  std::string path = TempJournal("torn");
  std::remove(path.c_str());
  {
    auto journal = JobJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    JobEvent event;
    event.job_id = 1;
    event.state = JobState::kSubmitted;
    event.spec = MakeSpec("alice", false);
    ASSERT_TRUE(journal->Append(event).ok());
  }
  // Crash mid-write: a frame header promising more bytes than exist.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char torn[] = "\x40\x00\x00\x00\xde\xad\xbe\xefpartial";
  std::fwrite(torn, 1, sizeof(torn) - 1, f);
  std::fclose(f);
  auto recovered = RecoverQueue(path);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->pending.size(), 1u);
  EXPECT_EQ(recovered->pending[0].id, 1u);
  std::remove(path.c_str());
}

// ---- Scheduler over a real archive ----

class JobSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override { archive_ = MakeArchive(); }

  std::unique_ptr<core::Archive> MakeArchive(
      const std::string& journal_path = "") {
    core::Archive::Options options;
    options.job_options.journal_path = journal_path;
    options.job_options.limits.guest_queued = 2;
    auto archive = std::make_unique<core::Archive>(options);
    archive->AddFileServer("fs1", 8.0);
    EXPECT_TRUE(core::CreateTurbulenceSchema(archive.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1"};
    seed.simulations = 1;
    seed.timesteps_per_simulation = 2;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive.get(), seed);
    EXPECT_TRUE(seeded.ok());
    dataset_ = (*seeded)[0].dataset_urls[0];
    EXPECT_TRUE(archive->InitializeXuis().ok());
    EXPECT_TRUE(core::AttachNativeOperations(archive.get()).ok());
    EXPECT_TRUE(
        archive->AddUser("alice", "pw", web::UserRole::kAuthorised).ok());
    return archive;
  }

  /// Registers a native op that fails with a retryable error for its
  /// first `failures` runs, then succeeds.
  void AddFlakyOp(core::Archive* archive, const std::string& name,
                  int failures, bool retryable = true) {
    auto remaining = std::make_shared<int>(failures);
    ops::NativeOperation native;
    native.run = [remaining, retryable](const std::string&,
                                        const fs::HttpParams&)
        -> Result<ops::OperationOutput> {
      if (*remaining > 0) {
        --*remaining;
        if (retryable) return Status::Unavailable("host flapping");
        return Status::InvalidArgument("bad parameters");
      }
      ops::OperationOutput output;
      output.text = "done\n";
      output.files = {{"out.txt", "payload"}};
      return output;
    };
    native.reduction_model = [](uint64_t bytes) { return bytes; };
    archive->engine().natives().Register(name, std::move(native));
    xuis::OperationSpec op;
    op.name = name;
    op.type = "NATIVE";
    op.guest_access = true;
    op.location.kind = xuis::OperationLocation::Kind::kUrl;
    op.location.url = "native:builtin";
    xuis::XuisCustomizer c(archive->xuis().MutableDefault());
    ASSERT_TRUE(c.AddOperation("RESULT_FILE.DOWNLOAD_RESULT", op).ok());
  }

  JobSpec InvokeSpec(const std::string& op,
                     const std::string& user = "alice") {
    JobSpec spec;
    spec.kind = JobKind::kInvoke;
    spec.user = user;
    spec.is_guest = user == "guest";
    spec.operation = op;
    spec.datasets = {dataset_};
    return spec;
  }

  std::unique_ptr<core::Archive> archive_;
  std::string dataset_;
};

TEST_F(JobSchedulerTest, SubmitExecuteSucceeds) {
  auto job = archive_->jobs().Submit(InvokeSpec("FieldStats"));
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(archive_->jobs().queue().Get(job->id)->state,
            JobState::kSubmitted);
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  auto done = archive_->jobs().queue().Get(job->id);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, JobState::kSucceeded);
  EXPECT_EQ(done->attempts, 1u);
  ASSERT_FALSE(done->output_urls.empty());
  EXPECT_NE(done->output_text.find("min"), std::string::npos);
  EXPECT_FALSE(done->progress.empty());
}

TEST_F(JobSchedulerTest, RetryWithBackoffUnderManualClock) {
  AddFlakyOp(archive_.get(), "Flaky", /*failures=*/2);
  auto job = archive_->jobs().Submit(InvokeSpec("Flaky"));
  ASSERT_TRUE(job.ok());
  double t0 = archive_->clock().Now();

  // Attempt 1 fails with a transient error: parked in backoff.
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  auto parked = archive_->jobs().queue().Get(job->id);
  EXPECT_EQ(parked->state, JobState::kRetrying);
  double first_delay = parked->not_before - t0;
  EXPECT_GE(first_delay, 1.0);          // base
  EXPECT_LE(first_delay, 1.25);         // base * (1 + jitter)
  // Still gated: nothing to run until the clock passes not_before.
  EXPECT_EQ(archive_->jobs().RunPending(), 0u);

  // Attempt 2 fails: backoff doubles.
  archive_->clock().Set(parked->not_before);
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  auto parked2 = archive_->jobs().queue().Get(job->id);
  EXPECT_EQ(parked2->state, JobState::kRetrying);
  double second_delay = parked2->not_before - archive_->clock().Now();
  EXPECT_GE(second_delay, 2.0);
  EXPECT_LE(second_delay, 2.5);

  // Attempt 3 succeeds.
  archive_->clock().Set(parked2->not_before);
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  auto done = archive_->jobs().queue().Get(job->id);
  EXPECT_EQ(done->state, JobState::kSucceeded);
  EXPECT_EQ(done->attempts, 3u);
  EXPECT_EQ(archive_->jobs().retries(), 2u);
}

TEST_F(JobSchedulerTest, BackoffIsDeterministicAcrossRuns) {
  auto run_once = [this]() {
    auto archive = MakeArchive();
    AddFlakyOp(archive.get(), "Flaky", /*failures=*/2);
    auto job = archive->jobs().Submit(InvokeSpec("Flaky"));
    EXPECT_EQ(archive->jobs().RunPending(), 1u);
    return archive->jobs().queue().Get(job->id)->not_before;
  };
  double first = run_once();
  double second = run_once();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(first, second);
}

TEST_F(JobSchedulerTest, NonRetryableErrorFailsImmediately) {
  AddFlakyOp(archive_.get(), "BadArgs", /*failures=*/5,
             /*retryable=*/false);
  auto job = archive_->jobs().Submit(InvokeSpec("BadArgs"));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  auto failed = archive_->jobs().queue().Get(job->id);
  EXPECT_EQ(failed->state, JobState::kFailed);
  EXPECT_EQ(failed->attempts, 1u);
  EXPECT_NE(failed->error.find("bad parameters"), std::string::npos);
}

TEST_F(JobSchedulerTest, RetryBudgetExhaustedFails) {
  AddFlakyOp(archive_.get(), "AlwaysDown", /*failures=*/100);
  JobSpec spec = InvokeSpec("AlwaysDown");
  spec.max_attempts = 2;
  auto job = archive_->jobs().Submit(std::move(spec));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  archive_->clock().Advance(100);
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  auto failed = archive_->jobs().queue().Get(job->id);
  EXPECT_EQ(failed->state, JobState::kFailed);
  EXPECT_EQ(failed->attempts, 2u);
}

TEST_F(JobSchedulerTest, DeadlineExpiresQueuedJob) {
  JobSpec spec = InvokeSpec("FieldStats");
  spec.timeout_seconds = 10;
  auto job = archive_->jobs().Submit(std::move(spec));
  ASSERT_TRUE(job.ok());
  archive_->clock().Advance(11);
  EXPECT_EQ(archive_->jobs().RunPending(), 0u);
  auto failed = archive_->jobs().queue().Get(job->id);
  EXPECT_EQ(failed->state, JobState::kFailed);
  EXPECT_NE(failed->error.find("deadline exceeded"), std::string::npos);
}

TEST_F(JobSchedulerTest, DeadlineCutsRetriesShort) {
  AddFlakyOp(archive_.get(), "SlowFlaky", /*failures=*/100);
  JobSpec spec = InvokeSpec("SlowFlaky");
  spec.timeout_seconds = 3;
  spec.max_attempts = 10;
  auto job = archive_->jobs().Submit(std::move(spec));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);  // attempt 1 -> retrying
  archive_->clock().Advance(5);  // past the deadline
  EXPECT_EQ(archive_->jobs().RunPending(), 0u);  // expired, not re-claimed
  EXPECT_EQ(archive_->jobs().queue().Get(job->id)->state, JobState::kFailed);
}

TEST_F(JobSchedulerTest, PriorityOrderObservedByWorkers) {
  std::vector<std::string> order;
  for (const auto& [name, priority] :
       std::vector<std::pair<std::string, int>>{
           {"low", 0}, {"high", 5}, {"mid", 2}}) {
    auto tag = std::make_shared<std::string>(name);
    auto order_ptr = &order;
    ops::NativeOperation native;
    native.run = [tag, order_ptr](const std::string&, const fs::HttpParams&)
        -> Result<ops::OperationOutput> {
      order_ptr->push_back(*tag);
      return ops::OperationOutput{};
    };
    native.reduction_model = [](uint64_t bytes) { return bytes; };
    archive_->engine().natives().Register("Tag_" + name, std::move(native));
    xuis::OperationSpec op;
    op.name = "Tag_" + name;
    op.type = "NATIVE";
    op.guest_access = true;
    op.location.kind = xuis::OperationLocation::Kind::kUrl;
    op.location.url = "native:builtin";
    xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
    ASSERT_TRUE(c.AddOperation("RESULT_FILE.DOWNLOAD_RESULT", op).ok());
    JobSpec spec = InvokeSpec("Tag_" + name);
    spec.priority = priority;
    ASSERT_TRUE(archive_->jobs().Submit(std::move(spec)).ok());
  }
  EXPECT_EQ(archive_->jobs().RunPending(), 3u);
  EXPECT_EQ(order, (std::vector<std::string>{"high", "mid", "low"}));
}

TEST_F(JobSchedulerTest, JournalRecoveryReRunsInFlightJobs) {
  std::string path = TempJournal("scheduler");
  std::remove(path.c_str());
  JobId job_id = 0;
  {
    auto crashed = MakeArchive(path);
    auto job = crashed->jobs().Submit(InvokeSpec("FieldStats"));
    ASSERT_TRUE(job.ok());
    job_id = job->id;
    // Crash before any worker ran the job: destructor drops the queue,
    // only the journal survives.
  }
  auto restarted = MakeArchive(path);
  auto pending = restarted->jobs().queue().Get(job_id);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  EXPECT_EQ(pending->state, JobState::kSubmitted);
  EXPECT_EQ(restarted->jobs().RunPending(), 1u);
  auto done = restarted->jobs().queue().Get(job_id);
  EXPECT_EQ(done->state, JobState::kSucceeded);
  ASSERT_FALSE(done->output_urls.empty());
  // The journal now carries the success: a third incarnation has nothing
  // to re-run but still serves the job's terminal status.
  auto third = MakeArchive(path);
  EXPECT_EQ(third->jobs().RunPending(), 0u);
  EXPECT_EQ(third->jobs().queue().Get(job_id)->state,
            JobState::kSucceeded);
  std::remove(path.c_str());
}

TEST_F(JobSchedulerTest, RecoveryCompactsJournal) {
  std::string path = TempJournal("compact");
  std::remove(path.c_str());
  JobId job_id = 0;
  {
    auto archive = MakeArchive(path);
    AddFlakyOp(archive.get(), "Flaky", /*failures=*/1);
    auto job = archive->jobs().Submit(InvokeSpec("Flaky"));
    ASSERT_TRUE(job.ok());
    job_id = job->id;
    // Attempt 1 fails, backoff, attempt 2 succeeds: the journal has
    // accumulated the full history (submitted, running, retrying,
    // running, succeeded).
    EXPECT_EQ(archive->jobs().RunPending(), 1u);
    archive->clock().Advance(100);
    EXPECT_EQ(archive->jobs().RunPending(), 1u);
    EXPECT_EQ(archive->jobs().queue().Get(job_id)->state,
              JobState::kSucceeded);
    auto events = ReadJournal(path);
    ASSERT_TRUE(events.ok());
    EXPECT_GE(events->size(), 5u);
  }
  // Restart compacts the journal down to the minimal replayable form:
  // one submit plus the terminal transition.
  auto restarted = MakeArchive(path);
  EXPECT_EQ(restarted->jobs().RunPending(), 0u);
  EXPECT_EQ(restarted->jobs().queue().Get(job_id)->state,
            JobState::kSucceeded);
  auto compacted = ReadJournal(path);
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted->size(), 2u);
  // The compacted journal still recovers the same state.
  auto third = MakeArchive(path);
  EXPECT_EQ(third->jobs().RunPending(), 0u);
  EXPECT_EQ(third->jobs().queue().Get(job_id)->state, JobState::kSucceeded);
  std::remove(path.c_str());
}

TEST_F(JobSchedulerTest, ThreadedWorkersDrainTheQueue) {
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(archive_->jobs().Submit(InvokeSpec("FieldStats")).ok());
  }
  archive_->jobs().Start(3);
  for (int spins = 0; spins < 5000; ++spins) {
    if (archive_->jobs().queue().open_count() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  archive_->jobs().Stop();
  EXPECT_EQ(archive_->jobs().queue().open_count(), 0u);
  EXPECT_EQ(archive_->jobs().succeeded(), 6u);
}

}  // namespace
}  // namespace easia::jobs
