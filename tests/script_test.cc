#include <gtest/gtest.h>

#include "script/interpreter.h"

namespace easia::script {
namespace {

class ScriptTest : public ::testing::Test {
 protected:
  Result<ExecutionResult> Run(const std::string& src,
                              std::vector<std::string> args = {}) {
    Interpreter interp(limits_);
    for (auto& [name, fn] : hosts_) interp.RegisterFunction(name, fn);
    return interp.Run(src, args);
  }

  std::string Output(const std::string& src) {
    Result<ExecutionResult> r = Run(src);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->output : "<error>";
  }

  SandboxLimits limits_;
  std::map<std::string, HostFunction> hosts_;
};

TEST_F(ScriptTest, PrintAndArithmetic) {
  EXPECT_EQ(Output("print(1 + 2 * 3);"), "7\n");
  EXPECT_EQ(Output("print((1 + 2) * 3);"), "9\n");
  EXPECT_EQ(Output("print(7 % 3, 7 / 2);"), "1 3.5\n");
  EXPECT_EQ(Output("print(-2 * -3);"), "6\n");
}

TEST_F(ScriptTest, StringsAndConcat) {
  EXPECT_EQ(Output("print(\"a\" + \"b\" + 1);"), "ab1\n");
  EXPECT_EQ(Output("print(len(\"hello\"), substr(\"hello\", 1, 3));"),
            "5 ell\n");
  EXPECT_EQ(Output("print(\"x\\ty\\n\" + \"z\");"), "x\ty\nz\n");
}

TEST_F(ScriptTest, VariablesAndScopes) {
  EXPECT_EQ(Output("let x = 1; { let x = 2; print(x); } print(x);"), "2\n1\n");
  EXPECT_EQ(Output("let x = 1; { x = 5; } print(x);"), "5\n");
}

TEST_F(ScriptTest, AssignToUndeclaredFails) {
  Result<ExecutionResult> r = Run("y = 3;");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("undeclared"), std::string::npos);
}

TEST_F(ScriptTest, IfElseChain) {
  const char* src = R"(
let x = 7;
if (x > 10) { print("big"); }
else if (x > 5) { print("medium"); }
else { print("small"); }
)";
  EXPECT_EQ(Output(src), "medium\n");
}

TEST_F(ScriptTest, WhileWithBreakContinue) {
  const char* src = R"(
let i = 0;
let total = 0;
while (true) {
  i = i + 1;
  if (i > 10) { break; }
  if (i % 2 == 0) { continue; }
  total = total + i;
}
print(total);
)";
  EXPECT_EQ(Output(src), "25\n");  // 1+3+5+7+9
}

TEST_F(ScriptTest, ForLoop) {
  EXPECT_EQ(Output("let s = 0; for (let i = 1; i <= 4; i = i + 1) "
                   "{ s = s + i; } print(s);"),
            "10\n");
}

TEST_F(ScriptTest, Arrays) {
  const char* src = R"(
let a = [1, 2, 3];
push(a, 4);
a[0] = 10;
print(a[0] + a[3], len(a));
print(a);
let p = pop(a);
print(p, len(a));
)";
  EXPECT_EQ(Output(src), "14 4\n[10, 2, 3, 4]\n4 3\n");
}

TEST_F(ScriptTest, ArrayBuiltinAndBounds) {
  EXPECT_EQ(Output("let a = array(3, 0); print(a);"), "[0, 0, 0]\n");
  EXPECT_FALSE(Run("let a = [1]; print(a[5]);").ok());
  EXPECT_FALSE(Run("let a = [1]; a[2] = 1;").ok());
  EXPECT_FALSE(Run("pop([]);").ok());
}

TEST_F(ScriptTest, FunctionsAndRecursion) {
  const char* src = R"(
func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
print(fib(12));
)";
  EXPECT_EQ(Output(src), "144\n");
}

TEST_F(ScriptTest, FunctionsSeeOnlyTheirScope) {
  // No closures: a function cannot read caller locals.
  Result<ExecutionResult> r = Run(
      "let secret = 42; func peek() { return secret; } print(peek());");
  EXPECT_FALSE(r.ok());
}

TEST_F(ScriptTest, MathBuiltins) {
  EXPECT_EQ(Output("print(floor(2.7), ceil(2.2), abs(-3));"), "2 3 3\n");
  EXPECT_EQ(Output("print(sqrt(16), pow(2, 10), min(3, 1), max(3, 1));"),
            "4 1024 1 3\n");
  EXPECT_FALSE(Run("sqrt(-1);").ok());
  EXPECT_FALSE(Run("log(0);").ok());
}

TEST_F(ScriptTest, NumAndStrConversions) {
  EXPECT_EQ(Output("print(num(\"2.5\") * 2, str(7) + \"!\");"), "5 7!\n");
  EXPECT_FALSE(Run("num(\"abc\");").ok());
}

TEST_F(ScriptTest, ComparisonAndLogic) {
  EXPECT_EQ(Output("print(1 < 2, \"a\" < \"b\", 2 == 2.0, 1 != 2);"),
            "true true true true\n");
  EXPECT_EQ(Output("print(true && false, true || false, !true);"),
            "false true false\n");
}

TEST_F(ScriptTest, ShortCircuitEvaluation) {
  // Division by zero on the right side must not run.
  EXPECT_EQ(Output("print(false && (1 / 0 > 0));"), "false\n");
  EXPECT_EQ(Output("print(true || (1 / 0 > 0));"), "true\n");
}

TEST_F(ScriptTest, ArgsBinding) {
  Result<ExecutionResult> r =
      Run("print(arg(0), argc());", {"/data/file.tbf", "x=1"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->output, "/data/file.tbf 2\n");
  EXPECT_FALSE(Run("arg(5);", {"one"}).ok());
}

TEST_F(ScriptTest, HostFunctions) {
  hosts_["double_it"] = [](std::vector<ScriptValue>& args)
      -> Result<ScriptValue> {
    return ScriptValue::Number(args[0].AsNumber() * 2);
  };
  EXPECT_EQ(Output("print(double_it(21));"), "42\n");
}

TEST_F(ScriptTest, HostErrorsPropagateWithContext) {
  hosts_["denied"] = [](std::vector<ScriptValue>&) -> Result<ScriptValue> {
    return Status::PermissionDenied("sandbox says no");
  };
  Status s = Run("denied();").status();
  EXPECT_TRUE(s.IsPermissionDenied());
  EXPECT_NE(s.message().find("denied()"), std::string::npos);
}

TEST_F(ScriptTest, UserFunctionShadowsHost) {
  hosts_["f"] = [](std::vector<ScriptValue>&) -> Result<ScriptValue> {
    return ScriptValue::Number(1);
  };
  EXPECT_EQ(Output("func f() { return 2; } print(f());"), "2\n");
}

TEST_F(ScriptTest, ReturnFromTopLevelStopsExecution) {
  EXPECT_EQ(Output("print(\"a\"); return; print(\"b\");"), "a\n");
}

// --- Sandbox quotas ---

TEST_F(ScriptTest, StepQuotaStopsInfiniteLoop) {
  limits_.max_steps = 10000;
  Status s = Run("while (true) { let x = 1; }").status();
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
}

TEST_F(ScriptTest, MemoryQuotaStopsAllocation) {
  limits_.max_memory_bytes = 100000;
  Status s = Run(
      "let s = \"xxxxxxxxxxxxxxxx\";"
      "for (let i = 0; i < 30; i = i + 1) { s = s + s; }").status();
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
}

TEST_F(ScriptTest, HugeArrayAllocationBlocked) {
  limits_.max_memory_bytes = 1 << 20;
  EXPECT_TRUE(Run("array(100000000, 0);").status().IsResourceExhausted());
}

TEST_F(ScriptTest, CallDepthLimited) {
  limits_.max_call_depth = 32;
  Status s = Run("func f(n) { return f(n + 1); } f(0);").status();
  EXPECT_TRUE(s.IsResourceExhausted());
}

TEST_F(ScriptTest, OutputQuotaEnforced) {
  limits_.max_output_bytes = 100;
  Status s = Run(
      "for (let i = 0; i < 100; i = i + 1) { print(\"0123456789\"); }")
      .status();
  EXPECT_TRUE(s.IsResourceExhausted());
}

TEST_F(ScriptTest, StepsReported) {
  Result<ExecutionResult> r = Run("let x = 1 + 1;");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->steps_used, 0u);
  EXPECT_LT(r->steps_used, 100u);
}

TEST_F(ScriptTest, DeterministicAcrossRuns) {
  const char* src =
      "let t = 0; for (let i = 0; i < 100; i = i + 1) { t = t + i * i; }"
      "print(t);";
  Result<ExecutionResult> a = Run(src);
  Result<ExecutionResult> b = Run(src);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->output, b->output);
  EXPECT_EQ(a->steps_used, b->steps_used);
}

// --- Parse errors ---

TEST_F(ScriptTest, ParseErrorsHaveLineNumbers) {
  Status s = Run("let x = 1;\nlet y = ;").status();
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("eascript:2"), std::string::npos)
      << s.message();
}

TEST_F(ScriptTest, ParseErrorCases) {
  EXPECT_TRUE(Run("let;").status().IsParseError());
  EXPECT_TRUE(Run("if (1) print(1);").status().IsParseError());  // need {}
  EXPECT_TRUE(Run("let x = \"unterminated;").status().IsParseError());
  EXPECT_TRUE(Run("func f( { }").status().IsParseError());
  EXPECT_TRUE(Run("1 + ;").status().IsParseError());
}

TEST_F(ScriptTest, RuntimeTypeErrors) {
  EXPECT_FALSE(Run("print(1 + [1]);").ok());
  EXPECT_FALSE(Run("print(\"a\" - 1);").ok());
  EXPECT_FALSE(Run("print(len(5));").ok());
  EXPECT_FALSE(Run("print(nosuchfn());").ok());
  EXPECT_FALSE(Run("print(1 / 0);").ok());
}

TEST_F(ScriptTest, BreakOutsideLoopRejected) {
  EXPECT_FALSE(Run("break;").ok());
}

TEST_F(ScriptTest, CommentsBothStyles) {
  EXPECT_EQ(Output("# hash comment\n// slash comment\nprint(1);"), "1\n");
}

}  // namespace
}  // namespace easia::script
