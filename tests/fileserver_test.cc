#include <gtest/gtest.h>

#include "fileserver/file_server.h"
#include "fileserver/url.h"
#include "fileserver/vfs.h"

namespace easia::fs {
namespace {

// ---- URL parsing ----

TEST(FileUrlTest, PlainUrl) {
  auto url = ParseFileUrl("http://host.ac.uk/fsys/dir/file.tbf");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->host, "host.ac.uk");
  EXPECT_EQ(url->path, "/fsys/dir/file.tbf");
  EXPECT_EQ(url->filename, "file.tbf");
  EXPECT_TRUE(url->token.empty());
  EXPECT_EQ(url->Directory(), "/fsys/dir/");
  EXPECT_EQ(url->ToString(), "http://host.ac.uk/fsys/dir/file.tbf");
}

TEST(FileUrlTest, TokenisedUrl) {
  // The paper's SELECT form: http://host/fs/dir/access_token;filename
  auto url = ParseFileUrl("http://h/d/TOKEN123;data.tbf");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->token, "TOKEN123");
  EXPECT_EQ(url->filename, "data.tbf");
  EXPECT_EQ(url->path, "/d/data.tbf");
  EXPECT_EQ(url->ToString(), "http://h/d/TOKEN123;data.tbf");
}

TEST(FileUrlTest, WithTokenInserts) {
  auto url = WithToken("http://h/d/f.tbf", "T");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(*url, "http://h/d/T;f.tbf");
}

TEST(FileUrlTest, Rejects) {
  EXPECT_FALSE(ParseFileUrl("ftp://h/f").ok());
  EXPECT_FALSE(ParseFileUrl("http://hostonly").ok());
  EXPECT_FALSE(ParseFileUrl("http://h/dir/").ok());
  EXPECT_FALSE(ParseFileUrl("").ok());
}

// ---- VFS ----

TEST(VfsTest, WriteReadStat) {
  VirtualFileSystem vfs;
  ASSERT_TRUE(vfs.WriteFile("/a/b.txt", "hello", "alice").ok());
  EXPECT_TRUE(vfs.Exists("/a/b.txt"));
  EXPECT_EQ(*vfs.ReadFile("/a/b.txt"), "hello");
  FileStat stat = *vfs.Stat("/a/b.txt");
  EXPECT_EQ(stat.size, 5u);
  EXPECT_EQ(stat.owner, "alice");
  EXPECT_FALSE(stat.sparse);
}

TEST(VfsTest, SparseFilesCarrySizeOnly) {
  VirtualFileSystem vfs;
  ASSERT_TRUE(vfs.CreateSparseFile("/big.tbf", 544000000).ok());
  EXPECT_EQ(vfs.Stat("/big.tbf")->size, 544000000u);
  EXPECT_TRUE(vfs.Stat("/big.tbf")->sparse);
  EXPECT_FALSE(vfs.ReadFile("/big.tbf").ok());
  EXPECT_EQ(vfs.TotalBytes(), 544000000u);
}

TEST(VfsTest, PathValidation) {
  VirtualFileSystem vfs;
  EXPECT_FALSE(vfs.WriteFile("relative.txt", "x").ok());
  EXPECT_FALSE(vfs.WriteFile("/dir/", "x").ok());
  EXPECT_FALSE(vfs.WriteFile("/a/../secret", "x").ok());
  EXPECT_FALSE(vfs.WriteFile("/a/tok;en", "x").ok());
}

TEST(VfsTest, DeleteAndRename) {
  VirtualFileSystem vfs;
  ASSERT_TRUE(vfs.WriteFile("/f1", "x").ok());
  ASSERT_TRUE(vfs.RenameFile("/f1", "/f2").ok());
  EXPECT_FALSE(vfs.Exists("/f1"));
  EXPECT_TRUE(vfs.Exists("/f2"));
  EXPECT_FALSE(vfs.RenameFile("/f2", "/f2").ok());  // exists (itself)
  ASSERT_TRUE(vfs.DeleteFile("/f2").ok());
  EXPECT_FALSE(vfs.DeleteFile("/f2").ok());
}

TEST(VfsTest, PinBlocksMutation) {
  VirtualFileSystem vfs;
  ASSERT_TRUE(vfs.WriteFile("/f", "x").ok());
  ASSERT_TRUE(vfs.Pin("/f").ok());
  EXPECT_TRUE(vfs.IsPinned("/f"));
  EXPECT_FALSE(vfs.DeleteFile("/f").ok());
  EXPECT_FALSE(vfs.RenameFile("/f", "/g").ok());
  EXPECT_FALSE(vfs.WriteFile("/f", "y").ok());
  EXPECT_EQ(*vfs.ReadFile("/f"), "x");  // reads still fine
  ASSERT_TRUE(vfs.Unpin("/f").ok());
  EXPECT_TRUE(vfs.DeleteFile("/f").ok());
}

TEST(VfsTest, ListByPrefix) {
  VirtualFileSystem vfs;
  ASSERT_TRUE(vfs.WriteFile("/a/1", "").ok());
  ASSERT_TRUE(vfs.WriteFile("/a/2", "").ok());
  ASSERT_TRUE(vfs.WriteFile("/b/3", "").ok());
  EXPECT_EQ(vfs.List("/a/").size(), 2u);
  EXPECT_EQ(vfs.List("/").size(), 3u);
  EXPECT_EQ(vfs.FileCount(), 3u);
}

// ---- FileServer ----

TEST(FileServerTest, GetSplitsToken) {
  FileServer server("fs1");
  ASSERT_TRUE(server.Put("/d/f.txt", "content").ok());
  std::string seen_token;
  server.SetReadGate([&](const std::string& path, const std::string& token) {
    seen_token = token;
    EXPECT_EQ(path, "/d/f.txt");
    return Status::OK();
  });
  auto got = server.Get("/d/TOK;f.txt");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->content, "content");
  EXPECT_EQ(seen_token, "TOK");
  // Without a token the gate sees empty.
  ASSERT_TRUE(server.Get("/d/f.txt").ok());
  EXPECT_EQ(seen_token, "");
}

TEST(FileServerTest, GateCanDeny) {
  FileServer server("fs1");
  ASSERT_TRUE(server.Put("/f", "x").ok());
  server.SetReadGate([](const std::string&, const std::string&) {
    return Status::PermissionDenied("nope");
  });
  EXPECT_TRUE(server.Get("/f").status().IsPermissionDenied());
}

TEST(FileServerTest, GetUrlChecksHost) {
  FileServer server("fs1");
  ASSERT_TRUE(server.Put("/f", "x").ok());
  EXPECT_TRUE(server.GetUrl("http://fs1/f").ok());
  EXPECT_FALSE(server.GetUrl("http://other/f").ok());
}

TEST(FileServerTest, SparseGetReturnsStatOnly) {
  FileServer server("fs1");
  ASSERT_TRUE(server.vfs().CreateSparseFile("/big", 1000000).ok());
  auto got = server.Get("/big");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->content.empty());
  EXPECT_EQ(got->stat.size, 1000000u);
}

TEST(FileServerTest, Endpoints) {
  FileServer server("fs1");
  server.RegisterEndpoint("/servlet/SDB", [](const HttpParams& params) {
    auto it = params.find("file");
    return Result<std::string>("hello " +
                               (it == params.end() ? "?" : it->second));
  });
  EXPECT_TRUE(server.HasEndpoint("/servlet/SDB"));
  EXPECT_EQ(*server.InvokeEndpoint("/servlet/SDB", {{"file", "/x"}}),
            "hello /x");
  EXPECT_FALSE(server.InvokeEndpoint("/other", {}).ok());
  EXPECT_EQ(server.EndpointPaths().size(), 1u);
}

TEST(FileServerTest, TempDirsUniqueAndCleanable) {
  FileServer server("fs1");
  std::string d1 = server.MakeTempDir("sessA");
  std::string d2 = server.MakeTempDir("sessA");
  EXPECT_NE(d1, d2);
  ASSERT_TRUE(server.vfs().WriteFile(d1 + "out1", "x").ok());
  ASSERT_TRUE(server.vfs().WriteFile(d1 + "out2", "y").ok());
  ASSERT_TRUE(server.vfs().WriteFile(d2 + "other", "z").ok());
  EXPECT_EQ(server.CleanTempDir(d1), 2u);
  EXPECT_TRUE(server.vfs().Exists(d2 + "other"));
}

TEST(FleetTest, ResolveRoutesByHost) {
  FileServerFleet fleet;
  FileServer* fs1 = fleet.AddServer("fs1");
  fleet.AddServer("fs2");
  ASSERT_TRUE(fs1->Put("/f", "x").ok());
  auto resolved = fleet.Resolve("http://fs1/f");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->first, fs1);
  EXPECT_EQ(resolved->second.path, "/f");
  EXPECT_FALSE(fleet.Resolve("http://fs9/f").ok());
  EXPECT_EQ(fleet.Hosts().size(), 2u);
  // AddServer is idempotent.
  EXPECT_EQ(fleet.AddServer("fs1"), fs1);
}

}  // namespace
}  // namespace easia::fs
