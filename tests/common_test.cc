#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace easia {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "not found: missing table");
}

TEST(StatusTest, WithContextPrefixes) {
  Status s = Status::Corruption("bad crc").WithContext("wal");
  EXPECT_EQ(s.message(), "wal: bad crc");
  EXPECT_TRUE(s.IsCorruption());
}

TEST(StatusTest, WithContextNoOpOnOk) {
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> NeedsPositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> UsesMacro(int x) {
  EASIA_ASSIGN_OR_RETURN(int doubled, NeedsPositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*UsesMacro(3), 7);
  EXPECT_FALSE(UsesMacro(-1).ok());
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitAndTrim) {
  EXPECT_EQ(SplitAndTrim(" a | b |  | c ", '|'),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, CaseConversions) {
  EXPECT_EQ(ToUpper("DataLink_7"), "DATALINK_7");
  EXPECT_EQ(ToLower("DataLink_7"), "datalink_7");
  EXPECT_TRUE(EqualsIgnoreCase("Simulation", "SIMULATION"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a*b*c", "*", "%"), "a%b%c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64(" -17 "), -17);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(LikeMatchTest, Basics) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%llo"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("hello", "%"));
  EXPECT_FALSE(LikeMatch("hello", "h_loo"));
  EXPECT_FALSE(LikeMatch("hello", "hello_"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
}

TEST(LikeMatchTest, MultipleWildcards) {
  EXPECT_TRUE(LikeMatch("S19990110150932", "S1999%"));
  EXPECT_TRUE(LikeMatch("abcXdefXghi", "%X%X%"));
  EXPECT_FALSE(LikeMatch("abcXdef", "%X%X%"));
  EXPECT_TRUE(LikeMatch("aaa", "a%a"));
}

TEST(LikeMatchTest, EscapedWildcardsTableDriven) {
  struct Case {
    const char* value;
    const char* pattern;
    bool match;
  };
  // The escape, mid-pattern-% and empty-pattern cases the prefix-scan
  // pushdown and its row-path fallback must agree on byte for byte.
  static const Case kCases[] = {
      {"100%", "100\\%", true},      // escaped % is a literal
      {"1000", "100\\%", false},
      {"100%x", "100\\%", false},
      {"a_b", "a\\_b", true},        // escaped _ is a literal
      {"axb", "a\\_b", false},
      {"axb", "a_b", true},
      {"a\\b", "a\\\\b", true},      // escaped backslash
      {"ab", "a\\\\b", false},
      {"a\\", "a\\", true},          // trailing backslash: literal backslash
      {"a", "a\\", false},
      {"abcXdef", "abc%def", true},  // % mid-pattern
      {"abcdef", "abc%def", true},
      {"abcdeg", "abc%def", false},
      {"abc50%off", "abc%\\%off", true},
      {"abc50off", "abc%\\%off", false},
      {"", "", true},                // empty pattern matches only empty
      {"a", "", false},
      {"", "%", true},
      {"", "%%", true},
      {"", "_", false},
      {"%", "\\%", true},
      {"%", "%", true},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(LikeMatch(c.value, c.pattern), c.match)
        << "value='" << c.value << "' pattern='" << c.pattern << "'";
  }
}

TEST(LikeMatchTest, EscapeLikePatternRoundTrips) {
  for (const char* s : {"plain", "100%", "a_b", "back\\slash", "%_\\", ""}) {
    std::string escaped = EscapeLikePattern(s);
    EXPECT_TRUE(LikeMatch(s, escaped)) << s << " vs " << escaped;
    // The escaped pattern matches *only* the original text.
    EXPECT_FALSE(LikeMatch(std::string(s) + "x", escaped));
  }
  EXPECT_EQ(EscapeLikePattern("100%"), "100\\%");
  EXPECT_EQ(EscapeLikePattern("a_b"), "a\\_b");
  EXPECT_EQ(EscapeLikePattern("a\\b"), "a\\\\b");
}

TEST(LikeMatchTest, LikePatternPrefix) {
  EXPECT_EQ(LikePatternPrefix("abc%"), "abc");
  EXPECT_EQ(LikePatternPrefix("abc%def"), "abc");
  EXPECT_EQ(LikePatternPrefix("abc"), "abc");
  EXPECT_EQ(LikePatternPrefix("%abc"), "");
  EXPECT_EQ(LikePatternPrefix("_bc"), "");
  EXPECT_EQ(LikePatternPrefix("a\\%b%"), "a%b");  // escape resolved
  EXPECT_EQ(LikePatternPrefix("a\\\\%"), "a\\");
  EXPECT_EQ(LikePatternPrefix(""), "");
}

/// Reference implementation (recursive) to cross-check the iterative one,
/// including backslash escapes.
bool LikeRef(std::string_view v, std::string_view p) {
  if (p.empty()) return v.empty();
  if (p[0] == '\\') {
    char lit = p.size() > 1 ? p[1] : '\\';
    size_t skip = p.size() > 1 ? 2 : 1;
    if (v.empty() || v[0] != lit) return false;
    return LikeRef(v.substr(1), p.substr(skip));
  }
  if (p[0] == '%') {
    for (size_t i = 0; i <= v.size(); ++i) {
      if (LikeRef(v.substr(i), p.substr(1))) return true;
    }
    return false;
  }
  if (v.empty()) return false;
  if (p[0] != '_' && p[0] != v[0]) return false;
  return LikeRef(v.substr(1), p.substr(1));
}

class LikeMatchPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LikeMatchPropertyTest, AgreesWithReference) {
  Random rng(static_cast<uint64_t>(GetParam()));
  // Values draw from {a, b, \}; patterns additionally use the wildcards,
  // so escaped-wildcard and escaped-escape paths get real coverage.
  static const char kAlpha[] = "ab\\%_";
  for (int trial = 0; trial < 400; ++trial) {
    std::string value, pattern;
    size_t vlen = rng.Uniform(8);
    size_t plen = rng.Uniform(6);
    for (size_t i = 0; i < vlen; ++i) value += kAlpha[rng.Uniform(3)];
    for (size_t i = 0; i < plen; ++i) pattern += kAlpha[rng.Uniform(5)];
    EXPECT_EQ(LikeMatch(value, pattern), LikeRef(value, pattern))
        << "value='" << value << "' pattern='" << pattern << "'";
    // A prefix-scan pushdown is sound only if every match carries the
    // computed literal prefix.
    if (LikeMatch(value, pattern)) {
      EXPECT_TRUE(StartsWith(value, LikePatternPrefix(pattern)))
          << "value='" << value << "' pattern='" << pattern << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikeMatchPropertyTest,
                         ::testing::Range(1, 6));

TEST(HumanTest, Bytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(85ull * 1000 * 1000), "81.1 MB");
}

TEST(HumanTest, DurationMatchesPaperFormat) {
  // The exact renderings from the paper's bandwidth table.
  EXPECT_EQ(HumanDuration(2720), "45m20s");       // 85 MB at 0.25 Mbit/s
  EXPECT_EQ(HumanDuration(17408), "4h50m08s");    // 544 MB at 0.25 Mbit/s
  EXPECT_EQ(HumanDuration(351), "5m51s");         // 85 MB at 1.94 Mbit/s
  EXPECT_EQ(HumanDuration(12), "12s");
}

TEST(EscapeMarkupTest, EscapesAll) {
  EXPECT_EQ(EscapeMarkup("<a href=\"x\">&'</a>"),
            "&lt;a href=&quot;x&quot;&gt;&amp;&apos;&lt;/a&gt;");
}

TEST(StrPrintfTest, Formats) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrPrintf("%05.1f", 2.25), "002.2");
}

TEST(CodingTest, FixedWidthRoundTrip) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU32(&buf, 0xDEADBEEF);
  PutU64(&buf, 0x0123456789ABCDEFull);
  PutDouble(&buf, -2.5);
  PutLengthPrefixed(&buf, "hello");
  Decoder dec(buf);
  EXPECT_EQ(*dec.GetU8(), 0xAB);
  EXPECT_EQ(*dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), -2.5);
  EXPECT_EQ(*dec.GetLengthPrefixed(), "hello");
  EXPECT_TRUE(dec.Done());
}

TEST(CodingTest, ShortReadsFail) {
  std::string buf;
  PutU32(&buf, 7);
  Decoder dec(buf);
  EXPECT_TRUE(dec.GetU64().status().IsCorruption());
}

TEST(CodingTest, LengthPrefixOverrunFails) {
  std::string buf;
  PutU32(&buf, 100);  // claims 100 bytes, provides none
  Decoder dec(buf);
  EXPECT_TRUE(dec.GetLengthPrefixed().status().IsCorruption());
}

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (classic check value).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, DetectsCorruption) {
  std::string data = "the quick brown fox";
  uint32_t crc = Crc32(data);
  data[3] ^= 1;
  EXPECT_NE(Crc32(data), crc);
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, AlphaNumLengthAndAlphabet) {
  Random rng(9);
  std::string s = rng.AlphaNum(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'));
  }
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 100.0);
  clock.Advance(5.5);
  EXPECT_DOUBLE_EQ(clock.Now(), 105.5);
  clock.Set(0);
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
}

TEST(ClockTest, SecondsIntoDay) {
  EXPECT_DOUBLE_EQ(SecondsIntoDay(0), 0);
  EXPECT_DOUBLE_EQ(SecondsIntoDay(86400 + 3600), 3600);
  EXPECT_DOUBLE_EQ(SecondsIntoDay(-3600), 82800);
}

TEST(ClockTest, CompactTimestampFormat) {
  // 1999-01-10 15:09:32 UTC (the paper's key style, S19990110150932).
  EXPECT_EQ(FormatCompactTimestamp(915980972), "19990110150932");
}

}  // namespace
}  // namespace easia
