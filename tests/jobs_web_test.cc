// The /jobs/* web routes: asynchronous submission returning an id
// immediately, status polling with progress and output URLs, listing,
// cancellation, guest quotas over the web, journal recovery through a full
// archive restart, and the /stats operator page.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "common/string_util.h"
#include "xuis/customize.h"

namespace easia {
namespace {

class JobsWebTest : public ::testing::Test {
 protected:
  void SetUp() override { archive_ = MakeArchive(); }

  std::unique_ptr<core::Archive> MakeArchive(
      const std::string& journal_path = "") {
    core::Archive::Options options;
    options.job_options.journal_path = journal_path;
    options.job_options.limits.guest_queued = 2;
    auto archive = std::make_unique<core::Archive>(options);
    archive->AddFileServer("fs1", 8.0);
    archive->AddFileServer("fs2", 8.0);
    EXPECT_TRUE(core::CreateTurbulenceSchema(archive.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1", "fs2"};
    seed.simulations = 1;
    seed.timesteps_per_simulation = 4;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive.get(), seed);
    EXPECT_TRUE(seeded.ok());
    datasets_ = (*seeded)[0].dataset_urls;
    EXPECT_TRUE(archive->InitializeXuis().ok());
    EXPECT_TRUE(core::AttachNativeOperations(archive.get()).ok());
    EXPECT_TRUE(
        archive->AddUser("alice", "pw", web::UserRole::kAuthorised).ok());
    EXPECT_TRUE(archive->AddUser("root", "pw", web::UserRole::kAdmin).ok());
    return archive;
  }

  std::string LoginAlice(core::Archive* archive) {
    return *archive->Login("alice", "pw");
  }

  std::unique_ptr<core::Archive> archive_;
  std::vector<std::string> datasets_;
};

TEST_F(JobsWebTest, SubmitReturnsIdImmediatelyThenCompletes) {
  std::string alice = LoginAlice(archive_.get());
  auto submit = archive_->Get(alice, "/jobs/submit",
                              {{"op", "FieldStats"},
                               {"dataset", datasets_[0]}});
  ASSERT_EQ(submit.status, 200) << submit.body;
  EXPECT_EQ(submit.content_type, "text/plain");
  Result<int64_t> id = ParseInt64(submit.body);
  ASSERT_TRUE(id.ok()) << submit.body;

  // Nothing has run yet: the request only queued the job.
  auto queued = archive_->Get(alice, "/jobs/status", {{"id", submit.body}});
  ASSERT_EQ(queued.status, 200);
  EXPECT_NE(queued.body.find("submitted"), std::string::npos);
  EXPECT_EQ(queued.body.find("Output files:"), std::string::npos);

  // A worker drains the queue; status flips to the terminal state and
  // exposes the output file exactly like synchronous /runop.
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  auto done = archive_->Get(alice, "/jobs/status", {{"id", submit.body}});
  ASSERT_EQ(done.status, 200);
  EXPECT_NE(done.body.find("succeeded"), std::string::npos);
  EXPECT_NE(done.body.find("stats.txt"), std::string::npos);
  EXPECT_NE(done.body.find("executing: FieldStats"), std::string::npos);
}

TEST_F(JobsWebTest, ChainJobOverTheWeb) {
  xuis::OperationChainSpec chain;
  chain.name = "SubsampleThenStats";
  chain.guest_access = false;
  chain.step_operations = {"Subsample", "FieldStats"};
  xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
  ASSERT_TRUE(c.AddOperationChain("RESULT_FILE.DOWNLOAD_RESULT",
                                  std::move(chain)).ok());
  std::string alice = LoginAlice(archive_.get());
  auto submit = archive_->Get(alice, "/jobs/submit",
                              {{"kind", "chain"},
                               {"chain", "SubsampleThenStats"},
                               {"dataset", datasets_[0]},
                               {"Subsample.factor", "2"}});
  ASSERT_EQ(submit.status, 200) << submit.body;
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  auto done = archive_->Get(alice, "/jobs/status", {{"id", submit.body}});
  EXPECT_NE(done.body.find("succeeded"), std::string::npos);
  EXPECT_NE(done.body.find("step 1: Subsample"), std::string::npos);
  EXPECT_NE(done.body.find("step 2: FieldStats"), std::string::npos);
}

TEST_F(JobsWebTest, MultiDatasetJobOverTheWeb) {
  std::string alice = LoginAlice(archive_.get());
  auto submit = archive_->Get(
      alice, "/jobs/submit",
      {{"kind", "multi"},
       {"op", "FieldStats"},
       {"dataset", datasets_[0] + "," + datasets_[1]}});
  ASSERT_EQ(submit.status, 200) << submit.body;
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  auto done = archive_->Get(alice, "/jobs/status", {{"id", submit.body}});
  EXPECT_NE(done.body.find("succeeded"), std::string::npos);
  EXPECT_NE(done.body.find("2 datasets"), std::string::npos);
}

TEST_F(JobsWebTest, GuestQuotaRejectedWith429) {
  std::string guest = *archive_->Login("guest", "guest");
  // FieldStats is guest-accessible; the fixture caps guests at 2 queued.
  fs::HttpParams params = {{"op", "FieldStats"}, {"dataset", datasets_[0]}};
  EXPECT_EQ(archive_->Get(guest, "/jobs/submit", params).status, 200);
  EXPECT_EQ(archive_->Get(guest, "/jobs/submit", params).status, 200);
  auto rejected = archive_->Get(guest, "/jobs/submit", params);
  EXPECT_EQ(rejected.status, 429) << rejected.body;
  EXPECT_NE(rejected.body.find("quota"), std::string::npos);
  // Draining the queue frees the guest's slots.
  EXPECT_EQ(archive_->jobs().RunPending(), 2u);
  EXPECT_EQ(archive_->Get(guest, "/jobs/submit", params).status, 200);
}

TEST_F(JobsWebTest, ListAndIsolationBetweenUsers) {
  std::string alice = LoginAlice(archive_.get());
  std::string guest = *archive_->Login("guest", "guest");
  auto submit = archive_->Get(alice, "/jobs/submit",
                              {{"op", "FieldStats"},
                               {"dataset", datasets_[0]}});
  ASSERT_EQ(submit.status, 200);
  // The guest neither sees alice's job in the list nor can query it.
  auto guest_list = archive_->Get(guest, "/jobs/list", {});
  EXPECT_EQ(guest_list.body.find("FieldStats"), std::string::npos);
  EXPECT_EQ(archive_->Get(guest, "/jobs/status", {{"id", submit.body}})
                .status,
            403);
  // Alice sees it; the admin sees everyone's.
  EXPECT_NE(archive_->Get(alice, "/jobs/list", {}).body.find("FieldStats"),
            std::string::npos);
  std::string root = *archive_->Login("root", "pw");
  EXPECT_NE(archive_->Get(root, "/jobs/list", {}).body.find("FieldStats"),
            std::string::npos);
}

TEST_F(JobsWebTest, CancelOverTheWeb) {
  std::string alice = LoginAlice(archive_.get());
  auto submit = archive_->Get(alice, "/jobs/submit",
                              {{"op", "FieldStats"},
                               {"dataset", datasets_[0]}});
  ASSERT_EQ(submit.status, 200);
  EXPECT_EQ(archive_->Get(alice, "/jobs/cancel", {{"id", submit.body}})
                .status,
            200);
  auto status = archive_->Get(alice, "/jobs/status", {{"id", submit.body}});
  EXPECT_NE(status.body.find("cancelled"), std::string::npos);
  EXPECT_EQ(archive_->jobs().RunPending(), 0u);
}

TEST_F(JobsWebTest, SubmitValidatesInput) {
  std::string alice = LoginAlice(archive_.get());
  EXPECT_EQ(archive_->Get(alice, "/jobs/submit",
                          {{"op", "FieldStats"}}).status,
            400);  // no dataset
  EXPECT_EQ(archive_->Get(alice, "/jobs/submit",
                          {{"op", "NoSuchOp"},
                           {"dataset", datasets_[0]}}).status,
            404);
  EXPECT_EQ(archive_->Get(alice, "/jobs/status", {{"id", "999"}}).status,
            404);
  EXPECT_EQ(archive_->Get(alice, "/jobs/status", {}).status, 400);
}

TEST_F(JobsWebTest, SubmitValidatesChainAndUploadAtSubmission) {
  xuis::OperationChainSpec chain;
  chain.name = "AuthorisedOnly";
  chain.guest_access = false;
  chain.step_operations = {"Subsample", "FieldStats"};
  xuis::XuisCustomizer c(archive_->xuis().MutableDefault());
  ASSERT_TRUE(c.AddOperationChain("RESULT_FILE.DOWNLOAD_RESULT",
                                  std::move(chain)).ok());
  std::string alice = LoginAlice(archive_.get());
  // A bad chain name fails at submission, not after queueing.
  EXPECT_EQ(archive_->Get(alice, "/jobs/submit",
                          {{"kind", "chain"},
                           {"chain", "NoSuchChain"},
                           {"dataset", datasets_[0]}}).status,
            404);
  // Guests cannot queue a guest-forbidden chain.
  std::string guest = *archive_->Login("guest", "guest");
  EXPECT_EQ(archive_->Get(guest, "/jobs/submit",
                          {{"kind", "chain"},
                           {"chain", "AuthorisedOnly"},
                           {"dataset", datasets_[0]}}).status,
            403);
  // Upload jobs check the target column exists and accepts uploads.
  EXPECT_EQ(archive_->Get(alice, "/jobs/submit",
                          {{"kind", "upload"},
                           {"table", "RESULT_FILE"},
                           {"column", "NO_SUCH_COLUMN"},
                           {"dataset", datasets_[0]},
                           {"code", "let x = 1;"}}).status,
            404);
  // Nothing was queued by any of the rejected submissions.
  EXPECT_EQ(archive_->jobs().queue().open_count(), 0u);
}

TEST_F(JobsWebTest, SubmitClampsRetryBudget) {
  std::string alice = LoginAlice(archive_.get());
  auto submit = archive_->Get(alice, "/jobs/submit",
                              {{"op", "FieldStats"},
                               {"dataset", datasets_[0]},
                               {"attempts", "500"}});
  ASSERT_EQ(submit.status, 200) << submit.body;
  Result<int64_t> id = ParseInt64(submit.body);
  ASSERT_TRUE(id.ok());
  auto job = archive_->jobs().queue().Get(static_cast<jobs::JobId>(*id));
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->spec.max_attempts, 10u);
}

TEST_F(JobsWebTest, WebRequestsConcurrentWithWorkers) {
  std::string alice = LoginAlice(archive_.get());
  archive_->engine().set_caching(true);
  constexpr int kJobs = 8;
  std::string first_id;
  for (int i = 0; i < kJobs; ++i) {
    auto submit = archive_->Get(
        alice, "/jobs/submit",
        {{"op", "FieldStats"},
         {"dataset", datasets_[i % datasets_.size()]}});
    ASSERT_EQ(submit.status, 200) << submit.body;
    if (i == 0) first_id = submit.body;
  }
  archive_->jobs().Start(2);
  // The engine serialises invocations internally, so synchronous web
  // requests — including /runop, which invokes the same engine — are safe
  // while workers drain the queue. TSan builds check this for real.
  for (int spins = 0; spins < 5000; ++spins) {
    EXPECT_EQ(archive_->Get(alice, "/runop",
                            {{"op", "FieldStats"},
                             {"dataset", datasets_[0]}}).status,
              200);
    EXPECT_EQ(archive_->Get(alice, "/stats", {}).status, 200);
    EXPECT_EQ(archive_->Get(alice, "/jobs/list", {}).status, 200);
    EXPECT_EQ(archive_->Get(alice, "/jobs/status", {{"id", first_id}})
                  .status,
              200);
    if (archive_->jobs().queue().open_count() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  archive_->jobs().Stop();
  EXPECT_EQ(archive_->jobs().queue().open_count(), 0u);
  EXPECT_EQ(archive_->jobs().succeeded(),
            static_cast<uint64_t>(kJobs));
}

TEST_F(JobsWebTest, CrashRecoveryReRunsJobToCompletion) {
  std::string path = testing::TempDir() + "/easia_webjobs_" +
                     std::to_string(::getpid()) + ".jobj";
  std::remove(path.c_str());
  std::string job_id;
  {
    auto crashed = MakeArchive(path);
    std::string alice = LoginAlice(crashed.get());
    auto submit = crashed->Get(alice, "/jobs/submit",
                               {{"op", "FieldStats"},
                                {"dataset", datasets_[0]}});
    ASSERT_EQ(submit.status, 200) << submit.body;
    job_id = submit.body;
    // The archive dies here with the job still queued; only the journal
    // (and, after re-seeding, the deterministic datasets) survive.
  }
  auto restarted = MakeArchive(path);
  std::string alice = LoginAlice(restarted.get());
  auto recovered = restarted->Get(alice, "/jobs/status", {{"id", job_id}});
  ASSERT_EQ(recovered.status, 200) << recovered.body;
  EXPECT_NE(recovered.body.find("submitted"), std::string::npos);
  EXPECT_EQ(restarted->jobs().RunPending(), 1u);
  auto done = restarted->Get(alice, "/jobs/status", {{"id", job_id}});
  EXPECT_NE(done.body.find("succeeded"), std::string::npos);
  EXPECT_NE(done.body.find("stats.txt"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(JobsWebTest, StatsPageShowsCountersAndCache) {
  std::string alice = LoginAlice(archive_.get());
  archive_->engine().set_caching(true);
  archive_->engine().set_cache_capacity(8);
  auto submit = archive_->Get(alice, "/jobs/submit",
                              {{"op", "FieldStats"},
                               {"dataset", datasets_[0]}});
  ASSERT_EQ(submit.status, 200);
  EXPECT_EQ(archive_->jobs().RunPending(), 1u);
  auto stats = archive_->Get(alice, "/stats", {});
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("FieldStats"), std::string::npos);
  EXPECT_NE(stats.body.find("requests served"), std::string::npos);
  EXPECT_NE(stats.body.find("result cache: 1 of 8 entries"),
            std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("1 ok"), std::string::npos);
}

}  // namespace
}  // namespace easia
