#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "web/server.h"
#include "web/session.h"
#include "web/users.h"

// Concurrency regressions for the web layer: session/user stores under
// parallel workers, the HandleConcurrent dispatcher, and end-to-end render
// cache invalidation. Build with -DEASIA_TSAN=ON (or `make check-tsan`)
// to have ThreadSanitizer verify the locking.
namespace easia::web {
namespace {

// Logins, lookups, logouts and sweeps race while the clock advances past
// the idle timeout; sessions are snapshots by value, so a handler's copy
// stays usable even when the sweeper drops the entry mid-request.
TEST(WebConcurrencyTest, ConcurrentLoginExpiryAndSweep) {
  UserManager users;
  ASSERT_TRUE(users.AddUser("alice", "pw", UserRole::kAuthorised).ok());
  ManualClock clock(0);
  SessionManager sessions(&users, &clock, /*idle_timeout_seconds=*/10.0);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;
  std::atomic<bool> done{false};
  std::thread sweeper([&] {
    while (!done.load(std::memory_order_acquire)) {
      clock.Advance(3.0);
      (void)sessions.SweepExpired();
      (void)sessions.ActiveCount();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        Result<std::string> id = sessions.Login("alice", "pw");
        ASSERT_TRUE(id.ok());
        Result<Session> s = sessions.Get(*id);
        if (s.ok()) {
          // The snapshot stays valid whatever the sweeper does.
          EXPECT_EQ(s->user.name, "alice");
          EXPECT_EQ(s->id, *id);
        } else {
          // Only the idle timeout may beat us to it.
          EXPECT_TRUE(s.status().IsTokenExpired() ||
                      s.status().IsNotFound());
        }
        if (i % 3 == 0) (void)sessions.Logout(*id);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_release);
  sweeper.join();

  clock.Advance(1e6);
  (void)sessions.SweepExpired();
  EXPECT_EQ(sessions.ActiveCount(), 0u);
}

TEST(WebConcurrencyTest, UserStoreSurvivesParallelMutation) {
  UserManager users;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string name = "u" + std::to_string(t) + "_" +
                           std::to_string(i);
        ASSERT_TRUE(users.AddUser(name, "pw", UserRole::kAuthorised).ok());
        EXPECT_TRUE(users.Authenticate(name, "pw").ok());
        (void)users.ListUsers();
        if (i % 2 == 0) {
          ASSERT_TRUE(users.SetPassword(name, "pw2").ok());
          EXPECT_TRUE(users.Authenticate(name, "pw2").ok());
        }
        if (i % 5 == 0) {
          ASSERT_TRUE(users.RemoveUser(name).ok());
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  // guest + survivors of each thread's add/remove pattern.
  size_t expected = 1 + kThreads * (kPerThread - kPerThread / 5);
  EXPECT_EQ(users.ListUsers().size(), expected);
}

// ---- Full archive under the concurrent dispatcher ----

class WebConcurrencyArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    archive_ = std::make_unique<core::Archive>();
    archive_->AddFileServer("fs1", 8.0);
    ASSERT_TRUE(core::CreateTurbulenceSchema(archive_.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1"};
    seed.simulations = 2;
    seed.timesteps_per_simulation = 2;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive_.get(), seed);
    ASSERT_TRUE(seeded.ok());
    seeded_ = *seeded;
    ASSERT_TRUE(archive_->InitializeXuis().ok());
    ASSERT_TRUE(
        archive_->AddUser("alice", "pw", UserRole::kAuthorised).ok());
    alice_ = *archive_->Login("alice", "pw");
  }

  HttpRequest Req(const std::string& path, fs::HttpParams params = {}) {
    HttpRequest r;
    r.path = path;
    r.params = std::move(params);
    r.session_id = alice_;
    return r;
  }

  std::unique_ptr<core::Archive> archive_;
  std::vector<core::SeededSimulation> seeded_;
  std::string alice_;
};

// The worker pool must return, for every request, exactly the response a
// serial pass produces (read-only batch, so caching cannot change bodies).
TEST_F(WebConcurrencyArchiveTest, HandleConcurrentMatchesSerialHandle) {
  std::vector<HttpRequest> batch;
  for (int i = 0; i < 30; ++i) {
    switch (i % 4) {
      case 0:
        batch.push_back(Req("/tables"));
        break;
      case 1:
        batch.push_back(Req("/query", {{"table", "SIMULATION"}}));
        break;
      case 2:
        batch.push_back(Req("/search", {{"table", "AUTHOR"},
                                        {"all", "1"}}));
        break;
      default:
        batch.push_back(Req("/xuis"));
        break;
    }
  }
  std::vector<HttpResponse> serial;
  serial.reserve(batch.size());
  for (const HttpRequest& r : batch) {
    serial.push_back(archive_->web().Handle(r));
  }
  for (size_t workers : {2u, 4u}) {
    std::vector<HttpResponse> concurrent =
        archive_->web().HandleConcurrent(batch, workers);
    ASSERT_EQ(concurrent.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(concurrent[i].status, serial[i].status) << i;
      EXPECT_EQ(concurrent[i].body, serial[i].body) << i;
    }
  }
  EXPECT_GE(archive_->render_cache().stats().hits, 1u);
}

TEST_F(WebConcurrencyArchiveTest, CacheInvalidatesOnCommitAndCustomise) {
  // Cold, then hot.
  HttpResponse first = archive_->web().Handle(Req("/tables"));
  ASSERT_EQ(first.status, 200);
  uint64_t hits_before = archive_->render_cache().stats().hits;
  HttpResponse second = archive_->web().Handle(Req("/tables"));
  EXPECT_EQ(second.body, first.body);
  EXPECT_EQ(archive_->render_cache().stats().hits, hits_before + 1);

  // Warm a /browse page for a key that does not exist yet.
  fs::HttpParams browse = {{"table", "AUTHOR"},
                           {"column", "AUTHOR_KEY"},
                           {"value", "AX"}};
  HttpResponse empty_browse = archive_->web().Handle(Req("/browse", browse));
  ASSERT_EQ(empty_browse.status, 200);
  (void)archive_->web().Handle(Req("/browse", browse));  // now cached

  // A committed write bumps the epoch: the cached /tables and /browse
  // entries are invalidated, and the re-rendered browse shows the new row
  // instead of replaying the stale empty page.
  ASSERT_TRUE(archive_
                  ->Execute("INSERT INTO AUTHOR VALUES ('AX', 'New Author', "
                            "'Southampton', 'new@soton.ac.uk')")
                  .ok());
  uint64_t invalidations_before =
      archive_->render_cache().stats().invalidations;
  HttpResponse third = archive_->web().Handle(Req("/tables"));
  ASSERT_EQ(third.status, 200);
  EXPECT_GT(archive_->render_cache().stats().invalidations,
            invalidations_before);
  HttpResponse fresh_browse = archive_->web().Handle(Req("/browse", browse));
  ASSERT_EQ(fresh_browse.status, 200);
  EXPECT_NE(fresh_browse.body, empty_browse.body);
  EXPECT_NE(fresh_browse.body.find("New Author"), std::string::npos);

  // Warm it again, then change the XUIS: revision bump invalidates too.
  (void)archive_->web().Handle(Req("/tables"));
  archive_->xuis().BumpRevision();
  uint64_t misses_before = archive_->render_cache().stats().misses;
  (void)archive_->web().Handle(Req("/tables"));
  EXPECT_GT(archive_->render_cache().stats().misses, misses_before);
}

// /xuis serves the session user's XML document and is cached per
// visibility class: a personal spec splits the user off the shared entry.
TEST_F(WebConcurrencyArchiveTest, XuisDocumentCachedPerVisibility) {
  HttpResponse doc = archive_->web().Handle(Req("/xuis"));
  ASSERT_EQ(doc.status, 200);
  EXPECT_EQ(doc.content_type, "text/xml");
  EXPECT_NE(doc.body.find("SIMULATION"), std::string::npos);

  // Personalise alice's spec: her document changes, and the cache follows
  // the registry revision rather than serving the stale shared entry.
  xuis::XuisSpec personal = archive_->xuis().Default();
  xuis::XuisCustomizer customizer(&personal);
  ASSERT_TRUE(customizer.HideTable("AUTHOR").ok());
  archive_->xuis().SetForUser("alice", std::move(personal));
  HttpResponse after = archive_->web().Handle(Req("/xuis"));
  ASSERT_EQ(after.status, 200);
  EXPECT_NE(after.body, doc.body);
}

// Mixed readers and a writer through the full web stack; responses must
// always be well-formed (this is the TSan workout for the whole path:
// sessions, shared-lock SELECTs, cache, renderer).
TEST_F(WebConcurrencyArchiveTest, ParallelReadersWithWriterStayConsistent) {
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 40; ++i) {
      std::string key = "W" + std::to_string(i);
      ASSERT_TRUE(archive_
                      ->Execute("INSERT INTO AUTHOR VALUES ('" + key +
                                "', 'Writer " + std::to_string(i) +
                                "', 'w@x', 'Soton')")
                      .ok());
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        HttpResponse resp = archive_->web().Handle(
            Req("/search", {{"table", "AUTHOR"}, {"all", "1"}}));
        ASSERT_EQ(resp.status, 200);
        ASSERT_NE(resp.body.find("</html>"), std::string::npos);
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();

  HttpResponse final_page = archive_->web().Handle(
      Req("/search", {{"table", "AUTHOR"}, {"all", "1"}}));
  EXPECT_NE(final_page.body.find("Writer 39"), std::string::npos);
}

}  // namespace
}  // namespace easia::web
