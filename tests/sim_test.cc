#include <gtest/gtest.h>

#include "common/string_util.h"
#include "sim/bandwidth.h"
#include "sim/network.h"

namespace easia::sim {
namespace {

constexpr double kDay = 10 * 3600;      // 10:00, inside the day window
constexpr double kEvening = 20 * 3600;  // 20:00, outside it
constexpr uint64_t kSmall = 85 * kMegabyte;
constexpr uint64_t kLarge = 544 * kMegabyte;

TEST(BandwidthScheduleTest, ConstantRate) {
  BandwidthSchedule s = BandwidthSchedule::Constant(2.0);
  EXPECT_DOUBLE_EQ(s.RateAt(0), 2.0);
  EXPECT_DOUBLE_EQ(s.RateAt(123456), 2.0);
}

TEST(BandwidthScheduleTest, WindowsApplyByTimeOfDay) {
  BandwidthSchedule s(1.94);
  s.AddWindow(8, 18, 0.37);
  EXPECT_DOUBLE_EQ(s.RateAt(kDay), 0.37);
  EXPECT_DOUBLE_EQ(s.RateAt(kEvening), 1.94);
  EXPECT_DOUBLE_EQ(s.RateAt(86400 + kDay), 0.37);  // repeats daily
}

TEST(BandwidthScheduleTest, NextBoundary) {
  BandwidthSchedule s(1.0);
  s.AddWindow(8, 18, 0.5);
  EXPECT_DOUBLE_EQ(s.NextBoundary(0), 8 * 3600.0);
  EXPECT_DOUBLE_EQ(s.NextBoundary(kDay), 18 * 3600.0);
  // After the last window edge of the day, the next (conservative)
  // boundary is midnight.
  EXPECT_DOUBLE_EQ(s.NextBoundary(kEvening), 86400.0);
}

// The paper's measured table, reproduced exactly (file sizes in decimal MB;
// transfer time = size*8 / rate).
struct PaperRow {
  const char* when;
  bool to_southampton;
  double mbps;
  uint64_t bytes;
  const char* expected;
};

class PaperTableTest : public ::testing::TestWithParam<PaperRow> {};

TEST_P(PaperTableTest, MatchesPaperCell) {
  const PaperRow& row = GetParam();
  BandwidthSchedule schedule = BandwidthSchedule::Constant(row.mbps);
  Result<double> seconds = TransferDuration(schedule, row.bytes, 0.0);
  ASSERT_TRUE(seconds.ok());
  EXPECT_EQ(HumanDuration(*seconds), row.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, PaperTableTest,
    ::testing::Values(
        PaperRow{"day", true, 0.25, kSmall, "45m20s"},
        PaperRow{"day", true, 0.25, kLarge, "4h50m08s"},
        PaperRow{"day", false, 0.37, kSmall, "30m38s"},
        PaperRow{"day", false, 0.37, kLarge, "3h16m02s"},
        PaperRow{"evening", true, 0.58, kSmall, "19m32s"},
        PaperRow{"evening", true, 0.58, kLarge, "2h05m03s"},
        PaperRow{"evening", false, 1.94, kSmall, "5m51s"},
        PaperRow{"evening", false, 1.94, kLarge, "37m23s"}));

TEST(TransferDurationTest, IntegratesAcrossRateChange) {
  // 1 Mbit/s until hour 1, then 2 Mbit/s. 900 Mbit needs 3600s at 1 Mbit/s
  // (ends exactly at the boundary)... make it cross: 1200 Mbit:
  // 3600 s * 1 Mbit = 3600 Mbit? No: 1 Mbit/s * 3600 s = 3600 Mbit.
  // Use small numbers: window [0h,1h) at 1 Mbit/s; rest 2 Mbit/s.
  BandwidthSchedule s(2.0);
  s.AddWindow(0, 1, 1.0);
  // 4500 Mbit: first hour moves 3600 Mbit, remaining 900 Mbit at 2 Mbit/s
  // takes 450 s -> total 4050 s.
  uint64_t bytes = 4500ull * 1000 * 1000 / 8;
  Result<double> seconds = TransferDuration(s, bytes, 0.0);
  ASSERT_TRUE(seconds.ok());
  EXPECT_NEAR(*seconds, 4050.0, 1e-6);
}

TEST(TransferDurationTest, LatencyAdds) {
  BandwidthSchedule s = BandwidthSchedule::Constant(8.0);  // 1 MB/s
  Result<double> seconds = TransferDuration(s, 1000 * 1000, 0.0, 0.25);
  ASSERT_TRUE(seconds.ok());
  EXPECT_NEAR(*seconds, 1.25, 1e-9);
}

TEST(TransferDurationTest, ZeroBandwidthScheduleFails) {
  BandwidthSchedule s(0.0);
  EXPECT_FALSE(TransferDuration(s, 1000, 0.0).ok());
}

TEST(TransferDurationTest, ZeroBytesIsFree) {
  BandwidthSchedule s = BandwidthSchedule::Constant(1.0);
  EXPECT_DOUBLE_EQ(*TransferDuration(s, 0, 0.0), 0.0);
}

class TransferMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(TransferMonotonicityTest, MoreBytesNeverFaster) {
  BandwidthSchedule s(1.94);
  s.AddWindow(8, 18, 0.25);
  double start = GetParam() * 3600.0;
  double prev = 0;
  for (uint64_t mb = 1; mb <= 1024; mb *= 2) {
    Result<double> t = TransferDuration(s, mb * kMegabyte, start);
    ASSERT_TRUE(t.ok());
    EXPECT_GE(*t, prev);
    prev = *t;
  }
}

INSTANTIATE_TEST_SUITE_P(StartHours, TransferMonotonicityTest,
                         ::testing::Values(0.0, 7.9, 8.0, 12.0, 17.99, 23.0));

TEST(PaperSchedulesTest, AsymmetryMatchesPaper) {
  // From Southampton is faster than to Southampton at all hours.
  BandwidthSchedule to = ToSouthamptonSchedule();
  BandwidthSchedule from = FromSouthamptonSchedule();
  for (double hour = 0.5; hour < 24; hour += 1.0) {
    EXPECT_GT(from.RateAt(hour * 3600), to.RateAt(hour * 3600)) << hour;
  }
  // Evening is faster than day in both directions.
  EXPECT_GT(to.RateAt(kEvening), to.RateAt(kDay));
  EXPECT_GT(from.RateAt(kEvening), from.RateAt(kDay));
}

TEST(NetworkTest, TransferAdvancesClockAndMeters) {
  Network net(kEvening);
  net.AddHost({"a", 50, 4});
  net.AddHost({"b", 50, 4});
  net.AddLink("a", "b", BandwidthSchedule::Constant(8.0), 0.0);  // 1 MB/s
  Result<TransferRecord> rec = net.Transfer("a", "b", 5 * kMegabyte);
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(rec->duration_seconds, 5.0, 1e-9);
  EXPECT_NEAR(net.Now(), kEvening + 5.0, 1e-9);
  EXPECT_EQ(net.LinkTraffic("a", "b"), 5 * kMegabyte);
  EXPECT_EQ(net.LinkTraffic("b", "a"), 0u);
  EXPECT_EQ(net.TotalTraffic(), 5 * kMegabyte);
  EXPECT_EQ(net.history().size(), 1u);
}

TEST(NetworkTest, MissingLinkOrHostFails) {
  Network net;
  net.AddHost({"a", 50, 4});
  net.AddHost({"b", 50, 4});
  EXPECT_FALSE(net.Transfer("a", "b", 1).ok());   // no link
  EXPECT_FALSE(net.Transfer("a", "zz", 1).ok());  // unknown host
}

TEST(NetworkTest, LocalTransferIsFree) {
  Network net;
  net.AddHost({"a", 50, 4});
  Result<TransferRecord> rec = net.Transfer("a", "a", 1000000);
  ASSERT_TRUE(rec.ok());
  EXPECT_DOUBLE_EQ(rec->duration_seconds, 0.0);
  EXPECT_EQ(net.TotalTraffic(), 0u);
}

TEST(NetworkTest, ProcessingTime) {
  Network net;
  HostSpec host;
  host.name = "fs";
  host.processing_mb_per_sec = 50;
  net.AddHost(host);
  EXPECT_NEAR(*net.ProcessingTime("fs", 100 * kMegabyte), 2.0, 1e-9);
  EXPECT_FALSE(net.ProcessingTime("nope", 1).ok());
}

TEST(NetworkTest, ResetMetersClears) {
  Network net;
  net.AddHost({"a", 50, 4});
  net.AddHost({"b", 50, 4});
  net.AddSymmetricLink("a", "b", BandwidthSchedule::Constant(1.0));
  ASSERT_TRUE(net.Transfer("a", "b", 1000).ok());
  net.ResetMeters();
  EXPECT_EQ(net.TotalTraffic(), 0u);
  EXPECT_TRUE(net.history().empty());
}

}  // namespace
}  // namespace easia::sim
