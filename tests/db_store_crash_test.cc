#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/store/bulk_loader.h"
#include "testing/fault_injection.h"

namespace easia::db {
namespace {

constexpr const char* kCreateSql =
    "CREATE TABLE T (ID INTEGER PRIMARY KEY, NAME VARCHAR(32)) "
    "STORE COLUMNAR";
constexpr const char* kWalPath = "/wal";
constexpr const char* kBulkPath = "/bulk.ebk";
constexpr size_t kChunkRows = 3;
constexpr size_t kTotalRows = 10;  // chunks of 3, 3, 3, 1

std::vector<Row> SeedRows() {
  std::vector<Row> rows;
  for (size_t i = 0; i < kTotalRows; ++i) {
    rows.push_back({Value::Integer(static_cast<int64_t>(i)),
                    Value::Varchar("row" + std::to_string(i))});
  }
  return rows;
}

size_t RowsInChunks(uint64_t chunks) {
  size_t n = 0;
  for (uint64_t c = 0; c < chunks; ++c) {
    n += std::min(kChunkRows, kTotalRows - n);
  }
  return n;
}

struct CopyCrashOutcome {
  bool crashed = false;
  uint64_t wal_bytes = 0;
  /// Chunks the crash run durably committed (= acked to the caller).
  uint64_t acked_chunks = 0;
  std::vector<std::string> violations;
};

/// One COPY run against a fault-injected WAL, crashing after
/// `crash_after_bytes` WAL bytes (negative = never). After the crash the
/// environment restarts and a fresh engine recovers; the recovered table
/// must hold exactly the rows of the acked chunks — no torn chunk applied,
/// no acked chunk lost — and the bulk-chunk counter must match.
CopyCrashOutcome RunCopyCrashCase(int64_t crash_after_bytes) {
  CopyCrashOutcome outcome;
  testing::FaultPlan plan;
  plan.crash_after_bytes = crash_after_bytes;
  plan.crash_path_filter = kWalPath;
  plan.survival = testing::CrashSurvival::kAll;
  testing::FaultyEnv env(plan);

  DatabaseOptions opts;
  opts.wal_path = kWalPath;
  opts.env = &env;

  {
    Database db("CRASH", opts);
    Status create = db.Execute(kCreateSql).status();
    if (create.ok()) {
      Status wrote = store::WriteBulkFile(
          &env, kBulkPath, **db.catalog().GetTable("T"), SeedRows(),
          kChunkRows);
      if (wrote.ok()) {
        // The COPY either succeeds or fails mid-file; either way the
        // chunks it acked are exactly stats().bulk_chunks.
        (void)db.Execute(std::string("COPY T FROM '") + kBulkPath + "'");
      }
    }
    outcome.acked_chunks = db.stats().bulk_chunks;
  }

  outcome.crashed = env.crashed();
  outcome.wal_bytes = env.bytes_appended();

  env.Reopen();
  Database recovered("CRASH", opts);
  Status rs = recovered.Recover();
  if (!rs.ok()) {
    outcome.violations.push_back("recover failed: " +
                                 std::string(rs.message()));
    return outcome;
  }

  size_t expected_rows = RowsInChunks(outcome.acked_chunks);
  size_t got_rows = 0;
  Result<const Table*> table = recovered.GetTable("T");
  if (table.ok()) {
    size_t next_id = 0;
    bool ordered = true;
    (*table)->ForEachRow([&](RowId, const Row& row) {
      if (static_cast<size_t>(row[0].AsInt()) != next_id) ordered = false;
      ++next_id;
      ++got_rows;
    });
    if (!ordered) {
      outcome.violations.push_back("recovered rows out of order or gapped");
    }
  } else if (outcome.acked_chunks > 0) {
    outcome.violations.push_back("acked chunks but table missing");
  }
  if (got_rows != expected_rows) {
    outcome.violations.push_back(
        "recovered " + std::to_string(got_rows) + " rows, acked chunks say " +
        std::to_string(expected_rows));
  }
  if (recovered.stats().bulk_chunks != outcome.acked_chunks) {
    outcome.violations.push_back(
        "recovered bulk_chunks " +
        std::to_string(recovered.stats().bulk_chunks) + " != acked " +
        std::to_string(outcome.acked_chunks));
  }
  return outcome;
}

std::string Describe(const CopyCrashOutcome& o) {
  std::string out;
  for (const std::string& v : o.violations) {
    out += v;
    out += "\n";
  }
  return out;
}

/// Uncrashed baseline: every chunk acked, everything recovered.
TEST(CopyCrashTest, UncrashedRunRecoversEveryChunk) {
  CopyCrashOutcome o = RunCopyCrashCase(-1);
  EXPECT_TRUE(o.violations.empty()) << Describe(o);
  EXPECT_FALSE(o.crashed);
  EXPECT_EQ(o.acked_chunks, 4u);
  EXPECT_GT(o.wal_bytes, 0u);
}

/// Sweep a crash across every byte boundary of the WAL stream — through
/// the DDL record and each per-chunk kBulkLoad/commit pair. At every
/// boundary, recovery must land on an exact chunk prefix: the acked chunks
/// and nothing else.
TEST(CopyCrashTest, EveryWalByteBoundaryRecoversAckedChunksExactly) {
  CopyCrashOutcome full = RunCopyCrashCase(-1);
  ASSERT_TRUE(full.violations.empty()) << Describe(full);
  ASSERT_GT(full.wal_bytes, 0u);

  uint64_t max_acked = 0;
  for (uint64_t boundary = 0; boundary <= full.wal_bytes; ++boundary) {
    CopyCrashOutcome o = RunCopyCrashCase(static_cast<int64_t>(boundary));
    EXPECT_TRUE(o.violations.empty())
        << "crash at byte " << boundary << " of " << full.wal_bytes << ":\n"
        << Describe(o);
    if (!o.violations.empty()) break;
    if (boundary < full.wal_bytes) {
      EXPECT_TRUE(o.crashed);
    }
    // Acked chunks grow monotonically with the crash point and reach the
    // full file — i.e. the sweep really does cross every chunk boundary.
    EXPECT_GE(o.acked_chunks, max_acked);
    max_acked = std::max(max_acked, o.acked_chunks);
  }
  EXPECT_EQ(max_acked, 4u);
}

/// A checkpoint between COPY and the crash folds the bulk rows and the
/// chunk counter into the snapshot; recovery from snapshot + empty WAL
/// reports the same state.
TEST(CopyCrashTest, CheckpointCarriesBulkStateAcrossRestart) {
  testing::FaultPlan plan;
  testing::FaultyEnv env(plan);
  DatabaseOptions opts;
  opts.wal_path = kWalPath;
  opts.snapshot_path = "/snap";
  opts.env = &env;
  {
    Database db("CKPT", opts);
    ASSERT_TRUE(db.Execute(kCreateSql).ok());
    ASSERT_TRUE(store::WriteBulkFile(&env, kBulkPath,
                                     **db.catalog().GetTable("T"), SeedRows(),
                                     kChunkRows)
                    .ok());
    ASSERT_TRUE(
        db.Execute(std::string("COPY T FROM '") + kBulkPath + "'").ok());
    ASSERT_EQ(db.stats().bulk_chunks, 4u);
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  env.Reopen();
  Database recovered("CKPT", opts);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.stats().bulk_chunks, 4u);
  Result<const Table*> table = recovered.GetTable("T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->RowCount(), kTotalRows);
  // The recovered table is columnar with its radix index rebuilt.
  EXPECT_NE((*table)->column_store(), nullptr);
  EXPECT_TRUE((*table)->HasRadixIndex("NAME"));
  EXPECT_EQ((*table)->RadixPrefixRowIds("NAME", "row").size(), kTotalRows);
}

}  // namespace
}  // namespace easia::db
