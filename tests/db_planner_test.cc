#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/executor.h"
#include "db/parser.h"
#include "db/planner.h"

namespace easia::db {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("TEST");
    Exec("CREATE TABLE AUTHOR ("
         " AUTHOR_KEY VARCHAR(30) NOT NULL,"
         " NAME VARCHAR(80) NOT NULL,"
         " AGE INTEGER,"
         " PRIMARY KEY (AUTHOR_KEY))");
    Exec("CREATE TABLE SIMULATION ("
         " SIMULATION_KEY VARCHAR(30) NOT NULL,"
         " AUTHOR_KEY VARCHAR(30),"
         " TITLE VARCHAR(200),"
         " RE DOUBLE,"
         " PRIMARY KEY (SIMULATION_KEY),"
         " FOREIGN KEY (AUTHOR_KEY) REFERENCES AUTHOR (AUTHOR_KEY))");
    Exec("CREATE TABLE DATASET ("
         " DATASET_KEY VARCHAR(30) NOT NULL,"
         " SIMULATION_KEY VARCHAR(30),"
         " STEP INTEGER,"
         " SIZE_MB DOUBLE,"
         " PRIMARY KEY (DATASET_KEY),"
         " FOREIGN KEY (SIMULATION_KEY) REFERENCES SIMULATION"
         " (SIMULATION_KEY))");
    Exec("INSERT INTO AUTHOR VALUES ('A1', 'Papiani', 30)");
    Exec("INSERT INTO AUTHOR VALUES ('A2', 'Wason', 28)");
    Exec("INSERT INTO AUTHOR VALUES ('A3', 'Nicole', NULL)");
    Exec("INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Channel flow', 1600)");
    Exec("INSERT INTO SIMULATION VALUES ('S2', 'A1', 'Decaying box', 3200)");
    Exec("INSERT INTO SIMULATION VALUES ('S3', 'A2', 'Shear layer', 800)");
    Exec("INSERT INTO SIMULATION VALUES ('S4', NULL, 'Unattributed', 100)");
    Exec("INSERT INTO DATASET VALUES ('D1', 'S1', 0, 512)");
    Exec("INSERT INTO DATASET VALUES ('D2', 'S1', 1, 512)");
    Exec("INSERT INTO DATASET VALUES ('D3', 'S2', 0, 1024)");
    Exec("INSERT INTO DATASET VALUES ('D4', NULL, 0, 8)");
  }

  QueryResult Exec(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  /// EXPLAIN output joined to one string for substring assertions.
  std::string Plan(const std::string& select_sql) {
    QueryResult r = Exec("EXPLAIN " + select_sql);
    EXPECT_EQ(r.column_names, std::vector<std::string>{"PLAN"});
    std::string joined;
    for (const Row& row : r.rows) {
      joined += row[0].AsString();
      joined += "\n";
    }
    return joined;
  }

  /// Runs `select_sql` through both the planner and the legacy executor and
  /// expects identical result tables (names, order, and every cell).
  void ExpectEquivalent(const std::string& select_sql) {
    Result<Statement> stmt = ParseSql(select_sql);
    ASSERT_TRUE(stmt.ok()) << select_sql << " -> "
                           << stmt.status().ToString();
    ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
    TableLookup lookup = [this](const std::string& name) {
      return db_->GetTable(name);
    };
    Result<QueryResult> planned =
        ExecuteSelect(*stmt->select, lookup, nullptr, {true});
    Result<QueryResult> naive =
        ExecuteSelect(*stmt->select, lookup, nullptr, {false});
    ASSERT_EQ(planned.ok(), naive.ok())
        << select_sql << "\nplanned: " << planned.status().ToString()
        << "\nnaive:   " << naive.status().ToString();
    if (!planned.ok()) return;
    EXPECT_EQ(planned->column_names, naive->column_names) << select_sql;
    ASSERT_EQ(planned->rows.size(), naive->rows.size()) << select_sql;
    for (size_t r = 0; r < naive->rows.size(); ++r) {
      for (size_t c = 0; c < naive->rows[r].size(); ++c) {
        EXPECT_EQ(planned->rows[r][c].ToDisplayString(),
                  naive->rows[r][c].ToDisplayString())
            << select_sql << " row " << r << " col " << c;
      }
    }
  }

  std::unique_ptr<Database> db_;
};

// --- Plan shape via EXPLAIN ---

TEST_F(PlannerTest, ExplainShowsPushdownAndHashJoin) {
  std::string plan = Plan(
      "SELECT * FROM SIMULATION S, DATASET D"
      " WHERE S.SIMULATION_KEY = D.SIMULATION_KEY AND S.RE > 1000");
  EXPECT_NE(plan.find("pushed: (S.RE>1000)"), std::string::npos) << plan;
  EXPECT_NE(plan.find(
                "hash join on (S.SIMULATION_KEY = D.SIMULATION_KEY)"),
            std::string::npos)
      << plan;
}

TEST_F(PlannerTest, ExplainHashJoinFromOnCondition) {
  std::string plan = Plan(
      "SELECT * FROM SIMULATION S JOIN DATASET D"
      " ON S.SIMULATION_KEY = D.SIMULATION_KEY");
  EXPECT_NE(plan.find("hash join on"), std::string::npos) << plan;
}

TEST_F(PlannerTest, ExplainUniqueLookupOnNonFirstTable) {
  std::string plan = Plan(
      "SELECT * FROM DATASET D JOIN SIMULATION S"
      " ON D.SIMULATION_KEY = S.SIMULATION_KEY"
      " WHERE S.SIMULATION_KEY = 'S1'");
  EXPECT_NE(plan.find(
                "scan SIMULATION AS S: unique lookup via (SIMULATION_KEY)"),
            std::string::npos)
      << plan;
}

TEST_F(PlannerTest, ExplainSecondaryIndexOnForeignKey) {
  std::string plan = Plan("SELECT * FROM SIMULATION WHERE AUTHOR_KEY = 'A1'");
  EXPECT_NE(plan.find("index scan via (AUTHOR_KEY)"), std::string::npos)
      << plan;
}

TEST_F(PlannerTest, ExplainLimitShortCircuit) {
  std::string plan = Plan("SELECT * FROM DATASET LIMIT 2");
  EXPECT_NE(plan.find("limit short-circuit: 2"), std::string::npos) << plan;
  // ORDER BY must see every row, so no cutoff.
  plan = Plan("SELECT * FROM DATASET ORDER BY SIZE_MB LIMIT 2");
  EXPECT_EQ(plan.find("limit short-circuit"), std::string::npos) << plan;
  // Aggregates consume all rows too.
  plan = Plan("SELECT COUNT(*) FROM DATASET LIMIT 2");
  EXPECT_EQ(plan.find("limit short-circuit"), std::string::npos) << plan;
}

TEST_F(PlannerTest, ExplainNestedLoopForNonEquiJoin) {
  std::string plan = Plan(
      "SELECT * FROM SIMULATION S JOIN DATASET D ON S.RE > D.SIZE_MB");
  EXPECT_NE(plan.find("nested loop"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("hash join"), std::string::npos) << plan;
}

TEST_F(PlannerTest, ExplainSeqScanWithoutIndexablePredicate) {
  std::string plan = Plan("SELECT * FROM SIMULATION WHERE RE > 100");
  EXPECT_NE(plan.find("scan SIMULATION AS SIMULATION: seq scan"),
            std::string::npos)
      << plan;
}

TEST_F(PlannerTest, ExplainRejectsUnknownTable) {
  Result<QueryResult> r = db_->Execute("EXPLAIN SELECT * FROM NOPE");
  EXPECT_FALSE(r.ok());
}

// --- Planned execution matches the legacy executor ---

TEST_F(PlannerTest, EquivalenceOnHandwrittenQueries) {
  const char* queries[] = {
      "SELECT * FROM AUTHOR",
      "SELECT * FROM SIMULATION WHERE AUTHOR_KEY = 'A1'",
      "SELECT * FROM SIMULATION WHERE SIMULATION_KEY = 'S2'",
      "SELECT * FROM SIMULATION WHERE SIMULATION_KEY = 'S2' AND RE > 10000",
      // Conflicting equalities on the same indexed column.
      "SELECT * FROM SIMULATION WHERE SIMULATION_KEY = 'S1'"
      " AND SIMULATION_KEY = 'S2'",
      // Equi-join via WHERE over a comma join.
      "SELECT S.TITLE, D.DATASET_KEY FROM SIMULATION S, DATASET D"
      " WHERE S.SIMULATION_KEY = D.SIMULATION_KEY",
      // Equi-join via ON plus pushed filters on both sides.
      "SELECT * FROM SIMULATION S JOIN DATASET D"
      " ON S.SIMULATION_KEY = D.SIMULATION_KEY"
      " WHERE S.RE >= 800 AND D.STEP = 0",
      // Three-way join.
      "SELECT A.NAME, S.TITLE, D.DATASET_KEY FROM AUTHOR A"
      " JOIN SIMULATION S ON A.AUTHOR_KEY = S.AUTHOR_KEY"
      " JOIN DATASET D ON S.SIMULATION_KEY = D.SIMULATION_KEY",
      // NULL join keys must not match.
      "SELECT * FROM SIMULATION S, DATASET D"
      " WHERE S.SIMULATION_KEY = D.SIMULATION_KEY OR D.DATASET_KEY = 'D4'",
      // Non-equi join condition.
      "SELECT * FROM SIMULATION S JOIN DATASET D ON S.RE > D.SIZE_MB",
      // Mixed type equality (double column against integer literal).
      "SELECT * FROM SIMULATION WHERE RE = 1600",
      // Mixed-kind hash-join candidate (numeric vs string) must stay
      // correct via the nested-loop fallback.
      "SELECT * FROM SIMULATION S, DATASET D WHERE S.TITLE = D.STEP",
      // LIMIT/OFFSET with and without ORDER BY.
      "SELECT * FROM DATASET LIMIT 2",
      "SELECT * FROM DATASET LIMIT 2 OFFSET 1",
      "SELECT * FROM DATASET ORDER BY SIZE_MB DESC LIMIT 2",
      "SELECT S.SIMULATION_KEY FROM SIMULATION S, DATASET D"
      " WHERE S.SIMULATION_KEY = D.SIMULATION_KEY LIMIT 1",
      // Aggregates and grouping on top of a join.
      "SELECT S.AUTHOR_KEY, COUNT(*) FROM SIMULATION S, DATASET D"
      " WHERE S.SIMULATION_KEY = D.SIMULATION_KEY GROUP BY S.AUTHOR_KEY",
      "SELECT DISTINCT AUTHOR_KEY FROM SIMULATION",
      // IS NULL pushdown.
      "SELECT * FROM SIMULATION WHERE AUTHOR_KEY IS NULL",
      // Constant predicate.
      "SELECT * FROM SIMULATION WHERE 1 = 1",
      "SELECT * FROM SIMULATION WHERE 1 = 0",
  };
  for (const char* q : queries) ExpectEquivalent(q);
}

TEST_F(PlannerTest, EquivalenceOnRandomizedCatalogue) {
  // Grow a catalogue with deterministic pseudo-random rows (some NULLs,
  // duplicate FK values) and check a battery of query shapes both ways.
  std::mt19937 rng(20260806);
  Exec("CREATE TABLE RUN ("
       " RUN_KEY INTEGER NOT NULL,"
       " SIMULATION_KEY VARCHAR(30),"
       " STEPS INTEGER,"
       " COST DOUBLE,"
       " PRIMARY KEY (RUN_KEY),"
       " FOREIGN KEY (SIMULATION_KEY) REFERENCES SIMULATION"
       " (SIMULATION_KEY))");
  const char* sims[] = {"'S1'", "'S2'", "'S3'", "'S4'", "NULL"};
  for (int i = 0; i < 200; ++i) {
    std::string sim = sims[rng() % 5];
    int steps = static_cast<int>(rng() % 40);
    std::string cost = (rng() % 7 == 0)
                           ? "NULL"
                           : std::to_string((rng() % 10000) / 10.0);
    Exec("INSERT INTO RUN VALUES (" + std::to_string(i) + ", " + sim + ", " +
         std::to_string(steps) + ", " + cost + ")");
  }
  const char* shapes[] = {
      "SELECT * FROM RUN WHERE SIMULATION_KEY = 'S%d'",
      "SELECT * FROM RUN WHERE RUN_KEY = %d",
      "SELECT * FROM RUN WHERE STEPS = %d AND COST > 100",
      "SELECT R.RUN_KEY, S.TITLE FROM RUN R, SIMULATION S"
      " WHERE R.SIMULATION_KEY = S.SIMULATION_KEY AND R.STEPS > %d",
      "SELECT S.SIMULATION_KEY, COUNT(*) FROM SIMULATION S JOIN RUN R"
      " ON S.SIMULATION_KEY = R.SIMULATION_KEY"
      " WHERE R.STEPS < %d GROUP BY S.SIMULATION_KEY",
      "SELECT * FROM RUN WHERE STEPS > %d LIMIT 5",
      "SELECT * FROM RUN R JOIN SIMULATION S"
      " ON R.SIMULATION_KEY = S.SIMULATION_KEY"
      " WHERE S.RE > %d ORDER BY R.RUN_KEY LIMIT 7",
  };
  for (const char* shape : shapes) {
    for (int trial = 0; trial < 5; ++trial) {
      char sql[512];
      std::snprintf(sql, sizeof(sql), shape,
                    static_cast<int>(rng() % 40));
      ExpectEquivalent(sql);
    }
  }
}

TEST_F(PlannerTest, SecondaryIndexMaintainedAcrossDml) {
  // The FK index must follow UPDATE/DELETE, not just INSERT.
  Exec("UPDATE DATASET SET SIMULATION_KEY = 'S3' WHERE DATASET_KEY = 'D3'");
  QueryResult r =
      Exec("SELECT DATASET_KEY FROM DATASET WHERE SIMULATION_KEY = 'S3'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "D3");
  Exec("DELETE FROM DATASET WHERE DATASET_KEY = 'D3'");
  r = Exec("SELECT DATASET_KEY FROM DATASET WHERE SIMULATION_KEY = 'S3'");
  EXPECT_EQ(r.rows.size(), 0u);
  ExpectEquivalent("SELECT * FROM DATASET WHERE SIMULATION_KEY = 'S1'");
}

TEST_F(PlannerTest, LimitShortCircuitReturnsCorrectRows) {
  QueryResult r = Exec("SELECT DATASET_KEY FROM DATASET LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "D1");
  EXPECT_EQ(r.rows[1][0].AsString(), "D2");
  r = Exec("SELECT DATASET_KEY FROM DATASET LIMIT 2 OFFSET 3");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "D4");
}

}  // namespace
}  // namespace easia::db
