#include <gtest/gtest.h>

#include "db/lexer.h"
#include "db/parser.h"

namespace easia::db {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = LexSql("SELECT a, 'it''s' FROM t WHERE x >= 2.5 -- note");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 9u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[3].literal, "it's");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = LexSql("select From");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
}

TEST(LexerTest, DatalinkOptionWordsAreNotReserved) {
  // A column named URL must lex as an identifier.
  auto tokens = LexSql("SELECT URL, PERMISSION FROM t");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(LexSql("SELECT 'unterminated").ok());
  EXPECT_FALSE(LexSql("SELECT @x").ok());
}

TEST(ParserTest, SelectBasics) {
  auto stmt = ParseSql(
      "SELECT a, t.b AS col, COUNT(*) FROM t WHERE a = 1 AND b LIKE 'x%' "
      "ORDER BY a DESC, b LIMIT 10 OFFSET 5;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  const SelectStmt& s = *stmt->select;
  EXPECT_EQ(s.items.size(), 3u);
  EXPECT_EQ(s.items[1].alias, "col");
  EXPECT_TRUE(s.items[2].expr->ContainsAggregate());
  EXPECT_EQ(s.from.size(), 1u);
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.order_by.size(), 2u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_EQ(s.limit, 10);
  EXPECT_EQ(s.offset, 5);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseSql("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select->items[0].star);
  auto qualified = ParseSql("SELECT t.* FROM t");
  ASSERT_TRUE(qualified.ok());
  EXPECT_EQ(qualified->select->items[0].star_table, "t");
}

TEST(ParserTest, Joins) {
  auto stmt = ParseSql(
      "SELECT s.TITLE, a.NAME FROM SIMULATION s "
      "JOIN AUTHOR a ON s.AUTHOR_KEY = a.AUTHOR_KEY");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].alias, "s");
  EXPECT_EQ(s.from[1].alias, "a");
  EXPECT_NE(s.from[1].join_condition, nullptr);
}

TEST(ParserTest, GroupByHaving) {
  auto stmt = ParseSql(
      "SELECT SIMULATION_KEY, COUNT(*) FROM RESULT_FILE "
      "GROUP BY SIMULATION_KEY HAVING COUNT(*) > 2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->group_by.size(), 1u);
  EXPECT_NE(stmt->select->having, nullptr);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 = 7 AND NOT 0");
  ASSERT_TRUE(e.ok());
  // Top node must be AND.
  EXPECT_EQ((*e)->op, Expr::Op::kAnd);
  EXPECT_EQ((*e)->left->op, Expr::Op::kEq);
  EXPECT_EQ((*e)->left->right->literal.AsInt(), 7);
}

TEST(ParserTest, InAndIsNull) {
  auto e1 = ParseExpression("x IN (1, 2, 3)");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ((*e1)->kind, Expr::Kind::kInList);
  EXPECT_EQ((*e1)->args.size(), 3u);
  auto e2 = ParseExpression("x IS NOT NULL");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->kind, Expr::Kind::kIsNull);
  EXPECT_TRUE((*e2)->negated);
  auto e3 = ParseExpression("x NOT IN (1)");
  ASSERT_TRUE(e3.ok());
  EXPECT_TRUE((*e3)->negated);
  auto e4 = ParseExpression("name NOT LIKE 'S%'");
  ASSERT_TRUE(e4.ok());
  EXPECT_EQ((*e4)->op, Expr::Op::kNotLike);
}

TEST(ParserTest, NegativeNumbersFold) {
  auto e = ParseExpression("-5");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, Expr::Kind::kLiteral);
  EXPECT_EQ((*e)->literal.AsInt(), -5);
}

TEST(ParserTest, InsertMultiRow) {
  auto stmt = ParseSql(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt->insert->columns,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(stmt->insert->rows.size(), 2u);
}

TEST(ParserTest, UpdateAndDelete) {
  auto u = ParseSql("UPDATE t SET a = a + 1, b = 'z' WHERE c = 3");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->update->assignments.size(), 2u);
  EXPECT_NE(u->update->where, nullptr);
  auto d = ParseSql("DELETE FROM t");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->del->where, nullptr);
}

TEST(ParserTest, CreateTableConstraints) {
  auto stmt = ParseSql(
      "CREATE TABLE t ("
      "  id VARCHAR(30) NOT NULL,"
      "  n INTEGER,"
      "  parent VARCHAR(30),"
      "  PRIMARY KEY (id),"
      "  FOREIGN KEY (parent) REFERENCES t (id),"
      "  UNIQUE (n))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const TableDef& def = stmt->create_table->def;
  EXPECT_EQ(def.columns.size(), 3u);
  EXPECT_EQ(def.columns[0].size, 30u);
  EXPECT_TRUE(def.columns[0].not_null);
  EXPECT_EQ(def.primary_key, (std::vector<std::string>{"id"}));
  ASSERT_EQ(def.foreign_keys.size(), 1u);
  EXPECT_EQ(def.foreign_keys[0].ref_table, "t");
  EXPECT_EQ(def.unique_constraints.size(), 1u);
}

TEST(ParserTest, InlinePrimaryKey) {
  auto stmt = ParseSql("CREATE TABLE t (id INTEGER PRIMARY KEY, v DOUBLE)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->create_table->def.primary_key,
            (std::vector<std::string>{"id"}));
}

TEST(ParserTest, DatalinkColumnPaperExample) {
  // The paper's RESULT_FILE example.
  auto stmt = ParseSql(
      "CREATE TABLE RESULT_FILE ("
      "  download_result DATALINK LINKTYPE URL FILE LINK CONTROL "
      "    READ PERMISSION DB)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const ColumnDef& col = stmt->create_table->def.columns[0];
  EXPECT_EQ(col.type, DataType::kDatalink);
  ASSERT_TRUE(col.datalink.has_value());
  EXPECT_TRUE(col.datalink->file_link_control);
  EXPECT_EQ(col.datalink->read_permission,
            DatalinkOptions::ReadPermission::kDb);
}

TEST(ParserTest, DatalinkAllOptions) {
  auto stmt = ParseSql(
      "CREATE TABLE t (d DATALINK LINKTYPE URL FILE LINK CONTROL "
      "INTEGRITY ALL READ PERMISSION DB WRITE PERMISSION BLOCKED "
      "RECOVERY YES ON UNLINK RESTORE)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const DatalinkOptions& o = *stmt->create_table->def.columns[0].datalink;
  EXPECT_TRUE(o.file_link_control);
  EXPECT_EQ(o.integrity, DatalinkOptions::Integrity::kAll);
  EXPECT_EQ(o.read_permission, DatalinkOptions::ReadPermission::kDb);
  EXPECT_EQ(o.write_permission, DatalinkOptions::WritePermission::kBlocked);
  EXPECT_EQ(o.recovery, DatalinkOptions::Recovery::kYes);
  EXPECT_EQ(o.on_unlink, DatalinkOptions::OnUnlink::kRestore);
}

TEST(ParserTest, DatalinkNoFileLinkControl) {
  auto stmt = ParseSql(
      "CREATE TABLE t (d DATALINK LINKTYPE URL NO FILE LINK CONTROL)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_FALSE(stmt->create_table->def.columns[0].datalink->file_link_control);
}

TEST(ParserTest, DatalinkOptionsSqlRoundTrip) {
  const char* kSql =
      "CREATE TABLE t (d DATALINK LINKTYPE URL FILE LINK CONTROL "
      "INTEGRITY ALL READ PERMISSION DB WRITE PERMISSION BLOCKED "
      "RECOVERY YES ON UNLINK DELETE)";
  auto stmt = ParseSql(kSql);
  ASSERT_TRUE(stmt.ok());
  std::string regenerated = stmt->create_table->def.ToSql();
  auto stmt2 = ParseSql(regenerated);
  ASSERT_TRUE(stmt2.ok()) << regenerated;
  EXPECT_EQ(*stmt->create_table->def.columns[0].datalink,
            *stmt2->create_table->def.columns[0].datalink);
}

TEST(ParserTest, Transactions) {
  EXPECT_EQ(ParseSql("BEGIN")->kind, Statement::Kind::kBegin);
  EXPECT_EQ(ParseSql("BEGIN TRANSACTION")->kind, Statement::Kind::kBegin);
  EXPECT_EQ(ParseSql("COMMIT WORK")->kind, Statement::Kind::kCommit);
  EXPECT_EQ(ParseSql("ROLLBACK")->kind, Statement::Kind::kRollback);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES").ok());
  EXPECT_FALSE(ParseSql("FROB TABLE t").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t extra garbage ,").ok());
  EXPECT_FALSE(ParseSql("CREATE TABLE t ()").ok());
}

TEST(ParserTest, ExprToStringStable) {
  auto e = ParseExpression("a = 1 AND b LIKE 'x%'");
  ASSERT_TRUE(e.ok());
  auto reparsed = ParseExpression((*e)->ToString());
  ASSERT_TRUE(reparsed.ok()) << (*e)->ToString();
  EXPECT_EQ((*reparsed)->ToString(), (*e)->ToString());
}

}  // namespace
}  // namespace easia::db
