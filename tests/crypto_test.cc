#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/base64.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace easia::crypto {
namespace {

TEST(Sha256Test, NistVectors) {
  EXPECT_EQ(Sha256::HexHash(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::HexHash("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::HexHash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  Sha256::Digest d = h.Finish();
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.Update(data.substr(0, split));
    h.Update(data.substr(split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(data)) << "split=" << split;
  }
}

TEST(Sha256Test, ResetReusesObject) {
  Sha256 h;
  h.Update("garbage");
  h.Reset();
  h.Update("abc");
  Sha256::Digest d = h.Finish();
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test vectors for HMAC-SHA256.
TEST(HmacTest, Rfc4231Case1) {
  std::string key(20, '\x0b');
  std::string mac = HmacSha256(key, "Hi There");
  EXPECT_EQ(ToHex(reinterpret_cast<const uint8_t*>(mac.data()), mac.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  std::string mac = HmacSha256("Jefe", "what do ya want for nothing?");
  EXPECT_EQ(ToHex(reinterpret_cast<const uint8_t*>(mac.data()), mac.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231LongKey) {
  std::string key(131, '\xaa');
  std::string mac = HmacSha256(
      key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(ToHex(reinterpret_cast<const uint8_t*>(mac.data()), mac.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, KeySensitivity) {
  EXPECT_NE(HmacSha256("key1", "msg"), HmacSha256("key2", "msg"));
  EXPECT_NE(HmacSha256("key", "msg1"), HmacSha256("key", "msg2"));
}

TEST(ConstantTimeEqualsTest, Behaviour) {
  EXPECT_TRUE(ConstantTimeEquals("abc", "abc"));
  EXPECT_FALSE(ConstantTimeEquals("abc", "abd"));
  EXPECT_FALSE(ConstantTimeEquals("abc", "ab"));
  EXPECT_TRUE(ConstantTimeEquals("", ""));
}

TEST(Base64UrlTest, KnownEncodings) {
  EXPECT_EQ(Base64UrlEncode(""), "");
  EXPECT_EQ(Base64UrlEncode("f"), "Zg");
  EXPECT_EQ(Base64UrlEncode("fo"), "Zm8");
  EXPECT_EQ(Base64UrlEncode("foo"), "Zm9v");
  EXPECT_EQ(Base64UrlEncode("foobar"), "Zm9vYmFy");
}

TEST(Base64UrlTest, UrlSafeAlphabet) {
  // Bytes that map to '+' and '/' in standard base64 must become '-','_'.
  std::string data = "\xfb\xff\xbf";
  std::string encoded = Base64UrlEncode(data);
  EXPECT_EQ(encoded.find('+'), std::string::npos);
  EXPECT_EQ(encoded.find('/'), std::string::npos);
  EXPECT_EQ(*Base64UrlDecode(encoded), data);
}

TEST(Base64UrlTest, RejectsInvalid) {
  EXPECT_FALSE(Base64UrlDecode("ab!c").ok());
  EXPECT_FALSE(Base64UrlDecode("a").ok());  // length 1 mod 4 impossible
  EXPECT_FALSE(Base64UrlDecode("a+b=").ok());
}

class Base64RoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Base64RoundTripTest, RoundTripsAllLengths) {
  Random rng(GetParam() * 31 + 1);
  std::string data;
  for (size_t i = 0; i < GetParam(); ++i) {
    data += static_cast<char>(rng.Uniform(256));
  }
  Result<std::string> back = Base64UrlDecode(Base64UrlEncode(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Base64RoundTripTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 31, 32, 33, 255,
                                           1024));

}  // namespace
}  // namespace easia::crypto
