#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "db/database.h"
#include "db/wal.h"

namespace easia::db {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("easia_wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  DatabaseOptions Options() {
    DatabaseOptions opts;
    opts.wal_path = Path("wal.log");
    opts.snapshot_path = Path("snapshot.db");
    return opts;
  }

  std::filesystem::path dir_;
};

TEST_F(WalTest, RecordEncodeDecodeRoundTrip) {
  WalRecord rec;
  rec.type = WalRecordType::kUpdate;
  rec.txn_id = 42;
  rec.table = "AUTHOR";
  rec.row_id = 7;
  rec.row = {Value::Varchar("a"), Value::Integer(1), Value::Null()};
  rec.old_row = {Value::Varchar("b"), Value::Double(2.5), Value::Blob("xy")};
  Result<WalRecord> back = WalRecord::Decode(rec.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, rec.type);
  EXPECT_EQ(back->txn_id, 42u);
  EXPECT_EQ(back->table, "AUTHOR");
  EXPECT_EQ(back->row_id, 7u);
  ASSERT_EQ(back->row.size(), 3u);
  EXPECT_TRUE(back->row[2].is_null());
  EXPECT_TRUE(back->old_row[1].Equals(Value::Double(2.5)));
  EXPECT_EQ(back->old_row[2].AsString(), "xy");
}

TEST_F(WalTest, WriteAndReadBack) {
  {
    Result<WalWriter> writer = WalWriter::Open(Path("w.log"));
    ASSERT_TRUE(writer.ok());
    for (uint64_t i = 1; i <= 5; ++i) {
      WalRecord rec;
      rec.type = WalRecordType::kBegin;
      rec.txn_id = i;
      ASSERT_TRUE(writer->Append(rec).ok());
    }
    ASSERT_TRUE(writer->Sync().ok());
  }
  Result<std::vector<WalRecord>> records = ReadWal(Path("w.log"));
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 5u);
  EXPECT_EQ((*records)[4].txn_id, 5u);
}

TEST_F(WalTest, TornTailTolerated) {
  {
    Result<WalWriter> writer = WalWriter::Open(Path("w.log"));
    WalRecord rec;
    rec.type = WalRecordType::kCommit;
    rec.txn_id = 1;
    ASSERT_TRUE(writer->Append(rec).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  // Append garbage simulating a torn write.
  std::FILE* f = std::fopen(Path("w.log").c_str(), "ab");
  std::fwrite("\x20\x00\x00\x00garbage", 1, 11, f);
  std::fclose(f);
  Result<std::vector<WalRecord>> records = ReadWal(Path("w.log"));
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

TEST_F(WalTest, CorruptCrcStopsReplay) {
  {
    Result<WalWriter> writer = WalWriter::Open(Path("w.log"));
    for (uint64_t i = 1; i <= 3; ++i) {
      WalRecord rec;
      rec.type = WalRecordType::kBegin;
      rec.txn_id = i;
      ASSERT_TRUE(writer->Append(rec).ok());
    }
  }
  // Flip a byte in the middle of the file.
  std::string contents;
  {
    std::FILE* f = std::fopen(Path("w.log").c_str(), "rb");
    char buf[4096];
    size_t n = std::fread(buf, 1, sizeof(buf), f);
    contents.assign(buf, n);
    std::fclose(f);
  }
  contents[contents.size() / 2] ^= 0xFF;
  {
    std::FILE* f = std::fopen(Path("w.log").c_str(), "wb");
    std::fwrite(contents.data(), 1, contents.size(), f);
    std::fclose(f);
  }
  Result<std::vector<WalRecord>> records = ReadWal(Path("w.log"));
  ASSERT_TRUE(records.ok());
  EXPECT_LT(records->size(), 3u);
}

TEST_F(WalTest, MissingFileIsEmptyLog) {
  Result<std::vector<WalRecord>> records = ReadWal(Path("nonexistent.log"));
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(WalTest, RecoveryReplaysCommittedWork) {
  {
    Database db("T", Options());
    ASSERT_TRUE(db.Recover().ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                           "v VARCHAR(10))").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')").ok());
    ASSERT_TRUE(db.Execute("UPDATE t SET v = 'z' WHERE id = 2").ok());
    ASSERT_TRUE(db.Execute("DELETE FROM t WHERE id = 1").ok());
  }
  Database db2("T", Options());
  ASSERT_TRUE(db2.Recover().ok());
  Result<QueryResult> r = db2.Execute("SELECT id, v FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 2);
  EXPECT_EQ(r->rows[0][1].AsString(), "z");
}

TEST_F(WalTest, SyncMakesCommitVisibleOnDiskBeforeClose) {
  // Simulated crash-after-Sync: while the writer is still open (its stdio
  // buffer never drained by fclose), the committed records must already be
  // readable from the file — Sync has to fflush AND fsync, not rely on the
  // eventual close. A plain fflush-less implementation leaves the log
  // empty here.
  Database db("T", Options());
  ASSERT_TRUE(db.Recover().ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                         "v VARCHAR(10))").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'a')").ok());
  Result<std::vector<WalRecord>> records = ReadWal(Path("wal.log"));
  ASSERT_TRUE(records.ok());
  size_t commits = 0;
  size_t inserts = 0;
  for (const WalRecord& rec : *records) {
    if (rec.type == WalRecordType::kCommit) ++commits;
    if (rec.type == WalRecordType::kInsert) ++inserts;
  }
  EXPECT_EQ(commits, 2u);  // CREATE TABLE txn + INSERT txn
  EXPECT_EQ(inserts, 1u);
}

TEST_F(WalTest, SyncFailsOnClosedWriter) {
  Result<WalWriter> writer = WalWriter::Open(Path("w.log"));
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer->Sync().ok());
  WalWriter moved = std::move(*writer);
  EXPECT_FALSE(writer->Sync().ok());  // moved-from writer holds no file
  EXPECT_TRUE(moved.Sync().ok());
}

TEST_F(WalTest, UncommittedTransactionNotReplayed) {
  {
    Database db("T", Options());
    ASSERT_TRUE(db.Recover().ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER PRIMARY KEY)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
    // Open txn with work, then "crash" (destructor rolls back in memory,
    // but crucially the ops were never written to the log).
    ASSERT_TRUE(db.Execute("BEGIN").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (2)").ok());
  }
  Database db2("T", Options());
  ASSERT_TRUE(db2.Recover().ok());
  Result<QueryResult> r = db2.Execute("SELECT * FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(WalTest, SnapshotRoundTrip) {
  Database db("T");
  ASSERT_TRUE(db.Execute("CREATE TABLE a (id VARCHAR(10) PRIMARY KEY, "
                         "n INTEGER)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE b (id VARCHAR(10) PRIMARY KEY, "
                         "a_id VARCHAR(10), "
                         "FOREIGN KEY (a_id) REFERENCES a (id))").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO a VALUES ('x', 1), ('y', 2)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO b VALUES ('p', 'x')").ok());
  ASSERT_TRUE(db.SaveSnapshot(Path("snap.db")).ok());

  Database db2("T");
  ASSERT_TRUE(db2.LoadSnapshot(Path("snap.db")).ok());
  EXPECT_EQ(db2.Execute("SELECT * FROM a")->rows.size(), 2u);
  EXPECT_EQ(db2.Execute("SELECT * FROM b")->rows.size(), 1u);
  // Constraints survive the round trip.
  EXPECT_FALSE(db2.Execute("INSERT INTO b VALUES ('q', 'zz')").ok());
  EXPECT_FALSE(db2.Execute("INSERT INTO a VALUES ('x', 9)").ok());
}

TEST_F(WalTest, SnapshotDetectsCorruption) {
  Database db("T");
  ASSERT_TRUE(db.Execute("CREATE TABLE a (id INTEGER)").ok());
  ASSERT_TRUE(db.SaveSnapshot(Path("snap.db")).ok());
  std::string contents;
  {
    std::FILE* f = std::fopen(Path("snap.db").c_str(), "rb");
    char buf[65536];
    size_t n = std::fread(buf, 1, sizeof(buf), f);
    contents.assign(buf, n);
    std::fclose(f);
  }
  contents[contents.size() / 2] ^= 1;
  {
    std::FILE* f = std::fopen(Path("snap.db").c_str(), "wb");
    std::fwrite(contents.data(), 1, contents.size(), f);
    std::fclose(f);
  }
  Database db2("T");
  EXPECT_TRUE(db2.LoadSnapshot(Path("snap.db")).IsCorruption());
}

TEST_F(WalTest, CheckpointTruncatesWalAndRecovers) {
  {
    Database db("T", Options());
    ASSERT_TRUE(db.Recover().ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER PRIMARY KEY)").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                             ")").ok());
    }
    ASSERT_TRUE(db.Checkpoint().ok());
    // Post-checkpoint work goes to the fresh WAL.
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (100)").ok());
  }
  EXPECT_LT(std::filesystem::file_size(Path("wal.log")), 500u);
  Database db2("T", Options());
  ASSERT_TRUE(db2.Recover().ok());
  EXPECT_EQ(db2.Execute("SELECT * FROM t")->rows.size(), 21u);
}

// Property: a random committed workload replays to identical table contents.
class WalReplayPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WalReplayPropertyTest, ReplayEquivalence) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("easia_wal_prop_" + std::to_string(GetParam()));
  fs::create_directories(dir);
  DatabaseOptions opts;
  opts.wal_path = (dir / "wal.log").string();
  Random rng(static_cast<uint64_t>(GetParam()) * 1337 + 11);
  std::string expected_dump;
  {
    Database db("P", opts);
    ASSERT_TRUE(db.Recover().ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                           "v VARCHAR(20))").ok());
    for (int op = 0; op < 120; ++op) {
      int64_t id = static_cast<int64_t>(rng.Uniform(30));
      switch (rng.Uniform(3)) {
        case 0:
          (void)db.Execute("INSERT INTO t VALUES (" + std::to_string(id) +
                           ", '" + rng.AlphaNum(5) + "')");
          break;
        case 1:
          (void)db.Execute("UPDATE t SET v = '" + rng.AlphaNum(5) +
                           "' WHERE id = " + std::to_string(id));
          break;
        case 2:
          (void)db.Execute("DELETE FROM t WHERE id = " + std::to_string(id));
          break;
      }
    }
    Result<QueryResult> dump = db.Execute("SELECT id, v FROM t ORDER BY id");
    ASSERT_TRUE(dump.ok());
    for (const Row& row : dump->rows) {
      expected_dump += row[0].ToDisplayString() + "|" +
                       row[1].ToDisplayString() + "\n";
    }
  }
  Database db2("P", opts);
  ASSERT_TRUE(db2.Recover().ok());
  Result<QueryResult> dump = db2.Execute("SELECT id, v FROM t ORDER BY id");
  ASSERT_TRUE(dump.ok());
  std::string actual_dump;
  for (const Row& row : dump->rows) {
    actual_dump += row[0].ToDisplayString() + "|" +
                   row[1].ToDisplayString() + "\n";
  }
  EXPECT_EQ(actual_dump, expected_dump);
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalReplayPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace easia::db
