#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/random.h"
#include "testing/crash_harness.h"

namespace easia::testing {
namespace {

/// Iteration scaling: EASIA_FUZZ_ITERS overrides the default count so CI
/// can dial crash coverage up (soak runs) or down without editing tests.
int FuzzIters(int default_iters) {
  const char* env = std::getenv("EASIA_FUZZ_ITERS");
  if (env == nullptr) return default_iters;
  int parsed = std::atoi(env);
  return parsed > 0 ? parsed : default_iters;
}

std::string Describe(const CrashReport& report) {
  std::string out;
  for (const std::string& v : report.violations) {
    out += v;
    out += "\n";
  }
  return out;
}

/// Baseline: no faults at all. The full workload acks everything, the
/// primary matches the shadow replay, and every replica drains to an
/// identical dump. Anything else is a harness bug, not a fault finding.
TEST(ReplCrashTest, FaultFreeRunConvergesEverywhere) {
  ReplicationCrashOptions options;
  options.seed = 7;
  options.statements = 40;
  options.replicas = 3;
  options.ack_quorum = 2;
  CrashReport report = RunReplicationCrashCase(options);
  EXPECT_TRUE(report.Clean()) << Describe(report);
  EXPECT_FALSE(report.crashed);
  // The generated workload is the CREATE TABLE plus `statements` DML.
  EXPECT_EQ(report.acked, 41u);
  EXPECT_GT(report.wal_bytes, 0u);
}

/// Torn shipments: every transfer may be truncated mid-frame. Replicas
/// must apply only intact prefixes and the shipper must resume from each
/// replica's advanced LSN — convergence is still mandatory.
TEST(ReplCrashTest, TornShipmentsResumeCleanly) {
  const int iters = FuzzIters(60);
  Random rng(0x7E41);
  for (int i = 0; i < iters; ++i) {
    ReplicationCrashOptions options;
    options.seed = rng.Next();
    options.statements = 25;
    options.replicas = 2;
    options.ack_quorum = 1;
    options.torn_shipment_probability = 0.4;
    CrashReport report = RunReplicationCrashCase(options);
    ASSERT_TRUE(report.Clean())
        << "seed " << options.seed << ":\n" << Describe(report);
  }
}

/// Lossy links: transfers vanish outright at a seeded per-link rate.
/// Commits may miss quorum (that is allowed — they are just not acked);
/// what may never happen is divergence or epoch regression.
TEST(ReplCrashTest, LossyLinksNeverDiverge) {
  const int iters = FuzzIters(60);
  Random rng(0x105E);
  for (int i = 0; i < iters; ++i) {
    ReplicationCrashOptions options;
    options.seed = rng.Next();
    options.statements = 25;
    options.replicas = 3;
    options.ack_quorum = 1;
    options.link_loss_probability = 0.25;
    CrashReport report = RunReplicationCrashCase(options);
    ASSERT_TRUE(report.Clean())
        << "seed " << options.seed << ":\n" << Describe(report);
  }
}

/// A replica dies halfway through applying a shipment, stays dark, then
/// comes back: the partial prefix it kept must be resumed from, never
/// re-applied or skipped past.
TEST(ReplCrashTest, ReplicaCrashMidApplyResumes) {
  const int iters = FuzzIters(40);
  Random rng(0xD0D0);
  for (int i = 0; i < iters; ++i) {
    ReplicationCrashOptions options;
    options.seed = rng.Next();
    options.statements = 30;
    options.replicas = 2;
    options.ack_quorum = 1;
    options.replica_crash = true;
    CrashReport report = RunReplicationCrashCase(options);
    ASSERT_TRUE(report.Clean())
        << "seed " << options.seed << ":\n" << Describe(report);
  }
}

/// The acceptance sweep: 200 seeded runs where the primary crashes at a
/// random statement (under random loss/torn fault mixes) and the most
/// caught-up replica is promoted. Zero acked-commit loss, every time:
/// the promoted state must replay an executed prefix covering every ack.
TEST(ReplCrashTest, FailoverSweepLosesNoAckedCommit) {
  const int iters = FuzzIters(200);
  Random rng(0xFA11);
  for (int i = 0; i < iters; ++i) {
    ReplicationCrashOptions options;
    options.seed = rng.Next();
    options.statements = 20;
    options.replicas = 2 + static_cast<int>(rng.Uniform(2));  // 2 or 3
    options.ack_quorum = 1 + rng.Uniform(2);                  // 1 or 2
    options.crash_after_statement = static_cast<int>(
        1 + rng.Uniform(static_cast<uint64_t>(options.statements) - 1));
    if (rng.Uniform(2) == 0) options.link_loss_probability = 0.15;
    if (rng.Uniform(2) == 0) options.torn_shipment_probability = 0.2;
    CrashReport report = RunReplicationCrashCase(options);
    ASSERT_TRUE(report.Clean())
        << "seed " << options.seed << " crash@"
        << options.crash_after_statement << " quorum "
        << options.ack_quorum << "/" << options.replicas << ":\n"
        << Describe(report);
    ASSERT_TRUE(report.crashed);
  }
}

/// The quorum-holder-down boundary the plain sweep cannot reach: the most
/// caught-up replica — with ack_quorum = 1 possibly the SOLE holder of an
/// acked commit — is taken down right before the primary crash. The
/// harness asserts the coordinator refuses the lossy promotion whenever
/// that holder is ahead of every survivor, recovers it, retries, and then
/// runs the same acked-coverage differential check as ground truth.
TEST(ReplCrashTest, QuorumHolderDownAtFailoverNeverLosesAcks) {
  const int iters = FuzzIters(40);
  Random rng(0xBEEF);
  for (int i = 0; i < iters; ++i) {
    ReplicationCrashOptions options;
    options.seed = rng.Next();
    options.statements = 20;
    options.replicas = 2 + static_cast<int>(rng.Uniform(2));  // 2 or 3
    options.ack_quorum = 1;  // the boundary: one down node = the quorum
    options.crash_after_statement = static_cast<int>(
        1 + rng.Uniform(static_cast<uint64_t>(options.statements) - 1));
    options.down_quorum_holder_at_failover = true;
    if (rng.Uniform(2) == 0) options.link_loss_probability = 0.15;
    if (rng.Uniform(2) == 0) options.torn_shipment_probability = 0.2;
    CrashReport report = RunReplicationCrashCase(options);
    ASSERT_TRUE(report.Clean())
        << "seed " << options.seed << " crash@"
        << options.crash_after_statement << " replicas "
        << options.replicas << ":\n" << Describe(report);
    ASSERT_TRUE(report.crashed);
  }
}

/// The sharded composition sweep: the workload runs hash-partitioned
/// across shard replication groups, then one seeded shard's primary is
/// failed over BETWEEN the per-shard scans of a single running scatter
/// aggregate. Zero acked-commit loss through the promotion, and the
/// mid-failover scatter must equal a serial re-run after recovery — a
/// half-old-primary / half-new-primary merge may never surface.
TEST(ShardCrashTest, ScatterSurvivesMidStatementShardFailover) {
  const int iters = FuzzIters(40);
  Random rng(0x5AAD);
  for (int i = 0; i < iters; ++i) {
    ShardCrashOptions options;
    options.seed = rng.Next();
    options.statements = 20;
    options.shards = 2 + static_cast<int>(rng.Uniform(3));  // 2..4
    options.replicas_per_shard = 1 + static_cast<int>(rng.Uniform(2));
    options.ack_quorum = 1;
    CrashReport report = RunShardCrashCase(options);
    ASSERT_TRUE(report.Clean())
        << "seed " << options.seed << " shards " << options.shards
        << " replicas/shard " << options.replicas_per_shard << ":\n"
        << Describe(report);
    ASSERT_TRUE(report.crashed);
    // CREATE TABLE + `statements` DML, all acked before the crash.
    ASSERT_EQ(report.acked, 21u);
  }
}

/// Crash at every statement boundary of one fixed workload — the
/// deterministic companion to the seeded sweep, pinning the failover
/// invariant at each possible cut.
TEST(ReplCrashTest, EveryStatementBoundarySurvivesFailover) {
  ReplicationCrashOptions probe;
  probe.seed = 99;
  probe.statements = 15;
  probe.replicas = 2;
  probe.ack_quorum = 1;
  for (int cut = 0; cut < probe.statements; ++cut) {
    ReplicationCrashOptions options = probe;
    options.crash_after_statement = cut;
    CrashReport report = RunReplicationCrashCase(options);
    EXPECT_TRUE(report.Clean())
        << "crash after statement " << cut << ":\n" << Describe(report);
    EXPECT_TRUE(report.crashed);
  }
}

}  // namespace
}  // namespace easia::testing
