#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "jobs/journal.h"
#include "jobs/scheduler.h"
#include "testing/crash_harness.h"
#include "testing/fault_injection.h"

namespace easia::testing {
namespace {

constexpr char kJournalPath[] = "/jobs/journal";

int FuzzIters(int default_iters) {
  const char* env = std::getenv("EASIA_FUZZ_ITERS");
  if (env == nullptr) return default_iters;
  int parsed = std::atoi(env);
  return parsed > 0 ? parsed : default_iters;
}

std::string Describe(const CrashReport& report) {
  std::string out;
  for (const std::string& v : report.violations) {
    out += v;
    out += "\n";
  }
  return out;
}

/// Fills a journal with a seeded submit/cancel workload (no crash) and
/// returns the environment holding it.
std::unique_ptr<FaultyEnv> BuildJournal(uint64_t seed, int operations) {
  auto env = std::make_unique<FaultyEnv>(FaultPlan{seed});
  ManualClock clock(1000.0);
  jobs::SchedulerOptions opts;
  opts.journal_path = kJournalPath;
  opts.env = env.get();
  jobs::JobScheduler sched(nullptr, nullptr, &clock, opts);
  Random rng(seed);
  std::vector<jobs::JobId> open;
  for (int i = 0; i < operations; ++i) {
    if (!open.empty() && rng.OneIn(4)) {
      size_t at = rng.Uniform(open.size());
      EXPECT_TRUE(sched.Cancel(open[at], "u", true).ok());
      open.erase(open.begin() + static_cast<ptrdiff_t>(at));
    } else {
      jobs::JobSpec spec;
      spec.user = "u";
      spec.is_guest = false;
      spec.operation = "op_" + rng.AlphaNum(5);
      spec.datasets = {"ds"};
      auto job = sched.Submit(spec);
      EXPECT_TRUE(job.ok());
      if (job.ok()) open.push_back(job->id);
    }
    clock.Advance(0.25);
  }
  return env;
}

/// Crash-point sweep through the harness: acked submissions survive, no
/// job runs after restart, recovery is a fixpoint.
TEST(JobsCrashTest, SeededCrashPointsRecoverValidQueues) {
  const int iters = FuzzIters(100);
  Random rng(0x6A6F);
  const CrashSurvival kModes[] = {CrashSurvival::kAll,
                                  CrashSurvival::kSyncedOnly,
                                  CrashSurvival::kRandomTail};
  for (int i = 0; i < iters; ++i) {
    JobsCrashOptions options;
    options.seed = rng.Next();
    options.operations = 10 + static_cast<int>(rng.Uniform(30));
    options.survival = kModes[i % 3];

    JobsCrashOptions probe = options;
    probe.crash_after_bytes = -1;
    CrashReport full = RunJobsCrashCase(probe);
    ASSERT_TRUE(full.Clean()) << "iter " << i << " (uncrashed run):\n"
                              << Describe(full);
    ASSERT_GT(full.wal_bytes, 0u);

    options.crash_after_bytes =
        static_cast<int64_t>(rng.Uniform(full.wal_bytes + 1));
    CrashReport report = RunJobsCrashCase(options);
    EXPECT_TRUE(report.Clean())
        << "iter " << i << " seed " << options.seed << " crash_after_bytes "
        << options.crash_after_bytes << ":\n"
        << Describe(report);
    if (!report.Clean()) break;
  }
}

/// A journal truncated at any byte must still recover: replay stops at the
/// torn frame and yields a valid prefix of the history.
TEST(JobsCrashTest, TruncatedJournalsRecoverValidPrefix) {
  std::unique_ptr<FaultyEnv> env = BuildJournal(0xBEEF, 20);
  auto full = env->ReadFileToString(kJournalPath);
  ASSERT_TRUE(full.ok());
  auto intact = jobs::RecoverQueue(env.get(), kJournalPath);
  ASSERT_TRUE(intact.ok());
  size_t full_jobs = intact->pending.size() + intact->finished.size();
  ASSERT_GT(full_jobs, 0u);

  for (size_t len = 0; len < full->size(); len += 7) {
    FaultyEnv trimmed(FaultPlan{1});
    ASSERT_TRUE(trimmed.WriteFileAtomic(kJournalPath, *full).ok());
    trimmed.TruncateTo(kJournalPath, len);
    auto recovered = jobs::RecoverQueue(&trimmed, kJournalPath);
    ASSERT_TRUE(recovered.ok())
        << "truncated to " << len << ": " << recovered.status().ToString();
    size_t jobs = recovered->pending.size() + recovered->finished.size();
    EXPECT_LE(jobs, full_jobs) << "truncated to " << len;
    EXPECT_LE(recovered->max_job_id, intact->max_job_id);
    // Recovered jobs must be a prefix of the full history: every id that
    // survives must also exist in the intact replay with a valid state.
    for (const jobs::Job& job : recovered->pending) {
      EXPECT_NE(job.state, jobs::JobState::kRunning);
      EXPECT_FALSE(job.spec.operation.empty());
    }
  }
}

/// Bit flips anywhere in the journal are caught by the CRC framing: replay
/// stops at the corrupt frame instead of decoding garbage.
TEST(JobsCrashTest, BitFlippedJournalsNeverDecodeGarbage) {
  std::unique_ptr<FaultyEnv> env = BuildJournal(0xFEED, 16);
  auto full = env->ReadFileToString(kJournalPath);
  ASSERT_TRUE(full.ok());
  auto intact = jobs::RecoverQueue(env.get(), kJournalPath);
  ASSERT_TRUE(intact.ok());
  size_t full_jobs = intact->pending.size() + intact->finished.size();

  Random rng(99);
  const int iters = FuzzIters(64);
  for (int i = 0; i < iters; ++i) {
    FaultyEnv flipped(FaultPlan{1});
    ASSERT_TRUE(flipped.WriteFileAtomic(kJournalPath, *full).ok());
    flipped.FlipBit(kJournalPath, rng.Uniform(full->size()),
                    static_cast<int>(rng.Uniform(8)));
    auto recovered = jobs::RecoverQueue(&flipped, kJournalPath);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    size_t jobs = recovered->pending.size() + recovered->finished.size();
    EXPECT_LE(jobs, full_jobs);
    for (const jobs::Job& job : recovered->pending) {
      EXPECT_FALSE(job.spec.operation.empty());
      EXPECT_NE(job.state, jobs::JobState::kRunning);
    }
  }
}

/// The finished-history bound holds through recovery: a long archive's
/// compacted journal never rebuilds more history than the queue retains.
TEST(JobsCrashTest, FinishedHistoryBoundHoldsAcrossRecovery) {
  FaultyEnv env(FaultPlan{5});
  ManualClock clock(1000.0);
  jobs::SchedulerOptions opts;
  opts.journal_path = kJournalPath;
  opts.env = &env;
  opts.limits.max_finished_jobs = 8;
  opts.limits.user_queued = 256;
  {
    jobs::JobScheduler sched(nullptr, nullptr, &clock, opts);
    std::vector<jobs::JobId> ids;
    for (int i = 0; i < 60; ++i) {
      jobs::JobSpec spec;
      spec.user = "u";
      spec.is_guest = false;
      spec.operation = "op";
      spec.datasets = {"ds"};
      auto job = sched.Submit(spec);
      ASSERT_TRUE(job.ok());
      ids.push_back(job->id);
    }
    // Finish 50 of them (cancellation is the terminal transition available
    // without an execution engine).
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(sched.Cancel(ids[static_cast<size_t>(i)], "u", true).ok());
    }
  }
  jobs::JobScheduler recovered(nullptr, nullptr, &clock, opts);
  auto count = recovered.Recover();
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 10u);  // the 10 still-open jobs re-enqueue
  std::vector<jobs::Job> snapshot = recovered.queue().Snapshot();
  size_t finished = 0;
  for (const jobs::Job& job : snapshot) {
    if (jobs::IsTerminal(job.state)) ++finished;
  }
  EXPECT_LE(finished, opts.limits.max_finished_jobs);
  EXPECT_EQ(snapshot.size() - finished, 10u);
}

/// Submission is never acknowledged without a durable journal record: when
/// the journal append fails, Submit fails and the job does not exist.
TEST(JobsCrashTest, SubmitFailureLeavesNoGhostJob) {
  FaultyEnv env(FaultPlan{3});
  ManualClock clock(1000.0);
  jobs::SchedulerOptions opts;
  opts.journal_path = kJournalPath;
  opts.env = &env;
  jobs::JobScheduler sched(nullptr, nullptr, &clock, opts);

  jobs::JobSpec spec;
  spec.user = "u";
  spec.is_guest = false;
  spec.operation = "op";
  spec.datasets = {"ds"};
  env.FailNextFsyncs(1);
  auto rejected = sched.Submit(spec);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(sched.journal_errors(), 1u);
  EXPECT_EQ(sched.queue().Snapshot().size(), 0u);

  // The next submission succeeds and reuses the withdrawn id.
  auto accepted = sched.Submit(spec);
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->id, 1u);
}

}  // namespace
}  // namespace easia::testing
