#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "web/cache.h"

namespace easia::web {
namespace {

CachedPage Page(const std::string& body) {
  CachedPage page;
  page.content_type = "text/html";
  page.body = body;
  return page;
}

RenderCache::Key Key(const std::string& visibility, const std::string& route,
                     const std::string& params = "") {
  RenderCache::Key key;
  key.visibility = visibility;
  key.route = route;
  key.params = params;
  return key;
}

TEST(RenderCacheTest, HitRequiresMatchingValidators) {
  RenderCache cache;
  RenderCache::Key key = Key("role:auth", "/tables");
  EXPECT_FALSE(cache.Get(key, 1, 1).has_value());  // cold
  cache.Put(key, 1, 1, Page("<html>index</html>"));

  auto hit = cache.Get(key, 1, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->body, "<html>index</html>");
  EXPECT_EQ(hit->content_type, "text/html");

  // A bumped commit epoch invalidates (and drops) the entry...
  EXPECT_FALSE(cache.Get(key, 2, 1).has_value());
  // ...so even the original validators miss afterwards.
  EXPECT_FALSE(cache.Get(key, 1, 1).has_value());

  RenderCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(RenderCacheTest, XuisRevisionInvalidatesIndependently) {
  RenderCache cache;
  RenderCache::Key key = Key("u:alice", "/xuis");
  cache.Put(key, 5, 7, Page("xml"));
  EXPECT_TRUE(cache.Get(key, 5, 7).has_value());
  EXPECT_FALSE(cache.Get(key, 5, 8).has_value());  // customisation changed
}

TEST(RenderCacheTest, VisibilityClassesAndParamsAreDistinctEntries) {
  RenderCache cache;
  cache.Put(Key("role:auth", "/query", "table=A"), 1, 1, Page("auth-A"));
  cache.Put(Key("role:guest", "/query", "table=A"), 1, 1, Page("guest-A"));
  cache.Put(Key("role:auth", "/query", "table=B"), 1, 1, Page("auth-B"));
  EXPECT_EQ(cache.Get(Key("role:auth", "/query", "table=A"), 1, 1)->body,
            "auth-A");
  EXPECT_EQ(cache.Get(Key("role:guest", "/query", "table=A"), 1, 1)->body,
            "guest-A");
  EXPECT_EQ(cache.Get(Key("role:auth", "/query", "table=B"), 1, 1)->body,
            "auth-B");
}

TEST(RenderCacheTest, MaxAgeExpiresTokenBearingPages) {
  ManualClock clock(1000.0);
  RenderCache::Options options;
  options.max_age_seconds = 150.0;  // half a 300 s token TTL
  options.clock = &clock;
  RenderCache cache(options);
  RenderCache::Key key = Key("u:alice", "/browse", "table=T&value=x");
  cache.Put(key, 1, 1, Page("tokens"));

  clock.Advance(149.0);
  EXPECT_TRUE(cache.Get(key, 1, 1).has_value());
  clock.Advance(2.0);
  EXPECT_FALSE(cache.Get(key, 1, 1).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(RenderCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  RenderCache::Options options;
  options.shards = 1;  // deterministic LRU order across keys
  // Room for roughly three small pages (each charge ≈ key + body + 96).
  options.max_bytes = 3 * 140;
  RenderCache cache(options);

  std::string body(16, 'x');
  cache.Put(Key("r", "/a"), 1, 1, Page(body));
  cache.Put(Key("r", "/b"), 1, 1, Page(body));
  cache.Put(Key("r", "/c"), 1, 1, Page(body));
  // Touch /a so /b is now the least recently used.
  EXPECT_TRUE(cache.Get(Key("r", "/a"), 1, 1).has_value());
  cache.Put(Key("r", "/d"), 1, 1, Page(body));

  EXPECT_TRUE(cache.Get(Key("r", "/a"), 1, 1).has_value());
  EXPECT_FALSE(cache.Get(Key("r", "/b"), 1, 1).has_value());  // evicted
  EXPECT_TRUE(cache.Get(Key("r", "/d"), 1, 1).has_value());
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, options.max_bytes);
}

TEST(RenderCacheTest, OversizedPagesAreNotCached) {
  RenderCache::Options options;
  options.shards = 1;
  options.max_bytes = 256;
  RenderCache cache(options);
  cache.Put(Key("r", "/huge"), 1, 1, Page(std::string(1024, 'x')));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.Get(Key("r", "/huge"), 1, 1).has_value());
}

TEST(RenderCacheTest, ReplacingAnEntryKeepsAccountingConsistent) {
  RenderCache::Options options;
  options.shards = 1;
  RenderCache cache(options);
  RenderCache::Key key = Key("r", "/page");
  cache.Put(key, 1, 1, Page(std::string(100, 'a')));
  size_t bytes_v1 = cache.stats().bytes;
  cache.Put(key, 2, 1, Page(std::string(10, 'b')));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_LT(cache.stats().bytes, bytes_v1);
  EXPECT_EQ(cache.Get(key, 2, 1)->body, std::string(10, 'b'));
}

TEST(RenderCacheTest, ClearDropsEntriesKeepsCounters) {
  RenderCache cache;
  cache.Put(Key("r", "/a"), 1, 1, Page("x"));
  EXPECT_TRUE(cache.Get(Key("r", "/a"), 1, 1).has_value());
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.Get(Key("r", "/a"), 1, 1).has_value());
}

// Hammer one cache from many threads mixing hits, misses, replacements
// and evictions; run under -DEASIA_TSAN=ON to verify the shard locking.
TEST(RenderCacheTest, ConcurrentMixedAccessIsSafe) {
  RenderCache::Options options;
  options.max_bytes = 64 * 1024;
  options.shards = 4;
  RenderCache cache(options);

  constexpr int kThreads = 6;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RenderCache::Key key =
            Key("u:" + std::to_string(t % 3), "/browse",
                "value=" + std::to_string(i % 17));
        if (!cache.Get(key, 1, 1).has_value()) {
          cache.Put(key, 1, 1, Page(std::string(64 + i % 64, 'p')));
        }
        if (i % 50 == 0) (void)cache.stats();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  RenderCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_LE(stats.bytes, options.max_bytes);
}

}  // namespace
}  // namespace easia::web
