// Trace propagation through the full stack: one cold-cache /browse yields
// a web -> cache -> planner / file-server span tree with one trace id and
// consistent nesting; the slow-request log triggers exactly at the
// ManualClock threshold; the span ring holds its bound under overflow.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/archive.h"
#include "core/turbulence_setup.h"
#include "obs/trace.h"
#include "xuis/customize.h"

namespace easia {
namespace {

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Archive::Options options;
    archive_ = std::make_unique<core::Archive>(options);
    archive_->AddFileServer("fs1", 8.0);
    ASSERT_TRUE(core::CreateTurbulenceSchema(archive_.get()).ok());
    core::SeedOptions seed;
    seed.hosts = {"fs1"};
    seed.simulations = 1;
    seed.timesteps_per_simulation = 2;
    seed.grid_n = 8;
    auto seeded = core::SeedTurbulenceData(archive_.get(), seed);
    ASSERT_TRUE(seeded.ok());
    simulation_key_ = (*seeded)[0].simulation_key;
    datasets_ = (*seeded)[0].dataset_urls;
    ASSERT_TRUE(archive_->InitializeXuis().ok());
    ASSERT_TRUE(core::AttachNativeOperations(archive_.get()).ok());
    ASSERT_TRUE(
        archive_->AddUser("alice", "pw", web::UserRole::kAuthorised).ok());
    session_ = *archive_->Login("alice", "pw");
  }

  std::vector<obs::Span> SpansNamed(const std::vector<obs::Span>& spans,
                                    const std::string& name) {
    std::vector<obs::Span> out;
    for (const obs::Span& s : spans) {
      if (s.name == name) out.push_back(s);
    }
    return out;
  }

  std::unique_ptr<core::Archive> archive_;
  std::string simulation_key_;
  std::vector<std::string> datasets_;
  std::string session_;
};

TEST_F(ObsTraceTest, ColdBrowseProducesNestedSpanTree) {
  obs::Tracer* tracer = archive_->tracer();
  ASSERT_NE(tracer, nullptr);
  tracer->Clear();

  auto browse = archive_->Get(session_, "/browse",
                              {{"table", "RESULT_FILE"},
                               {"column", "SIMULATION_KEY"},
                               {"value", simulation_key_}});
  ASSERT_EQ(browse.status, 200) << browse.body;

  std::vector<obs::Span> spans = tracer->Snapshot();
  std::vector<obs::Span> web = SpansNamed(spans, "web:/browse");
  std::vector<obs::Span> cache = SpansNamed(spans, "cache:/browse");
  std::vector<obs::Span> planner = SpansNamed(spans, "planner:select");
  std::vector<obs::Span> stat = SpansNamed(spans, "fs:stat");
  ASSERT_EQ(web.size(), 1u);
  ASSERT_EQ(cache.size(), 1u);
  ASSERT_GE(planner.size(), 1u);
  // Every RESULT_FILE row renders a DATALINK cell whose size is fetched
  // from the file server, so the cold render reaches the storage layer.
  ASSERT_GE(stat.size(), 1u);

  // One request, one trace: every span carries the root's trace id.
  uint64_t trace_id = web[0].trace_id;
  EXPECT_NE(trace_id, 0u);
  for (const obs::Span& s : spans) {
    EXPECT_EQ(s.trace_id, trace_id) << s.name;
  }
  // Nesting: web is the root, the cache lookup is its direct child, and
  // the planner + file-server work happens inside the cache-miss render.
  EXPECT_EQ(web[0].parent_span_id, 0u);
  EXPECT_EQ(cache[0].parent_span_id, web[0].span_id);
  EXPECT_EQ(cache[0].note, "miss");
  for (const obs::Span& s : planner) {
    EXPECT_EQ(s.parent_span_id, cache[0].span_id);
  }
  for (const obs::Span& s : stat) {
    EXPECT_EQ(s.parent_span_id, cache[0].span_id);
    EXPECT_EQ(s.note, "fs1");
  }
  for (const obs::Span& s : spans) {
    EXPECT_FALSE(s.error) << s.name;
  }

  // A warm replay serves from the render cache: a fresh web + cache-hit
  // pair, and no new planner or file-server spans.
  tracer->Clear();
  auto again = archive_->Get(session_, "/browse",
                             {{"table", "RESULT_FILE"},
                              {"column", "SIMULATION_KEY"},
                              {"value", simulation_key_}});
  ASSERT_EQ(again.status, 200);
  std::vector<obs::Span> warm = tracer->Snapshot();
  ASSERT_EQ(SpansNamed(warm, "cache:/browse").size(), 1u);
  EXPECT_EQ(SpansNamed(warm, "cache:/browse")[0].note, "hit");
  EXPECT_EQ(SpansNamed(warm, "planner:select").size(), 0u);
  EXPECT_EQ(SpansNamed(warm, "fs:stat").size(), 0u);
  // Distinct requests are distinct traces.
  EXPECT_NE(SpansNamed(warm, "web:/browse")[0].trace_id, trace_id);
}

TEST_F(ObsTraceTest, ErrorResponsesMarkTheRootSpan) {
  obs::Tracer* tracer = archive_->tracer();
  tracer->Clear();
  auto missing = archive_->Get(session_, "/no/such/page");
  EXPECT_EQ(missing.status, 404);
  std::vector<obs::Span> web = SpansNamed(tracer->Snapshot(), "web:other");
  ASSERT_EQ(web.size(), 1u);
  EXPECT_TRUE(web[0].error);
  EXPECT_EQ(web[0].note, "status 404");
}

TEST_F(ObsTraceTest, JobExecutionRootsItsOwnTrace) {
  obs::Tracer* tracer = archive_->tracer();
  auto submit = archive_->Get(session_, "/jobs/submit",
                              {{"op", "FieldStats"},
                               {"dataset", datasets_[0]}});
  ASSERT_EQ(submit.status, 200) << submit.body;
  tracer->Clear();
  ASSERT_EQ(archive_->jobs().RunPending(), 1u);
  std::vector<obs::Span> spans = tracer->Snapshot();
  std::vector<obs::Span> jobs = SpansNamed(spans, "job:execute");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].parent_span_id, 0u);
  EXPECT_EQ(jobs[0].note, "FieldStats");
  // Work done by the operation (its SELECTs, file reads) joins the job's
  // trace rather than starting unrooted ones.
  for (const obs::Span& s : spans) {
    EXPECT_EQ(s.trace_id, jobs[0].trace_id) << s.name;
  }
}

TEST(ObsTracerUnitTest, SlowLogTriggersExactlyAtThreshold) {
  ManualClock clock(100.0);
  obs::Tracer::Options options;
  options.clock = &clock;
  options.slow_threshold_seconds = 5.0;
  obs::Tracer tracer(options);

  {
    obs::Tracer::Scope fast(&tracer, "req:fast");
    clock.Advance(4.999);
  }
  EXPECT_EQ(tracer.slow_count(), 0u);
  EXPECT_TRUE(tracer.slow_log().empty());

  {
    obs::Tracer::Scope exact(&tracer, "req:exact");
    clock.Advance(5.0);  // duration == threshold: slow (>= semantics)
  }
  EXPECT_EQ(tracer.slow_count(), 1u);
  ASSERT_EQ(tracer.slow_log().size(), 1u);
  EXPECT_NE(tracer.slow_log()[0].find("req:exact"), std::string::npos);

  {
    obs::Tracer::Scope slow(&tracer, "req:slow");
    clock.Advance(60.0);
  }
  EXPECT_EQ(tracer.slow_count(), 2u);

  // Durations are clock-derived (modulo end-minus-start rounding).
  std::vector<obs::Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_NEAR(spans[0].duration, 4.999, 1e-9);
  EXPECT_NEAR(spans[1].duration, 5.0, 1e-9);
  EXPECT_NEAR(spans[2].duration, 60.0, 1e-9);
}

TEST(ObsTracerUnitTest, RingBoundHoldsUnderOverflow) {
  ManualClock clock(0.0);
  obs::Tracer::Options options;
  options.clock = &clock;
  options.ring_capacity = 8;
  options.slow_threshold_seconds = 0.5;
  options.slow_log_capacity = 4;
  obs::Tracer tracer(options);

  for (int i = 0; i < 20; ++i) {
    obs::Tracer::Scope scope(&tracer, "span" + std::to_string(i));
    clock.Advance(1.0);  // every span is also slow
  }
  std::vector<obs::Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // Drop-oldest: the survivors are the 8 most recent, oldest first.
  EXPECT_EQ(spans.front().name, "span12");
  EXPECT_EQ(spans.back().name, "span19");
  EXPECT_EQ(tracer.started(), 20u);
  EXPECT_EQ(tracer.finished(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  EXPECT_EQ(tracer.slow_count(), 20u);
  EXPECT_EQ(tracer.slow_log().size(), 4u);
}

TEST(ObsTracerUnitTest, NullTracerScopesAreInert) {
  obs::Tracer::Scope scope(nullptr, "nothing");
  EXPECT_FALSE(scope.active());
  EXPECT_EQ(scope.trace_id(), 0u);
  scope.set_error();  // must not crash
  scope.set_note("ignored");
}

}  // namespace
}  // namespace easia
