#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"

// Concurrency regressions for the reader/writer database mode. Build with
// -DEASIA_TSAN=ON (or `make check-tsan`) to have ThreadSanitizer verify
// the locking, not just the assertions.
namespace easia::db {
namespace {

Result<QueryResult> Exec(Database& db, const std::string& sql) {
  return db.Execute(sql);
}

int64_t SingleInt(Database& db, const std::string& sql) {
  Result<QueryResult> r = db.Execute(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok() || r->rows.empty()) return -1;
  return r->rows[0][0].AsInt();
}

// Statements are atomic under the exclusive lock: a reader running under
// the shared lock must never observe a half-applied UPDATE. The writer
// keeps A == B in every committed state; any torn read breaks that.
TEST(DbConcurrencyTest, ReadersNeverSeeTornWrites) {
  Database db("conc");
  ASSERT_TRUE(
      Exec(db, "CREATE TABLE PAIR (ID INTEGER PRIMARY KEY, A INTEGER, "
               "B INTEGER)")
          .ok());
  ASSERT_TRUE(Exec(db, "INSERT INTO PAIR VALUES (1, 0, 0)").ok());

  constexpr int kWrites = 300;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<int> torn{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        Result<QueryResult> r =
            Exec(db, "SELECT A, B FROM PAIR WHERE ID = 1");
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        ASSERT_EQ(r->rows.size(), 1u);
        if (r->rows[0][0].AsInt() != r->rows[0][1].AsInt()) {
          torn.fetch_add(1);
        }
      }
    });
  }
  for (int i = 1; i <= kWrites; ++i) {
    std::string v = std::to_string(i);
    ASSERT_TRUE(
        Exec(db, "UPDATE PAIR SET A = " + v + ", B = " + v + " WHERE ID = 1")
            .ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(SingleInt(db, "SELECT A FROM PAIR WHERE ID = 1"), kWrites);
}

// An explicit transaction holds the exclusive lock from BEGIN to COMMIT:
// concurrent readers see either none or all of its statements, never a
// prefix.
TEST(DbConcurrencyTest, ExplicitTransactionIsOpaqueToReaders) {
  Database db("txn");
  ASSERT_TRUE(
      Exec(db, "CREATE TABLE T (K INTEGER PRIMARY KEY, V INTEGER)").ok());

  constexpr int kRounds = 50;
  std::atomic<bool> done{false};
  std::atomic<int> partial{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      Result<QueryResult> r = Exec(db, "SELECT K FROM T");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      // Each round inserts a pair; an odd count means a visible half-txn.
      if (r->rows.size() % 2 != 0) partial.fetch_add(1);
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(db.Begin().ok());
    ASSERT_TRUE(
        Exec(db, "INSERT INTO T VALUES (" + std::to_string(2 * i) + ", 0)")
            .ok());
    ASSERT_TRUE(
        Exec(db,
             "INSERT INTO T VALUES (" + std::to_string(2 * i + 1) + ", 0)")
            .ok());
    ASSERT_TRUE(db.Commit().ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(partial.load(), 0);
  EXPECT_EQ(SingleInt(db, "SELECT COUNT(*) FROM T"), 2 * kRounds);
}

// Randomized mixed workload: writers insert disjoint key ranges (so the
// final state is interleaving-independent) while readers run planned
// SELECTs under the shared lock. The live database must end up exactly
// where a serial replay of the same statements ends up.
TEST(DbConcurrencyTest, MixedWorkloadMatchesSerialExecution) {
  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kPerWriter = 80;

  // Deterministic per-writer statement streams (shared with the serial
  // replay below).
  std::vector<std::vector<std::string>> streams(kWriters);
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<int> value(0, 999);
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      int key = w * kPerWriter + i;
      streams[w].push_back("INSERT INTO M VALUES (" + std::to_string(key) +
                           ", " + std::to_string(value(rng)) + ")");
      if (i % 7 == 3) {
        // Occasionally rewrite an own earlier key; still deterministic.
        int target = w * kPerWriter + (i / 2);
        streams[w].push_back("UPDATE M SET V = " +
                             std::to_string(value(rng)) + " WHERE K = " +
                             std::to_string(target));
      }
    }
  }

  Database live("live");
  ASSERT_TRUE(
      Exec(live, "CREATE TABLE M (K INTEGER PRIMARY KEY, V INTEGER)").ok());
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        Result<QueryResult> q =
            Exec(live, "SELECT K, V FROM M WHERE V >= 500 ORDER BY K");
        ASSERT_TRUE(q.ok()) << q.status().ToString();
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&live, &streams, w] {
      for (const std::string& sql : streams[w]) {
        Result<QueryResult> r = Exec(live, sql);
        ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  Database serial("serial");
  ASSERT_TRUE(
      Exec(serial, "CREATE TABLE M (K INTEGER PRIMARY KEY, V INTEGER)")
          .ok());
  for (int w = 0; w < kWriters; ++w) {
    for (const std::string& sql : streams[w]) {
      ASSERT_TRUE(Exec(serial, sql).ok());
    }
  }

  Result<QueryResult> a = Exec(live, "SELECT K, V FROM M ORDER BY K");
  Result<QueryResult> b = Exec(serial, "SELECT K, V FROM M ORDER BY K");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->rows.size(), b->rows.size());
  for (size_t i = 0; i < a->rows.size(); ++i) {
    EXPECT_EQ(a->rows[i][0].AsInt(), b->rows[i][0].AsInt());
    EXPECT_EQ(a->rows[i][1].AsInt(), b->rows[i][1].AsInt());
  }
}

// The commit epoch moves only on mutating commits — reads, empty explicit
// transactions and failed statements leave it alone, so cached pages are
// not invalidated by traffic that cannot have changed what they show.
TEST(DbConcurrencyTest, CommitEpochTracksMutatingCommitsOnly) {
  Database db("epoch");
  uint64_t e0 = db.commit_epoch();
  ASSERT_TRUE(Exec(db, "CREATE TABLE E (K INTEGER PRIMARY KEY)").ok());
  uint64_t e1 = db.commit_epoch();
  EXPECT_GT(e1, e0);  // DDL mutates

  ASSERT_TRUE(Exec(db, "SELECT K FROM E").ok());
  EXPECT_EQ(db.commit_epoch(), e1);  // reads do not

  ASSERT_TRUE(db.Begin().ok());
  ASSERT_TRUE(Exec(db, "SELECT K FROM E").ok());
  ASSERT_TRUE(db.Commit().ok());
  EXPECT_EQ(db.commit_epoch(), e1);  // read-only explicit txn does not

  ASSERT_TRUE(db.Begin().ok());
  ASSERT_TRUE(Exec(db, "INSERT INTO E VALUES (1)").ok());
  ASSERT_TRUE(db.Commit().ok());
  uint64_t e2 = db.commit_epoch();
  EXPECT_EQ(e2, e1 + 1);  // one commit, one bump (two statements)

  ASSERT_TRUE(db.Begin().ok());
  ASSERT_TRUE(Exec(db, "INSERT INTO E VALUES (2)").ok());
  ASSERT_TRUE(db.Rollback().ok());
  EXPECT_EQ(db.commit_epoch(), e2);  // rolled back => unchanged

  EXPECT_FALSE(Exec(db, "INSERT INTO E VALUES (1)").ok());  // dup PK
  EXPECT_EQ(db.commit_epoch(), e2);  // failed statement => unchanged

  ASSERT_TRUE(Exec(db, "INSERT INTO E VALUES (3)").ok());
  EXPECT_EQ(db.commit_epoch(), e2 + 1);
}

// Counter integrity: N threads issuing M queries each must account for
// exactly N*M in stats().queries (the counters are atomics updated under
// the shared lock).
TEST(DbConcurrencyTest, StatsCountersExactUnderConcurrentReads) {
  Database db("stats");
  ASSERT_TRUE(Exec(db, "CREATE TABLE S (K INTEGER PRIMARY KEY)").ok());
  ASSERT_TRUE(Exec(db, "INSERT INTO S VALUES (1)").ok());
  const uint64_t base_queries = db.stats().queries;
  const uint64_t base_statements = db.stats().statements;

  constexpr int kThreads = 6;
  constexpr int kPerThread = 150;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(Exec(db, "SELECT K FROM S").ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  DatabaseStats after = db.stats();
  EXPECT_EQ(after.queries - base_queries,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(after.statements - base_statements,
            static_cast<uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace easia::db
