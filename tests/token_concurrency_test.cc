#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "med/token.h"

namespace easia::med {
namespace {

// Regression for the data race on TokenManager's counters: since the job
// subsystem landed, workers issue/validate datalink tokens concurrently
// with web requests. Run under -DEASIA_TSAN=ON to have TSan check it.
TEST(TokenConcurrencyTest, ConcurrentIssueAndValidate) {
  TokenManager tokens("secret", 300);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::vector<std::string>> issued(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string path = "/fs/data/file" + std::to_string(t);
        std::string token = tokens.Issue(path, 1000.0);
        issued[t].push_back(token);
        // Mix of outcomes so every counter is exercised concurrently.
        EXPECT_TRUE(tokens.Validate(token, path, 1000.0).ok());
        EXPECT_FALSE(tokens.Validate(token, path + "x", 1000.0).ok());
        EXPECT_FALSE(tokens.Validate(token, path, 9e9).ok());
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(tokens.issued(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(tokens.validated_ok(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(tokens.rejected(),
            static_cast<uint64_t>(2 * kThreads * kPerThread));

  // The nonce counter must never hand out duplicates across threads, so
  // every issued token (fixed path + fixed clock) is distinct.
  std::set<std::string> unique;
  for (int t = 0; t < kThreads; ++t) {
    for (const std::string& token : issued[t]) unique.insert(token);
  }
  EXPECT_EQ(unique.size(), static_cast<size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace easia::med
