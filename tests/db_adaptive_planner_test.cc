// Statistics-driven planner regressions: hash-join build-side flips at
// catalogue scale, index-loop joins, EXPLAIN ANALYZE annotations, and the
// index advisor (surface + apply + auto-create). The tiny-fixture plan
// shapes stay pinned in db_planner_test.cc; this suite grows tables big
// enough that the cost model has real decisions to make.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/executor.h"
#include "db/parser.h"
#include "db/stats/index_advisor.h"

namespace easia::db {
namespace {

class AdaptivePlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>("ADAPT");
    // Build-side pair: join columns deliberately carry NO index, so the
    // only cost-based escape is flipping the hash-join build side.
    Must("CREATE TABLE SMALL ("
         " K INTEGER NOT NULL,"
         " LABEL VARCHAR(20),"
         " PRIMARY KEY (K))");
    Must("CREATE TABLE BIG ("
         " ID INTEGER NOT NULL,"
         " GRP INTEGER,"
         " PAYLOAD DOUBLE,"
         " PRIMARY KEY (ID))");
    for (int i = 0; i < 10; ++i) {
      Must("INSERT INTO SMALL VALUES (" + std::to_string(i) + ", 'label" +
           std::to_string(i) + "')");
    }
    for (int i = 0; i < 3000; ++i) {
      Must("INSERT INTO BIG VALUES (" + std::to_string(i) + ", " +
           std::to_string(i % 10) + ", " + std::to_string(i * 0.5) + ")");
    }
  }

  void Must(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  QueryResult Q(const std::string& sql) {
    Result<QueryResult> r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::string Plan(const std::string& select_sql,
                   const std::string& keyword = "EXPLAIN") {
    QueryResult r = Q(keyword + " " + select_sql);
    std::string joined;
    for (const Row& row : r.rows) {
      joined += row[0].AsString();
      joined += "\n";
    }
    return joined;
  }

  /// Planned (cost-based) vs naive executor over the same statement.
  void ExpectEquivalent(const std::string& select_sql) {
    Result<Statement> stmt = ParseSql(select_sql);
    ASSERT_TRUE(stmt.ok()) << select_sql << " -> "
                           << stmt.status().ToString();
    TableLookup lookup = [this](const std::string& name) {
      return db_->GetTable(name);
    };
    Result<QueryResult> planned =
        ExecuteSelect(*stmt->select, lookup, nullptr, {true});
    Result<QueryResult> naive =
        ExecuteSelect(*stmt->select, lookup, nullptr, {false});
    ASSERT_EQ(planned.ok(), naive.ok())
        << select_sql << "\nplanned: " << planned.status().ToString()
        << "\nnaive:   " << naive.status().ToString();
    if (!planned.ok()) return;
    EXPECT_EQ(planned->column_names, naive->column_names) << select_sql;
    ASSERT_EQ(planned->rows.size(), naive->rows.size()) << select_sql;
    for (size_t r = 0; r < naive->rows.size(); ++r) {
      for (size_t c = 0; c < naive->rows[r].size(); ++c) {
        EXPECT_EQ(planned->rows[r][c].ToDisplayString(),
                  naive->rows[r][c].ToDisplayString())
            << select_sql << " row " << r << " col " << c;
      }
    }
  }

  std::unique_ptr<Database> db_;
};

// --- Hash-join build side ---

TEST_F(AdaptivePlannerTest, BuildSideFlipsToSmallTable) {
  // Written small-first: the static plan would accumulate SMALL and build
  // the hash table over all 3000 BIG rows. The cost model must flip the
  // order so BIG streams and SMALL (10 rows) is the build side.
  std::string plan = Plan(
      "SELECT * FROM SMALL S, BIG B WHERE S.K = B.GRP");
  size_t big_at = plan.find("scan BIG AS B");
  size_t small_at = plan.find("scan SMALL AS S");
  ASSERT_NE(big_at, std::string::npos) << plan;
  ASSERT_NE(small_at, std::string::npos) << plan;
  EXPECT_LT(big_at, small_at) << "BIG must be scanned first (build on "
                                 "SMALL):\n"
                              << plan;
  EXPECT_NE(plan.find("hash join"), std::string::npos) << plan;
}

TEST_F(AdaptivePlannerTest, BuildSideAlreadyOptimalKeepsOrder) {
  // Written big-first, the FROM order is already the cheap one.
  std::string plan = Plan(
      "SELECT * FROM BIG B, SMALL S WHERE B.GRP = S.K");
  size_t big_at = plan.find("scan BIG AS B");
  size_t small_at = plan.find("scan SMALL AS S");
  ASSERT_NE(big_at, std::string::npos) << plan;
  ASSERT_NE(small_at, std::string::npos) << plan;
  EXPECT_LT(big_at, small_at) << plan;
}

TEST_F(AdaptivePlannerTest, StaticPlannerKeepsWrittenOrder) {
  // With cost-based planning off, the written order is law — the
  // regression EXPLAIN flip is visible only when stats drive the plan.
  DatabaseOptions options;
  options.cost_based_planner = false;
  Database fixed("FIXED", options);
  ASSERT_TRUE(fixed.Execute("CREATE TABLE SMALL (K INTEGER PRIMARY KEY)")
                  .ok());
  ASSERT_TRUE(fixed.Execute("CREATE TABLE BIG (ID INTEGER PRIMARY KEY,"
                            " GRP INTEGER)")
                  .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fixed.Execute("INSERT INTO SMALL VALUES (" +
                              std::to_string(i) + ")")
                    .ok());
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fixed.Execute("INSERT INTO BIG VALUES (" +
                              std::to_string(i) + ", " +
                              std::to_string(i % 10) + ")")
                    .ok());
  }
  Result<QueryResult> r = fixed.Execute(
      "EXPLAIN SELECT * FROM SMALL S, BIG B WHERE S.K = B.GRP");
  ASSERT_TRUE(r.ok());
  std::string plan;
  for (const Row& row : r->rows) plan += row[0].AsString() + "\n";
  EXPECT_LT(plan.find("scan SMALL AS S"), plan.find("scan BIG AS B"))
      << plan;
}

TEST_F(AdaptivePlannerTest, ReorderedJoinKeepsResultShapeAndOrder) {
  // The flipped execution order must not leak into the result: columns
  // stay in FROM order and rows come back in the naive executor's order.
  ExpectEquivalent("SELECT * FROM SMALL S, BIG B WHERE S.K = B.GRP");
  ExpectEquivalent(
      "SELECT S.LABEL, B.ID FROM SMALL S, BIG B"
      " WHERE S.K = B.GRP AND B.PAYLOAD < 100");
  ExpectEquivalent(
      "SELECT S.K, COUNT(*) FROM SMALL S, BIG B WHERE S.K = B.GRP"
      " GROUP BY S.K");
}

TEST_F(AdaptivePlannerTest, LimitCutoffSuppressesReorder) {
  // LIMIT without ORDER BY short-circuits the pipeline; reordering would
  // change which rows surface, so the written order must win.
  std::string plan = Plan(
      "SELECT * FROM SMALL S, BIG B WHERE S.K = B.GRP LIMIT 3");
  EXPECT_NE(plan.find("limit short-circuit: 3"), std::string::npos) << plan;
  EXPECT_LT(plan.find("scan SMALL AS S"), plan.find("scan BIG AS B"))
      << plan;
  ExpectEquivalent("SELECT * FROM SMALL S, BIG B WHERE S.K = B.GRP LIMIT 3");
}

// --- Index-loop joins ---

class IndexLoopTest : public AdaptivePlannerTest {
 protected:
  void SetUp() override {
    AdaptivePlannerTest::SetUp();
    // FACT carries an FK (and thus a secondary index) on DIM_K: probing
    // that index per DIM row beats hashing 1500 FACT rows.
    Must("CREATE TABLE DIM ("
         " K INTEGER NOT NULL,"
         " NAME VARCHAR(20),"
         " PRIMARY KEY (K))");
    Must("CREATE TABLE FACT ("
         " ID INTEGER NOT NULL,"
         " DIM_K INTEGER,"
         " VAL DOUBLE,"
         " PRIMARY KEY (ID),"
         " FOREIGN KEY (DIM_K) REFERENCES DIM (K))");
    for (int i = 0; i < 10; ++i) {
      Must("INSERT INTO DIM VALUES (" + std::to_string(i) + ", 'dim" +
           std::to_string(i) + "')");
    }
    for (int i = 0; i < 1500; ++i) {
      Must("INSERT INTO FACT VALUES (" + std::to_string(i) + ", " +
           (i % 7 == 0 ? "NULL" : std::to_string(i % 10)) + ", " +
           std::to_string(i * 1.5) + ")");
    }
  }
};

TEST_F(IndexLoopTest, ExplainShowsIndexLoopJoin) {
  std::string plan = Plan(
      "SELECT * FROM DIM D JOIN FACT F ON D.K = F.DIM_K");
  EXPECT_NE(plan.find("index loop join via (DIM_K)"), std::string::npos)
      << plan;
  EXPECT_EQ(plan.find("hash join"), std::string::npos) << plan;
}

TEST_F(IndexLoopTest, IndexLoopMatchesNaiveExecutor) {
  ExpectEquivalent("SELECT * FROM DIM D JOIN FACT F ON D.K = F.DIM_K");
  // NULL FK rows must not match; pushed filters on the probed side must
  // still be applied per fetched row.
  ExpectEquivalent(
      "SELECT D.NAME, F.ID FROM DIM D JOIN FACT F ON D.K = F.DIM_K"
      " WHERE F.VAL > 750");
  ExpectEquivalent(
      "SELECT D.K, COUNT(*) FROM DIM D JOIN FACT F ON D.K = F.DIM_K"
      " GROUP BY D.K");
}

// --- EXPLAIN ANALYZE ---

TEST_F(AdaptivePlannerTest, ExplainAnalyzeAnnotatesOperators) {
  std::string plan = Plan("SELECT * FROM BIG WHERE GRP = 3",
                          "EXPLAIN ANALYZE");
  EXPECT_NE(plan.find("est rows="), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual rows=300"), std::string::npos) << plan;
  EXPECT_NE(plan.find(" ms)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("total: 300 rows"), std::string::npos) << plan;
}

TEST_F(AdaptivePlannerTest, ExplainAnalyzeAnnotatesJoins) {
  std::string plan = Plan(
      "SELECT * FROM SMALL S, BIG B WHERE S.K = B.GRP",
      "EXPLAIN ANALYZE");
  // Both scans and the join line carry actuals; the join emits one output
  // row per BIG row (every GRP value has a SMALL match).
  EXPECT_NE(plan.find("actual rows=3000"), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual rows=10"), std::string::npos) << plan;
  EXPECT_NE(plan.find("total: 3000 rows"), std::string::npos) << plan;
}

TEST_F(AdaptivePlannerTest, ExplainAnalyzeOnAggregateFastPath) {
  std::string plan = Plan("SELECT COUNT(*) FROM BIG", "EXPLAIN ANALYZE");
  EXPECT_NE(plan.find("total: 1 rows"), std::string::npos) << plan;
}

TEST_F(AdaptivePlannerTest, PlainExplainCarriesNoActuals) {
  std::string plan = Plan("SELECT * FROM BIG WHERE GRP = 3");
  EXPECT_EQ(plan.find("actual rows"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("total:"), std::string::npos) << plan;
}

TEST_F(AdaptivePlannerTest, ExplainAnalyzeEstimateTracksStats) {
  // GRP has 10 distinct values over 3000 rows: the equality estimate must
  // land near 300, not at the blind 1/3 default (1000).
  std::string plan = Plan("SELECT * FROM BIG WHERE GRP = 3",
                          "EXPLAIN ANALYZE");
  size_t at = plan.find("est rows=");
  ASSERT_NE(at, std::string::npos) << plan;
  double est = std::strtod(plan.c_str() + at + 9, nullptr);
  EXPECT_GT(est, 100.0) << plan;
  EXPECT_LT(est, 600.0) << plan;
}

// --- Index advisor ---

TEST_F(AdaptivePlannerTest, AdvisorSurfacesHotEqualityPredicate) {
  for (int i = 0; i < 3; ++i) {
    Q("SELECT * FROM BIG WHERE GRP = " + std::to_string(i));
  }
  std::vector<stats::IndexRecommendation> recs =
      db_->index_advisor().Recommendations(1);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].table, "BIG");
  EXPECT_EQ(recs[0].column, "GRP");
  EXPECT_EQ(recs[0].kind, stats::IndexRecommendation::Kind::kEquality);
  EXPECT_GE(recs[0].hits, 3u);
  // Indexed columns are never recommended: ID lookups go via the PK.
  Q("SELECT * FROM BIG WHERE ID = 7");
  for (const auto& rec : db_->index_advisor().Recommendations(1)) {
    EXPECT_NE(rec.column, "ID");
  }
}

TEST_F(AdaptivePlannerTest, ApplyRecommendationsCreatesIndex) {
  for (int i = 0; i < 5; ++i) {
    Q("SELECT * FROM BIG WHERE GRP = " + std::to_string(i));
  }
  std::string before = Plan("SELECT * FROM BIG WHERE GRP = 3");
  EXPECT_NE(before.find("seq scan"), std::string::npos) << before;
  ASSERT_TRUE(db_->ApplyIndexRecommendations(5).ok());
  std::string after = Plan("SELECT * FROM BIG WHERE GRP = 3");
  EXPECT_NE(after.find("index scan via (GRP)"), std::string::npos) << after;
  // The new index must agree with a post-hoc filter.
  QueryResult r = Q("SELECT COUNT(*) FROM BIG WHERE GRP = 3");
  EXPECT_EQ(r.rows[0][0].AsInt(), 300);
}

TEST_F(AdaptivePlannerTest, AutoCreateIndexesOnCommit) {
  DatabaseOptions options;
  options.auto_create_indexes = true;
  options.auto_index_min_hits = 2;
  Database db("AUTO", options);
  ASSERT_TRUE(db.Execute("CREATE TABLE H (ID INTEGER PRIMARY KEY,"
                         " TAG VARCHAR(10))")
                  .ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO H VALUES (" + std::to_string(i) +
                           ", 'tag" + std::to_string(i % 4) + "')")
                    .ok());
  }
  ASSERT_TRUE(db.Execute("SELECT * FROM H WHERE TAG = 'tag1'").ok());
  ASSERT_TRUE(db.Execute("SELECT * FROM H WHERE TAG = 'tag2'").ok());
  // The next committed mutation applies the hot recommendation.
  ASSERT_TRUE(db.Execute("INSERT INTO H VALUES (40, 'tag0')").ok());
  Result<QueryResult> r =
      db.Execute("EXPLAIN SELECT * FROM H WHERE TAG = 'tag1'");
  ASSERT_TRUE(r.ok());
  std::string plan;
  for (const Row& row : r->rows) plan += row[0].AsString() + "\n";
  EXPECT_NE(plan.find("index scan via (TAG)"), std::string::npos) << plan;
}

TEST_F(AdaptivePlannerTest, AdvisorObservesPrefixPatterns) {
  Must("CREATE TABLE DOC (ID INTEGER PRIMARY KEY, PATH VARCHAR(60))");
  for (int i = 0; i < 20; ++i) {
    Must("INSERT INTO DOC VALUES (" + std::to_string(i) + ", '/data/f" +
         std::to_string(i) + "')");
  }
  Q("SELECT * FROM DOC WHERE PATH LIKE '/data/f1%'");
  Q("SELECT * FROM DOC WHERE PATH LIKE '/data/%'");
  bool found = false;
  for (const auto& rec : db_->index_advisor().Recommendations(1)) {
    if (rec.table == "DOC" && rec.column == "PATH" &&
        rec.kind == stats::IndexRecommendation::Kind::kPrefix) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace easia::db
