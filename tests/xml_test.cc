#include <gtest/gtest.h>

#include "common/random.h"
#include "xml/dtd.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace easia::xml {
namespace {

TEST(XmlParserTest, SimpleElement) {
  auto doc = Parse("<root/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->name(), "root");
  EXPECT_TRUE(doc->root->children().empty());
}

TEST(XmlParserTest, AttributesBothQuoteStyles) {
  auto doc = Parse("<t a=\"1\" b='two'/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->Attr("a"), "1");
  EXPECT_EQ(doc->root->Attr("b"), "two");
  EXPECT_FALSE(doc->root->HasAttr("c"));
}

TEST(XmlParserTest, NestedElementsAndText) {
  auto doc = Parse("<a><b>hello</b><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->ChildText("b"), "hello");
  ASSERT_NE(doc->root->FindChild("c"), nullptr);
  EXPECT_NE(doc->root->FindChild("c")->FindChild("d"), nullptr);
}

TEST(XmlParserTest, Entities) {
  auto doc = Parse("<t a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->Attr("a"), "<&>");
  EXPECT_EQ(doc->root->InnerText(), "\"x' AB");
}

TEST(XmlParserTest, CData) {
  auto doc = Parse("<t><![CDATA[<not-parsed> & raw]]></t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->InnerText(), "<not-parsed> & raw");
}

TEST(XmlParserTest, CommentsPreserved) {
  auto doc = Parse("<t><!--note--><x/></t>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root->children().size(), 2u);
  EXPECT_EQ(doc->root->children()[0]->type(), Node::Type::kComment);
  EXPECT_EQ(doc->root->children()[0]->text(), "note");
}

TEST(XmlParserTest, DeclarationAndDoctype) {
  auto doc = Parse(
      "<?xml version=\"1.1\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE xuis [<!ELEMENT xuis ANY>]>\n"
      "<xuis/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->version, "1.1");
  EXPECT_EQ(doc->encoding, "UTF-8");
  EXPECT_EQ(doc->doctype_name, "xuis");
  EXPECT_EQ(doc->internal_dtd, "<!ELEMENT xuis ANY>");
}

TEST(XmlParserTest, DottedNamesAllowed) {
  // The XUIS uses <database.result> and guest.access attributes.
  auto doc = Parse("<database.result guest.access=\"true\"/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->name(), "database.result");
  EXPECT_EQ(doc->root->Attr("guest.access"), "true");
}

TEST(XmlParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("<a>").ok());                  // unterminated
  EXPECT_FALSE(Parse("<a></b>").ok());              // mismatched
  EXPECT_FALSE(Parse("<a x=1/>").ok());             // unquoted attribute
  EXPECT_FALSE(Parse("<a x='1' x='2'/>").ok());     // duplicate attribute
  EXPECT_FALSE(Parse("<a>&bogus;</a>").ok());       // unknown entity
  EXPECT_FALSE(Parse("<a/><b/>").ok());             // two roots
  EXPECT_FALSE(Parse("<a><!--unterminated</a>").ok());
}

TEST(XmlParserTest, ErrorsCarryLineNumbers) {
  Status s = Parse("<a>\n<b>\n</a>").status();
  EXPECT_NE(s.message().find("xml:3"), std::string::npos) << s.message();
}

TEST(XmlNodeTest, BuildAndQuery) {
  auto root = Node::Element("table");
  root->SetAttr("name", "AUTHOR");
  root->AddElementWithText("tablealias", "Author");
  Node* col = root->AddElement("column");
  col->SetAttr("name", "AUTHOR_KEY");
  EXPECT_EQ(root->ChildText("tablealias"), "Author");
  EXPECT_EQ(root->FindChildren("column").size(), 1u);
  EXPECT_EQ(root->CountElements(), 3u);
}

TEST(XmlNodeTest, CloneIsDeep) {
  auto root = Node::Element("a");
  root->AddElementWithText("b", "text");
  auto copy = root->Clone();
  root->FindChild("b")->set_name("c");
  EXPECT_NE(copy->FindChild("b"), nullptr);
  EXPECT_EQ(copy->ChildText("b"), "text");
}

TEST(XmlNodeTest, RemoveChildren) {
  auto root = Node::Element("a");
  root->AddElement("x");
  root->AddElement("y");
  root->AddElement("x");
  EXPECT_EQ(root->RemoveChildren("x"), 2u);
  EXPECT_EQ(root->ChildElements().size(), 1u);
}

TEST(XmlWriterTest, EscapesSpecials) {
  auto root = Node::Element("t");
  root->SetAttr("a", "x<y&\"z\"");
  root->AddText("a<b>&c");
  std::string out = WriteNode(*root);
  EXPECT_EQ(out, "<t a=\"x&lt;y&amp;&quot;z&quot;\">a&lt;b&gt;&amp;c</t>");
}

TEST(XmlWriterTest, RoundTripPreservesStructure) {
  const char* kInput =
      "<table name=\"AUTHOR\" primaryKey=\"AUTHOR.AUTHOR_KEY\">"
      "<tablealias>Author</tablealias>"
      "<column name=\"AUTHOR_KEY\" colid=\"AUTHOR.AUTHOR_KEY\">"
      "<type><VARCHAR/><size>30</size></type>"
      "<pk><refby tablecolumn=\"SIMULATION.AUTHOR_KEY\"/></pk>"
      "<samples><sample>A19990110151042</sample></samples>"
      "</column></table>";
  auto doc1 = Parse(kInput);
  ASSERT_TRUE(doc1.ok());
  std::string written = WriteDocument(*doc1);
  auto doc2 = Parse(written);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(doc1->root->CountElements(), doc2->root->CountElements());
  EXPECT_EQ(doc2->root->FindChild("column")
                ->FindChild("type")
                ->ChildText("size"),
            "30");
  // Idempotence: writing the reparsed document gives identical text.
  EXPECT_EQ(WriteDocument(*doc2), written);
}

// Property: generated random trees survive write -> parse -> write.
class XmlRoundTripTest : public ::testing::TestWithParam<int> {};

std::unique_ptr<Node> RandomTree(Random* rng, int depth) {
  auto node = Node::Element("e" + std::to_string(rng->Uniform(5)));
  size_t attrs = rng->Uniform(3);
  for (size_t i = 0; i < attrs; ++i) {
    node->SetAttr("a" + std::to_string(i), rng->AlphaNum(4) + "<&>'\"");
  }
  if (depth > 0) {
    size_t kids = rng->Uniform(4);
    for (size_t i = 0; i < kids; ++i) {
      if (rng->OneIn(3)) {
        node->AddText(rng->AlphaNum(5) + "&<");
      } else {
        node->AddChild(RandomTree(rng, depth - 1));
      }
    }
  }
  return node;
}

TEST_P(XmlRoundTripTest, WriteParseWriteFixpoint) {
  Random rng(static_cast<uint64_t>(GetParam()) * 977 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    Document doc;
    doc.root = RandomTree(&rng, 3);
    std::string once = WriteDocument(doc);
    auto parsed = Parse(once);
    ASSERT_TRUE(parsed.ok()) << once;
    EXPECT_EQ(WriteDocument(*parsed), once);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest, ::testing::Range(0, 5));

// ---- DTD ----

TEST(DtdTest, ParsesElementAndAttlist) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT a (b, c?)>\n<!ELEMENT b EMPTY>\n"
      "<!ELEMENT c (#PCDATA)>\n"
      "<!ATTLIST a id CDATA #REQUIRED kind (x|y) \"x\">");
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(dtd->HasElement("a"));
  EXPECT_TRUE(dtd->HasElement("b"));
  EXPECT_EQ(dtd->attlists().at("a").size(), 2u);
}

TEST(DtdTest, ValidatesSequence) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT a (b, c)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>");
  ASSERT_TRUE(dtd.ok());
  auto good = Parse("<a><b/><c/></a>");
  EXPECT_TRUE(dtd->Validate(*good->root).ok());
  auto wrong_order = Parse("<a><c/><b/></a>");
  EXPECT_FALSE(dtd->Validate(*wrong_order->root).ok());
  auto missing = Parse("<a><b/></a>");
  EXPECT_FALSE(dtd->Validate(*missing->root).ok());
}

TEST(DtdTest, ValidatesChoiceAndOccurrence) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT a (b | c)*> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>");
  ASSERT_TRUE(dtd.ok());
  for (const char* text : {"<a/>", "<a><b/></a>", "<a><c/><b/><c/></a>"}) {
    auto doc = Parse(text);
    EXPECT_TRUE(dtd->Validate(*doc->root).ok()) << text;
  }
}

TEST(DtdTest, PlusRequiresAtLeastOne) {
  auto dtd = Dtd::Parse("<!ELEMENT a (b+)> <!ELEMENT b EMPTY>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(dtd->Validate(*Parse("<a/>")->root).ok());
  EXPECT_TRUE(dtd->Validate(*Parse("<a><b/></a>")->root).ok());
  EXPECT_TRUE(dtd->Validate(*Parse("<a><b/><b/><b/></a>")->root).ok());
}

TEST(DtdTest, EmptyModelRejectsContent) {
  auto dtd = Dtd::Parse("<!ELEMENT a EMPTY>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(dtd->Validate(*Parse("<a/>")->root).ok());
  EXPECT_FALSE(dtd->Validate(*Parse("<a>text</a>")->root).ok());
}

TEST(DtdTest, MixedAllowsListedElements) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT a (#PCDATA | b)*> <!ELEMENT b EMPTY>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(dtd->Validate(*Parse("<a>text<b/>more</a>")->root).ok());
  auto bad = Parse("<a><c/></a>");
  EXPECT_FALSE(dtd->Validate(*bad->root).ok());
}

TEST(DtdTest, RequiredAttributeEnforced) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT a EMPTY> <!ATTLIST a id CDATA #REQUIRED>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(dtd->Validate(*Parse("<a/>")->root).ok());
  EXPECT_TRUE(dtd->Validate(*Parse("<a id='1'/>")->root).ok());
}

TEST(DtdTest, EnumeratedAttributeEnforced) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT a EMPTY> <!ATTLIST a kind (x|y) #IMPLIED>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(dtd->Validate(*Parse("<a kind='x'/>")->root).ok());
  EXPECT_FALSE(dtd->Validate(*Parse("<a kind='z'/>")->root).ok());
}

TEST(DtdTest, UndeclaredAttributeRejected) {
  auto dtd = Dtd::Parse("<!ELEMENT a EMPTY>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(dtd->Validate(*Parse("<a rogue='1'/>")->root).ok());
}

TEST(DtdTest, UndeclaredElementRejected) {
  auto dtd = Dtd::Parse("<!ELEMENT a ANY>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(dtd->Validate(*Parse("<a><mystery/></a>")->root).ok());
}

TEST(DtdTest, XuisDtdParsesAndValidatesPaperFragment) {
  auto dtd = Dtd::Parse(XuisDtdText());
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  // The paper's AUTHOR fragment, completed to a full document.
  const char* kPaperFragment = R"XML(
<xuis database="TURBULENCE">
 <table name="AUTHOR" primaryKey="AUTHOR.AUTHOR_KEY">
  <tablealias>Author</tablealias>
  <column name="AUTHOR_KEY" colid="AUTHOR.AUTHOR_KEY">
   <type><VARCHAR/><size>30</size></type>
   <pk><refby tablecolumn="SIMULATION.AUTHOR_KEY"/></pk>
   <samples>
    <sample>A19990110151042</sample>
    <sample>A19990209151042</sample>
   </samples>
  </column>
 </table>
</xuis>)XML";
  auto doc = Parse(kPaperFragment);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(dtd->Validate(*doc->root).ok())
      << dtd->Validate(*doc->root).ToString();
}

TEST(DtdTest, XuisDtdValidatesOperationFragment) {
  auto dtd = Dtd::Parse(XuisDtdText());
  ASSERT_TRUE(dtd.ok());
  // The paper's GetImage operation fragment.
  const char* kOperation = R"XML(
<xuis database="TURBULENCE">
 <table name="RESULT_FILE">
  <column name="DOWNLOAD_RESULT" colid="RESULT_FILE.DOWNLOAD_RESULT">
   <type><DATALINK/></type>
   <operation name="GetImage" type="JAVA" filename="GetImage.class"
              format="jar" guest.access="true" column="false">
    <if>
     <condition colid="RESULT_FILE.SIMULATION_KEY">
      <eq>'S19990110150932'</eq>
     </condition>
    </if>
    <location>
     <database.result colid="CODE_FILE.DOWNLOAD_CODE_FILE">
      <condition colid="CODE_FILE.CODE_NAME"><eq>'GetImage.jar'</eq></condition>
     </database.result>
    </location>
    <parameters>
     <param><variable>
      <description>Select the slice you wish to visualise:</description>
      <select name="slice" size="4">
       <option value="x0">x0=0.0</option>
       <option value="x1">x1=0.1015625</option>
      </select>
     </variable></param>
     <param><variable>
      <description>Select velocity component or pressure:</description>
      <input type="radio" name="type" value="u">u speed</input>
      <input type="radio" name="type" value="p">pressure</input>
     </variable></param>
    </parameters>
   </operation>
   <upload type="JAVA" format="jar" guest.access="false" column="false">
    <if>
     <condition colid="RESULT_FILE.SIMULATION_KEY">
      <eq>'S19990110150932'</eq>
     </condition>
     <condition colid="RESULT_FILE.MEASUREMENT"><eq>'u,v,w,p'</eq></condition>
    </if>
   </upload>
  </column>
 </table>
</xuis>)XML";
  auto doc = Parse(kOperation);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  Status v = dtd->Validate(*doc->root);
  EXPECT_TRUE(v.ok()) << v.ToString();
}

}  // namespace
}  // namespace easia::xml
