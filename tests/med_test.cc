#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/string_util.h"
#include "common/random.h"
#include "db/database.h"
#include "fileserver/file_server.h"
#include "med/datalink_manager.h"
#include "med/token.h"

namespace easia::med {
namespace {

// ---- TokenManager ----

TEST(TokenTest, IssueAndValidate) {
  TokenManager tokens("secret", 300);
  std::string token = tokens.Issue("/archive/file.tbf", 1000.0);
  EXPECT_TRUE(tokens.Validate(token, "/archive/file.tbf", 1100.0).ok());
  EXPECT_EQ(tokens.issued(), 1u);
  EXPECT_EQ(tokens.validated_ok(), 1u);
}

TEST(TokenTest, ExpiresAfterTtl) {
  TokenManager tokens("secret", 300);
  std::string token = tokens.Issue("/f", 1000.0);
  EXPECT_TRUE(tokens.Validate(token, "/f", 1299.0).ok());
  Status late = tokens.Validate(token, "/f", 1301.0);
  EXPECT_TRUE(late.IsTokenExpired());
}

TEST(TokenTest, BoundToPath) {
  TokenManager tokens("secret", 300);
  std::string token = tokens.Issue("/fileA", 0.0);
  EXPECT_TRUE(tokens.Validate(token, "/fileB", 1.0).IsPermissionDenied());
}

TEST(TokenTest, KeyedBySecret) {
  TokenManager a("secret-a", 300), b("secret-b", 300);
  std::string token = a.Issue("/f", 0.0);
  EXPECT_TRUE(b.Validate(token, "/f", 1.0).IsPermissionDenied());
}

TEST(TokenTest, GarbageRejected) {
  TokenManager tokens("secret", 300);
  EXPECT_TRUE(tokens.Validate("", "/f", 0.0).IsPermissionDenied());
  EXPECT_TRUE(tokens.Validate("notatoken", "/f", 0.0).IsPermissionDenied());
  EXPECT_TRUE(tokens.Validate("!!!***", "/f", 0.0).IsPermissionDenied());
  EXPECT_EQ(tokens.rejected(), 3u);
}

TEST(TokenTest, CustomTtl) {
  TokenManager tokens("secret", 300);
  std::string token = tokens.IssueWithTtl("/f", 0.0, 10.0);
  EXPECT_TRUE(tokens.Validate(token, "/f", 9.0).ok());
  EXPECT_TRUE(tokens.Validate(token, "/f", 11.0).IsTokenExpired());
}

class TokenTamperTest : public ::testing::TestWithParam<int> {};

TEST_P(TokenTamperTest, AnySingleCharacterTamperIsRejected) {
  TokenManager tokens("secret", 300);
  std::string token = tokens.Issue("/archive/data.tbf", 1000.0);
  Random rng(static_cast<uint64_t>(GetParam()));
  static const char kB64[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";
  for (int trial = 0; trial < 50; ++trial) {
    std::string tampered = token;
    size_t pos = rng.Uniform(tampered.size());
    char replacement = kB64[rng.Uniform(64)];
    if (replacement == tampered[pos]) continue;
    tampered[pos] = replacement;
    Status s = tokens.Validate(tampered, "/archive/data.tbf", 1000.0);
    // Either the MAC breaks (denied) or the expiry field grew but the MAC
    // still breaks — never OK.
    EXPECT_FALSE(s.ok()) << "tampering position " << pos << " accepted";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenTamperTest, ::testing::Range(1, 5));

// ---- DataLinker two-phase protocol ----

class DataLinkerTest : public ::testing::Test {
 protected:
  DataLinkerTest() : server_("fs1"), linker_(&server_) {
    EXPECT_TRUE(server_.vfs().WriteFile("/data/f1.tbf", "bytes").ok());
    EXPECT_TRUE(server_.vfs().WriteFile("/data/f2.tbf", "bytes").ok());
    options_.file_link_control = true;
    options_.read_permission = db::DatalinkOptions::ReadPermission::kDb;
  }

  fs::FileServer server_;
  DataLinker linker_;
  db::DatalinkOptions options_;
};

TEST_F(DataLinkerTest, LinkCommitPins) {
  ASSERT_TRUE(linker_.PrepareLink(1, options_, "/data/f1.tbf").ok());
  EXPECT_FALSE(linker_.IsLinked("/data/f1.tbf"));  // pending, not committed
  linker_.CommitTxn(1);
  EXPECT_TRUE(linker_.IsLinked("/data/f1.tbf"));
  EXPECT_TRUE(server_.vfs().IsPinned("/data/f1.tbf"));
  // Referential integrity: rename/delete refused.
  EXPECT_FALSE(server_.vfs().DeleteFile("/data/f1.tbf").ok());
  EXPECT_FALSE(server_.vfs().RenameFile("/data/f1.tbf", "/data/x").ok());
  EXPECT_FALSE(server_.vfs().WriteFile("/data/f1.tbf", "overwrite").ok());
}

TEST_F(DataLinkerTest, LinkAbortReleases) {
  ASSERT_TRUE(linker_.PrepareLink(1, options_, "/data/f1.tbf").ok());
  linker_.AbortTxn(1);
  EXPECT_FALSE(linker_.IsLinked("/data/f1.tbf"));
  EXPECT_FALSE(server_.vfs().IsPinned("/data/f1.tbf"));
  // The file is linkable again.
  EXPECT_TRUE(linker_.PrepareLink(2, options_, "/data/f1.tbf").ok());
}

TEST_F(DataLinkerTest, MissingFileVetoed) {
  Status s = linker_.PrepareLink(1, options_, "/data/nope.tbf");
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(DataLinkerTest, NoFileLinkControlSkipsExistenceCheck) {
  db::DatalinkOptions no_control;
  no_control.file_link_control = false;
  EXPECT_TRUE(linker_.PrepareLink(1, no_control, "/data/nope.tbf").ok());
  linker_.CommitTxn(1);
  EXPECT_FALSE(server_.vfs().IsPinned("/data/nope.tbf"));
}

TEST_F(DataLinkerTest, DoubleLinkConflicts) {
  ASSERT_TRUE(linker_.PrepareLink(1, options_, "/data/f1.tbf").ok());
  EXPECT_TRUE(
      linker_.PrepareLink(2, options_, "/data/f1.tbf").code() ==
      StatusCode::kAlreadyExists);
  linker_.CommitTxn(1);
  EXPECT_TRUE(
      linker_.PrepareLink(3, options_, "/data/f1.tbf").code() ==
      StatusCode::kAlreadyExists);
}

TEST_F(DataLinkerTest, UnlinkCommitUnpins) {
  ASSERT_TRUE(linker_.PrepareLink(1, options_, "/data/f1.tbf").ok());
  linker_.CommitTxn(1);
  ASSERT_TRUE(linker_.PrepareUnlink(2, options_, "/data/f1.tbf").ok());
  EXPECT_TRUE(server_.vfs().IsPinned("/data/f1.tbf"));  // until commit
  linker_.CommitTxn(2);
  EXPECT_FALSE(linker_.IsLinked("/data/f1.tbf"));
  EXPECT_FALSE(server_.vfs().IsPinned("/data/f1.tbf"));
}

TEST_F(DataLinkerTest, UnlinkAbortKeepsLink) {
  ASSERT_TRUE(linker_.PrepareLink(1, options_, "/data/f1.tbf").ok());
  linker_.CommitTxn(1);
  ASSERT_TRUE(linker_.PrepareUnlink(2, options_, "/data/f1.tbf").ok());
  linker_.AbortTxn(2);
  EXPECT_TRUE(linker_.IsLinked("/data/f1.tbf"));
  EXPECT_TRUE(server_.vfs().IsPinned("/data/f1.tbf"));
}

TEST_F(DataLinkerTest, LinkUnlinkInSameTxnCancels) {
  ASSERT_TRUE(linker_.PrepareLink(1, options_, "/data/f1.tbf").ok());
  ASSERT_TRUE(linker_.PrepareUnlink(1, options_, "/data/f1.tbf").ok());
  linker_.CommitTxn(1);
  EXPECT_FALSE(linker_.IsLinked("/data/f1.tbf"));
  EXPECT_FALSE(server_.vfs().IsPinned("/data/f1.tbf"));
}

TEST_F(DataLinkerTest, OnUnlinkDeleteRemovesFile) {
  options_.on_unlink = db::DatalinkOptions::OnUnlink::kDelete;
  ASSERT_TRUE(linker_.PrepareLink(1, options_, "/data/f1.tbf").ok());
  linker_.CommitTxn(1);
  ASSERT_TRUE(linker_.PrepareUnlink(2, options_, "/data/f1.tbf").ok());
  linker_.CommitTxn(2);
  EXPECT_FALSE(server_.vfs().Exists("/data/f1.tbf"));
}

// ---- DataLinkManager + Database integration ----

class MedIntegrationTest : public ::testing::Test {
 protected:
  MedIntegrationTest()
      : clock_(1000.0), manager_(&fleet_, &clock_, "secret", 300.0),
        db_("MEDTEST") {
    server_ = fleet_.AddServer("fs1");
    db_.set_coordinator(&manager_);
    EXPECT_TRUE(db_.Execute(
        "CREATE TABLE RESULT_FILE ("
        " FILE_NAME VARCHAR(100) PRIMARY KEY,"
        " DOWNLOAD DATALINK LINKTYPE URL FILE LINK CONTROL "
        "   READ PERMISSION DB RECOVERY YES)").ok());
    EXPECT_TRUE(server_->vfs().WriteFile("/d/a.tbf", "AAAA").ok());
    EXPECT_TRUE(server_->vfs().WriteFile("/d/b.tbf", "BBBB").ok());
  }

  ManualClock clock_;
  fs::FileServerFleet fleet_;
  DataLinkManager manager_;
  db::Database db_;
  fs::FileServer* server_;
};

TEST_F(MedIntegrationTest, InsertLinksAndPins) {
  ASSERT_TRUE(db_.Execute("INSERT INTO RESULT_FILE VALUES "
                          "('a.tbf', 'http://fs1/d/a.tbf')").ok());
  EXPECT_TRUE(server_->vfs().IsPinned("/d/a.tbf"));
  EXPECT_EQ(manager_.TotalLinkedFiles(), 1u);
}

TEST_F(MedIntegrationTest, InsertMissingFileFails) {
  Status s = db_.Execute("INSERT INTO RESULT_FILE VALUES "
                         "('x.tbf', 'http://fs1/d/missing.tbf')").status();
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(db_.Execute("SELECT * FROM RESULT_FILE")->rows.size(), 0u);
}

TEST_F(MedIntegrationTest, InsertUnknownHostFails) {
  Status s = db_.Execute("INSERT INTO RESULT_FILE VALUES "
                         "('x.tbf', 'http://nowhere/d/a.tbf')").status();
  EXPECT_FALSE(s.ok());
}

TEST_F(MedIntegrationTest, RolledBackInsertDoesNotPin) {
  ASSERT_TRUE(db_.Execute("BEGIN").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO RESULT_FILE VALUES "
                          "('a.tbf', 'http://fs1/d/a.tbf')").ok());
  ASSERT_TRUE(db_.Execute("ROLLBACK").ok());
  EXPECT_FALSE(server_->vfs().IsPinned("/d/a.tbf"));
  EXPECT_EQ(manager_.TotalLinkedFiles(), 0u);
  // And it can be linked later.
  EXPECT_TRUE(db_.Execute("INSERT INTO RESULT_FILE VALUES "
                          "('a.tbf', 'http://fs1/d/a.tbf')").ok());
}

TEST_F(MedIntegrationTest, DeleteUnlinks) {
  ASSERT_TRUE(db_.Execute("INSERT INTO RESULT_FILE VALUES "
                          "('a.tbf', 'http://fs1/d/a.tbf')").ok());
  ASSERT_TRUE(db_.Execute("DELETE FROM RESULT_FILE").ok());
  EXPECT_FALSE(server_->vfs().IsPinned("/d/a.tbf"));
  EXPECT_TRUE(server_->vfs().DeleteFile("/d/a.tbf").ok());
}

TEST_F(MedIntegrationTest, UpdateSwapsLinks) {
  ASSERT_TRUE(db_.Execute("INSERT INTO RESULT_FILE VALUES "
                          "('a.tbf', 'http://fs1/d/a.tbf')").ok());
  ASSERT_TRUE(db_.Execute("UPDATE RESULT_FILE SET DOWNLOAD = "
                          "'http://fs1/d/b.tbf'").ok());
  EXPECT_FALSE(server_->vfs().IsPinned("/d/a.tbf"));
  EXPECT_TRUE(server_->vfs().IsPinned("/d/b.tbf"));
}

TEST_F(MedIntegrationTest, DoubleInsertOfSameFileConflicts) {
  ASSERT_TRUE(db_.Execute("INSERT INTO RESULT_FILE VALUES "
                          "('a.tbf', 'http://fs1/d/a.tbf')").ok());
  Status s = db_.Execute("INSERT INTO RESULT_FILE VALUES "
                         "('a2.tbf', 'http://fs1/d/a.tbf')").status();
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(MedIntegrationTest, SelectRewritesToTokenForm) {
  ASSERT_TRUE(db_.Execute("INSERT INTO RESULT_FILE VALUES "
                          "('a.tbf', 'http://fs1/d/a.tbf')").ok());
  Result<db::QueryResult> r =
      db_.Execute("SELECT DOWNLOAD FROM RESULT_FILE");
  ASSERT_TRUE(r.ok());
  std::string url = r->rows[0][0].AsString();
  EXPECT_NE(url.find(';'), std::string::npos) << url;
  // The tokenised URL opens the file; the raw one does not.
  EXPECT_TRUE(server_->GetUrl(url).ok());
  EXPECT_FALSE(server_->GetUrl("http://fs1/d/a.tbf").ok());
}

TEST_F(MedIntegrationTest, TokenisedUrlExpires) {
  ASSERT_TRUE(db_.Execute("INSERT INTO RESULT_FILE VALUES "
                          "('a.tbf', 'http://fs1/d/a.tbf')").ok());
  std::string url =
      db_.Execute("SELECT DOWNLOAD FROM RESULT_FILE")->rows[0][0].AsString();
  clock_.Advance(301.0);
  Status s = server_->GetUrl(url).status();
  EXPECT_TRUE(s.IsTokenExpired()) << s.ToString();
}

TEST_F(MedIntegrationTest, GuestGetsNoToken) {
  manager_.set_read_privilege_check(
      [](const std::string& user) { return user != "guest"; });
  ASSERT_TRUE(db_.Execute("INSERT INTO RESULT_FILE VALUES "
                          "('a.tbf', 'http://fs1/d/a.tbf')").ok());
  db::ExecContext guest;
  guest.user = "guest";
  Result<db::QueryResult> r =
      db_.Execute("SELECT DOWNLOAD FROM RESULT_FILE", guest);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsString(), "http://fs1/d/a.tbf");  // no token
}

TEST_F(MedIntegrationTest, ReadPermissionFsNeedsNoToken) {
  ASSERT_TRUE(db_.Execute(
      "CREATE TABLE OPEN_FILE (N VARCHAR(10) PRIMARY KEY,"
      " D DATALINK LINKTYPE URL FILE LINK CONTROL READ PERMISSION FS)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO OPEN_FILE VALUES "
                          "('b', 'http://fs1/d/b.tbf')").ok());
  std::string url =
      db_.Execute("SELECT D FROM OPEN_FILE")->rows[0][0].AsString();
  EXPECT_EQ(url, "http://fs1/d/b.tbf");  // unchanged
  EXPECT_TRUE(server_->GetUrl(url).ok());  // and directly readable
}

TEST_F(MedIntegrationTest, TokenMustNotBeStoredOnInsert) {
  std::string token_url = "http://fs1/d/ABCDEF;a.tbf";
  Status s = db_.Execute("INSERT INTO RESULT_FILE VALUES ('x', '" +
                         token_url + "')").status();
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace easia::med

namespace easia::med {
namespace {

// Property: under random Prepare/Commit/Abort sequences, the DataLinker
// never leaves a pin without a committed link, never loses a committed
// link without an unlink, and clears all pending state when every open
// transaction terminates.
class LinkerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LinkerPropertyTest, RandomSequencesKeepInvariants) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7919 + 5);
  fs::FileServer server("fs");
  DataLinker linker(&server);
  db::DatalinkOptions options;
  options.file_link_control = true;
  constexpr int kFiles = 8;
  for (int f = 0; f < kFiles; ++f) {
    ASSERT_TRUE(
        server.vfs().WriteFile(StrPrintf("/f%d", f), "x").ok());
  }
  std::set<uint64_t> open_txns;
  uint64_t next_txn = 1;
  for (int step = 0; step < 400; ++step) {
    std::string path = StrPrintf("/f%d", static_cast<int>(rng.Uniform(kFiles)));
    switch (rng.Uniform(5)) {
      case 0: {  // new txn with a link attempt
        uint64_t txn = next_txn++;
        if (linker.PrepareLink(txn, options, path).ok()) {
          open_txns.insert(txn);
        }
        break;
      }
      case 1: {  // new txn with an unlink attempt
        uint64_t txn = next_txn++;
        if (linker.PrepareUnlink(txn, options, path).ok()) {
          open_txns.insert(txn);
        }
        break;
      }
      case 2:
      case 3: {  // commit a random open txn
        if (!open_txns.empty()) {
          auto it = open_txns.begin();
          std::advance(it, rng.Uniform(open_txns.size()));
          linker.CommitTxn(*it);
          open_txns.erase(it);
        }
        break;
      }
      case 4: {  // abort a random open txn
        if (!open_txns.empty()) {
          auto it = open_txns.begin();
          std::advance(it, rng.Uniform(open_txns.size()));
          linker.AbortTxn(*it);
          open_txns.erase(it);
        }
        break;
      }
    }
    // Invariant: every pinned file is linked (pins never dangle).
    for (int f = 0; f < kFiles; ++f) {
      std::string p = StrPrintf("/f%d", f);
      if (server.vfs().IsPinned(p)) {
        EXPECT_TRUE(linker.IsLinked(p) ||
                    linker.PendingCount() > 0)  // unlink may be pending
            << p << " pinned without link at step " << step;
      }
    }
  }
  // Terminate everything; no pending state may survive.
  for (uint64_t txn : open_txns) linker.AbortTxn(txn);
  EXPECT_EQ(linker.PendingCount(), 0u);
  // Final strict invariant: pinned <=> linked.
  for (int f = 0; f < kFiles; ++f) {
    std::string p = StrPrintf("/f%d", f);
    EXPECT_EQ(server.vfs().IsPinned(p), linker.IsLinked(p)) << p;
  }
  // And every linked file can still be unlinked cleanly.
  uint64_t cleanup = next_txn++;
  for (const std::string& p : linker.LinkedPaths()) {
    EXPECT_TRUE(linker.PrepareUnlink(cleanup, options, p).ok()) << p;
  }
  linker.CommitTxn(cleanup);
  EXPECT_TRUE(linker.LinkedPaths().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkerPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace easia::med
