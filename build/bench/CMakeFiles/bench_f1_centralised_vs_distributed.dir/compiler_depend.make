# Empty compiler generated dependencies file for bench_f1_centralised_vs_distributed.
# This may be replaced when dependencies are built.
