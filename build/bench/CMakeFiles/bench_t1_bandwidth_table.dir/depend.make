# Empty dependencies file for bench_t1_bandwidth_table.
# This may be replaced when dependencies are built.
