file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_bandwidth_table.dir/bench_t1_bandwidth_table.cc.o"
  "CMakeFiles/bench_t1_bandwidth_table.dir/bench_t1_bandwidth_table.cc.o.d"
  "bench_t1_bandwidth_table"
  "bench_t1_bandwidth_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_bandwidth_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
