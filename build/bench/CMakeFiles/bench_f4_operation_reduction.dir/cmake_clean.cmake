file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_operation_reduction.dir/bench_f4_operation_reduction.cc.o"
  "CMakeFiles/bench_f4_operation_reduction.dir/bench_f4_operation_reduction.cc.o.d"
  "bench_f4_operation_reduction"
  "bench_f4_operation_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_operation_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
