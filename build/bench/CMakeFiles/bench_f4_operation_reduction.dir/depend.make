# Empty dependencies file for bench_f4_operation_reduction.
# This may be replaced when dependencies are built.
