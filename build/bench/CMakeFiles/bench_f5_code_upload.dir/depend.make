# Empty dependencies file for bench_f5_code_upload.
# This may be replaced when dependencies are built.
