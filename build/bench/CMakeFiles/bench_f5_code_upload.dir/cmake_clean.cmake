file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_code_upload.dir/bench_f5_code_upload.cc.o"
  "CMakeFiles/bench_f5_code_upload.dir/bench_f5_code_upload.cc.o.d"
  "bench_f5_code_upload"
  "bench_f5_code_upload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_code_upload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
