# Empty compiler generated dependencies file for bench_f3_search_browse.
# This may be replaced when dependencies are built.
