file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_search_browse.dir/bench_f3_search_browse.cc.o"
  "CMakeFiles/bench_f3_search_browse.dir/bench_f3_search_browse.cc.o.d"
  "bench_f3_search_browse"
  "bench_f3_search_browse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_search_browse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
