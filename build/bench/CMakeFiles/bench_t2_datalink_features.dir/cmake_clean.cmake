file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_datalink_features.dir/bench_t2_datalink_features.cc.o"
  "CMakeFiles/bench_t2_datalink_features.dir/bench_t2_datalink_features.cc.o.d"
  "bench_t2_datalink_features"
  "bench_t2_datalink_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_datalink_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
