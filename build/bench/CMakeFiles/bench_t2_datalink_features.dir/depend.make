# Empty dependencies file for bench_t2_datalink_features.
# This may be replaced when dependencies are built.
