# Empty dependencies file for bench_f2_architecture_e2e.
# This may be replaced when dependencies are built.
