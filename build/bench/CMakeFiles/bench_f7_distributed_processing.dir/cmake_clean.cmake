file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_distributed_processing.dir/bench_f7_distributed_processing.cc.o"
  "CMakeFiles/bench_f7_distributed_processing.dir/bench_f7_distributed_processing.cc.o.d"
  "bench_f7_distributed_processing"
  "bench_f7_distributed_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_distributed_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
