# Empty dependencies file for bench_f7_distributed_processing.
# This may be replaced when dependencies are built.
