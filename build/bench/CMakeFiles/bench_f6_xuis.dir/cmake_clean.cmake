file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_xuis.dir/bench_f6_xuis.cc.o"
  "CMakeFiles/bench_f6_xuis.dir/bench_f6_xuis.cc.o.d"
  "bench_f6_xuis"
  "bench_f6_xuis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_xuis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
