file(REMOVE_RECURSE
  "CMakeFiles/chain_web_test.dir/chain_web_test.cc.o"
  "CMakeFiles/chain_web_test.dir/chain_web_test.cc.o.d"
  "chain_web_test"
  "chain_web_test.pdb"
  "chain_web_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_web_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
