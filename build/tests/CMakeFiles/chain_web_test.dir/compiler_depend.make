# Empty compiler generated dependencies file for chain_web_test.
# This may be replaced when dependencies are built.
