# Empty compiler generated dependencies file for xuis_test.
# This may be replaced when dependencies are built.
