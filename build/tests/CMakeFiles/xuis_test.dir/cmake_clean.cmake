file(REMOVE_RECURSE
  "CMakeFiles/xuis_test.dir/xuis_test.cc.o"
  "CMakeFiles/xuis_test.dir/xuis_test.cc.o.d"
  "xuis_test"
  "xuis_test.pdb"
  "xuis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xuis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
