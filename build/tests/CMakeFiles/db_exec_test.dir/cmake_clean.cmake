file(REMOVE_RECURSE
  "CMakeFiles/db_exec_test.dir/db_exec_test.cc.o"
  "CMakeFiles/db_exec_test.dir/db_exec_test.cc.o.d"
  "db_exec_test"
  "db_exec_test.pdb"
  "db_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
