# Empty dependencies file for turbulence_test.
# This may be replaced when dependencies are built.
