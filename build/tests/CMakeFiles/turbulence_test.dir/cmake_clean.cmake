file(REMOVE_RECURSE
  "CMakeFiles/turbulence_test.dir/turbulence_test.cc.o"
  "CMakeFiles/turbulence_test.dir/turbulence_test.cc.o.d"
  "turbulence_test"
  "turbulence_test.pdb"
  "turbulence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbulence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
