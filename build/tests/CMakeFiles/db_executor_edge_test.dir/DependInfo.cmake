
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/db_executor_edge_test.cc" "tests/CMakeFiles/db_executor_edge_test.dir/db_executor_edge_test.cc.o" "gcc" "tests/CMakeFiles/db_executor_edge_test.dir/db_executor_edge_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/easia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/med/CMakeFiles/easia_med.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/easia_web.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/easia_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/easia_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/easia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/turbulence/CMakeFiles/easia_turbulence.dir/DependInfo.cmake"
  "/root/repo/build/src/fileserver/CMakeFiles/easia_fileserver.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/easia_script.dir/DependInfo.cmake"
  "/root/repo/build/src/xuis/CMakeFiles/easia_xuis.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/easia_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/easia_db.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/easia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
