# Empty dependencies file for db_executor_edge_test.
# This may be replaced when dependencies are built.
