# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/db_value_test[1]_include.cmake")
include("/root/repo/build/tests/db_sql_test[1]_include.cmake")
include("/root/repo/build/tests/db_exec_test[1]_include.cmake")
include("/root/repo/build/tests/db_wal_test[1]_include.cmake")
include("/root/repo/build/tests/med_test[1]_include.cmake")
include("/root/repo/build/tests/fileserver_test[1]_include.cmake")
include("/root/repo/build/tests/turbulence_test[1]_include.cmake")
include("/root/repo/build/tests/script_test[1]_include.cmake")
include("/root/repo/build/tests/xuis_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/web_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/chain_web_test[1]_include.cmake")
include("/root/repo/build/tests/db_executor_edge_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
