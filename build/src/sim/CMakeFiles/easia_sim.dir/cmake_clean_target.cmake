file(REMOVE_RECURSE
  "libeasia_sim.a"
)
