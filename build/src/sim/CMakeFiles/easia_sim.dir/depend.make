# Empty dependencies file for easia_sim.
# This may be replaced when dependencies are built.
