file(REMOVE_RECURSE
  "CMakeFiles/easia_sim.dir/bandwidth.cc.o"
  "CMakeFiles/easia_sim.dir/bandwidth.cc.o.d"
  "CMakeFiles/easia_sim.dir/network.cc.o"
  "CMakeFiles/easia_sim.dir/network.cc.o.d"
  "libeasia_sim.a"
  "libeasia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
