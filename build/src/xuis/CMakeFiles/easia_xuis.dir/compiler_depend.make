# Empty compiler generated dependencies file for easia_xuis.
# This may be replaced when dependencies are built.
