
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xuis/customize.cc" "src/xuis/CMakeFiles/easia_xuis.dir/customize.cc.o" "gcc" "src/xuis/CMakeFiles/easia_xuis.dir/customize.cc.o.d"
  "/root/repo/src/xuis/generator.cc" "src/xuis/CMakeFiles/easia_xuis.dir/generator.cc.o" "gcc" "src/xuis/CMakeFiles/easia_xuis.dir/generator.cc.o.d"
  "/root/repo/src/xuis/model.cc" "src/xuis/CMakeFiles/easia_xuis.dir/model.cc.o" "gcc" "src/xuis/CMakeFiles/easia_xuis.dir/model.cc.o.d"
  "/root/repo/src/xuis/serialize.cc" "src/xuis/CMakeFiles/easia_xuis.dir/serialize.cc.o" "gcc" "src/xuis/CMakeFiles/easia_xuis.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/easia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/easia_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/easia_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
