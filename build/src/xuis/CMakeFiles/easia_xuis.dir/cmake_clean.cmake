file(REMOVE_RECURSE
  "CMakeFiles/easia_xuis.dir/customize.cc.o"
  "CMakeFiles/easia_xuis.dir/customize.cc.o.d"
  "CMakeFiles/easia_xuis.dir/generator.cc.o"
  "CMakeFiles/easia_xuis.dir/generator.cc.o.d"
  "CMakeFiles/easia_xuis.dir/model.cc.o"
  "CMakeFiles/easia_xuis.dir/model.cc.o.d"
  "CMakeFiles/easia_xuis.dir/serialize.cc.o"
  "CMakeFiles/easia_xuis.dir/serialize.cc.o.d"
  "libeasia_xuis.a"
  "libeasia_xuis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_xuis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
