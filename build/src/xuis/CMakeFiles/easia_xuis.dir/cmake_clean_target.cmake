file(REMOVE_RECURSE
  "libeasia_xuis.a"
)
