file(REMOVE_RECURSE
  "libeasia_med.a"
)
