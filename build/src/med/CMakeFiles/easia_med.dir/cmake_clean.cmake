file(REMOVE_RECURSE
  "CMakeFiles/easia_med.dir/backup.cc.o"
  "CMakeFiles/easia_med.dir/backup.cc.o.d"
  "CMakeFiles/easia_med.dir/datalink_manager.cc.o"
  "CMakeFiles/easia_med.dir/datalink_manager.cc.o.d"
  "CMakeFiles/easia_med.dir/datalinker.cc.o"
  "CMakeFiles/easia_med.dir/datalinker.cc.o.d"
  "CMakeFiles/easia_med.dir/token.cc.o"
  "CMakeFiles/easia_med.dir/token.cc.o.d"
  "libeasia_med.a"
  "libeasia_med.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_med.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
