# Empty compiler generated dependencies file for easia_med.
# This may be replaced when dependencies are built.
