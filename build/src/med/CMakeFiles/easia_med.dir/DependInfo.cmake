
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/med/backup.cc" "src/med/CMakeFiles/easia_med.dir/backup.cc.o" "gcc" "src/med/CMakeFiles/easia_med.dir/backup.cc.o.d"
  "/root/repo/src/med/datalink_manager.cc" "src/med/CMakeFiles/easia_med.dir/datalink_manager.cc.o" "gcc" "src/med/CMakeFiles/easia_med.dir/datalink_manager.cc.o.d"
  "/root/repo/src/med/datalinker.cc" "src/med/CMakeFiles/easia_med.dir/datalinker.cc.o" "gcc" "src/med/CMakeFiles/easia_med.dir/datalinker.cc.o.d"
  "/root/repo/src/med/token.cc" "src/med/CMakeFiles/easia_med.dir/token.cc.o" "gcc" "src/med/CMakeFiles/easia_med.dir/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/easia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/easia_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/easia_db.dir/DependInfo.cmake"
  "/root/repo/build/src/fileserver/CMakeFiles/easia_fileserver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
