file(REMOVE_RECURSE
  "libeasia_crypto.a"
)
