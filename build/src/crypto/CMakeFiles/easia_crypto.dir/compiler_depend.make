# Empty compiler generated dependencies file for easia_crypto.
# This may be replaced when dependencies are built.
