file(REMOVE_RECURSE
  "CMakeFiles/easia_crypto.dir/base64.cc.o"
  "CMakeFiles/easia_crypto.dir/base64.cc.o.d"
  "CMakeFiles/easia_crypto.dir/hmac.cc.o"
  "CMakeFiles/easia_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/easia_crypto.dir/sha256.cc.o"
  "CMakeFiles/easia_crypto.dir/sha256.cc.o.d"
  "libeasia_crypto.a"
  "libeasia_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
