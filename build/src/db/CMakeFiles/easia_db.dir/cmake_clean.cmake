file(REMOVE_RECURSE
  "CMakeFiles/easia_db.dir/ast.cc.o"
  "CMakeFiles/easia_db.dir/ast.cc.o.d"
  "CMakeFiles/easia_db.dir/database.cc.o"
  "CMakeFiles/easia_db.dir/database.cc.o.d"
  "CMakeFiles/easia_db.dir/executor.cc.o"
  "CMakeFiles/easia_db.dir/executor.cc.o.d"
  "CMakeFiles/easia_db.dir/lexer.cc.o"
  "CMakeFiles/easia_db.dir/lexer.cc.o.d"
  "CMakeFiles/easia_db.dir/parser.cc.o"
  "CMakeFiles/easia_db.dir/parser.cc.o.d"
  "CMakeFiles/easia_db.dir/schema.cc.o"
  "CMakeFiles/easia_db.dir/schema.cc.o.d"
  "CMakeFiles/easia_db.dir/table.cc.o"
  "CMakeFiles/easia_db.dir/table.cc.o.d"
  "CMakeFiles/easia_db.dir/value.cc.o"
  "CMakeFiles/easia_db.dir/value.cc.o.d"
  "CMakeFiles/easia_db.dir/wal.cc.o"
  "CMakeFiles/easia_db.dir/wal.cc.o.d"
  "libeasia_db.a"
  "libeasia_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
