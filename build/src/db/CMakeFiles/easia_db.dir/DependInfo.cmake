
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/ast.cc" "src/db/CMakeFiles/easia_db.dir/ast.cc.o" "gcc" "src/db/CMakeFiles/easia_db.dir/ast.cc.o.d"
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/easia_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/easia_db.dir/database.cc.o.d"
  "/root/repo/src/db/executor.cc" "src/db/CMakeFiles/easia_db.dir/executor.cc.o" "gcc" "src/db/CMakeFiles/easia_db.dir/executor.cc.o.d"
  "/root/repo/src/db/lexer.cc" "src/db/CMakeFiles/easia_db.dir/lexer.cc.o" "gcc" "src/db/CMakeFiles/easia_db.dir/lexer.cc.o.d"
  "/root/repo/src/db/parser.cc" "src/db/CMakeFiles/easia_db.dir/parser.cc.o" "gcc" "src/db/CMakeFiles/easia_db.dir/parser.cc.o.d"
  "/root/repo/src/db/schema.cc" "src/db/CMakeFiles/easia_db.dir/schema.cc.o" "gcc" "src/db/CMakeFiles/easia_db.dir/schema.cc.o.d"
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/easia_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/easia_db.dir/table.cc.o.d"
  "/root/repo/src/db/value.cc" "src/db/CMakeFiles/easia_db.dir/value.cc.o" "gcc" "src/db/CMakeFiles/easia_db.dir/value.cc.o.d"
  "/root/repo/src/db/wal.cc" "src/db/CMakeFiles/easia_db.dir/wal.cc.o" "gcc" "src/db/CMakeFiles/easia_db.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/easia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
