file(REMOVE_RECURSE
  "libeasia_db.a"
)
