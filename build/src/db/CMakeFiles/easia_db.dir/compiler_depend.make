# Empty compiler generated dependencies file for easia_db.
# This may be replaced when dependencies are built.
