# Empty dependencies file for easia_ops.
# This may be replaced when dependencies are built.
