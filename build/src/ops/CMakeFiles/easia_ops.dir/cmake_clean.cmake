file(REMOVE_RECURSE
  "CMakeFiles/easia_ops.dir/archive.cc.o"
  "CMakeFiles/easia_ops.dir/archive.cc.o.d"
  "CMakeFiles/easia_ops.dir/engine.cc.o"
  "CMakeFiles/easia_ops.dir/engine.cc.o.d"
  "CMakeFiles/easia_ops.dir/native.cc.o"
  "CMakeFiles/easia_ops.dir/native.cc.o.d"
  "libeasia_ops.a"
  "libeasia_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
