file(REMOVE_RECURSE
  "libeasia_ops.a"
)
