# Empty compiler generated dependencies file for easia_web.
# This may be replaced when dependencies are built.
