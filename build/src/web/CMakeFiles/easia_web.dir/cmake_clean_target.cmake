file(REMOVE_RECURSE
  "libeasia_web.a"
)
