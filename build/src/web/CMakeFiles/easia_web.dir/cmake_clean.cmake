file(REMOVE_RECURSE
  "CMakeFiles/easia_web.dir/html.cc.o"
  "CMakeFiles/easia_web.dir/html.cc.o.d"
  "CMakeFiles/easia_web.dir/qbe.cc.o"
  "CMakeFiles/easia_web.dir/qbe.cc.o.d"
  "CMakeFiles/easia_web.dir/renderer.cc.o"
  "CMakeFiles/easia_web.dir/renderer.cc.o.d"
  "CMakeFiles/easia_web.dir/server.cc.o"
  "CMakeFiles/easia_web.dir/server.cc.o.d"
  "CMakeFiles/easia_web.dir/session.cc.o"
  "CMakeFiles/easia_web.dir/session.cc.o.d"
  "CMakeFiles/easia_web.dir/users.cc.o"
  "CMakeFiles/easia_web.dir/users.cc.o.d"
  "libeasia_web.a"
  "libeasia_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
