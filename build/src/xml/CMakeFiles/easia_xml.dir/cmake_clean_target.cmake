file(REMOVE_RECURSE
  "libeasia_xml.a"
)
