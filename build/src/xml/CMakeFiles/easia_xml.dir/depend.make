# Empty dependencies file for easia_xml.
# This may be replaced when dependencies are built.
