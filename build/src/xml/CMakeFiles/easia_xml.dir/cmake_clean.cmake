file(REMOVE_RECURSE
  "CMakeFiles/easia_xml.dir/dtd.cc.o"
  "CMakeFiles/easia_xml.dir/dtd.cc.o.d"
  "CMakeFiles/easia_xml.dir/node.cc.o"
  "CMakeFiles/easia_xml.dir/node.cc.o.d"
  "CMakeFiles/easia_xml.dir/parser.cc.o"
  "CMakeFiles/easia_xml.dir/parser.cc.o.d"
  "CMakeFiles/easia_xml.dir/writer.cc.o"
  "CMakeFiles/easia_xml.dir/writer.cc.o.d"
  "libeasia_xml.a"
  "libeasia_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
