file(REMOVE_RECURSE
  "libeasia_core.a"
)
