file(REMOVE_RECURSE
  "CMakeFiles/easia_core.dir/archive.cc.o"
  "CMakeFiles/easia_core.dir/archive.cc.o.d"
  "CMakeFiles/easia_core.dir/turbulence_setup.cc.o"
  "CMakeFiles/easia_core.dir/turbulence_setup.cc.o.d"
  "libeasia_core.a"
  "libeasia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
