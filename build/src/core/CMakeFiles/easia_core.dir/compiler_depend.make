# Empty compiler generated dependencies file for easia_core.
# This may be replaced when dependencies are built.
