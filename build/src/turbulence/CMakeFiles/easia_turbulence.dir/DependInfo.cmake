
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/turbulence/field.cc" "src/turbulence/CMakeFiles/easia_turbulence.dir/field.cc.o" "gcc" "src/turbulence/CMakeFiles/easia_turbulence.dir/field.cc.o.d"
  "/root/repo/src/turbulence/tbf.cc" "src/turbulence/CMakeFiles/easia_turbulence.dir/tbf.cc.o" "gcc" "src/turbulence/CMakeFiles/easia_turbulence.dir/tbf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/easia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fileserver/CMakeFiles/easia_fileserver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
