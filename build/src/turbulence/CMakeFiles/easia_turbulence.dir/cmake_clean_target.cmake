file(REMOVE_RECURSE
  "libeasia_turbulence.a"
)
