# Empty compiler generated dependencies file for easia_turbulence.
# This may be replaced when dependencies are built.
