file(REMOVE_RECURSE
  "CMakeFiles/easia_turbulence.dir/field.cc.o"
  "CMakeFiles/easia_turbulence.dir/field.cc.o.d"
  "CMakeFiles/easia_turbulence.dir/tbf.cc.o"
  "CMakeFiles/easia_turbulence.dir/tbf.cc.o.d"
  "libeasia_turbulence.a"
  "libeasia_turbulence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_turbulence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
