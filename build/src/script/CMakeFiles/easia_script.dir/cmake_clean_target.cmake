file(REMOVE_RECURSE
  "libeasia_script.a"
)
