file(REMOVE_RECURSE
  "CMakeFiles/easia_script.dir/interpreter.cc.o"
  "CMakeFiles/easia_script.dir/interpreter.cc.o.d"
  "CMakeFiles/easia_script.dir/parser.cc.o"
  "CMakeFiles/easia_script.dir/parser.cc.o.d"
  "CMakeFiles/easia_script.dir/value.cc.o"
  "CMakeFiles/easia_script.dir/value.cc.o.d"
  "libeasia_script.a"
  "libeasia_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
