# Empty dependencies file for easia_script.
# This may be replaced when dependencies are built.
