# Empty compiler generated dependencies file for easia_common.
# This may be replaced when dependencies are built.
