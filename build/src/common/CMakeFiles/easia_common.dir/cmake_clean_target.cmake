file(REMOVE_RECURSE
  "libeasia_common.a"
)
