file(REMOVE_RECURSE
  "CMakeFiles/easia_common.dir/clock.cc.o"
  "CMakeFiles/easia_common.dir/clock.cc.o.d"
  "CMakeFiles/easia_common.dir/coding.cc.o"
  "CMakeFiles/easia_common.dir/coding.cc.o.d"
  "CMakeFiles/easia_common.dir/random.cc.o"
  "CMakeFiles/easia_common.dir/random.cc.o.d"
  "CMakeFiles/easia_common.dir/status.cc.o"
  "CMakeFiles/easia_common.dir/status.cc.o.d"
  "CMakeFiles/easia_common.dir/string_util.cc.o"
  "CMakeFiles/easia_common.dir/string_util.cc.o.d"
  "libeasia_common.a"
  "libeasia_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
