file(REMOVE_RECURSE
  "libeasia_fileserver.a"
)
