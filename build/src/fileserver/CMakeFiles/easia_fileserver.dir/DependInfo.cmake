
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fileserver/file_server.cc" "src/fileserver/CMakeFiles/easia_fileserver.dir/file_server.cc.o" "gcc" "src/fileserver/CMakeFiles/easia_fileserver.dir/file_server.cc.o.d"
  "/root/repo/src/fileserver/url.cc" "src/fileserver/CMakeFiles/easia_fileserver.dir/url.cc.o" "gcc" "src/fileserver/CMakeFiles/easia_fileserver.dir/url.cc.o.d"
  "/root/repo/src/fileserver/vfs.cc" "src/fileserver/CMakeFiles/easia_fileserver.dir/vfs.cc.o" "gcc" "src/fileserver/CMakeFiles/easia_fileserver.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/easia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
