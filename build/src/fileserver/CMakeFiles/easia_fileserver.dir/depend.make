# Empty dependencies file for easia_fileserver.
# This may be replaced when dependencies are built.
