file(REMOVE_RECURSE
  "CMakeFiles/easia_fileserver.dir/file_server.cc.o"
  "CMakeFiles/easia_fileserver.dir/file_server.cc.o.d"
  "CMakeFiles/easia_fileserver.dir/url.cc.o"
  "CMakeFiles/easia_fileserver.dir/url.cc.o.d"
  "CMakeFiles/easia_fileserver.dir/vfs.cc.o"
  "CMakeFiles/easia_fileserver.dir/vfs.cc.o.d"
  "libeasia_fileserver.a"
  "libeasia_fileserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easia_fileserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
