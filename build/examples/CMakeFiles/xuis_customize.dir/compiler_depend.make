# Empty compiler generated dependencies file for xuis_customize.
# This may be replaced when dependencies are built.
