file(REMOVE_RECURSE
  "CMakeFiles/xuis_customize.dir/xuis_customize.cpp.o"
  "CMakeFiles/xuis_customize.dir/xuis_customize.cpp.o.d"
  "xuis_customize"
  "xuis_customize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xuis_customize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
