# Empty compiler generated dependencies file for code_upload.
# This may be replaced when dependencies are built.
