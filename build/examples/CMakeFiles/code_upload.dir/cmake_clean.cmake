file(REMOVE_RECURSE
  "CMakeFiles/code_upload.dir/code_upload.cpp.o"
  "CMakeFiles/code_upload.dir/code_upload.cpp.o.d"
  "code_upload"
  "code_upload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_upload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
