# Empty compiler generated dependencies file for backup_recovery.
# This may be replaced when dependencies are built.
