file(REMOVE_RECURSE
  "CMakeFiles/backup_recovery.dir/backup_recovery.cpp.o"
  "CMakeFiles/backup_recovery.dir/backup_recovery.cpp.o.d"
  "backup_recovery"
  "backup_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
