file(REMOVE_RECURSE
  "CMakeFiles/turbulence_archive.dir/turbulence_archive.cpp.o"
  "CMakeFiles/turbulence_archive.dir/turbulence_archive.cpp.o.d"
  "turbulence_archive"
  "turbulence_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbulence_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
