# Empty dependencies file for turbulence_archive.
# This may be replaced when dependencies are built.
